#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

/// \file trace.h
/// Per-job pipeline tracing. Every ETL job owns one Trace — a flat,
/// append-only list of phase spans forming a tree via parent ids — created
/// when the job starts and retained (like the job objects themselves) after
/// completion so clients can pull the full span tree post-hoc through
/// `HyperQServer::JobTrace()`.
///
/// Phase taxonomy (one span name per pipeline stage of Figure 2a):
///   import (root) -> decode -> credit_wait -> convert -> write -> compress
///                 -> upload (object-store PUT) -> copy (CDW COPY) -> apply
/// Export jobs use: export (root) -> query -> export_chunk.
///
/// Span recording is mutex-guarded (spans are per-chunk/per-phase, orders of
/// magnitude rarer than row operations) and bounded: past `max_spans` new
/// spans are counted in `dropped()` instead of stored, so a pathological job
/// cannot grow a trace without bound.

namespace hyperq::obs {

enum class Phase {
  kImport,
  kExport,
  kParcelDecode,
  kCreditWait,
  kRowConvert,
  kFileWrite,
  kCompress,
  kStorePut,
  kCdwCopy,
  kDmlApply,
  kQuery,
  kExportChunk,
  kRetryBackoff,
  kOther,
};

const char* PhaseName(Phase phase);

struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 = no parent (only the root span)
  Phase phase = Phase::kOther;
  std::string name;
  int64_t start_micros = 0;  ///< relative to the trace epoch
  int64_t end_micros = -1;   ///< -1 while the span is open
  uint64_t thread_id = 0;    ///< hashed std::thread::id, correlates with logs

  bool finished() const { return end_micros >= 0; }
  int64_t duration_micros() const { return finished() ? end_micros - start_micros : 0; }
};

class Trace {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit Trace(std::string job_id, Phase root_phase = Phase::kImport,
                 size_t max_spans = 4096);

  /// Opens a span; returns its id (0 when the trace is full — EndSpan(0) is
  /// a safe no-op). `parent_id` 0 attaches to the root span.
  uint64_t StartSpan(Phase phase, std::string name, uint64_t parent_id = 0)
      HQ_EXCLUDES(mu_);
  void EndSpan(uint64_t span_id) HQ_EXCLUDES(mu_);

  /// Records an already-measured interval. For call sites that time first
  /// and attribute to a job afterwards (e.g. parcel decode happens before
  /// the owning job is known).
  void RecordSpan(Phase phase, std::string name, uint64_t parent_id, TimePoint start,
                  TimePoint end) HQ_EXCLUDES(mu_);

  /// Closes the root span (job completion).
  void Finish();

  uint64_t root_id() const { return 1; }
  const std::string& job_id() const { return job_id_; }

  std::vector<SpanRecord> spans() const HQ_EXCLUDES(mu_);
  uint64_t dropped() const HQ_EXCLUDES(mu_);

  /// Compact single-object JSON: {"job_id":...,"spans":[...]}.
  std::string ToJson() const;

 private:
  uint64_t ThreadHash() const;

  std::string job_id_;
  TimePoint epoch_;
  size_t max_spans_;
  mutable common::Mutex mu_{common::LockRank::kObs, "trace"};
  std::vector<SpanRecord> spans_ HQ_GUARDED_BY(mu_);
  uint64_t next_id_ HQ_GUARDED_BY(mu_) = 1;
  uint64_t dropped_ HQ_GUARDED_BY(mu_) = 0;
};

/// Null-safe RAII span: no-op when `trace` is null (observability off).
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, Phase phase, std::string name, uint64_t parent_id = 0)
      : trace_(trace),
        id_(trace == nullptr ? 0 : trace->StartSpan(phase, std::move(name), parent_id)) {}
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void End() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
    trace_ = nullptr;
  }
  uint64_t id() const { return id_; }

 private:
  Trace* trace_;
  uint64_t id_;
};

/// Node-wide directory of per-job traces. Traces are shared_ptrs so span
/// trees survive the jobs (and the tracer) that produced them.
class Tracer {
 public:
  /// Creates (or returns the existing) trace for `job_id`.
  std::shared_ptr<Trace> StartTrace(const std::string& job_id,
                                    Phase root_phase = Phase::kImport) HQ_EXCLUDES(mu_);
  std::shared_ptr<Trace> Find(const std::string& job_id) const HQ_EXCLUDES(mu_);
  std::vector<std::string> job_ids() const HQ_EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_{common::LockRank::kObs, "tracer"};
  std::map<std::string, std::shared_ptr<Trace>> traces_ HQ_GUARDED_BY(mu_);
};

}  // namespace hyperq::obs
