#include "common/fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/string_util.h"

namespace hyperq::common {
namespace {

// splitmix64: a tiny, well-mixed pure hash. Decisions must be functions of
// (seed, point, rule, call index) only — never of wall clock or a shared RNG
// stream — so concurrent points cannot perturb each other's sequences.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Uniform double in [0,1) from the top 53 bits of a hash.
double UnitInterval(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Status BadSpec(std::string_view spec, const std::string& why) {
  return Status::Invalid("fault spec '" + std::string(spec) + "': " + why);
}

Status ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty()) return Status::Invalid("empty number");
  uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return Status::Invalid("bad number '" + std::string(text) + "'");
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return Status::OK();
}

Status ParseFraction(std::string_view text, double* out) {
  if (text.empty()) return Status::Invalid("empty number");
  char* end = nullptr;
  std::string buf(text);
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::Invalid("bad number '" + buf + "'");
  }
  if (!(v >= 0.0 && v <= 1.0)) return Status::Invalid("'" + buf + "' not in [0,1]");
  *out = v;
  return Status::OK();
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError:
      return "error";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kTorn:
      return "torn";
    case FaultKind::kDrop:
      return "drop";
  }
  return "?";
}

const std::array<std::string_view, FaultInjector::kNumPoints>& FaultInjector::Points() {
  static const std::array<std::string_view, kNumPoints> kPoints = {
      "objstore.put", "objstore.get", "cdw.copy",      "cdw.exec",
      "net.read",     "net.write",    "bulkload.file", "tdf.read",
      "export.send",
  };
  return kPoints;
}

int FaultInjector::PointIndex(std::string_view point) {
  const auto& points = Points();
  for (int i = 0; i < kNumPoints; ++i) {
    if (points[i] == point) return i;
  }
  return -1;
}

Status ParseFaultSpec(std::string_view spec, uint64_t* seed,
                      std::vector<std::pair<int, FaultRule>>* rules) {
  *seed = 0;
  for (const std::string& raw : Split(spec, ';')) {
    std::string_view entry = TrimView(raw);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return BadSpec(spec, "entry '" + std::string(entry) + "' has no '='");
    }
    std::string_view lhs = TrimView(entry.substr(0, eq));
    std::string_view rhs = TrimView(entry.substr(eq + 1));
    if (lhs == "seed") {
      Status s = ParseUint(rhs, seed);
      if (!s.ok()) return BadSpec(spec, s.message());
      continue;
    }
    int point = FaultInjector::PointIndex(lhs);
    if (point < 0) {
      return BadSpec(spec, "unknown fault point '" + std::string(lhs) + "'");
    }
    std::vector<std::string> parts = Split(rhs, ',');
    if (parts.empty()) return BadSpec(spec, "no fault kind for '" + std::string(lhs) + "'");
    FaultRule rule;
    std::string_view kind = TrimView(parts[0]);
    if (kind == "error") {
      rule.kind = FaultKind::kError;
    } else if (kind == "latency") {
      rule.kind = FaultKind::kLatency;
    } else if (kind == "torn") {
      rule.kind = FaultKind::kTorn;
    } else if (kind == "drop") {
      rule.kind = FaultKind::kDrop;
    } else {
      return BadSpec(spec, "unknown fault kind '" + std::string(kind) + "'");
    }
    for (size_t i = 1; i < parts.size(); ++i) {
      std::string_view param = TrimView(parts[i]);
      size_t peq = param.find('=');
      if (peq == std::string_view::npos) {
        return BadSpec(spec, "parameter '" + std::string(param) + "' has no '='");
      }
      std::string_view key = TrimView(param.substr(0, peq));
      std::string_view val = TrimView(param.substr(peq + 1));
      Status s = Status::OK();
      uint64_t u = 0;
      if (key == "p") {
        s = ParseFraction(val, &rule.probability);
      } else if (key == "n") {
        s = ParseUint(val, &u);
        if (s.ok() && u == 0) s = Status::Invalid("n= must be >= 1");
        rule.every_nth = u;
      } else if (key == "once") {
        s = ParseUint(val, &u);
        if (s.ok() && u == 0) s = Status::Invalid("once= must be >= 1");
        rule.once_at = u;
      } else if (key == "us") {
        s = ParseUint(val, &rule.latency_micros);
      } else if (key == "ms") {
        s = ParseUint(val, &u);
        rule.latency_micros = u * 1000;
      } else if (key == "frac") {
        s = ParseFraction(val, &rule.torn_fraction);
      } else {
        s = Status::Invalid("unknown parameter '" + std::string(key) + "'");
      }
      if (!s.ok()) return BadSpec(spec, s.message());
    }
    rules->emplace_back(point, rule);
  }
  return Status::OK();
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  static bool armed_from_env = [] {
    if (const char* env = std::getenv("HQ_FAULTS"); env != nullptr && env[0] != '\0') {
      Status s = injector.Arm(env);
      if (!s.ok()) {
        // A chaos run with a silently-ignored spec would pass vacuously;
        // better to fail the process at the first fault-point check.
        std::fprintf(stderr, "HQ_FAULTS rejected: %s\n", s.ToString().c_str());
        std::abort();
      }
    }
    return true;
  }();
  (void)armed_from_env;
  return injector;
}

Status FaultInjector::Arm(std::string_view spec) {
  uint64_t seed = 0;
  std::vector<std::pair<int, FaultRule>> parsed;
  HQ_RETURN_NOT_OK(ParseFaultSpec(spec, &seed, &parsed));
  MutexLock lock(&mu_);
  if (parsed.empty()) {
    config_.store(nullptr, std::memory_order_release);
    return Status::OK();
  }
  auto config = std::make_unique<ArmedConfig>();
  config->seed = seed;
  for (auto& [point, rule] : parsed) config->rules[point].push_back(rule);
  for (auto& point : points_) point.once_fired.store(0, std::memory_order_relaxed);
  config_.store(config.get(), std::memory_order_release);
  retired_.push_back(std::move(config));
  return Status::OK();
}

void FaultInjector::Disarm() {
  MutexLock lock(&mu_);
  config_.store(nullptr, std::memory_order_release);
}

FaultDecision FaultInjector::Check(std::string_view point) {
  FaultDecision decision;
  // Disarmed fast path: one atomic load. Armed path adds only the matched
  // point's rule scan — never a lock, so chaos mode cannot serialize
  // unrelated load-path threads through the injector.
  const ArmedConfig* config = config_.load(std::memory_order_acquire);
  if (config == nullptr) return decision;
  int idx = PointIndex(point);
  if (idx < 0) return decision;
  PointState& state = points_[idx];
  // 1-based call number; the trigger/hash input. Bumped only while armed so a
  // spec's `once=`/`n=` counts line up with calls made under chaos.
  uint64_t call = state.calls.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t latency_micros = 0;
  const std::vector<FaultRule>& rules = config->rules[idx];
  for (size_t r = 0; r < rules.size(); ++r) {
    const FaultRule& rule = rules[r];
    bool fire = true;
    if (rule.once_at > 0) {
      uint64_t bit = uint64_t{1} << (r & 63);
      fire = call == rule.once_at &&
             (state.once_fired.fetch_or(bit, std::memory_order_relaxed) & bit) == 0;
    } else if (rule.every_nth > 0) {
      fire = call % rule.every_nth == 0;
    }
    if (fire && rule.probability < 1.0) {
      uint64_t h = Mix64(config->seed ^ HashString(point) ^ (uint64_t{r} << 48) ^ call);
      fire = UnitInterval(h) < rule.probability;
    }
    if (!fire) continue;
    decision.fired = true;
    decision.kind = rule.kind;
    decision.torn_fraction = rule.torn_fraction;
    latency_micros = rule.latency_micros;
    break;
  }
  if (!decision.fired) return decision;
  state.injected.fetch_add(1, std::memory_order_relaxed);
  std::string where = std::string(point) + " call#" + std::to_string(call);
  switch (decision.kind) {
    case FaultKind::kLatency:
      // Stall outside the injector lock (and by contract outside any caller
      // lock — call sites consult their fault point before acquiring theirs).
      std::this_thread::sleep_for(std::chrono::microseconds(latency_micros));
      break;
    case FaultKind::kError:
      decision.status = Status::IOError("injected transient error at " + where);
      break;
    case FaultKind::kTorn:
      decision.status = Status::IOError("injected torn write at " + where);
      break;
    case FaultKind::kDrop:
      decision.status = Status::IOError("injected connection drop at " + where);
      break;
  }
  return decision;
}

Status FaultInjector::Inject(std::string_view point) {
  FaultDecision decision = Check(point);
  return decision.status;
}

uint64_t FaultInjector::injected_count(std::string_view point) const {
  int idx = PointIndex(point);
  if (idx < 0) return 0;
  return points_[idx].injected.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string_view, uint64_t>> FaultInjector::InjectedCounts() const {
  std::vector<std::pair<std::string_view, uint64_t>> out;
  out.reserve(kNumPoints);
  for (int i = 0; i < kNumPoints; ++i) {
    out.emplace_back(Points()[i], points_[i].injected.load(std::memory_order_relaxed));
  }
  return out;
}

uint64_t FaultInjector::total_injected() const {
  uint64_t total = 0;
  for (const auto& point : points_) total += point.injected.load(std::memory_order_relaxed);
  return total;
}

void FaultInjector::ResetForTesting() {
  MutexLock lock(&mu_);
  config_.store(nullptr, std::memory_order_release);
  // retired_ is deliberately kept: an in-flight Check on another thread may
  // still be reading a superseded config.
  for (auto& point : points_) {
    point.calls.store(0, std::memory_order_relaxed);
    point.injected.store(0, std::memory_order_relaxed);
    point.once_fired.store(0, std::memory_order_relaxed);
  }
}

}  // namespace hyperq::common
