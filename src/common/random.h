#pragma once

#include <cstdint>
#include <string>

/// \file random.h
/// Deterministic PRNG (xoshiro256**) for workload generation. We avoid
/// std::mt19937 so dataset bytes are reproducible across standard libraries.

namespace hyperq::common {

class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform in [0, 2^64).
  uint64_t NextU64();
  /// Uniform in [0, bound) (bound > 0).
  uint64_t NextBounded(uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// True with probability p.
  bool NextBool(double p = 0.5);
  /// Random ASCII alphanumeric string of exactly `len` characters.
  std::string NextAlnum(size_t len);

 private:
  uint64_t s_[4];
};

}  // namespace hyperq::common
