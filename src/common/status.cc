#include "common/status.h"

namespace hyperq::common {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalid:
      return "Invalid";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kProtocolError:
      return "ProtocolError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kConversionError:
      return "ConversionError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += msg_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += msg_;
  return Status(code_, std::move(msg));
}

}  // namespace hyperq::common
