#include "common/retry.h"

#include <chrono>
#include <memory>
#include <thread>

namespace hyperq::common {
namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

bool IsRetryableStatus(const Status& s) { return s.IsIOError(); }

uint64_t RetryPolicy::BackoffMicros(std::string_view point, int attempt,
                                    uint64_t prev_micros) const {
  const uint64_t base = options_.initial_backoff_micros;
  const uint64_t cap = options_.max_backoff_micros;
  if (attempt <= 1 || prev_micros == 0) return base < cap ? base : cap;
  // Decorrelated jitter: U(base, 3 * prev), capped. The uniform draw comes
  // from a pure hash of (seed, point, attempt) so sequences are reproducible
  // and two points never correlate.
  uint64_t lo = base;
  uint64_t hi = prev_micros > cap / 3 ? cap : prev_micros * 3;
  if (hi <= lo) return lo < cap ? lo : cap;
  uint64_t h = Mix64(options_.jitter_seed ^ HashString(point) ^
                     (static_cast<uint64_t>(attempt) << 32));
  uint64_t sleep = lo + h % (hi - lo + 1);
  return sleep < cap ? sleep : cap;
}

Status RetryPolicy::Run(std::string_view point,
                        const std::function<Status(const RetryAttempt&)>& fn) const {
  const int max_attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
  // Clock reads cost ~20ns; skip them entirely unless a deadline is set (the
  // healthy-path wrapper cost is gated by bench_fault_overhead).
  const uint64_t start_nanos = options_.overall_deadline_micros > 0 ? NowNanos() : 0;
  uint64_t prev_sleep = 0;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) RetryStats::Global().RecordRetry(point);
    if (options_.breaker != nullptr) {
      last = options_.breaker->Allow();
    } else {
      last = Status::OK();
    }
    if (last.ok()) {
      RetryAttempt ctx;
      ctx.attempt = attempt;
      ctx.max_attempts = max_attempts;
      last = fn(ctx);
      if (options_.breaker != nullptr) {
        if (last.ok()) {
          options_.breaker->RecordSuccess();
        } else {
          options_.breaker->RecordFailure(last);
        }
      }
    }
    if (last.ok()) return last;
    if (!IsRetryableStatus(last)) return last;
    if (attempt == max_attempts) break;
    uint64_t sleep_micros = BackoffMicros(point, attempt, prev_sleep);
    prev_sleep = sleep_micros;
    if (options_.overall_deadline_micros > 0) {
      uint64_t elapsed_micros = (NowNanos() - start_nanos) / 1000;
      if (elapsed_micros + sleep_micros >= options_.overall_deadline_micros) {
        RetryStats::Global().RecordExhausted(point);
        return last.WithContext("retry deadline (" +
                                std::to_string(options_.overall_deadline_micros) +
                                "us) exhausted after attempt " + std::to_string(attempt) + " at " +
                                std::string(point));
      }
    }
    if (options_.on_backoff) options_.on_backoff(point, attempt, sleep_micros);
    if (options_.sleep && sleep_micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros));
    }
  }
  RetryStats::Global().RecordExhausted(point);
  return last.WithContext("retries (" + std::to_string(max_attempts) +
                          " attempts) exhausted at " + std::string(point));
}

// ---------------------------------------------------------------------------
// RetryStats
// ---------------------------------------------------------------------------

RetryStats& RetryStats::Global() {
  static RetryStats stats;
  return stats;
}

void RetryStats::RecordRetry(std::string_view point) {
  MutexLock lock(&mu_);
  ++retries_[std::string(point)];
}

void RetryStats::RecordExhausted(std::string_view point) {
  MutexLock lock(&mu_);
  ++exhausted_[std::string(point)];
}

RetryStats::Snapshot RetryStats::Snap() const {
  MutexLock lock(&mu_);
  Snapshot snap;
  snap.retries = retries_;
  snap.exhausted = exhausted_;
  return snap;
}

uint64_t RetryStats::total_retries() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [point, count] : retries_) total += count;
  return total;
}

void RetryStats::ResetForTesting() {
  MutexLock lock(&mu_);
  retries_.clear();
  exhausted_.clear();
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

const char* CircuitStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

Status CircuitBreaker::Allow() {
  int state = state_.load(std::memory_order_acquire);
  if (state == static_cast<int>(State::kClosed)) return Status::OK();
  if (state == static_cast<int>(State::kOpen)) {
    if (NowNanos() < open_until_nanos_.load(std::memory_order_relaxed)) {
      // Retryable by design: an enclosing RetryPolicy backs off across the
      // cooldown instead of surfacing a distinct fatal error class.
      return Status::IOError("circuit breaker open for endpoint '" + endpoint_ + "'");
    }
    int expected = static_cast<int>(State::kOpen);
    if (state_.compare_exchange_strong(expected, static_cast<int>(State::kHalfOpen),
                                       std::memory_order_acq_rel)) {
      half_open_successes_.store(0, std::memory_order_relaxed);
    }
  }
  return Status::OK();  // half-open: admit the probe
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_.store(0, std::memory_order_relaxed);
  if (state_.load(std::memory_order_acquire) == static_cast<int>(State::kHalfOpen)) {
    int successes = half_open_successes_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (successes >= options_.half_open_successes) {
      state_.store(static_cast<int>(State::kClosed), std::memory_order_release);
    }
  }
}

void CircuitBreaker::RecordFailure(const Status& s) {
  if (!IsRetryableStatus(s)) return;
  uint64_t now = NowNanos();
  if (state_.load(std::memory_order_acquire) == static_cast<int>(State::kHalfOpen)) {
    Trip(now);
    return;
  }
  int failures = consecutive_failures_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (failures >= options_.failure_threshold) Trip(now);
}

void CircuitBreaker::Trip(uint64_t now_nanos) {
  open_until_nanos_.store(now_nanos + options_.cooldown_micros * 1000,
                          std::memory_order_relaxed);
  consecutive_failures_.store(0, std::memory_order_relaxed);
  half_open_successes_.store(0, std::memory_order_relaxed);
  state_.store(static_cast<int>(State::kOpen), std::memory_order_release);
}

void CircuitBreaker::ResetForTesting() {
  state_.store(static_cast<int>(State::kClosed), std::memory_order_release);
  consecutive_failures_.store(0, std::memory_order_relaxed);
  half_open_successes_.store(0, std::memory_order_relaxed);
  open_until_nanos_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Breaker registry
// ---------------------------------------------------------------------------

namespace {

struct BreakerRegistry {
  Mutex mu{LockRank::kObs, "breaker_registry"};
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers HQ_GUARDED_BY(mu);
};

BreakerRegistry& Registry() {
  static BreakerRegistry registry;
  return registry;
}

}  // namespace

CircuitBreaker* BreakerFor(std::string_view endpoint) {
  BreakerRegistry& registry = Registry();
  MutexLock lock(&registry.mu);
  auto it = registry.breakers.find(std::string(endpoint));
  if (it == registry.breakers.end()) {
    it = registry.breakers
             .emplace(std::string(endpoint), std::make_unique<CircuitBreaker>(std::string(endpoint)))
             .first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, CircuitBreaker::State>> BreakerStates() {
  BreakerRegistry& registry = Registry();
  MutexLock lock(&registry.mu);
  std::vector<std::pair<std::string, CircuitBreaker::State>> out;
  out.reserve(registry.breakers.size());
  for (const auto& [endpoint, breaker] : registry.breakers) {
    out.emplace_back(endpoint, breaker->state());
  }
  return out;
}

void ResetBreakersForTesting() {
  BreakerRegistry& registry = Registry();
  MutexLock lock(&registry.mu);
  for (auto& [endpoint, breaker] : registry.breakers) breaker->ResetForTesting();
}

}  // namespace hyperq::common
