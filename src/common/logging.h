#pragma once

#include <sstream>
#include <string>

/// \file logging.h
/// Minimal leveled logger. Quiet by default (warnings and errors only) so
/// tests and benchmarks stay readable; raise the level for debugging.

namespace hyperq::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one formatted line to stderr if `level` passes the global filter.
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace hyperq::common

#define HQ_LOG_DEBUG() ::hyperq::common::internal::LogStream(::hyperq::common::LogLevel::kDebug)
#define HQ_LOG_INFO() ::hyperq::common::internal::LogStream(::hyperq::common::LogLevel::kInfo)
#define HQ_LOG_WARN() ::hyperq::common::internal::LogStream(::hyperq::common::LogLevel::kWarn)
#define HQ_LOG_ERROR() ::hyperq::common::internal::LogStream(::hyperq::common::LogLevel::kError)
