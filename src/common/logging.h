#pragma once

#include <cstdint>
#include <sstream>
#include <string>

/// \file logging.h
/// Minimal leveled logger. Quiet by default (warnings and errors only) so
/// tests and benchmarks stay readable; raise the level for debugging.
///
/// Every line carries a monotonic timestamp (seconds since the first log
/// call, steady clock) and the emitting thread id, so log lines correlate
/// with the per-job trace spans of src/obs/:
///   [WARN  +12.034561s tid=1a2b3c4d] session 3: ...

namespace hyperq::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Microseconds since the process log epoch (steady clock; first use = 0).
int64_t LogMonotonicMicros();
/// Hashed id of the calling thread, as stamped on log lines.
uint64_t LogThreadId();

/// Emits one formatted line to stderr if `level` passes the global filter.
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace hyperq::common

#define HQ_LOG_DEBUG() ::hyperq::common::internal::LogStream(::hyperq::common::LogLevel::kDebug)
#define HQ_LOG_INFO() ::hyperq::common::internal::LogStream(::hyperq::common::LogLevel::kInfo)
#define HQ_LOG_WARN() ::hyperq::common::internal::LogStream(::hyperq::common::LogLevel::kWarn)
#define HQ_LOG_ERROR() ::hyperq::common::internal::LogStream(::hyperq::common::LogLevel::kError)
