#include "common/random.h"

namespace hyperq::common {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Random::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::NextBounded(uint64_t bound) { return NextU64() % bound; }

int64_t Random::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Random::NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

bool Random::NextBool(double p) { return NextDouble() < p; }

std::string Random::NextAlnum(size_t len) {
  static const char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  std::string out(len, '\0');
  for (size_t i = 0; i < len; ++i) out[i] = kAlphabet[NextBounded(sizeof(kAlphabet) - 1)];
  return out;
}

}  // namespace hyperq::common
