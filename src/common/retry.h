#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"

/// \file retry.h
/// Resilience primitives for the load path: RetryPolicy (capped exponential
/// backoff with decorrelated jitter, retryable-vs-fatal Status
/// classification, per-attempt budget and overall deadline) and
/// CircuitBreaker (closed → open → half-open, per endpoint). Policy lives
/// here as configuration — call sites say *what* to retry, not *how* (see
/// hqlint rule `unbounded-retry`, which flags hand-rolled retry loops).
///
/// Layering: src/common cannot depend on src/obs (obs already depends on
/// common), so instrumentation is pull-based — RetryStats::Global() and the
/// breaker registry accumulate counters that HyperQServer::MetricsSnapshot()
/// polls into `hyperq_retry_attempts_total{point=...}` /
/// `hyperq_retry_exhausted_total{point=...}` / `hyperq_circuit_state{...}`
/// gauges, the same way the lock-contention gauges are exported.
///
/// See DESIGN.md "Fault injection & resilient load path".

namespace hyperq::common {

/// The transient/fatal split used across the load path. Only kIOError — the
/// code every simulated substrate failure (object store, network, CDW
/// endpoint, injected fault) surfaces — is worth retrying. Everything else
/// is deterministic (parse, type, constraint, protocol errors) or must
/// propagate by contract (kResourceExhausted: the memory-budget e2e tests
/// depend on budget exhaustion failing the job, not being retried into a
/// livelock).
bool IsRetryableStatus(const Status& s);

class CircuitBreaker;

/// Tuning knobs for RetryPolicy. Defaults suit the in-process simulated
/// substrate (microsecond-scale operations); real deployments would scale
/// the backoff constants up by ~1000x.
struct RetryOptions {
  /// Total tries including the first; <= 1 disables retrying.
  int max_attempts = 4;
  /// First backoff sleep; subsequent sleeps use decorrelated jitter
  /// (AWS-architecture-blog style): sleep_k = min(cap, U(base, 3 * sleep_{k-1})).
  uint64_t initial_backoff_micros = 200;
  /// Cap on any single backoff sleep.
  uint64_t max_backoff_micros = 50 * 1000;
  /// Overall wall-clock budget across all attempts and sleeps; 0 = none.
  /// Checked before each retry — a deadline hit surfaces the last error.
  uint64_t overall_deadline_micros = 0;
  /// Seed for the deterministic jitter stream (hashed with the point name
  /// and attempt number, so two points never share a sequence).
  uint64_t jitter_seed = 0;
  /// Tests set false to make Run() compute-but-skip the backoff sleeps.
  bool sleep = true;
  /// Optional breaker consulted before every attempt; attempt outcomes are
  /// reported back to it. Not owned.
  CircuitBreaker* breaker = nullptr;
  /// Observability hook invoked before each backoff sleep (attempt is the
  /// 1-based attempt that just failed). Used by ImportJob to emit
  /// Phase::kRetryBackoff trace spans. Must not block.
  std::function<void(std::string_view point, int attempt, uint64_t sleep_micros)> on_backoff;
};

/// Context handed to each attempt.
struct RetryAttempt {
  int attempt = 1;  ///< 1-based
  int max_attempts = 1;
  bool last() const { return attempt >= max_attempts; }
};

/// Bounded retry with capped exponential backoff and decorrelated jitter.
/// Stateless and cheap to construct per call site; all state lives in the
/// options and the global RetryStats.
class RetryPolicy {
 public:
  RetryPolicy() = default;
  explicit RetryPolicy(RetryOptions options) : options_(std::move(options)) {}

  const RetryOptions& options() const { return options_; }

  /// Runs `fn` until it returns OK, a non-retryable Status, attempts are
  /// exhausted, or the overall deadline passes. `point` names the call site
  /// in stats, jitter streams and injected-fault messages.
  Status Run(std::string_view point, const std::function<Status(const RetryAttempt&)>& fn) const;

  /// Result-returning variant: retries while `fn` fails retryably, returns
  /// the first success or the terminal error.
  template <typename T>
  Result<T> RunResult(std::string_view point,
                      const std::function<Result<T>(const RetryAttempt&)>& fn) const {
    std::optional<Result<T>> last;
    Status s = Run(point, [&](const RetryAttempt& attempt) {
      last.emplace(fn(attempt));
      return last->ok() ? Status::OK() : last->status();
    });
    if (!s.ok()) return s;
    return std::move(*last);
  }

  /// The deterministic backoff sleep chosen after `attempt` (1-based)
  /// failed, given the previous sleep. Exposed for tests: bounds and
  /// determinism are part of the contract.
  uint64_t BackoffMicros(std::string_view point, int attempt, uint64_t prev_micros) const;

 private:
  RetryOptions options_;
};

// ---------------------------------------------------------------------------
// Pull-based instrumentation (see layering note above)
// ---------------------------------------------------------------------------

/// Process-wide retry/exhaustion accounting, keyed by fault-point name.
/// First attempts are deliberately NOT counted: with injection off a healthy
/// run records exactly zero retries (chaos differential asserts this).
class RetryStats {
 public:
  static RetryStats& Global();

  void RecordRetry(std::string_view point) HQ_EXCLUDES(mu_);
  void RecordExhausted(std::string_view point) HQ_EXCLUDES(mu_);

  struct Snapshot {
    /// attempt-2+ executions per point.
    std::map<std::string, uint64_t> retries;
    /// Run() invocations that gave up with attempts/deadline exhausted.
    std::map<std::string, uint64_t> exhausted;
  };
  Snapshot Snap() const HQ_EXCLUDES(mu_);
  uint64_t total_retries() const HQ_EXCLUDES(mu_);

  void ResetForTesting() HQ_EXCLUDES(mu_);

 private:
  RetryStats() = default;
  mutable Mutex mu_{LockRank::kObs, "retry_stats"};
  std::map<std::string, uint64_t> retries_ HQ_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> exhausted_ HQ_GUARDED_BY(mu_);
};

/// Per-endpoint circuit breaker: after `failure_threshold` *consecutive*
/// transient failures the circuit opens and calls fail fast (with a
/// retryable kIOError, so an enclosing RetryPolicy's backoff naturally
/// spans the cooldown); after `cooldown_micros` it half-opens and admits
/// probes; `half_open_successes` consecutive probe successes close it again,
/// one probe failure re-opens it. Lock-free (atomics only) so it can sit on
/// any hot path without a rank.
struct CircuitBreakerOptions {
  int failure_threshold = 8;
  int half_open_successes = 2;
  uint64_t cooldown_micros = 5 * 1000;
};

class CircuitBreaker {
 public:
  enum class State : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(std::string endpoint, CircuitBreakerOptions options = {})
      : endpoint_(std::move(endpoint)), options_(options) {}
  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// OK when the call may proceed (closed, or half-open probe); a retryable
  /// kIOError when the circuit is open.
  Status Allow();

  /// Reports the outcome of an admitted call. Only transient (retryable)
  /// failures count toward tripping; deterministic failures (parse errors,
  /// constraint violations) say nothing about endpoint health.
  void RecordSuccess();
  void RecordFailure(const Status& s);

  State state() const { return static_cast<State>(state_.load(std::memory_order_relaxed)); }
  const std::string& endpoint() const { return endpoint_; }

  void ResetForTesting();

 private:
  void Trip(uint64_t now_nanos);

  const std::string endpoint_;
  const CircuitBreakerOptions options_;
  std::atomic<int> state_{static_cast<int>(State::kClosed)};
  std::atomic<int> consecutive_failures_{0};
  std::atomic<int> half_open_successes_{0};
  std::atomic<uint64_t> open_until_nanos_{0};
};

/// "closed" | "open" | "half-open".
const char* CircuitStateName(CircuitBreaker::State state);

/// Process-wide breaker registry, one breaker per endpoint name, created on
/// first use. Stable pointers (never deleted).
CircuitBreaker* BreakerFor(std::string_view endpoint);
/// (endpoint, state) for every registered breaker, name-ordered.
std::vector<std::pair<std::string, CircuitBreaker::State>> BreakerStates();
/// Re-closes every registered breaker (test isolation).
void ResetBreakersForTesting();

}  // namespace hyperq::common
