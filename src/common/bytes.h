#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

/// \file bytes.h
/// Owned byte buffers plus little-endian read/write cursors. These are the
/// building blocks for all wire formats (LDWP parcels, legacy row encodings,
/// TDF packets, CDW staging files).

namespace hyperq::common {

/// Non-owning view over raw bytes (like arrow::util::string_view over bytes).
class Slice {
 public:
  Slice() = default;
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::vector<uint8_t>& v) : data_(v.data()), size_(v.size()) {}  // NOLINT
  explicit Slice(std::string_view s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Sub-slice [offset, offset+len); caller must ensure bounds.
  Slice SubSlice(size_t offset, size_t len) const { return Slice(data_ + offset, len); }

  std::string_view ToStringView() const {
    return std::string_view(reinterpret_cast<const char*>(data_), size_);
  }
  std::string ToString() const { return std::string(ToStringView()); }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Growable owned byte buffer with append-style little-endian writers.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* data() { return bytes_.data(); }
  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  void clear() { bytes_.clear(); }
  void reserve(size_t n) { bytes_.reserve(n); }
  void resize(size_t n) { bytes_.resize(n); }

  Slice AsSlice() const { return Slice(bytes_.data(), bytes_.size()); }
  std::vector<uint8_t>& vector() { return bytes_; }
  const std::vector<uint8_t>& vector() const { return bytes_; }

  void AppendByte(uint8_t b) { bytes_.push_back(b); }
  void AppendBytes(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + len);
  }
  void AppendSlice(Slice s) { AppendBytes(s.data(), s.size()); }
  void AppendString(std::string_view s) { AppendBytes(s.data(), s.size()); }

  void AppendU16(uint16_t v) { AppendLE(v); }
  void AppendU32(uint32_t v) { AppendLE(v); }
  void AppendU64(uint64_t v) { AppendLE(v); }
  void AppendI8(int8_t v) { AppendByte(static_cast<uint8_t>(v)); }
  void AppendI16(int16_t v) { AppendLE(static_cast<uint16_t>(v)); }
  void AppendI32(int32_t v) { AppendLE(static_cast<uint32_t>(v)); }
  void AppendI64(int64_t v) { AppendLE(static_cast<uint64_t>(v)); }
  void AppendF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AppendLE(bits);
  }

  /// Writes a 16-bit length prefix followed by the bytes. Fails (via caller
  /// contract) if s exceeds 64 KiB; asserts in debug.
  void AppendLengthPrefixed16(std::string_view s) {
    AppendU16(static_cast<uint16_t>(s.size()));
    AppendString(s);
  }
  /// 32-bit length-prefixed byte string for payloads that may exceed 64 KiB.
  void AppendLengthPrefixed32(Slice s) {
    AppendU32(static_cast<uint32_t>(s.size()));
    AppendSlice(s);
  }

  /// Patches a previously-written little-endian u32 at `offset`.
  void PatchU32(size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_[offset + i] = static_cast<uint8_t>(v >> (8 * i));
  }

 private:
  template <typename U>
  void AppendLE(U v) {
    for (size_t i = 0; i < sizeof(U); ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  std::vector<uint8_t> bytes_;
};

/// Sequential little-endian reader over a Slice with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(Slice slice) : slice_(slice) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return slice_.size() - pos_; }
  bool AtEnd() const { return pos_ == slice_.size(); }

  Result<uint8_t> ReadByte();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int8_t> ReadI8();
  Result<int16_t> ReadI16();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();

  /// Reads exactly `len` raw bytes as a view into the underlying slice.
  Result<Slice> ReadSlice(size_t len);
  /// Reads a 16-bit length prefix then that many bytes.
  Result<Slice> ReadLengthPrefixed16();
  /// Reads a 32-bit length prefix then that many bytes.
  Result<Slice> ReadLengthPrefixed32();

  /// Skips `len` bytes.
  Status Skip(size_t len);

 private:
  template <typename U>
  Result<U> ReadLE();

  Slice slice_;
  size_t pos_ = 0;
};

}  // namespace hyperq::common
