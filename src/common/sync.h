#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <source_location>
#include <vector>

/// \file sync.h
/// The project's only sanctioned synchronization layer: Clang
/// thread-safety-annotated wrappers over std::mutex /
/// std::condition_variable. Every lock in the codebase goes through these
/// types so that `clang++ -Werror=thread-safety` can prove, at compile time,
/// which fields each mutex guards and which methods require or exclude it.
/// On non-Clang compilers the annotations expand to nothing and the wrappers
/// are near-zero-cost shims over the std primitives.
///
/// Rules (enforced by tools/hqlint):
///  - No naked std::mutex / std::lock_guard / std::unique_lock /
///    std::condition_variable outside this header.
///  - Guarded fields carry HQ_GUARDED_BY(mu_); methods that assume the lock
///    is held carry HQ_REQUIRES(mu_); public entry points that take the lock
///    carry HQ_EXCLUDES(mu_).
///  - Condition-variable predicates are written as explicit while-loops in
///    the locked scope (not as lambdas handed to wait()) so the analysis can
///    see the guarded reads.
///  - Every Mutex declares a LockRank (hqlint rule `unranked-mutex`), and a
///    MutexLock lexically nested inside another locked scope must carry a
///    `// lock-order: kOuter > kInner` marker naming hierarchy-ordered ranks
///    (hqlint rule `nested-lock-without-order`) or use MutexLock2.
///
/// See DESIGN.md "Lock hierarchy & deadlock detection" for the rank table
/// and the rules for choosing a rank for a new mutex.

// ---------------------------------------------------------------------------
// Annotation macros (Clang thread-safety attributes; no-ops elsewhere).
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define HQ_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HQ_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a lockable capability ("mutex").
#define HQ_CAPABILITY(x) HQ_THREAD_ANNOTATION_(capability(x))
/// Declares an RAII type that acquires a capability for its scope.
#define HQ_SCOPED_CAPABILITY HQ_THREAD_ANNOTATION_(scoped_lockable)
/// Field is protected by the given mutex.
#define HQ_GUARDED_BY(x) HQ_THREAD_ANNOTATION_(guarded_by(x))
/// Pointee (not the pointer itself) is protected by the given mutex.
#define HQ_PT_GUARDED_BY(x) HQ_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function may only be called while holding the given mutex(es).
#define HQ_REQUIRES(...) HQ_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function acquires the mutex(es) and holds them on return.
#define HQ_ACQUIRE(...) HQ_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function releases the mutex(es).
#define HQ_RELEASE(...) HQ_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function acquires the mutex when it returns the given value.
#define HQ_TRY_ACQUIRE(...) HQ_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called while holding the given mutex(es)
/// (deadlock guard for public entry points that take the lock themselves).
#define HQ_EXCLUDES(...) HQ_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Declares lock acquisition order between two mutexes. By project
/// convention these mirror the LockRank hierarchy: the mutex with the
/// higher rank is acquired before the mutex with the lower rank.
#define HQ_ACQUIRED_BEFORE(...) HQ_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define HQ_ACQUIRED_AFTER(...) HQ_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
/// Escape hatch; must carry a comment justifying why the analysis is wrong.
#define HQ_NO_THREAD_SAFETY_ANALYSIS HQ_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace hyperq::common {

class CondVar;
class MutexLock;
class MutexLock2;

// ---------------------------------------------------------------------------
// Lock ranks
// ---------------------------------------------------------------------------

/// The global lock hierarchy. Acquisition order is strictly DESCENDING:
/// while a thread holds a lock, it may only acquire locks of strictly lower
/// rank. Outermost / coarsest locks carry the highest rank, leaf locks the
/// lowest, so e.g. a server lifecycle scope may log (kLifecycle > kLogging)
/// but a queue internals scope may never re-enter the server.
///
/// In the `<` ordering used throughout docs and lint markers this reads
/// kLogging < kObs < kQueue < kPool < kStore < kCatalog < kJob < kCdw <
/// kServer < kLifecycle — a lock may nest *inside* any lock that compares
/// greater than it.
///
/// Same-rank acquisition is forbidden except through the MutexLock2
/// ordered-pair API. Rules for choosing a rank for a new mutex are in
/// DESIGN.md "Lock hierarchy & deadlock detection".
enum class LockRank : int {
  kLogging = 0,    ///< logging sink serialization; callable from anywhere
  kObs = 1,        ///< metrics registry, traces (leaf telemetry state)
  kQueue = 2,      ///< bounded/sequenced queues, transport pipes
  kPool = 3,       ///< thread pool, buffer pool, credit manager internals
  kStore = 4,      ///< cloud object store state
  kCatalog = 5,    ///< CDW catalog maps
  kJob = 6,        ///< per-job state (import/export jobs, cursors)
  kCdw = 7,        ///< CDW server statement execution state
  kServer = 8,     ///< node-wide session / job tables
  kLifecycle = 9,  ///< start/stop serialization (outermost scopes)
};

inline constexpr int kNumLockRanks = 10;

/// "kLogging" .. "kLifecycle"; "k?" for out-of-range values.
const char* LockRankName(LockRank rank);

/// Number of wait-time histogram buckets per rank: the finite bounds plus
/// the implicit +Inf bucket. The finite bounds deliberately mirror
/// obs::Histogram::BucketBounds() (a test asserts they stay in sync) so the
/// server can export per-rank wait histograms in the shared layout without
/// src/common depending on src/obs.
inline constexpr int kNumLockWaitBuckets = 26;

/// The kNumLockWaitBuckets - 1 finite upper bounds, ascending, in seconds.
const double* LockWaitBucketBounds();

// ---------------------------------------------------------------------------
// Lock-order graph registry (always on, production builds included)
// ---------------------------------------------------------------------------

/// One observed "acquired `acquired` while holding `holder`" rank pair.
struct LockOrderEdge {
  LockRank holder;
  LockRank acquired;
  uint64_t count = 0;
};

/// The per-instance refinement of a rank edge: the constructor-supplied
/// mutex names of the pair ("server_jobs" -> "bounded_queue"). Rank pairs
/// prove the hierarchy is respected; name pairs say which actual mutexes
/// travel each edge, which is what a static analyzer can diff its proven
/// call-site edges against. Unnamed mutexes fall back to their rank name.
struct LockOrderNameEdge {
  std::string holder;
  std::string acquired;
  uint64_t count = 0;
};

/// Point-in-time copy of the process-wide lock-order graph.
struct LockOrderSnapshot {
  /// Every observed rank-pair edge, ordered by (holder, acquired).
  std::vector<LockOrderEdge> edges;
  /// Every observed mutex-name pair edge, merged by name and ordered by
  /// (holder, acquired). Slots are bounded: when the fixed-size table
  /// overflows, `dropped_name_edges` counts the recordings that could not
  /// be attributed (the rank-pair edges above are never dropped).
  std::vector<LockOrderNameEdge> name_edges;
  uint64_t dropped_name_edges = 0;
  /// Blocked (contended) acquisitions per rank, indexed by LockRank value.
  uint64_t contention[kNumLockRanks] = {};
  /// Wait-time distribution of those contended acquisitions, per rank:
  /// how long the blocking `lock()` took, histogrammed over
  /// LockWaitBucketBounds() (uncontended fast-path acquisitions record
  /// nothing). Exported as `hyperq_lock_wait_seconds{rank=...}`.
  uint64_t wait_count[kNumLockRanks] = {};
  double wait_sum_seconds[kNumLockRanks] = {};
  uint64_t wait_buckets[kNumLockRanks][kNumLockWaitBuckets] = {};
  /// True when the edge set contains a directed cycle — i.e. two code paths
  /// disagree about acquisition order and a deadlock is possible.
  bool has_cycle = false;
  /// A witness cycle (first node repeated at the end) when has_cycle.
  std::vector<LockRank> cycle;
};

/// Process-wide registry of observed lock-order edges and per-rank
/// contention. Recording is a relaxed atomic increment and stays enabled in
/// production builds; the abort-on-inversion validator is separate (see
/// SetDeadlockDetectForTesting). Exported through src/obs/ as
/// `hyperq_lock_order_edges` / `hyperq_lock_contention_total{rank}` and the
/// HyperQServer::LockGraph() DOT/JSON dump.
class LockOrderGraph {
 public:
  static LockOrderGraph& Global();

  void RecordEdge(LockRank holder, LockRank acquired);
  /// Records the mutex-name pair travelling a rank edge. Lock-free: claims a
  /// slot in a fixed pointer-keyed table (mutex names are string literals,
  /// so pointer identity is cheap and Snapshot() merges by value). Null
  /// names are attributed to their rank's name.
  void RecordNameEdge(const char* holder, LockRank holder_rank, const char* acquired,
                      LockRank acquired_rank);
  void RecordContention(LockRank rank);
  /// Records how long a contended acquisition blocked in `lock()`.
  void RecordWait(LockRank rank, uint64_t wait_nanos);

  /// Consistent-enough copy plus cycle analysis over the copied edges.
  LockOrderSnapshot Snapshot() const;

  /// Zeroes every edge and contention cell (test isolation only).
  void ResetForTesting();

 private:
  LockOrderGraph() = default;

  /// One claimed (holder-name, acquired-name) cell. Claim order is holder
  /// then acquired; a slot whose second CAS loses stays half-claimed for
  /// that pair and the loser probes on, so every slot belongs to exactly
  /// one pointer pair for the life of the process.
  struct NameSlot {
    std::atomic<const char*> holder{nullptr};
    std::atomic<const char*> acquired{nullptr};
    std::atomic<uint64_t> count{0};
  };
  static constexpr int kNameSlots = 512;
  static constexpr int kNameProbeLimit = 64;

  std::atomic<uint64_t> edges_[kNumLockRanks][kNumLockRanks] = {};
  NameSlot name_slots_[kNameSlots];
  std::atomic<uint64_t> dropped_name_edges_{0};
  std::atomic<uint64_t> contention_[kNumLockRanks] = {};
  std::atomic<uint64_t> wait_count_[kNumLockRanks] = {};
  std::atomic<uint64_t> wait_nanos_[kNumLockRanks] = {};
  std::atomic<uint64_t> wait_buckets_[kNumLockRanks][kNumLockWaitBuckets] = {};
};

// ---------------------------------------------------------------------------
// Runtime deadlock validator controls
// ---------------------------------------------------------------------------

/// When enabled, every acquisition is checked against the per-thread stack
/// of held locks and a rank inversion aborts the process with both
/// acquisition sites. Defaults to the compile-time HQ_DEADLOCK_DETECT macro
/// (on in the asan/tsan/ubsan presets); tests flip it at runtime so death
/// tests bite in every preset.
void SetDeadlockDetectForTesting(bool enabled);
bool DeadlockDetectEnabled();

namespace lock_internal {
/// Validates (and on violation aborts) an acquisition about to happen, and
/// records the rank-pair edge in the global graph. `allow_equal_top` is the
/// MutexLock2 second-leg carve-out.
void OnLockAttempt(const void* mu, LockRank rank, const char* name, const char* file,
                   unsigned line, bool allow_equal_top);
/// Pushes the now-held lock onto the per-thread stack.
void OnLockAcquired(const void* mu, LockRank rank, const char* name, const char* file,
                    unsigned line);
/// Pops the lock from the per-thread stack (any position; scoped releases
/// are LIFO in practice).
void OnUnlock(const void* mu);
/// Bumps the per-rank contention counter (the acquisition had to block).
void OnContended(LockRank rank);
/// Records how long the blocked acquisition waited, once it acquired.
void OnWaited(LockRank rank, uint64_t wait_nanos);
/// Depth of the calling thread's held-lock stack (tests only).
int HeldDepthForTesting();
}  // namespace lock_internal

// ---------------------------------------------------------------------------
// Mutex / MutexLock / MutexLock2 / CondVar
// ---------------------------------------------------------------------------

/// Annotated exclusive mutex. Construction requires a LockRank (and accepts
/// an optional stable name for diagnostics / graph dumps). Prefer MutexLock
/// over manual Lock()/Unlock().
class HQ_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, const char* name = nullptr) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock(std::source_location loc = std::source_location::current()) HQ_ACQUIRE() {
    LockImpl(loc, /*allow_equal_top=*/false);
  }
  void Unlock() HQ_RELEASE() {
    lock_internal::OnUnlock(this);
    mu_.unlock();
  }
  bool TryLock(std::source_location loc = std::source_location::current()) HQ_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // Validate after the fact: a successful try-lock is still an acquisition
    // and must respect the hierarchy (it cannot deadlock by itself, but it
    // proves an ordering some blocking path may also take).
    lock_internal::OnLockAttempt(this, rank_, name_, loc.file_name(), loc.line(),
                                 /*allow_equal_top=*/false);
    lock_internal::OnLockAcquired(this, rank_, name_, loc.file_name(), loc.line());
    return true;
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  friend class MutexLock;
  friend class MutexLock2;

  void LockImpl(const std::source_location& loc, bool allow_equal_top) {
    lock_internal::OnLockAttempt(this, rank_, name_, loc.file_name(), loc.line(),
                                 allow_equal_top);
    if (!mu_.try_lock()) {
      lock_internal::OnContended(rank_);
      const auto wait_start = std::chrono::steady_clock::now();
      mu_.lock();
      lock_internal::OnWaited(
          rank_, static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                           std::chrono::steady_clock::now() - wait_start)
                                           .count()));
    }
    lock_internal::OnLockAcquired(this, rank_, name_, loc.file_name(), loc.line());
  }

  const LockRank rank_;
  const char* const name_;
  std::mutex mu_;
};

/// RAII scoped lock over a Mutex; the codebase's only lock-taking idiom.
class HQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu, std::source_location loc = std::source_location::current())
      HQ_ACQUIRE(mu)
      : mu_(mu) {
    mu_->LockImpl(loc, /*allow_equal_top=*/false);
  }
  ~MutexLock() HQ_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* const mu_;
};

/// Ordered acquisition of two same-or-different-rank mutexes: the only
/// sanctioned way to hold two locks of equal rank. Acquires the higher rank
/// first; equal ranks are ordered by address, which is consistent across
/// every thread and therefore deadlock-free.
class HQ_SCOPED_CAPABILITY MutexLock2 {
 public:
  // The validator cannot see through the internal ordering swap, and under
  // clang the attribute (not the body) is the contract here.
  MutexLock2(Mutex* a, Mutex* b, std::source_location loc = std::source_location::current())
      HQ_ACQUIRE(a, b) HQ_NO_THREAD_SAFETY_ANALYSIS : first_(a), second_(b) {
    if (static_cast<int>(a->rank()) < static_cast<int>(b->rank()) ||
        (a->rank() == b->rank() && a > b)) {
      first_ = b;
      second_ = a;
    }
    first_->LockImpl(loc, /*allow_equal_top=*/false);
    second_->LockImpl(loc, /*allow_equal_top=*/true);
  }
  ~MutexLock2() HQ_RELEASE() HQ_NO_THREAD_SAFETY_ANALYSIS {
    second_->Unlock();
    first_->Unlock();
  }

  MutexLock2(const MutexLock2&) = delete;
  MutexLock2& operator=(const MutexLock2&) = delete;

 private:
  Mutex* first_;
  Mutex* second_;
};

/// Condition variable bound to MutexLock. Callers loop over their predicate
/// in the locked scope:
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the lock, blocks, and reacquires before returning.
  /// The lock stays on the waiter's held-lock stack for the duration (the
  /// thread is blocked, so the conservative view is the correct one).
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> ul(lock.mu_->mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();
  }

  /// Waits until notified or `deadline`; returns true on timeout.
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock, const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> ul(lock.mu_->mu_, std::adopt_lock);
    bool timed_out = cv_.wait_until(ul, deadline) == std::cv_status::timeout;
    ul.release();
    return timed_out;
  }

  /// Waits until notified or `timeout` elapsed; returns true on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock, const std::chrono::duration<Rep, Period>& timeout) {
    std::unique_lock<std::mutex> ul(lock.mu_->mu_, std::adopt_lock);
    bool timed_out = cv_.wait_for(ul, timeout) == std::cv_status::timeout;
    ul.release();
    return timed_out;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hyperq::common
