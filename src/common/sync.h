#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

/// \file sync.h
/// The project's only sanctioned synchronization layer: Clang
/// thread-safety-annotated wrappers over std::mutex /
/// std::condition_variable. Every lock in the codebase goes through these
/// types so that `clang++ -Werror=thread-safety` can prove, at compile time,
/// which fields each mutex guards and which methods require or exclude it.
/// On non-Clang compilers the annotations expand to nothing and the wrappers
/// are zero-cost aliases of the std primitives.
///
/// Rules (enforced by tools/hqlint):
///  - No naked std::mutex / std::lock_guard / std::unique_lock /
///    std::condition_variable outside this header.
///  - Guarded fields carry HQ_GUARDED_BY(mu_); methods that assume the lock
///    is held carry HQ_REQUIRES(mu_); public entry points that take the lock
///    carry HQ_EXCLUDES(mu_).
///  - Condition-variable predicates are written as explicit while-loops in
///    the locked scope (not as lambdas handed to wait()) so the analysis can
///    see the guarded reads.

// ---------------------------------------------------------------------------
// Annotation macros (Clang thread-safety attributes; no-ops elsewhere).
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define HQ_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HQ_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a lockable capability ("mutex").
#define HQ_CAPABILITY(x) HQ_THREAD_ANNOTATION_(capability(x))
/// Declares an RAII type that acquires a capability for its scope.
#define HQ_SCOPED_CAPABILITY HQ_THREAD_ANNOTATION_(scoped_lockable)
/// Field is protected by the given mutex.
#define HQ_GUARDED_BY(x) HQ_THREAD_ANNOTATION_(guarded_by(x))
/// Pointee (not the pointer itself) is protected by the given mutex.
#define HQ_PT_GUARDED_BY(x) HQ_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function may only be called while holding the given mutex(es).
#define HQ_REQUIRES(...) HQ_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function acquires the mutex(es) and holds them on return.
#define HQ_ACQUIRE(...) HQ_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function releases the mutex(es).
#define HQ_RELEASE(...) HQ_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function acquires the mutex when it returns the given value.
#define HQ_TRY_ACQUIRE(...) HQ_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called while holding the given mutex(es)
/// (deadlock guard for public entry points that take the lock themselves).
#define HQ_EXCLUDES(...) HQ_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Declares lock acquisition order between two mutexes.
#define HQ_ACQUIRED_BEFORE(...) HQ_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define HQ_ACQUIRED_AFTER(...) HQ_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
/// Escape hatch; must carry a comment justifying why the analysis is wrong.
#define HQ_NO_THREAD_SAFETY_ANALYSIS HQ_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace hyperq::common {

class CondVar;
class MutexLock;

/// Annotated exclusive mutex. Prefer MutexLock over manual Lock()/Unlock().
class HQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HQ_ACQUIRE() { mu_.lock(); }
  void Unlock() HQ_RELEASE() { mu_.unlock(); }
  bool TryLock() HQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped lock over a Mutex; the codebase's only lock-taking idiom.
class HQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HQ_ACQUIRE(mu) : lock_(mu->mu_) {}
  ~MutexLock() HQ_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to MutexLock. Callers loop over their predicate
/// in the locked scope:
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the lock, blocks, and reacquires before returning.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Waits until notified or `deadline`; returns true on timeout.
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock, const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::timeout;
  }

  /// Waits until notified or `timeout` elapsed; returns true on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock, const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hyperq::common
