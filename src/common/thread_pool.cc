#include "common/thread_pool.h"

#include <algorithm>

namespace hyperq::common {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return false;
    tasks_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
  return true;
}

void ThreadPool::WaitIdle() {
  MutexLock lock(&mu_);
  while (!tasks_.empty() || active_ != 0) idle_.Wait(lock);
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      // Already shut down; threads may be joined by the first caller.
    }
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::queued() const {
  MutexLock lock(&mu_);
  return tasks_.size();
}

size_t ThreadPool::active() const {
  MutexLock lock(&mu_);
  return active_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && tasks_.empty()) work_available_.Wait(lock);
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace hyperq::common
