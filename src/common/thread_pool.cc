#include "common/thread_pool.h"

#include <algorithm>

namespace hyperq::common {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // Already shut down; threads may be joined by the first caller.
    }
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

size_t ThreadPool::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace hyperq::common
