#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

/// \file fault.h
/// Deterministic fault-injection substrate for the load path.
///
/// The real deployments the paper targets sit between a legacy client and a
/// cloud that throttles, times out and drops connections; this injector lets
/// the simulated substrate misbehave the same way, reproducibly. Every
/// fallible hop of the load path consults a *named fault point* before doing
/// work; when the injector is armed, a point can be configured to fail with a
/// transient error, add a latency spike, tear a write short, or drop the
/// connection — on a probability, every-Nth-call, or one-shot trigger.
///
/// Decisions are pure functions of (seed, point, rule index, per-point call
/// index), so a chaos run is bit-reproducible regardless of thread
/// interleaving *per point call order*; call order per point is made
/// deterministic in tests by using single-writer pipelines or one-shot/`n=`
/// triggers.
///
/// Spec grammar (used by `HyperQOptions::fault_spec` and the `HQ_FAULTS` env
/// variable; see DESIGN.md "Fault injection & resilient load path"):
///
///   spec    := entry (';' entry)*
///   entry   := 'seed=' uint
///            | point '=' kind (',' param)*
///   point   := objstore.put | objstore.get | cdw.copy | cdw.exec
///            | net.read | net.write | bulkload.file | tdf.read
///            | export.send
///   kind    := error | latency | torn | drop
///   param   := 'p=' float      (probability per call, default 1.0)
///            | 'n=' uint       (fire on every Nth call)
///            | 'once=' uint    (fire exactly once, on call #N, 1-based)
///            | 'us=' uint      (latency spike, microseconds)
///            | 'ms=' uint      (latency spike, milliseconds)
///            | 'frac=' float   (torn write: fraction of bytes applied)
///
///   e.g.  HQ_FAULTS='seed=42;objstore.put=error,p=0.15;cdw.copy=drop,once=2'

namespace hyperq::common {

/// What an armed fault point does to the caller.
enum class FaultKind : int {
  kError = 0,    ///< transient failure: the operation fails, nothing applied
  kLatency = 1,  ///< the operation succeeds after an injected stall
  kTorn = 2,     ///< a write applies a prefix of the payload, then fails
  kDrop = 3,     ///< connection drop: work may have applied but the ack is lost
};

/// "error" | "latency" | "torn" | "drop".
const char* FaultKindName(FaultKind kind);

/// One armed rule at a fault point. Rules at the same point are evaluated in
/// spec order; the first rule whose trigger matches the call fires.
struct FaultRule {
  FaultKind kind = FaultKind::kError;
  /// Per-call fire probability in [0,1]; evaluated from the deterministic
  /// per-call hash, so the same seed reproduces the same decision sequence.
  double probability = 1.0;
  /// When >0: fire on every Nth call to the point (1-based call numbers).
  uint64_t every_nth = 0;
  /// When >0: fire exactly once, on the Nth call to the point (1-based).
  uint64_t once_at = 0;
  /// kLatency: stall length.
  uint64_t latency_micros = 1000;
  /// kTorn: fraction of the payload applied before the failure, in [0,1].
  double torn_fraction = 0.5;
};

/// Outcome of consulting a fault point for one call.
struct FaultDecision {
  bool fired = false;
  FaultKind kind = FaultKind::kError;
  double torn_fraction = 0.5;
  /// Non-OK for kError / kTorn / kDrop; the injected failure to surface.
  Status status;
};

/// Parses the spec grammar above. On success fills `seed` (0 when the spec
/// does not set one) and appends (point-index, rule) pairs in spec order.
Status ParseFaultSpec(std::string_view spec, uint64_t* seed,
                      std::vector<std::pair<int, FaultRule>>* rules);

/// Registry-based deterministic fault injector. One process-global instance
/// (armed from `HQ_FAULTS` or `HyperQOptions::fault_spec`) plus arbitrary
/// local instances for unit tests.
///
/// The disarmed fast path is a single relaxed atomic load — cheap enough to
/// leave the checks in production builds (bench_fault_overhead holds the
/// paired overhead under 1%).
class FaultInjector {
 public:
  /// The fixed registry of known fault points.
  static constexpr int kNumPoints = 9;
  static const std::array<std::string_view, kNumPoints>& Points();
  /// Index into Points(), or -1 for an unknown name.
  static int PointIndex(std::string_view point);

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Process-global injector. First use arms it from the `HQ_FAULTS`
  /// environment variable when set (a malformed env spec aborts startup
  /// loudly rather than silently running fault-free).
  static FaultInjector& Global();

  /// Parses and installs `spec`, replacing any armed rules. An empty spec
  /// disarms. Counters are preserved across re-arms; ResetForTesting clears
  /// them.
  Status Arm(std::string_view spec) HQ_EXCLUDES(mu_);

  /// Removes all rules; Check/Inject become single-load no-ops again.
  void Disarm() HQ_EXCLUDES(mu_);

  bool armed() const { return config_.load(std::memory_order_relaxed) != nullptr; }
  uint64_t seed() const {
    const ArmedConfig* config = config_.load(std::memory_order_acquire);
    return config != nullptr ? config->seed : 0;
  }

  /// Consults `point` for the current call. When a latency rule fires the
  /// stall happens inside Check (never under any caller lock — call sites
  /// consult before acquiring theirs). For the other kinds the caller applies
  /// the semantics (fail before work, tear the write, drop the session).
  /// Unknown points never fire (callers stay total under registry drift).
  /// Lock-free: one atomic config load plus the matched point's rule scan.
  FaultDecision Check(std::string_view point);

  /// Convenience for call sites that cannot model partial application:
  /// collapses kTorn to kError and returns the injected status (latency
  /// stalls then returns OK).
  Status Inject(std::string_view point) HQ_EXCLUDES(mu_);

  /// Total faults injected at `point` since construction / last reset.
  uint64_t injected_count(std::string_view point) const;
  /// (point, injected) for every registered point, in registry order.
  std::vector<std::pair<std::string_view, uint64_t>> InjectedCounts() const;
  /// Sum of injected_count over all points.
  uint64_t total_injected() const;

  /// Disarms and zeroes all per-point call/injected counters.
  void ResetForTesting() HQ_EXCLUDES(mu_);

 private:
  struct PointState {
    /// Calls observed while armed; the per-call trigger/hash input.
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> injected{0};
    /// Bit i set once rule i (a `once=` rule) has fired.
    std::atomic<uint64_t> once_fired{0};
  };

  /// One immutable armed configuration. Check() reads it through a single
  /// atomic pointer load — no lock on the hot path, so chaos mode cannot
  /// serialize every load-path thread on one global mutex. Superseded
  /// configs are retired (not freed) under mu_ so in-flight Checks stay
  /// valid; re-arming is rare (tests and node startup), so the retired list
  /// stays tiny.
  struct ArmedConfig {
    uint64_t seed = 0;
    /// Rules per point, indexed like Points().
    std::vector<FaultRule> rules[kNumPoints];
  };

  Mutex mu_{LockRank::kObs, "fault_injector"};  ///< serializes writers only
  /// Current config; null = disarmed. Written under mu_, read lock-free.
  std::atomic<const ArmedConfig*> config_{nullptr};
  /// Owns every config ever installed (including the current one).
  std::vector<std::unique_ptr<const ArmedConfig>> retired_ HQ_GUARDED_BY(mu_);
  PointState points_[kNumPoints];
};

}  // namespace hyperq::common
