#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hyperq::common {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), msg.c_str());
}

}  // namespace hyperq::common
