#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/sync.h"

namespace hyperq::common {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
/// Serializes the fprintf so concurrent log lines never interleave; no state
/// is guarded (the level is an atomic, timestamps are thread-local math).
Mutex g_log_mutex{LockRank::kLogging, "log_sink"};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      break;  // never emitted: kOff suppresses the write before tagging
  }
  return "?????";
}

std::chrono::steady_clock::time_point ProcessEpoch() {
  // First use wins; every later line is stamped relative to it, on the same
  // monotonic clock trace spans use, so log lines and spans correlate.
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

int64_t LogMonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - ProcessEpoch())
      .count();
}

uint64_t LogThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  int64_t micros = LogMonotonicMicros();
  uint64_t tid = LogThreadId();
  MutexLock lock(&g_log_mutex);
  std::fprintf(stderr, "[%s +%lld.%06llds tid=%08llx] %s\n", LevelTag(level),
               static_cast<long long>(micros / 1000000),
               static_cast<long long>(micros % 1000000),
               static_cast<unsigned long long>(tid & 0xffffffffu), msg.c_str());
}

}  // namespace hyperq::common
