#pragma once

#include <map>
#include <optional>

#include "common/sync.h"

/// \file sequenced_queue.h
/// Reordering hand-off: producers push items tagged with a dense sequence
/// number in any order; consumers pop items strictly in sequence order.
/// Used between the DataConverter pool (completion order is arbitrary) and
/// the FileWriter stage ("Converted chunks are ordered and passed to the
/// next stage", paper Section 5).

namespace hyperq::common {

template <typename T>
class SequencedQueue {
 public:
  /// Inserts an item with its sequence number. Returns false after Close().
  bool Push(uint64_t seq, T item) HQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (closed_) return false;
    items_.emplace(seq, std::move(item));
    cv_.NotifyAll();
    return true;
  }

  /// Pops the next item in sequence order; blocks until it arrives. Returns
  /// nullopt once closed and the next-in-order item can no longer arrive.
  std::optional<T> PopNext() HQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    for (;;) {
      auto it = items_.find(next_);
      if (it != items_.end()) {
        T item = std::move(it->second);
        items_.erase(it);
        ++next_;
        return item;
      }
      if (closed_) return std::nullopt;
      cv_.Wait(lock);
    }
  }

  /// No more pushes; consumers drain whatever is already in order.
  void Close() HQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    closed_ = true;
    cv_.NotifyAll();
  }

  size_t pending() const HQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_{LockRank::kQueue, "sequenced_queue"};
  CondVar cv_;
  std::map<uint64_t, T> items_ HQ_GUARDED_BY(mu_);
  uint64_t next_ HQ_GUARDED_BY(mu_) = 0;
  bool closed_ HQ_GUARDED_BY(mu_) = false;
};

}  // namespace hyperq::common
