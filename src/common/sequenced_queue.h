#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>

/// \file sequenced_queue.h
/// Reordering hand-off: producers push items tagged with a dense sequence
/// number in any order; consumers pop items strictly in sequence order.
/// Used between the DataConverter pool (completion order is arbitrary) and
/// the FileWriter stage ("Converted chunks are ordered and passed to the
/// next stage", paper Section 5).

namespace hyperq::common {

template <typename T>
class SequencedQueue {
 public:
  /// Inserts an item with its sequence number. Returns false after Close().
  bool Push(uint64_t seq, T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    items_.emplace(seq, std::move(item));
    cv_.notify_all();
    return true;
  }

  /// Pops the next item in sequence order; blocks until it arrives. Returns
  /// nullopt once closed and the next-in-order item can no longer arrive.
  std::optional<T> PopNext() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = items_.find(next_);
      if (it != items_.end()) {
        T item = std::move(it->second);
        items_.erase(it);
        ++next_;
        return item;
      }
      if (closed_) return std::nullopt;
      cv_.wait(lock);
    }
  }

  /// No more pushes; consumers drain whatever is already in order.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, T> items_;
  uint64_t next_ = 0;
  bool closed_ = false;
};

}  // namespace hyperq::common
