#include "common/bytes.h"

namespace hyperq::common {

template <typename U>
Result<U> ByteReader::ReadLE() {
  if (remaining() < sizeof(U)) {
    return Status::ProtocolError("byte reader underflow: need " + std::to_string(sizeof(U)) +
                                 " bytes, have " + std::to_string(remaining()));
  }
  U v = 0;
  for (size_t i = 0; i < sizeof(U); ++i) {
    v |= static_cast<U>(static_cast<U>(slice_[pos_ + i]) << (8 * i));
  }
  pos_ += sizeof(U);
  return v;
}

Result<uint8_t> ByteReader::ReadByte() { return ReadLE<uint8_t>(); }
Result<uint16_t> ByteReader::ReadU16() { return ReadLE<uint16_t>(); }
Result<uint32_t> ByteReader::ReadU32() { return ReadLE<uint32_t>(); }
Result<uint64_t> ByteReader::ReadU64() { return ReadLE<uint64_t>(); }

Result<int8_t> ByteReader::ReadI8() {
  HQ_ASSIGN_OR_RETURN(uint8_t v, ReadLE<uint8_t>());
  return static_cast<int8_t>(v);
}
Result<int16_t> ByteReader::ReadI16() {
  HQ_ASSIGN_OR_RETURN(uint16_t v, ReadLE<uint16_t>());
  return static_cast<int16_t>(v);
}
Result<int32_t> ByteReader::ReadI32() {
  HQ_ASSIGN_OR_RETURN(uint32_t v, ReadLE<uint32_t>());
  return static_cast<int32_t>(v);
}
Result<int64_t> ByteReader::ReadI64() {
  HQ_ASSIGN_OR_RETURN(uint64_t v, ReadLE<uint64_t>());
  return static_cast<int64_t>(v);
}
Result<double> ByteReader::ReadF64() {
  HQ_ASSIGN_OR_RETURN(uint64_t bits, ReadLE<uint64_t>());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<Slice> ByteReader::ReadSlice(size_t len) {
  if (remaining() < len) {
    return Status::ProtocolError("byte reader underflow reading slice of " + std::to_string(len) +
                                 " bytes, have " + std::to_string(remaining()));
  }
  Slice out = slice_.SubSlice(pos_, len);
  pos_ += len;
  return out;
}

Result<Slice> ByteReader::ReadLengthPrefixed16() {
  HQ_ASSIGN_OR_RETURN(uint16_t len, ReadU16());
  return ReadSlice(len);
}

Result<Slice> ByteReader::ReadLengthPrefixed32() {
  HQ_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  return ReadSlice(len);
}

Status ByteReader::Skip(size_t len) {
  if (remaining() < len) {
    return Status::ProtocolError("byte reader underflow skipping " + std::to_string(len));
  }
  pos_ += len;
  return Status::OK();
}

}  // namespace hyperq::common
