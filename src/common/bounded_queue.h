#pragma once

#include <deque>
#include <optional>

#include "common/sync.h"

/// \file bounded_queue.h
/// Blocking MPMC queue with a capacity bound and cooperative close semantics.
/// Used as the hand-off channel between pipeline stages (PXC -> DataConverter
/// -> FileWriter) in the acquisition pipeline.

namespace hyperq::common {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` == 0 means unbounded.
  explicit BoundedQueue(size_t capacity = 0) : capacity_(capacity) {}

  /// Blocks until there is room (or the queue is closed). Returns false if
  /// the queue was closed and the item was not enqueued.
  bool Push(T item) HQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!closed_ && capacity_ != 0 && items_.size() >= capacity_) {
      not_full_.Wait(lock);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) HQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and* drained.
  std::optional<T> Pop() HQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Closes the queue: pending Pops drain remaining items then return nullopt;
  /// subsequent Pushes fail.
  void Close() HQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  size_t size() const HQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

  bool closed() const HQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_{LockRank::kQueue, "bounded_queue"};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ HQ_GUARDED_BY(mu_);
  bool closed_ HQ_GUARDED_BY(mu_) = false;
};

}  // namespace hyperq::common
