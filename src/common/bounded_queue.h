#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

/// \file bounded_queue.h
/// Blocking MPMC queue with a capacity bound and cooperative close semantics.
/// Used as the hand-off channel between pipeline stages (PXC -> DataConverter
/// -> FileWriter) in the acquisition pipeline.

namespace hyperq::common {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` == 0 means unbounded.
  explicit BoundedQueue(size_t capacity = 0) : capacity_(capacity) {}

  /// Blocks until there is room (or the queue is closed). Returns false if
  /// the queue was closed and the item was not enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || capacity_ == 0 || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and* drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: pending Pops drain remaining items then return nullopt;
  /// subsequent Pushes fail.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hyperq::common
