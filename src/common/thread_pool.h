#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// Fixed-size worker pool. Pipeline stages that need bounded concurrency
/// (DataConverter workers, FileWriter workers) each own a pool.

namespace hyperq::common {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers immediately (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Blocks until every queued and running task has finished.
  void WaitIdle();

  /// Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  /// Tasks queued but not yet started.
  size_t queued() const;
  /// Workers currently running a task (utilization numerator for telemetry).
  size_t active() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace hyperq::common
