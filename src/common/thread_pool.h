#pragma once

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

/// \file thread_pool.h
/// Fixed-size worker pool. Pipeline stages that need bounded concurrency
/// (DataConverter workers, FileWriter workers) each own a pool.

namespace hyperq::common {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers immediately (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns false if the pool is shutting down.
  bool Submit(std::function<void()> task) HQ_EXCLUDES(mu_);

  /// Blocks until every queued and running task has finished.
  void WaitIdle() HQ_EXCLUDES(mu_);

  /// Stops accepting tasks, drains the queue, joins workers. Idempotent.
  void Shutdown() HQ_EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }
  /// Tasks queued but not yet started.
  size_t queued() const HQ_EXCLUDES(mu_);
  /// Workers currently running a task (utilization numerator for telemetry).
  size_t active() const HQ_EXCLUDES(mu_);

 private:
  void WorkerLoop() HQ_EXCLUDES(mu_);

  mutable Mutex mu_{LockRank::kPool, "thread_pool"};
  CondVar work_available_;
  CondVar idle_;
  std::deque<std::function<void()>> tasks_ HQ_GUARDED_BY(mu_);
  /// Immutable after the constructor returns (workers never touch it).
  std::vector<std::thread> threads_;
  size_t active_ HQ_GUARDED_BY(mu_) = 0;
  bool shutdown_ HQ_GUARDED_BY(mu_) = false;
};

}  // namespace hyperq::common
