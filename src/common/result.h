#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

/// \file result.h
/// Result<T>: a Status or a value, mirroring arrow::Result.

namespace hyperq::common {

/// Holds either a value of type T or an error Status.
///
/// Usage:
///   Result<int> ParsePort(std::string_view s);
///   HQ_ASSIGN_OR_RETURN(int port, ParsePort(text));
///
/// [[nodiscard]] at class scope for the same reason as Status: discarding a
/// Result drops both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Error constructor; `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok());
  }

  /// Value constructor.
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The contained value; undefined behaviour if !ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, or returns `alternative` when in error state.
  T ValueOr(T alternative) && {
    if (!ok()) return alternative;
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace hyperq::common
