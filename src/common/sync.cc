#include "common/sync.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>

/// Runtime half of the ranked lock hierarchy (see sync.h and DESIGN.md
/// "Lock hierarchy & deadlock detection"):
///
///  - a per-thread stack of held locks, maintained unconditionally (it is
///    what feeds the lock-order graph and costs a few stores per lock);
///  - the process-wide LockOrderGraph of observed rank-pair edges, also
///    always on — a 10x10 relaxed-atomic matrix;
///  - the abort-on-inversion validator, gated on a runtime flag that
///    defaults to the compile-time HQ_DEADLOCK_DETECT macro so sanitizer
///    presets get it by default and death tests can force it anywhere.
///
/// The abort path writes straight to stderr with fprintf: it must not
/// re-enter the logging layer (which takes its own kLogging mutex) while
/// reporting a locking bug.

namespace hyperq::common {

namespace {

#if defined(HQ_DEADLOCK_DETECT)
constexpr bool kDetectDefault = true;
#else
constexpr bool kDetectDefault = false;
#endif

std::atomic<bool> g_detect{kDetectDefault};

struct HeldLock {
  const void* mu = nullptr;
  LockRank rank = LockRank::kLogging;
  const char* name = nullptr;  // may be null
  const char* file = nullptr;
  unsigned line = 0;
};

/// Deep enough for any sane nesting (production depth is <= 4); overflow
/// degrades to not tracking the extra locks rather than aborting.
constexpr int kMaxHeldLocks = 16;

struct HeldStack {
  HeldLock locks[kMaxHeldLocks];
  int depth = 0;
};

thread_local HeldStack tls_held;

void PrintHeld(const HeldStack& stack) {
  for (int i = stack.depth - 1; i >= 0; --i) {
    const HeldLock& h = stack.locks[i];
    std::fprintf(stderr, "  held[%d]: \"%s\" (rank %s) acquired at %s:%u\n", i,
                 h.name != nullptr ? h.name : "<unnamed>", LockRankName(h.rank), h.file, h.line);
  }
}

[[noreturn]] void AbortOnViolation(const char* what, const void* mu, LockRank rank,
                                   const char* name, const char* file, unsigned line) {
  (void)mu;
  std::fprintf(stderr,
               "hyperq lock hierarchy violation: %s \"%s\" (rank %s) at %s:%u\n"
               "while holding (innermost first):\n",
               what, name != nullptr ? name : "<unnamed>", LockRankName(rank), file, line);
  PrintHeld(tls_held);
  std::fprintf(stderr,
               "lock ranks must strictly decrease toward leaf locks; take same-rank pairs "
               "through MutexLock2 (see DESIGN.md \"Lock hierarchy & deadlock detection\")\n");
  std::abort();
}

}  // namespace

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kLogging:
      return "kLogging";
    case LockRank::kObs:
      return "kObs";
    case LockRank::kQueue:
      return "kQueue";
    case LockRank::kPool:
      return "kPool";
    case LockRank::kStore:
      return "kStore";
    case LockRank::kCatalog:
      return "kCatalog";
    case LockRank::kJob:
      return "kJob";
    case LockRank::kCdw:
      return "kCdw";
    case LockRank::kServer:
      return "kServer";
    case LockRank::kLifecycle:
      return "kLifecycle";
  }
  return "k?";
}

const double* LockWaitBucketBounds() {
  // Must mirror obs::Histogram::BucketBounds() — the 1µs..2min 1-2.5-5
  // ladder — so the exported per-rank wait histograms share the layout every
  // exporter already understands. tests/common/sync_test.cc pins the two
  // arrays together.
  static const double kBounds[kNumLockWaitBuckets - 1] = {
      1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
      1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
      1.0,  2.5,    5.0,  10.0, 30.0,   60.0, 120.0};
  return kBounds;
}

LockOrderGraph& LockOrderGraph::Global() {
  static LockOrderGraph graph;
  return graph;
}

void LockOrderGraph::RecordEdge(LockRank holder, LockRank acquired) {
  edges_[static_cast<int>(holder)][static_cast<int>(acquired)].fetch_add(
      1, std::memory_order_relaxed);
}

void LockOrderGraph::RecordNameEdge(const char* holder, LockRank holder_rank,
                                    const char* acquired, LockRank acquired_rank) {
  if (holder == nullptr) holder = LockRankName(holder_rank);
  if (acquired == nullptr) acquired = LockRankName(acquired_rank);
  const uintptr_t h = reinterpret_cast<uintptr_t>(holder) >> 3;
  const uintptr_t a = reinterpret_cast<uintptr_t>(acquired) >> 3;
  const size_t start = static_cast<size_t>(h * 1315423911u ^ a * 2654435761u) % kNameSlots;
  for (int probe = 0; probe < kNameProbeLimit; ++probe) {
    NameSlot& slot = name_slots_[(start + probe) % kNameSlots];
    const char* sh = slot.holder.load(std::memory_order_acquire);
    if (sh == nullptr) {
      const char* expected = nullptr;
      sh = slot.holder.compare_exchange_strong(expected, holder, std::memory_order_acq_rel)
               ? holder
               : expected;
    }
    if (sh != holder) continue;
    const char* sa = slot.acquired.load(std::memory_order_acquire);
    if (sa == nullptr) {
      const char* expected = nullptr;
      sa = slot.acquired.compare_exchange_strong(expected, acquired, std::memory_order_acq_rel)
               ? acquired
               : expected;
    }
    if (sa != acquired) continue;
    slot.count.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Table exhausted around this hash neighbourhood: count the loss instead
  // of blocking or growing — the rank-level edge was already recorded.
  dropped_name_edges_.fetch_add(1, std::memory_order_relaxed);
}

void LockOrderGraph::RecordContention(LockRank rank) {
  contention_[static_cast<int>(rank)].fetch_add(1, std::memory_order_relaxed);
}

void LockOrderGraph::RecordWait(LockRank rank, uint64_t wait_nanos) {
  const int r = static_cast<int>(rank);
  const double seconds = static_cast<double>(wait_nanos) * 1e-9;
  const double* bounds = LockWaitBucketBounds();
  int bucket = 0;
  while (bucket < kNumLockWaitBuckets - 1 && seconds > bounds[bucket]) ++bucket;
  wait_buckets_[r][bucket].fetch_add(1, std::memory_order_relaxed);
  wait_count_[r].fetch_add(1, std::memory_order_relaxed);
  wait_nanos_[r].fetch_add(wait_nanos, std::memory_order_relaxed);
}

LockOrderSnapshot LockOrderGraph::Snapshot() const {
  LockOrderSnapshot snap;
  bool adj[kNumLockRanks][kNumLockRanks] = {};
  for (int from = 0; from < kNumLockRanks; ++from) {
    snap.contention[from] = contention_[from].load(std::memory_order_relaxed);
    snap.wait_count[from] = wait_count_[from].load(std::memory_order_relaxed);
    snap.wait_sum_seconds[from] =
        static_cast<double>(wait_nanos_[from].load(std::memory_order_relaxed)) * 1e-9;
    for (int b = 0; b < kNumLockWaitBuckets; ++b) {
      snap.wait_buckets[from][b] = wait_buckets_[from][b].load(std::memory_order_relaxed);
    }
    for (int to = 0; to < kNumLockRanks; ++to) {
      uint64_t count = edges_[from][to].load(std::memory_order_relaxed);
      if (count == 0) continue;
      adj[from][to] = true;
      snap.edges.push_back(
          {static_cast<LockRank>(from), static_cast<LockRank>(to), count});
    }
  }
  // Name-pair edges: merge slots by string value (the same literal can be
  // claimed at different addresses across TUs) into (holder, acquired) order.
  std::map<std::pair<std::string, std::string>, uint64_t> named;
  for (const NameSlot& slot : name_slots_) {
    uint64_t count = slot.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    const char* h = slot.holder.load(std::memory_order_acquire);
    const char* a = slot.acquired.load(std::memory_order_acquire);
    if (h == nullptr || a == nullptr) continue;
    named[{h, a}] += count;
  }
  for (auto& [pair, count] : named) {
    snap.name_edges.push_back({pair.first, pair.second, count});
  }
  snap.dropped_name_edges = dropped_name_edges_.load(std::memory_order_relaxed);

  // Cycle search by DFS with an explicit path, so the first cycle found can
  // be reported as a witness. Self-edges (a rank nested inside itself
  // outside MutexLock2) count as cycles.
  int color[kNumLockRanks] = {};  // 0 white, 1 on path, 2 done
  int path[kNumLockRanks + 1];
  int path_len = 0;
  auto dfs = [&](auto&& self, int node) -> bool {
    color[node] = 1;
    path[path_len++] = node;
    for (int next = 0; next < kNumLockRanks; ++next) {
      if (!adj[node][next]) continue;
      if (color[next] == 1) {
        // Unwind the recorded path back to `next` to extract the cycle.
        int start = 0;
        while (path[start] != next) ++start;
        for (int i = start; i < path_len; ++i) {
          snap.cycle.push_back(static_cast<LockRank>(path[i]));
        }
        snap.cycle.push_back(static_cast<LockRank>(next));
        return true;
      }
      if (color[next] == 0 && self(self, next)) return true;
    }
    color[node] = 2;
    --path_len;
    return false;
  };
  for (int node = 0; node < kNumLockRanks && !snap.has_cycle; ++node) {
    if (color[node] == 0 && dfs(dfs, node)) snap.has_cycle = true;
  }
  return snap;
}

void LockOrderGraph::ResetForTesting() {
  for (int from = 0; from < kNumLockRanks; ++from) {
    contention_[from].store(0, std::memory_order_relaxed);
    wait_count_[from].store(0, std::memory_order_relaxed);
    wait_nanos_[from].store(0, std::memory_order_relaxed);
    for (int b = 0; b < kNumLockWaitBuckets; ++b) {
      wait_buckets_[from][b].store(0, std::memory_order_relaxed);
    }
    for (int to = 0; to < kNumLockRanks; ++to) {
      edges_[from][to].store(0, std::memory_order_relaxed);
    }
  }
  for (NameSlot& slot : name_slots_) {
    slot.holder.store(nullptr, std::memory_order_relaxed);
    slot.acquired.store(nullptr, std::memory_order_relaxed);
    slot.count.store(0, std::memory_order_relaxed);
  }
  dropped_name_edges_.store(0, std::memory_order_relaxed);
}

void SetDeadlockDetectForTesting(bool enabled) {
  g_detect.store(enabled, std::memory_order_relaxed);
}

bool DeadlockDetectEnabled() { return g_detect.load(std::memory_order_relaxed); }

namespace lock_internal {

void OnLockAttempt(const void* mu, LockRank rank, const char* name, const char* file,
                   unsigned line, bool allow_equal_top) {
  HeldStack& stack = tls_held;
  if (stack.depth == 0) return;
  const HeldLock& top = stack.locks[stack.depth - 1];
  // Record the edge first: the graph is the production-visible artifact and
  // must capture the ordering even when the validator is off. The sanctioned
  // MutexLock2 equal-rank leg is skipped — its internal address ordering
  // makes the pair safe, and a self-edge would read as a cycle.
  if (!(allow_equal_top && rank == top.rank)) {
    LockOrderGraph::Global().RecordEdge(top.rank, rank);
    LockOrderGraph::Global().RecordNameEdge(top.name, top.rank, name, rank);
  }
  if (!DeadlockDetectEnabled()) return;
  for (int i = 0; i < stack.depth; ++i) {
    if (stack.locks[i].mu == mu) {
      AbortOnViolation("re-acquiring already-held", mu, rank, name, file, line);
    }
  }
  bool ok = allow_equal_top ? static_cast<int>(rank) <= static_cast<int>(top.rank)
                            : static_cast<int>(rank) < static_cast<int>(top.rank);
  if (!ok) {
    AbortOnViolation("acquiring", mu, rank, name, file, line);
  }
}

void OnLockAcquired(const void* mu, LockRank rank, const char* name, const char* file,
                    unsigned line) {
  HeldStack& stack = tls_held;
  if (stack.depth >= kMaxHeldLocks) return;
  stack.locks[stack.depth++] = {mu, rank, name, file, line};
}

void OnUnlock(const void* mu) {
  HeldStack& stack = tls_held;
  for (int i = stack.depth - 1; i >= 0; --i) {
    if (stack.locks[i].mu != mu) continue;
    for (int j = i; j + 1 < stack.depth; ++j) stack.locks[j] = stack.locks[j + 1];
    --stack.depth;
    return;
  }
}

void OnContended(LockRank rank) { LockOrderGraph::Global().RecordContention(rank); }

void OnWaited(LockRank rank, uint64_t wait_nanos) {
  LockOrderGraph::Global().RecordWait(rank, wait_nanos);
}

int HeldDepthForTesting() { return tls_held.depth; }

}  // namespace lock_internal

}  // namespace hyperq::common
