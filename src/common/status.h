#pragma once

#include <string>
#include <string_view>
#include <utility>

/// \file status.h
/// Arrow/RocksDB-style Status type used as the error-handling currency across
/// the entire library. No exceptions cross public API boundaries.

namespace hyperq::common {

/// Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalid,              ///< invalid argument or malformed input
  kIOError,              ///< (simulated) storage / network failure
  kNotFound,             ///< missing object, table, key, ...
  kAlreadyExists,        ///< duplicate object on create
  kNotImplemented,       ///< unsupported feature reached
  kProtocolError,        ///< wire-protocol violation (framing, parcels)
  kParseError,           ///< SQL / ETL-script / data parse failure
  kTypeError,            ///< type mismatch or unsupported coercion
  kConversionError,      ///< data value failed conversion (e.g. bad DATE)
  kConstraintViolation,  ///< uniqueness or other integrity constraint
  kResourceExhausted,    ///< memory budget / credit pool misuse
  kCancelled,            ///< operation aborted by shutdown or caller
  kInternal,             ///< invariant breach; indicates a bug
};

/// Returns a stable human-readable name for a status code ("Invalid", ...).
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation: either OK or a code plus message.
///
/// Cheap to move; OK carries no allocation. Follow the Arrow idiom:
///   HQ_RETURN_NOT_OK(DoThing());
///   Status s = ...; if (!s.ok()) return s;
///
/// [[nodiscard]] at class scope: a dropped Status is a swallowed error, so
/// every function returning one must have its result checked (or explicitly
/// voided with a comment saying why).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  /// Success singleton-style factory.
  static Status OK() { return Status(); }

  static Status Invalid(std::string msg) { return {StatusCode::kInvalid, std::move(msg)}; }
  static Status IOError(std::string msg) { return {StatusCode::kIOError, std::move(msg)}; }
  static Status NotFound(std::string msg) { return {StatusCode::kNotFound, std::move(msg)}; }
  static Status AlreadyExists(std::string msg) {
    return {StatusCode::kAlreadyExists, std::move(msg)};
  }
  static Status NotImplemented(std::string msg) {
    return {StatusCode::kNotImplemented, std::move(msg)};
  }
  static Status ProtocolError(std::string msg) {
    return {StatusCode::kProtocolError, std::move(msg)};
  }
  static Status ParseError(std::string msg) { return {StatusCode::kParseError, std::move(msg)}; }
  static Status TypeError(std::string msg) { return {StatusCode::kTypeError, std::move(msg)}; }
  static Status ConversionError(std::string msg) {
    return {StatusCode::kConversionError, std::move(msg)};
  }
  static Status ConstraintViolation(std::string msg) {
    return {StatusCode::kConstraintViolation, std::move(msg)};
  }
  static Status ResourceExhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status Cancelled(std::string msg) { return {StatusCode::kCancelled, std::move(msg)}; }
  static Status Internal(std::string msg) { return {StatusCode::kInternal, std::move(msg)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalid() const { return code_ == StatusCode::kInvalid; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsProtocolError() const { return code_ == StatusCode::kProtocolError; }
  bool IsConversionError() const { return code_ == StatusCode::kConversionError; }
  bool IsConstraintViolation() const { return code_ == StatusCode::kConstraintViolation; }
  bool IsResourceExhausted() const { return code_ == StatusCode::kResourceExhausted; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prefixes the message with additional context, keeping the code.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

}  // namespace hyperq::common

/// Propagates a non-OK Status to the caller.
#define HQ_RETURN_NOT_OK(expr)                         \
  do {                                                 \
    ::hyperq::common::Status _st = (expr);             \
    if (!_st.ok()) return _st;                         \
  } while (0)

#define HQ_CONCAT_IMPL(a, b) a##b
#define HQ_CONCAT(a, b) HQ_CONCAT_IMPL(a, b)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs` (which may be a declaration).
#define HQ_ASSIGN_OR_RETURN(lhs, expr)                               \
  HQ_ASSIGN_OR_RETURN_IMPL(HQ_CONCAT(_hq_result_, __LINE__), lhs, expr)

#define HQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).ValueOrDie();
