#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file string_util.h
/// Small string helpers shared by the SQL lexer, the ETL-script lexer, and
/// the vartext/CSV data codecs.

namespace hyperq::common {

/// ASCII upper/lower (locale-independent; SQL identifiers are ASCII).
std::string ToUpper(std::string_view s);
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Removes leading and trailing whitespace/space characters.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);
/// SQL TRIM semantics: strips only ' ' by default.
std::string TrimSpaces(std::string_view s);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a delimiter.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string Sprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hyperq::common
