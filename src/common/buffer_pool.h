#pragma once

#include <cstdint>
#include <vector>

#include "common/sync.h"

/// \file buffer_pool.h
/// Recycles large byte buffers across pipeline stages so the hot load path
/// (chunk receipt -> conversion -> sequenced hand-off -> FileWriter) does not
/// pay one malloc/free pair per chunk. The pool is node-wide (like the
/// CreditManager): converters acquire CSV output buffers and chunk payload
/// copies here, writers return them after the bytes reach disk.
///
/// Sizing follows observed traffic: the pool tracks a running mean of
/// requested buffer sizes and refuses to retain buffers far above it, so one
/// pathologically large chunk cannot pin its high-water allocation forever.
/// Retention is further bounded by max_buffers / max_bytes.
///
/// Thread-safe. Acquire/Release take one short mutex hold each; memory
/// allocation and deallocation happen outside the lock.

namespace hyperq::common {

struct BufferPoolOptions {
  /// Maximum number of free buffers retained.
  size_t max_buffers = 64;
  /// Maximum total capacity (bytes) retained across free buffers.
  size_t max_bytes = 64u << 20;
  /// A returned buffer whose capacity exceeds `oversize_factor` times the
  /// observed mean acquire size is dropped instead of pooled.
  size_t oversize_factor = 8;
};

/// Monotonic usage counters plus the current retained footprint; readable at
/// any time (exported as obs gauges by the HyperQServer).
struct BufferPoolStats {
  uint64_t hits = 0;            ///< Acquire served from the free list
  uint64_t misses = 0;          ///< Acquire had to allocate fresh
  uint64_t recycled = 0;        ///< Release kept the buffer
  uint64_t dropped = 0;         ///< Release discarded the buffer (bounds)
  uint64_t buffers_pooled = 0;  ///< current free-list length
  uint64_t bytes_pooled = 0;    ///< current free-list capacity sum
  uint64_t mean_acquire_bytes = 0;
};

class BufferPool {
 public:
  explicit BufferPool(BufferPoolOptions options = {}) : options_(options) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an empty vector with capacity >= `reserve_hint`, reusing a
  /// pooled buffer when one is large enough (smallest sufficient wins, so
  /// big buffers stay available for big requests).
  std::vector<uint8_t> Acquire(size_t reserve_hint) HQ_EXCLUDES(mu_) {
    std::vector<uint8_t> buffer;
    bool hit = false;
    {
      MutexLock lock(&mu_);
      acquire_bytes_sum_ += reserve_hint;
      ++acquire_count_;
      size_t best = free_.size();
      for (size_t i = 0; i < free_.size(); ++i) {
        if (free_[i].capacity() < reserve_hint) continue;
        if (best == free_.size() || free_[i].capacity() < free_[best].capacity()) best = i;
      }
      if (best != free_.size()) {
        bytes_pooled_ -= free_[best].capacity();
        buffer = std::move(free_[best]);
        free_[best] = std::move(free_.back());
        free_.pop_back();
        hit = true;
        ++hits_;
      } else {
        ++misses_;
      }
    }
    buffer.clear();  // keeps capacity
    if (!hit) buffer.reserve(reserve_hint);
    return buffer;
  }

  /// Returns a buffer to the pool (or frees it when retention bounds or the
  /// oversize guard say no). Zero-capacity buffers are ignored.
  void Release(std::vector<uint8_t> buffer) HQ_EXCLUDES(mu_) {
    if (buffer.capacity() == 0) return;
    // `buffer` is destroyed outside the lock unless the pool adopts it.
    std::vector<uint8_t> reject;
    MutexLock lock(&mu_);
    uint64_t mean = acquire_count_ == 0 ? 0 : acquire_bytes_sum_ / acquire_count_;
    bool oversize = mean != 0 && buffer.capacity() > mean * options_.oversize_factor;
    if (oversize || free_.size() >= options_.max_buffers ||
        bytes_pooled_ + buffer.capacity() > options_.max_bytes) {
      ++dropped_;
      reject = std::move(buffer);
      return;
    }
    buffer.clear();
    bytes_pooled_ += buffer.capacity();
    free_.push_back(std::move(buffer));
    ++recycled_;
  }

  BufferPoolStats stats() const HQ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    BufferPoolStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.recycled = recycled_;
    s.dropped = dropped_;
    s.buffers_pooled = free_.size();
    s.bytes_pooled = bytes_pooled_;
    s.mean_acquire_bytes = acquire_count_ == 0 ? 0 : acquire_bytes_sum_ / acquire_count_;
    return s;
  }

  const BufferPoolOptions& options() const { return options_; }

 private:
  const BufferPoolOptions options_;
  mutable Mutex mu_{LockRank::kPool, "buffer_pool"};
  std::vector<std::vector<uint8_t>> free_ HQ_GUARDED_BY(mu_);
  size_t bytes_pooled_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t hits_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t misses_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t recycled_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t acquire_bytes_sum_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t acquire_count_ HQ_GUARDED_BY(mu_) = 0;
};

}  // namespace hyperq::common
