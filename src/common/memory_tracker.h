#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

/// \file memory_tracker.h
/// Global accounting of in-flight pipeline memory (buffered data chunks).
///
/// The paper reports that with the CreditManager pool pushed to one million
/// credits, Hyper-Q "ran out of memory and crashed" (Section 9, Figure 10
/// discussion). We reproduce that failure mode deterministically: stages
/// reserve bytes against a configurable budget and an exceeded budget
/// surfaces as Status::ResourceExhausted instead of an actual crash.
///
/// Deliberately lock-free: every member is an atomic (or const), so there is
/// no mutex to annotate and no capability for the thread-safety analysis to
/// track. Reserve() tolerates transient over-count between the fetch_add and
/// the budget check; the fetch_sub rollback keeps `used_` eventually exact.

namespace hyperq::common {

class MemoryTracker {
 public:
  /// `budget_bytes` == 0 disables enforcement (accounting still runs).
  explicit MemoryTracker(uint64_t budget_bytes = 0) : budget_(budget_bytes) {}

  /// Reserves `bytes`; fails when the budget would be exceeded.
  Status Reserve(uint64_t bytes) {
    uint64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak && !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
    if (budget_ != 0 && now > budget_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "memory budget exceeded: in-flight " + std::to_string(now) + " bytes > budget " +
          std::to_string(budget_) + " bytes (simulated out-of-memory)");
    }
    return Status::OK();
  }

  /// Releases previously reserved bytes.
  void Release(uint64_t bytes) { used_.fetch_sub(bytes, std::memory_order_relaxed); }

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t budget() const { return budget_; }

 private:
  const uint64_t budget_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
};

/// RAII reservation against a MemoryTracker.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(MemoryTracker* tracker, uint64_t bytes) : tracker_(tracker), bytes_(bytes) {}
  MemoryReservation(MemoryReservation&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      ReleaseNow();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ~MemoryReservation() { ReleaseNow(); }

  void ReleaseNow() {
    if (tracker_ != nullptr && bytes_ != 0) tracker_->Release(bytes_);
    tracker_ = nullptr;
    bytes_ = 0;
  }

 private:
  MemoryTracker* tracker_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace hyperq::common
