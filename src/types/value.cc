#include "types/value.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <functional>

#include "common/string_util.h"

namespace hyperq::types {

using common::Result;
using common::Status;

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_boolean()) return boolean() ? "TRUE" : "FALSE";
  if (is_int()) return std::to_string(int_value());
  if (is_float()) {
    std::string s = common::Sprintf("%.17g", float_value());
    return s;
  }
  if (is_decimal()) return decimal_value().ToString();
  if (is_string()) return "'" + string_value() + "'";
  if (is_date()) return FormatDateIso(date_days());
  return FormatTimestampIso(timestamp_micros());
}

size_t Value::Hash() const {
  std::size_t seed = payload_.index() * 0x9E3779B97F4A7C15ULL;
  auto mix = [&seed](size_t h) { seed ^= h + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2); };
  if (is_null()) return seed;
  if (is_boolean()) {
    mix(std::hash<bool>{}(boolean()));
  } else if (is_int()) {
    mix(std::hash<int64_t>{}(int_value()));
  } else if (is_float()) {
    mix(std::hash<double>{}(float_value()));
  } else if (is_decimal()) {
    // Normalize to scale-invariant representation: hash value as double.
    mix(std::hash<double>{}(decimal_value().ToDouble()));
  } else if (is_string()) {
    mix(std::hash<std::string>{}(string_value()));
  } else if (is_date()) {
    mix(std::hash<int32_t>{}(date_days()));
  } else {
    mix(std::hash<int64_t>{}(timestamp_micros()));
  }
  return seed;
}

namespace {
int CompareDoubles(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }
int CompareInts(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

// Rank for cross-family comparisons (deterministic total order).
int FamilyRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_boolean()) return 1;
  if (v.is_int() || v.is_float() || v.is_decimal()) return 2;
  if (v.is_string()) return 3;
  if (v.is_date()) return 4;
  return 5;
}

bool IsNumericValue(const Value& v) { return v.is_int() || v.is_float() || v.is_decimal(); }

double NumericAsDouble(const Value& v) {
  if (v.is_int()) return static_cast<double>(v.int_value());
  if (v.is_float()) return v.float_value();
  return v.decimal_value().ToDouble();
}
}  // namespace

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (IsNumericValue(*this) && IsNumericValue(other)) {
    if (is_int() && other.is_int()) return CompareInts(int_value(), other.int_value());
    if (is_decimal() && other.is_decimal()) return decimal_value().Compare(other.decimal_value());
    return CompareDoubles(NumericAsDouble(*this), NumericAsDouble(other));
  }
  int ra = FamilyRank(*this);
  int rb = FamilyRank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (is_boolean()) return CompareInts(boolean(), other.boolean());
  if (is_string()) {
    int c = string_value().compare(other.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_date()) return CompareInts(date_days(), other.date_days());
  return CompareInts(timestamp_micros(), other.timestamp_micros());
}

namespace {

Result<int64_t> ParseInt(std::string_view text) {
  std::string_view t = common::TrimView(text);
  if (t.empty()) return Status::ConversionError("cannot convert empty string to integer");
  errno = 0;
  char* end = nullptr;
  std::string buf(t);
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) {
    return Status::ConversionError("invalid integer literal: '" + std::string(text) + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseFloat(std::string_view text) {
  std::string_view t = common::TrimView(text);
  if (t.empty()) return Status::ConversionError("cannot convert empty string to float");
  errno = 0;
  char* end = nullptr;
  std::string buf(t);
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) {
    return Status::ConversionError("invalid float literal: '" + std::string(text) + "'");
  }
  return v;
}

Result<Value> CheckedIntRange(int64_t v, const TypeDesc& target) {
  int64_t lo = INT64_MIN;
  int64_t hi = INT64_MAX;
  switch (target.id) {
    case TypeId::kInt8:
      lo = -128;
      hi = 127;
      break;
    case TypeId::kInt16:
      lo = INT16_MIN;
      hi = INT16_MAX;
      break;
    case TypeId::kInt32:
      lo = INT32_MIN;
      hi = INT32_MAX;
      break;
    case TypeId::kInt64:
    // Non-integer targets keep the historical behaviour (full int64 range,
    // the caller has already established the value is integral).
    case TypeId::kBoolean:
    case TypeId::kFloat64:
    case TypeId::kDecimal:
    case TypeId::kChar:
    case TypeId::kVarchar:
    case TypeId::kDate:
    case TypeId::kTimestamp:
      lo = INT64_MIN;
      hi = INT64_MAX;
      break;
  }
  if (v < lo || v > hi) {
    return Status::ConversionError("integer value " + std::to_string(v) + " out of range for " +
                                   target.ToString());
  }
  return Value::Int(v);
}

Result<Value> CastStringTo(const std::string& s, const TypeDesc& target, std::string_view format) {
  switch (target.id) {
    case TypeId::kBoolean: {
      std::string up = common::ToUpper(common::TrimView(s));
      if (up == "TRUE" || up == "T" || up == "1") return Value::Boolean(true);
      if (up == "FALSE" || up == "F" || up == "0") return Value::Boolean(false);
      return Status::ConversionError("invalid boolean literal: '" + s + "'");
    }
    case TypeId::kInt8:
    case TypeId::kInt16:
    case TypeId::kInt32:
    case TypeId::kInt64: {
      HQ_ASSIGN_OR_RETURN(int64_t v, ParseInt(s));
      return CheckedIntRange(v, target);
    }
    case TypeId::kFloat64: {
      HQ_ASSIGN_OR_RETURN(double v, ParseFloat(s));
      return Value::Float(v);
    }
    case TypeId::kDecimal: {
      HQ_ASSIGN_OR_RETURN(Decimal d, Decimal::Parse(common::Trim(s), target.scale));
      return Value::Dec(d);
    }
    case TypeId::kDate: {
      std::string_view fmt = format.empty() ? std::string_view("YYYY-MM-DD") : format;
      HQ_ASSIGN_OR_RETURN(DateDays days, ParseDate(s, fmt));
      return Value::Date(days);
    }
    case TypeId::kTimestamp: {
      HQ_ASSIGN_OR_RETURN(TimestampMicros ts, ParseTimestampIso(s));
      return Value::Timestamp(ts);
    }
    case TypeId::kChar:
    case TypeId::kVarchar:
      return Status::Internal("string-to-string cast handled by caller");
  }
  return Status::TypeError("unsupported cast target");
}

Result<Value> FitString(std::string s, const TypeDesc& target) {
  if (target.length > 0 && static_cast<int32_t>(s.size()) > target.length) {
    // Legacy semantics: trailing blanks may be truncated silently; other
    // overflow is an error.
    std::string trimmed = s;
    while (!trimmed.empty() && trimmed.back() == ' ') trimmed.pop_back();
    if (static_cast<int32_t>(trimmed.size()) > target.length) {
      return Status::ConversionError("string value of length " + std::to_string(s.size()) +
                                     " exceeds " + target.ToString());
    }
    s = std::move(trimmed);
  }
  if (target.id == TypeId::kChar && target.length > 0) {
    s.resize(static_cast<size_t>(target.length), ' ');
  }
  return Value::String(std::move(s));
}

std::string ValueToPlainText(const Value& v) {
  if (v.is_boolean()) return v.boolean() ? "TRUE" : "FALSE";
  if (v.is_int()) return std::to_string(v.int_value());
  if (v.is_float()) return common::Sprintf("%.17g", v.float_value());
  if (v.is_decimal()) return v.decimal_value().ToString();
  if (v.is_string()) return v.string_value();
  if (v.is_date()) return FormatDateIso(v.date_days());
  return FormatTimestampIso(v.timestamp_micros());
}

}  // namespace

Result<Value> CastValue(const Value& v, const TypeDesc& target, std::string_view format) {
  if (v.is_null()) return Value::Null();

  if (IsString(target.id)) {
    if (v.is_string()) return FitString(v.string_value(), target);
    if (v.is_date() && !format.empty()) {
      HQ_ASSIGN_OR_RETURN(std::string text, FormatDate(v.date_days(), format));
      return FitString(std::move(text), target);
    }
    return FitString(ValueToPlainText(v), target);
  }

  if (v.is_string()) return CastStringTo(v.string_value(), target, format);

  switch (target.id) {
    case TypeId::kBoolean:
      if (v.is_boolean()) return v;
      if (v.is_int()) return Value::Boolean(v.int_value() != 0);
      return Status::TypeError("cannot cast " + v.ToString() + " to BOOLEAN");
    case TypeId::kInt8:
    case TypeId::kInt16:
    case TypeId::kInt32:
    case TypeId::kInt64: {
      if (v.is_int()) return CheckedIntRange(v.int_value(), target);
      if (v.is_boolean()) return Value::Int(v.boolean() ? 1 : 0);
      if (v.is_float()) {
        double d = v.float_value();
        if (!std::isfinite(d) || d < -9.3e18 || d > 9.3e18) {
          return Status::ConversionError("float out of integer range");
        }
        return CheckedIntRange(static_cast<int64_t>(std::llround(d)), target);
      }
      if (v.is_decimal()) return CheckedIntRange(v.decimal_value().ToInt64(), target);
      if (v.is_date()) return CheckedIntRange(v.date_days(), target);
      return Status::TypeError("cannot cast " + v.ToString() + " to " + target.ToString());
    }
    case TypeId::kFloat64: {
      if (v.is_float()) return v;
      if (v.is_int()) return Value::Float(static_cast<double>(v.int_value()));
      if (v.is_decimal()) return Value::Float(v.decimal_value().ToDouble());
      return Status::TypeError("cannot cast " + v.ToString() + " to FLOAT");
    }
    case TypeId::kDecimal: {
      if (v.is_decimal()) return v.decimal_value().Rescale(target.scale).ok()
                                     ? Value::Dec(v.decimal_value().Rescale(target.scale).ValueOrDie())
                                     : Result<Value>(Status::ConversionError("decimal rescale overflow"));
      if (v.is_int()) return Value::Dec(Decimal::FromInt64(v.int_value(), 0));
      if (v.is_float()) {
        HQ_ASSIGN_OR_RETURN(Decimal d, Decimal::FromDouble(v.float_value(), target.scale));
        return Value::Dec(d);
      }
      return Status::TypeError("cannot cast " + v.ToString() + " to DECIMAL");
    }
    case TypeId::kDate: {
      if (v.is_date()) return v;
      if (v.is_timestamp()) {
        int64_t days = v.timestamp_micros() / 86400000000LL;
        if (v.timestamp_micros() < 0 && v.timestamp_micros() % 86400000000LL != 0) --days;
        return Value::Date(static_cast<DateDays>(days));
      }
      return Status::TypeError("cannot cast " + v.ToString() + " to DATE");
    }
    case TypeId::kTimestamp: {
      if (v.is_timestamp()) return v;
      if (v.is_date()) return Value::Timestamp(static_cast<int64_t>(v.date_days()) * 86400000000LL);
      return Status::TypeError("cannot cast " + v.ToString() + " to TIMESTAMP");
    }
    case TypeId::kChar:
    case TypeId::kVarchar:
      break;  // handled above
  }
  return Status::TypeError("unsupported cast to " + target.ToString());
}

std::string ValueToCdwText(const Value& v) {
  if (v.is_boolean()) return v.boolean() ? "1" : "0";
  return ValueToPlainText(v);
}

}  // namespace hyperq::types
