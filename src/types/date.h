#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

/// \file date.h
/// Proleptic-Gregorian date arithmetic plus the legacy EDW FORMAT-clause
/// date patterns. The legacy dialect writes
///   CAST(:JOIN_DATE AS DATE FORMAT 'YYYY-MM-DD')
/// and displays dates as YY/MM/DD by default (cf. Figure 5 of the paper);
/// the CDW dialect uses TO_DATE(expr, 'YYYY-MM-DD').

namespace hyperq::types {

/// Days since the Unix epoch 1970-01-01.
using DateDays = int32_t;
/// Microseconds since the Unix epoch.
using TimestampMicros = int64_t;

/// Calendar components of a date.
struct YearMonthDay {
  int32_t year;
  int32_t month;  // 1..12
  int32_t day;    // 1..31
};

/// True if `y/m/d` is a valid proleptic Gregorian calendar day.
bool IsValidDate(int32_t y, int32_t m, int32_t d);

/// Converts calendar components to epoch days (validated).
common::Result<DateDays> DaysFromYmd(int32_t y, int32_t m, int32_t d);

/// Converts epoch days back to calendar components.
YearMonthDay YmdFromDays(DateDays days);

/// Parses text against a legacy FORMAT pattern. Supported tokens: YYYY, YY,
/// MM, DD, and literal separator characters ('-', '/', '.', ' ', ...). A
/// pattern without separators (e.g. YYYYMMDD) is positional. Two-digit years
/// are interpreted as 1930..2029 (legacy EDW century window).
common::Result<DateDays> ParseDate(std::string_view text, std::string_view format);

/// Formats epoch days according to a legacy FORMAT pattern.
common::Result<std::string> FormatDate(DateDays days, std::string_view format);

/// Legacy default display format (YY/MM/DD).
std::string FormatDateLegacyDefault(DateDays days);
/// ISO format YYYY-MM-DD used by the CDW dialect.
std::string FormatDateIso(DateDays days);

/// Parses 'YYYY-MM-DD HH:MI:SS[.FFFFFF]' into epoch microseconds.
common::Result<TimestampMicros> ParseTimestampIso(std::string_view text);
/// Formats epoch micros as 'YYYY-MM-DD HH:MI:SS.FFFFFF'.
std::string FormatTimestampIso(TimestampMicros micros);

}  // namespace hyperq::types
