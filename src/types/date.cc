#include "types/date.h"

#include <cctype>

#include "common/string_util.h"

namespace hyperq::types {

using common::Result;
using common::Status;

namespace {
constexpr int kDaysPerMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

bool IsLeap(int32_t y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

// Howard Hinnant's days_from_civil.
int64_t DaysFromCivil(int32_t y, int32_t m, int32_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}
}  // namespace

bool IsValidDate(int32_t y, int32_t m, int32_t d) {
  if (y < 1 || y > 9999 || m < 1 || m > 12 || d < 1) return false;
  int max_d = kDaysPerMonth[m - 1];
  if (m == 2 && IsLeap(y)) max_d = 29;
  return d <= max_d;
}

Result<DateDays> DaysFromYmd(int32_t y, int32_t m, int32_t d) {
  if (!IsValidDate(y, m, d)) {
    return Status::ConversionError(common::Sprintf("invalid date %04d-%02d-%02d", y, m, d));
  }
  return static_cast<DateDays>(DaysFromCivil(y, m, d));
}

YearMonthDay YmdFromDays(DateDays days) {
  // Howard Hinnant's civil_from_days.
  int64_t z = static_cast<int64_t>(days) + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;
  const int64_t m = mp + (mp < 10 ? 3 : -9);
  return YearMonthDay{static_cast<int32_t>(y + (m <= 2)), static_cast<int32_t>(m),
                      static_cast<int32_t>(d)};
}

namespace {

// Reads exactly n digits from text at pos; returns -1 on failure.
int ReadDigits(std::string_view text, size_t* pos, int n) {
  if (*pos + n > text.size()) return -1;
  int v = 0;
  for (int i = 0; i < n; ++i) {
    char c = text[*pos + i];
    if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
    v = v * 10 + (c - '0');
  }
  *pos += n;
  return v;
}

int ExpandTwoDigitYear(int yy) { return yy < 30 ? 2000 + yy : 1900 + yy; }

}  // namespace

Result<DateDays> ParseDate(std::string_view text, std::string_view format) {
  std::string fmt = common::ToUpper(format);
  std::string_view t = common::TrimView(text);
  size_t fi = 0;
  size_t ti = 0;
  int y = -1;
  int m = -1;
  int d = -1;
  while (fi < fmt.size()) {
    if (fmt.compare(fi, 4, "YYYY") == 0) {
      y = ReadDigits(t, &ti, 4);
      if (y < 0) {
        return Status::ConversionError("DATE conversion failed for '" + std::string(text) +
                                       "' with format '" + std::string(format) + "'");
      }
      fi += 4;
    } else if (fmt.compare(fi, 2, "YY") == 0) {
      int yy = ReadDigits(t, &ti, 2);
      if (yy < 0) {
        return Status::ConversionError("DATE conversion failed for '" + std::string(text) +
                                       "' with format '" + std::string(format) + "'");
      }
      y = ExpandTwoDigitYear(yy);
      fi += 2;
    } else if (fmt.compare(fi, 2, "MM") == 0) {
      m = ReadDigits(t, &ti, 2);
      fi += 2;
      if (m < 0) {
        return Status::ConversionError("DATE conversion failed for '" + std::string(text) +
                                       "' with format '" + std::string(format) + "'");
      }
    } else if (fmt.compare(fi, 2, "DD") == 0) {
      d = ReadDigits(t, &ti, 2);
      fi += 2;
      if (d < 0) {
        return Status::ConversionError("DATE conversion failed for '" + std::string(text) +
                                       "' with format '" + std::string(format) + "'");
      }
    } else {
      // Literal separator must match exactly.
      if (ti >= t.size() || t[ti] != fmt[fi]) {
        return Status::ConversionError("DATE conversion failed for '" + std::string(text) +
                                       "' with format '" + std::string(format) + "'");
      }
      ++ti;
      ++fi;
    }
  }
  if (ti != t.size() || y < 0 || m < 0 || d < 0) {
    return Status::ConversionError("DATE conversion failed for '" + std::string(text) +
                                   "' with format '" + std::string(format) + "'");
  }
  return DaysFromYmd(y, m, d);
}

Result<std::string> FormatDate(DateDays days, std::string_view format) {
  std::string fmt = common::ToUpper(format);
  YearMonthDay ymd = YmdFromDays(days);
  std::string out;
  size_t fi = 0;
  while (fi < fmt.size()) {
    if (fmt.compare(fi, 4, "YYYY") == 0) {
      out += common::Sprintf("%04d", ymd.year);
      fi += 4;
    } else if (fmt.compare(fi, 2, "YY") == 0) {
      out += common::Sprintf("%02d", ymd.year % 100);
      fi += 2;
    } else if (fmt.compare(fi, 2, "MM") == 0) {
      out += common::Sprintf("%02d", ymd.month);
      fi += 2;
    } else if (fmt.compare(fi, 2, "DD") == 0) {
      out += common::Sprintf("%02d", ymd.day);
      fi += 2;
    } else {
      out += fmt[fi];
      ++fi;
    }
  }
  return out;
}

std::string FormatDateLegacyDefault(DateDays days) {
  return FormatDate(days, "YY/MM/DD").ValueOrDie();
}

std::string FormatDateIso(DateDays days) { return FormatDate(days, "YYYY-MM-DD").ValueOrDie(); }

Result<TimestampMicros> ParseTimestampIso(std::string_view text) {
  std::string_view t = common::TrimView(text);
  size_t pos = 0;
  int y = ReadDigits(t, &pos, 4);
  if (y < 0 || pos >= t.size() || t[pos] != '-') {
    return Status::ConversionError("TIMESTAMP conversion failed for '" + std::string(text) + "'");
  }
  ++pos;
  int m = ReadDigits(t, &pos, 2);
  if (m < 0 || pos >= t.size() || t[pos] != '-') {
    return Status::ConversionError("TIMESTAMP conversion failed for '" + std::string(text) + "'");
  }
  ++pos;
  int d = ReadDigits(t, &pos, 2);
  if (d < 0) {
    return Status::ConversionError("TIMESTAMP conversion failed for '" + std::string(text) + "'");
  }
  int hh = 0;
  int mi = 0;
  int ss = 0;
  int64_t frac = 0;
  if (pos < t.size()) {
    if (t[pos] != ' ' && t[pos] != 'T') {
      return Status::ConversionError("TIMESTAMP conversion failed for '" + std::string(text) +
                                     "'");
    }
    ++pos;
    hh = ReadDigits(t, &pos, 2);
    if (hh < 0 || pos >= t.size() || t[pos] != ':') {
      return Status::ConversionError("TIMESTAMP conversion failed for '" + std::string(text) +
                                     "'");
    }
    ++pos;
    mi = ReadDigits(t, &pos, 2);
    if (mi < 0 || pos >= t.size() || t[pos] != ':') {
      return Status::ConversionError("TIMESTAMP conversion failed for '" + std::string(text) +
                                     "'");
    }
    ++pos;
    ss = ReadDigits(t, &pos, 2);
    if (ss < 0) {
      return Status::ConversionError("TIMESTAMP conversion failed for '" + std::string(text) +
                                     "'");
    }
    if (pos < t.size() && t[pos] == '.') {
      ++pos;
      int digits = 0;
      while (pos < t.size() && std::isdigit(static_cast<unsigned char>(t[pos])) && digits < 6) {
        frac = frac * 10 + (t[pos] - '0');
        ++pos;
        ++digits;
      }
      while (digits < 6) {
        frac *= 10;
        ++digits;
      }
    }
  }
  if (pos != t.size() || hh > 23 || mi > 59 || ss > 59) {
    return Status::ConversionError("TIMESTAMP conversion failed for '" + std::string(text) + "'");
  }
  HQ_ASSIGN_OR_RETURN(DateDays days, DaysFromYmd(y, m, d));
  int64_t micros = static_cast<int64_t>(days) * 86400000000LL +
                   (static_cast<int64_t>(hh) * 3600 + mi * 60 + ss) * 1000000LL + frac;
  return micros;
}

std::string FormatTimestampIso(TimestampMicros micros) {
  int64_t days = micros / 86400000000LL;
  int64_t rem = micros % 86400000000LL;
  if (rem < 0) {
    rem += 86400000000LL;
    --days;
  }
  YearMonthDay ymd = YmdFromDays(static_cast<DateDays>(days));
  int64_t secs = rem / 1000000LL;
  int64_t frac = rem % 1000000LL;
  return common::Sprintf("%04d-%02d-%02d %02d:%02d:%02d.%06d", ymd.year, ymd.month, ymd.day,
                         static_cast<int>(secs / 3600), static_cast<int>((secs / 60) % 60),
                         static_cast<int>(secs % 60), static_cast<int>(frac));
}

}  // namespace hyperq::types
