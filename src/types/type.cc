#include "types/type.h"

#include <cctype>

#include "common/string_util.h"

namespace hyperq::types {

using common::EqualsIgnoreCase;
using common::Result;
using common::Status;

std::string_view TypeIdName(TypeId id) {
  switch (id) {
    case TypeId::kBoolean:
      return "BOOLEAN";
    case TypeId::kInt8:
      return "BYTEINT";
    case TypeId::kInt16:
      return "SMALLINT";
    case TypeId::kInt32:
      return "INTEGER";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kFloat64:
      return "FLOAT";
    case TypeId::kDecimal:
      return "DECIMAL";
    case TypeId::kChar:
      return "CHAR";
    case TypeId::kVarchar:
      return "VARCHAR";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kTimestamp:
      return "TIMESTAMP";
  }
  return "UNKNOWN";
}

bool IsNumeric(TypeId id) {
  switch (id) {
    case TypeId::kInt8:
    case TypeId::kInt16:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kFloat64:
    case TypeId::kDecimal:
      return true;
    case TypeId::kBoolean:
    case TypeId::kChar:
    case TypeId::kVarchar:
    case TypeId::kDate:
    case TypeId::kTimestamp:
      return false;
  }
  return false;
}

bool IsString(TypeId id) { return id == TypeId::kChar || id == TypeId::kVarchar; }

std::string TypeDesc::ToString() const {
  std::string out(TypeIdName(id));
  if (id == TypeId::kChar || id == TypeId::kVarchar) {
    out += "(" + std::to_string(length) + ")";
    if (charset == CharSet::kUnicode) out += " CHARACTER SET UNICODE";
  } else if (id == TypeId::kDecimal) {
    out += "(" + std::to_string(precision) + "," + std::to_string(scale) + ")";
  }
  return out;
}

int32_t TypeDesc::FixedWireWidth() const {
  switch (id) {
    case TypeId::kBoolean:
    case TypeId::kInt8:
      return 1;
    case TypeId::kInt16:
      return 2;
    case TypeId::kInt32:
    case TypeId::kDate:
      return 4;
    case TypeId::kInt64:
    case TypeId::kFloat64:
    case TypeId::kDecimal:
    case TypeId::kTimestamp:
      return 8;
    case TypeId::kChar:
      return length;  // blank padded to declared length
    case TypeId::kVarchar:
      return 0;  // 2-byte length prefix + data
  }
  return 0;
}

namespace {

// Parses "(n)" or "(p,s)" starting at `pos`; advances pos past ')'.
Status ParseParens(std::string_view text, size_t* pos, int32_t* a, int32_t* b, bool* has_b) {
  *has_b = false;
  while (*pos < text.size() && std::isspace(static_cast<unsigned char>(text[*pos]))) ++*pos;
  if (*pos >= text.size() || text[*pos] != '(') {
    return Status::ParseError("expected '(' in type: " + std::string(text));
  }
  ++*pos;
  auto read_int = [&](int32_t* out) -> Status {
    while (*pos < text.size() && std::isspace(static_cast<unsigned char>(text[*pos]))) ++*pos;
    size_t start = *pos;
    while (*pos < text.size() && std::isdigit(static_cast<unsigned char>(text[*pos]))) ++*pos;
    if (*pos == start) return Status::ParseError("expected integer in type: " + std::string(text));
    *out = std::stoi(std::string(text.substr(start, *pos - start)));
    while (*pos < text.size() && std::isspace(static_cast<unsigned char>(text[*pos]))) ++*pos;
    return Status::OK();
  };
  HQ_RETURN_NOT_OK(read_int(a));
  if (*pos < text.size() && text[*pos] == ',') {
    ++*pos;
    HQ_RETURN_NOT_OK(read_int(b));
    *has_b = true;
  }
  if (*pos >= text.size() || text[*pos] != ')') {
    return Status::ParseError("expected ')' in type: " + std::string(text));
  }
  ++*pos;
  return Status::OK();
}

}  // namespace

Result<TypeDesc> ParseTypeName(std::string_view text) {
  std::string_view t = common::TrimView(text);
  size_t word_end = 0;
  while (word_end < t.size() &&
         (std::isalnum(static_cast<unsigned char>(t[word_end])) || t[word_end] == '_')) {
    ++word_end;
  }
  std::string_view name = t.substr(0, word_end);
  size_t pos = word_end;

  auto rest_mentions_unicode = [&] {
    return common::ToUpper(t).find("UNICODE") != std::string::npos;
  };

  if (EqualsIgnoreCase(name, "BOOLEAN")) return TypeDesc::Boolean();
  if (EqualsIgnoreCase(name, "BYTEINT")) return TypeDesc::Int8();
  if (EqualsIgnoreCase(name, "SMALLINT")) return TypeDesc::Int16();
  if (EqualsIgnoreCase(name, "INTEGER") || EqualsIgnoreCase(name, "INT")) {
    return TypeDesc::Int32();
  }
  if (EqualsIgnoreCase(name, "BIGINT")) return TypeDesc::Int64();
  if (EqualsIgnoreCase(name, "FLOAT") || EqualsIgnoreCase(name, "DOUBLE") ||
      EqualsIgnoreCase(name, "REAL")) {
    return TypeDesc::Float64();
  }
  if (EqualsIgnoreCase(name, "DATE")) return TypeDesc::Date();
  if (EqualsIgnoreCase(name, "TIMESTAMP")) return TypeDesc::Timestamp();
  if (EqualsIgnoreCase(name, "DECIMAL") || EqualsIgnoreCase(name, "NUMERIC") ||
      EqualsIgnoreCase(name, "DEC")) {
    int32_t p = 18;
    int32_t s = 0;
    bool has_b = false;
    if (pos < t.size()) {
      size_t probe = pos;
      while (probe < t.size() && std::isspace(static_cast<unsigned char>(t[probe]))) ++probe;
      if (probe < t.size() && t[probe] == '(') {
        HQ_RETURN_NOT_OK(ParseParens(t, &pos, &p, &s, &has_b));
        if (!has_b) s = 0;
      }
    }
    if (p < 1 || p > 18 || s < 0 || s > p) {
      return Status::ParseError("unsupported DECIMAL precision/scale: " + std::string(text));
    }
    return TypeDesc::Decimal(p, s);
  }
  if (EqualsIgnoreCase(name, "CHAR") || EqualsIgnoreCase(name, "CHARACTER")) {
    int32_t n = 1;
    int32_t unused = 0;
    bool has_b = false;
    size_t probe = pos;
    while (probe < t.size() && std::isspace(static_cast<unsigned char>(t[probe]))) ++probe;
    if (probe < t.size() && t[probe] == '(') {
      HQ_RETURN_NOT_OK(ParseParens(t, &pos, &n, &unused, &has_b));
    }
    return TypeDesc::Char(n, rest_mentions_unicode() ? CharSet::kUnicode : CharSet::kLatin);
  }
  if (EqualsIgnoreCase(name, "VARCHAR")) {
    int32_t n = 0;
    int32_t unused = 0;
    bool has_b = false;
    HQ_RETURN_NOT_OK(ParseParens(t, &pos, &n, &unused, &has_b));
    return TypeDesc::Varchar(n, rest_mentions_unicode() ? CharSet::kUnicode : CharSet::kLatin);
  }
  return Status::ParseError("unknown type name: " + std::string(text));
}

}  // namespace hyperq::types
