#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "types/type.h"
#include "types/value.h"

/// \file schema.h
/// Column schemas and row values shared by the legacy wire codecs, the TDF
/// format, and the CDW engine.

namespace hyperq::types {

/// One column: name, type, nullability.
struct Field {
  std::string name;
  TypeDesc type;
  bool nullable = true;

  Field() = default;
  Field(std::string n, TypeDesc t, bool null_ok = true)
      : name(std::move(n)), type(t), nullable(null_ok) {}

  bool operator==(const Field&) const = default;

  std::string ToString() const;
};

/// Ordered collection of fields. Lookup is case-insensitive (SQL rules).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// Case-insensitive index lookup; -1 when absent.
  int FieldIndex(std::string_view name) const;
  common::Result<size_t> RequireFieldIndex(std::string_view name) const;

  bool operator==(const Schema&) const = default;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// A row of values positionally matching a Schema.
using Row = std::vector<Value>;

/// Approximate in-memory footprint of a row (used for memory accounting).
size_t RowByteSize(const Row& row);

}  // namespace hyperq::types
