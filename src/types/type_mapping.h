#pragma once

#include "common/result.h"
#include "types/schema.h"
#include "types/type.h"

/// \file type_mapping.h
/// Legacy-EDW -> CDW type bridging (Section 6 of the paper): "a Unicode
/// character type in the source script could be mapped to the national
/// varchar type in the CDW type system". The simulated CDW models the common
/// quirks of real cloud warehouses:
///   - no BYTEINT (narrowest integer is SMALLINT),
///   - UNICODE CHAR/VARCHAR map to national (NVARCHAR-style) types,
///   - CHAR wider than a threshold becomes VARCHAR,
///   - no native uniqueness enforcement (emulated by Hyper-Q, Section 7).

namespace hyperq::types {

/// Maps one legacy column type to the CDW type used for the staging and
/// target tables.
common::Result<TypeDesc> MapLegacyTypeToCdw(const TypeDesc& legacy);

/// Maps a whole legacy schema (used when creating staging tables).
common::Result<Schema> MapLegacySchemaToCdw(const Schema& legacy);

}  // namespace hyperq::types
