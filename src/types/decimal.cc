#include "types/decimal.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace hyperq::types {

using common::Result;
using common::Status;

namespace {
constexpr int64_t kPow10[] = {1LL,
                              10LL,
                              100LL,
                              1000LL,
                              10000LL,
                              100000LL,
                              1000000LL,
                              10000000LL,
                              100000000LL,
                              1000000000LL,
                              10000000000LL,
                              100000000000LL,
                              1000000000000LL,
                              10000000000000LL,
                              100000000000000LL,
                              1000000000000000LL,
                              10000000000000000LL,
                              100000000000000000LL,
                              1000000000000000000LL};
constexpr int32_t kMaxScale = 18;
constexpr int64_t kMaxUnscaled = 999999999999999999LL;  // 18 nines

bool MulOverflows(int64_t a, int64_t b, int64_t* out) {
  return __builtin_mul_overflow(a, b, out);
}
bool AddOverflows(int64_t a, int64_t b, int64_t* out) {
  return __builtin_add_overflow(a, b, out);
}
}  // namespace

Result<Decimal> Decimal::Parse(std::string_view text, int32_t scale) {
  if (scale < 0 || scale > kMaxScale) return Status::Invalid("decimal scale out of range");
  size_t i = 0;
  bool neg = false;
  if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
    neg = text[i] == '-';
    ++i;
  }
  int64_t int_part = 0;
  bool any_digit = false;
  for (; i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])); ++i) {
    any_digit = true;
    if (MulOverflows(int_part, 10, &int_part) ||
        AddOverflows(int_part, text[i] - '0', &int_part)) {
      return Status::ConversionError("decimal overflow: " + std::string(text));
    }
  }
  int64_t frac_part = 0;
  int32_t frac_digits = 0;
  int next_digit_after_scale = -1;
  if (i < text.size() && text[i] == '.') {
    ++i;
    for (; i < text.size() && std::isdigit(static_cast<unsigned char>(text[i])); ++i) {
      any_digit = true;
      if (frac_digits < scale) {
        frac_part = frac_part * 10 + (text[i] - '0');
        ++frac_digits;
      } else if (next_digit_after_scale < 0) {
        next_digit_after_scale = text[i] - '0';
      }
    }
  }
  if (!any_digit || i != text.size()) {
    return Status::ConversionError("malformed decimal literal: '" + std::string(text) + "'");
  }
  while (frac_digits < scale) {
    frac_part *= 10;
    ++frac_digits;
  }
  int64_t unscaled;
  if (MulOverflows(int_part, kPow10[scale], &unscaled) ||
      AddOverflows(unscaled, frac_part, &unscaled)) {
    return Status::ConversionError("decimal overflow: " + std::string(text));
  }
  if (next_digit_after_scale >= 5) {
    if (AddOverflows(unscaled, 1, &unscaled)) {
      return Status::ConversionError("decimal overflow: " + std::string(text));
    }
  }
  if (unscaled > kMaxUnscaled) {
    return Status::ConversionError("decimal exceeds 18 digits: " + std::string(text));
  }
  return Decimal(neg ? -unscaled : unscaled, scale);
}

std::string Decimal::ToString() const {
  int64_t v = unscaled_;
  bool neg = v < 0;
  uint64_t mag = neg ? static_cast<uint64_t>(-(v + 1)) + 1 : static_cast<uint64_t>(v);
  uint64_t pow = static_cast<uint64_t>(kPow10[scale_]);
  uint64_t int_part = mag / pow;
  uint64_t frac_part = mag % pow;
  std::string out = neg ? "-" : "";
  out += std::to_string(int_part);
  if (scale_ > 0) {
    std::string frac = std::to_string(frac_part);
    out += ".";
    out += std::string(static_cast<size_t>(scale_) - frac.size(), '0');
    out += frac;
  }
  return out;
}

Result<Decimal> Decimal::Rescale(int32_t new_scale) const {
  if (new_scale < 0 || new_scale > kMaxScale) return Status::Invalid("decimal scale out of range");
  if (new_scale == scale_) return *this;
  if (new_scale > scale_) {
    int64_t out;
    if (MulOverflows(unscaled_, kPow10[new_scale - scale_], &out) || out > kMaxUnscaled ||
        out < -kMaxUnscaled) {
      return Status::ConversionError("decimal rescale overflow");
    }
    return Decimal(out, new_scale);
  }
  int64_t div = kPow10[scale_ - new_scale];
  int64_t q = unscaled_ / div;
  int64_t r = unscaled_ % div;
  // Round half away from zero.
  if (std::llabs(r) * 2 >= div) q += (unscaled_ < 0 ? -1 : 1);
  return Decimal(q, new_scale);
}

double Decimal::ToDouble() const {
  return static_cast<double>(unscaled_) / static_cast<double>(kPow10[scale_]);
}

int64_t Decimal::ToInt64() const { return unscaled_ / kPow10[scale_]; }

Result<Decimal> Decimal::FromDouble(double v, int32_t scale) {
  if (scale < 0 || scale > kMaxScale) return Status::Invalid("decimal scale out of range");
  double scaled = v * static_cast<double>(kPow10[scale]);
  if (!std::isfinite(scaled) || scaled > static_cast<double>(kMaxUnscaled) ||
      scaled < -static_cast<double>(kMaxUnscaled)) {
    return Status::ConversionError("double out of decimal range");
  }
  return Decimal(static_cast<int64_t>(std::llround(scaled)), scale);
}

Decimal Decimal::FromInt64(int64_t v, int32_t scale) { return Decimal(v * kPow10[scale], scale); }

Result<Decimal> Decimal::Add(const Decimal& other) const {
  int32_t s = std::max(scale_, other.scale_);
  HQ_ASSIGN_OR_RETURN(Decimal a, Rescale(s));
  HQ_ASSIGN_OR_RETURN(Decimal b, other.Rescale(s));
  int64_t out;
  if (AddOverflows(a.unscaled_, b.unscaled_, &out) || out > kMaxUnscaled || out < -kMaxUnscaled) {
    return Status::ConversionError("decimal addition overflow");
  }
  return Decimal(out, s);
}

Result<Decimal> Decimal::Subtract(const Decimal& other) const {
  return Add(Decimal(-other.unscaled_, other.scale_));
}

Result<Decimal> Decimal::Multiply(const Decimal& other) const {
  int64_t out;
  if (MulOverflows(unscaled_, other.unscaled_, &out)) {
    return Status::ConversionError("decimal multiplication overflow");
  }
  int32_t s = scale_ + other.scale_;
  Decimal product(out, s);
  if (s > kMaxScale) return product.Rescale(kMaxScale);
  if (out > kMaxUnscaled || out < -kMaxUnscaled) {
    return Status::ConversionError("decimal multiplication overflow");
  }
  return product;
}

int Decimal::Compare(const Decimal& other) const {
  // Compare via double fast path is lossy; align scales instead. Overflow on
  // alignment implies widely different magnitudes, so fall back to doubles.
  int32_t s = std::max(scale_, other.scale_);
  auto a = Rescale(s);
  auto b = other.Rescale(s);
  if (a.ok() && b.ok()) {
    int64_t x = a.ValueOrDie().unscaled();
    int64_t y = b.ValueOrDie().unscaled();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  double x = ToDouble();
  double y = other.ToDouble();
  return x < y ? -1 : (x > y ? 1 : 0);
}

}  // namespace hyperq::types
