#include "types/type_mapping.h"

namespace hyperq::types {

using common::Result;

namespace {
/// CDW CHAR columns wider than this are stored as VARCHAR (mirrors cloud
/// systems that discourage wide fixed-width columns).
constexpr int32_t kMaxCdwCharWidth = 255;
}  // namespace

Result<TypeDesc> MapLegacyTypeToCdw(const TypeDesc& legacy) {
  switch (legacy.id) {
    case TypeId::kInt8:
      // The CDW has no 1-byte integer; widen to SMALLINT.
      return TypeDesc::Int16();
    case TypeId::kChar:
      if (legacy.length > kMaxCdwCharWidth) {
        return TypeDesc::Varchar(legacy.length, legacy.charset);
      }
      return legacy;
    case TypeId::kBoolean:
    case TypeId::kInt16:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kFloat64:
    case TypeId::kDecimal:
    case TypeId::kVarchar:
    case TypeId::kDate:
    case TypeId::kTimestamp:
      return legacy;
  }
  return common::Status::TypeError("unmappable legacy type");
}

Result<Schema> MapLegacySchemaToCdw(const Schema& legacy) {
  std::vector<Field> fields;
  fields.reserve(legacy.num_fields());
  for (const auto& f : legacy.fields()) {
    HQ_ASSIGN_OR_RETURN(TypeDesc mapped, MapLegacyTypeToCdw(f.type));
    fields.emplace_back(f.name, mapped, f.nullable);
  }
  return Schema(std::move(fields));
}

}  // namespace hyperq::types
