#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

/// \file decimal.h
/// 18-digit fixed-point decimal (value = unscaled / 10^scale). Sufficient for
/// the DECIMAL columns appearing in legacy ETL jobs; arithmetic saturates the
/// legacy EDW's DECIMAL(18) ceiling.

namespace hyperq::types {

class Decimal {
 public:
  Decimal() = default;
  Decimal(int64_t unscaled, int32_t scale) : unscaled_(unscaled), scale_(scale) {}

  int64_t unscaled() const { return unscaled_; }
  int32_t scale() const { return scale_; }

  /// Parses "[-]digits[.digits]" and scales to `scale`, rounding half away
  /// from zero. Fails on malformed text or overflow of 18 digits.
  static common::Result<Decimal> Parse(std::string_view text, int32_t scale);

  /// Renders with exactly scale() fractional digits, e.g. "-12.50".
  std::string ToString() const;

  /// Converts to a new scale (rounds half away from zero when narrowing).
  common::Result<Decimal> Rescale(int32_t new_scale) const;

  double ToDouble() const;
  /// Truncates toward zero to an integer.
  int64_t ToInt64() const;
  static common::Result<Decimal> FromDouble(double v, int32_t scale);
  static Decimal FromInt64(int64_t v, int32_t scale);

  common::Result<Decimal> Add(const Decimal& other) const;
  common::Result<Decimal> Subtract(const Decimal& other) const;
  common::Result<Decimal> Multiply(const Decimal& other) const;

  /// Three-way compare across scales.
  int Compare(const Decimal& other) const;

  bool operator==(const Decimal& other) const { return Compare(other) == 0; }

 private:
  int64_t unscaled_ = 0;
  int32_t scale_ = 0;
};

}  // namespace hyperq::types
