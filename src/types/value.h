#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "types/date.h"
#include "types/decimal.h"
#include "types/type.h"

/// \file value.h
/// Runtime scalar value. Canonical representation per type family:
///   kBoolean            -> bool
///   kInt8..kInt64       -> int64_t
///   kFloat64            -> double
///   kDecimal            -> Decimal
///   kChar/kVarchar      -> std::string
///   kDate               -> DateDays   (tagged)
///   kTimestamp          -> TimestampMicros (tagged)

namespace hyperq::types {

/// Distinct wrapper so std::variant can tell dates from ints.
struct DateValue {
  DateDays days;
  bool operator==(const DateValue&) const = default;
};
struct TimestampValue {
  TimestampMicros micros;
  bool operator==(const TimestampValue&) const = default;
};

class Value {
 public:
  /// Constructs SQL NULL.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Boolean(bool v) { return Value(Payload(v)); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Float(double v) { return Value(Payload(v)); }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }
  static Value Dec(Decimal v) { return Value(Payload(v)); }
  static Value Date(DateDays days) { return Value(Payload(DateValue{days})); }
  static Value Timestamp(TimestampMicros micros) { return Value(Payload(TimestampValue{micros})); }

  bool is_null() const { return std::holds_alternative<std::monostate>(payload_); }
  bool is_boolean() const { return std::holds_alternative<bool>(payload_); }
  bool is_int() const { return std::holds_alternative<int64_t>(payload_); }
  bool is_float() const { return std::holds_alternative<double>(payload_); }
  bool is_string() const { return std::holds_alternative<std::string>(payload_); }
  bool is_decimal() const { return std::holds_alternative<Decimal>(payload_); }
  bool is_date() const { return std::holds_alternative<DateValue>(payload_); }
  bool is_timestamp() const { return std::holds_alternative<TimestampValue>(payload_); }

  bool boolean() const { return std::get<bool>(payload_); }
  int64_t int_value() const { return std::get<int64_t>(payload_); }
  double float_value() const { return std::get<double>(payload_); }
  const std::string& string_value() const { return std::get<std::string>(payload_); }
  const Decimal& decimal_value() const { return std::get<Decimal>(payload_); }
  DateDays date_days() const { return std::get<DateValue>(payload_).days; }
  TimestampMicros timestamp_micros() const { return std::get<TimestampValue>(payload_).micros; }

  bool operator==(const Value& other) const { return payload_ == other.payload_; }

  /// Debug / display rendering ("NULL", "42", "'abc'", dates as ISO).
  std::string ToString() const;

  /// Deterministic hash for uniqueness emulation and group-by.
  size_t Hash() const;

  /// Three-way ordering used by ORDER BY and uniqueness checks. NULLs sort
  /// first; comparing incompatible families falls back to type rank.
  int Compare(const Value& other) const;

 private:
  using Payload = std::variant<std::monostate, bool, int64_t, double, Decimal, std::string,
                               DateValue, TimestampValue>;
  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  Payload payload_;
};

/// Casts `v` to `target`, applying legacy EDW conversion rules:
///  - strings parse to numerics/dates (optional `format` for dates)
///  - CHAR(n) blank-pads, VARCHAR(n)/CHAR(n) overflow is a ConversionError
///  - numerics widen implicitly, narrow with range check
///  - NULL casts to NULL of any type
common::Result<Value> CastValue(const Value& v, const TypeDesc& target,
                                std::string_view format = {});

/// Renders a value as CDW staging-file text (CSV cell, before escaping):
/// dates ISO, timestamps ISO, decimals fixed-point, booleans 0/1.
std::string ValueToCdwText(const Value& v);

}  // namespace hyperq::types
