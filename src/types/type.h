#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

/// \file type.h
/// The shared logical type system. Both the legacy EDW dialect and the CDW
/// dialect describe column types as a TypeDesc; the legacy->CDW bridging is
/// performed by type_mapping.h.

namespace hyperq::types {

enum class TypeId : uint8_t {
  kBoolean = 0,
  kInt8,      ///< legacy BYTEINT
  kInt16,     ///< SMALLINT
  kInt32,     ///< INTEGER
  kInt64,     ///< BIGINT
  kFloat64,   ///< FLOAT / DOUBLE PRECISION
  kDecimal,   ///< DECIMAL(p,s), 18-digit fixed point
  kChar,      ///< CHAR(n), blank padded
  kVarchar,   ///< VARCHAR(n)
  kDate,      ///< days since 1970-01-01
  kTimestamp, ///< microseconds since 1970-01-01 00:00:00
};

std::string_view TypeIdName(TypeId id);

/// True for kInt8..kFloat64 and kDecimal.
bool IsNumeric(TypeId id);
/// True for kChar and kVarchar.
bool IsString(TypeId id);

/// Character set of a string type. The legacy EDW distinguishes LATIN and
/// UNICODE columns; the CDW maps UNICODE to its national varchar type
/// (Section 6 of the paper).
enum class CharSet : uint8_t { kLatin = 0, kUnicode };

/// A concrete column/expression type: id plus parameters.
struct TypeDesc {
  TypeId id = TypeId::kVarchar;
  int32_t length = 0;     ///< CHAR/VARCHAR declared length
  int32_t precision = 0;  ///< DECIMAL precision
  int32_t scale = 0;      ///< DECIMAL scale
  CharSet charset = CharSet::kLatin;

  TypeDesc() = default;
  explicit TypeDesc(TypeId tid) : id(tid) {}

  static TypeDesc Boolean() { return TypeDesc(TypeId::kBoolean); }
  static TypeDesc Int8() { return TypeDesc(TypeId::kInt8); }
  static TypeDesc Int16() { return TypeDesc(TypeId::kInt16); }
  static TypeDesc Int32() { return TypeDesc(TypeId::kInt32); }
  static TypeDesc Int64() { return TypeDesc(TypeId::kInt64); }
  static TypeDesc Float64() { return TypeDesc(TypeId::kFloat64); }
  static TypeDesc Date() { return TypeDesc(TypeId::kDate); }
  static TypeDesc Timestamp() { return TypeDesc(TypeId::kTimestamp); }
  static TypeDesc Decimal(int32_t precision, int32_t scale) {
    TypeDesc t(TypeId::kDecimal);
    t.precision = precision;
    t.scale = scale;
    return t;
  }
  static TypeDesc Char(int32_t length, CharSet cs = CharSet::kLatin) {
    TypeDesc t(TypeId::kChar);
    t.length = length;
    t.charset = cs;
    return t;
  }
  static TypeDesc Varchar(int32_t length, CharSet cs = CharSet::kLatin) {
    TypeDesc t(TypeId::kVarchar);
    t.length = length;
    t.charset = cs;
    return t;
  }

  bool operator==(const TypeDesc& other) const {
    return id == other.id && length == other.length && precision == other.precision &&
           scale == other.scale && charset == other.charset;
  }

  /// SQL-ish rendering, e.g. "VARCHAR(50)", "DECIMAL(18,2)".
  std::string ToString() const;

  /// Fixed wire width in the legacy binary row format; 0 for varlen types.
  int32_t FixedWireWidth() const;
};

/// Parses a type name as written in ETL scripts / SQL, e.g. "varchar(5)",
/// "DECIMAL(18,2)", "DATE", "byteint". Case-insensitive.
common::Result<TypeDesc> ParseTypeName(std::string_view text);

}  // namespace hyperq::types
