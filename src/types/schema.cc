#include "types/schema.h"

#include "common/string_util.h"

namespace hyperq::types {

std::string Field::ToString() const {
  std::string out = name + " " + type.ToString();
  if (!nullable) out += " NOT NULL";
  return out;
}

int Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (common::EqualsIgnoreCase(fields_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

common::Result<size_t> Schema::RequireFieldIndex(std::string_view name) const {
  int idx = FieldIndex(name);
  if (idx < 0) return common::Status::NotFound("column not found: " + std::string(name));
  return static_cast<size_t>(idx);
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += fields_[i].ToString();
  }
  out += ")";
  return out;
}

size_t RowByteSize(const Row& row) {
  size_t bytes = sizeof(Row) + row.size() * sizeof(Value);
  for (const auto& v : row) {
    if (v.is_string()) bytes += v.string_value().size();
  }
  return bytes;
}

}  // namespace hyperq::types
