#include "workload/quality_report.h"

namespace hyperq::workload {

ReportTable QualitySummaryTable(const std::vector<QualityJobRow>& jobs) {
  ReportTable table({"job", "rows_checked", "quarantined", "violations", "rate", "qrtn_table"});
  for (const auto& job : jobs) {
    if (!job.enabled) {
      table.AddRow({job.job_id, "(gate off)", "-", "-", "-", "-"});
      continue;
    }
    table.AddRow({job.job_id, std::to_string(job.rows_checked),
                  std::to_string(job.rows_quarantined), std::to_string(job.violations_total),
                  FormatPercent(job.violation_rate),
                  job.quarantine_table.empty() ? "-" : job.quarantine_table});
  }
  return table;
}

ReportTable QualityConstraintTable(const QualityJobRow& job) {
  ReportTable table({"id", "kind", "column", "bound", "violations", "observed", "breached"});
  for (const auto& c : job.constraints) {
    table.AddRow({std::to_string(c.id), c.kind, c.column.empty() ? "-" : c.column,
                  c.bound.empty() ? "-" : c.bound, std::to_string(c.violations),
                  c.observed == 0 ? "-" : FormatPercent(c.observed),
                  c.breached ? "yes" : "no"});
  }
  return table;
}

}  // namespace hyperq::workload
