#include "workload/span_report.h"

#include <algorithm>
#include <map>
#include <string>

#include "common/string_util.h"

namespace hyperq::workload {

namespace {

std::string FormatMillis(int64_t micros) {
  return common::Sprintf("%.3f", static_cast<double>(micros) / 1000.0);
}

}  // namespace

ReportTable SpanSummaryTable(const std::vector<obs::SpanRecord>& spans) {
  struct PhaseAgg {
    uint64_t count = 0;
    int64_t total_micros = 0;
    int64_t max_micros = 0;
  };
  std::vector<obs::Phase> order;
  std::map<obs::Phase, PhaseAgg> aggs;
  int64_t root_micros = 0;
  for (const auto& s : spans) {
    if (!s.finished()) continue;
    if (s.parent_id == 0) root_micros = s.duration_micros();
    if (aggs.find(s.phase) == aggs.end()) order.push_back(s.phase);
    PhaseAgg& agg = aggs[s.phase];
    ++agg.count;
    agg.total_micros += s.duration_micros();
    agg.max_micros = std::max(agg.max_micros, s.duration_micros());
  }
  ReportTable table({"phase", "spans", "total_ms", "mean_ms", "max_ms", "of_job"});
  for (obs::Phase phase : order) {
    const PhaseAgg& agg = aggs[phase];
    double share = root_micros > 0
                       ? static_cast<double>(agg.total_micros) / static_cast<double>(root_micros)
                       : 0.0;
    table.AddRow({obs::PhaseName(phase), std::to_string(agg.count),
                  FormatMillis(agg.total_micros),
                  FormatMillis(agg.count == 0 ? 0
                                              : agg.total_micros / static_cast<int64_t>(agg.count)),
                  FormatMillis(agg.max_micros), FormatPercent(share)});
  }
  return table;
}

ReportTable SpanTreeTable(const std::vector<obs::SpanRecord>& spans, size_t max_rows) {
  // Children in append order under each parent (spans are recorded
  // append-only, so sibling order == execution start order).
  std::map<uint64_t, std::vector<const obs::SpanRecord*>> children;
  const obs::SpanRecord* root = nullptr;
  for (const auto& s : spans) {
    if (s.parent_id == 0) {
      root = &s;
    } else {
      children[s.parent_id].push_back(&s);
    }
  }
  ReportTable table({"span", "phase", "start_ms", "dur_ms", "tid"});
  size_t rows = 0;
  // Depth-first with explicit stack; depth drives the indent.
  std::vector<std::pair<const obs::SpanRecord*, int>> stack;
  if (root != nullptr) stack.emplace_back(root, 0);
  while (!stack.empty()) {
    auto [span, depth] = stack.back();
    stack.pop_back();
    if (max_rows != 0 && rows >= max_rows) {
      table.AddRow({"... truncated ...", "", "", "", ""});
      break;
    }
    ++rows;
    table.AddRow({std::string(static_cast<size_t>(depth) * 2, ' ') + span->name,
                  obs::PhaseName(span->phase), FormatMillis(span->start_micros),
                  span->finished() ? FormatMillis(span->duration_micros()) : "open",
                  common::Sprintf("%08llx", static_cast<unsigned long long>(span->thread_id))});
    auto it = children.find(span->id);
    if (it != children.end()) {
      // Push in reverse so the first child is rendered first.
      for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
        stack.emplace_back(*rit, depth + 1);
      }
    }
  }
  return table;
}

}  // namespace hyperq::workload
