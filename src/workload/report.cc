#include "workload/report.h"

#include <cstdio>

#include "common/string_util.h"

namespace hyperq::workload {

ReportTable::ReportTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      line += cell;
      line += std::string(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += "\n";
    return line;
  };
  std::string out = render_row(headers_);
  size_t rule_len = 0;
  for (size_t w : widths) rule_len += w + 2;
  out += std::string(rule_len > 2 ? rule_len - 2 : rule_len, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void ReportTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatSeconds(double seconds) { return common::Sprintf("%.3f", seconds); }
std::string FormatPercent(double fraction) { return common::Sprintf("%.1f%%", fraction * 100); }
std::string FormatDouble(double v, int decimals) { return common::Sprintf("%.*f", decimals, v); }

}  // namespace hyperq::workload
