#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/report.h"

/// \file quality_report.h
/// Folds per-job data-quality outcomes (the core/stream quality gate) into
/// the benchmark harness's ReportTable format, next to the span tables: one
/// summary row per job, plus a per-constraint breakdown with reason codes.
/// hq_workload deliberately does not link hq_core, so the input is a plain
/// mirror of core::QualityJobReport that callers copy field-by-field.

namespace hyperq::workload {

struct QualityConstraintRow {
  uint32_t id = 0;
  std::string kind;    ///< QualityKindName() of the constraint
  std::string column;  ///< target column ("" for cross-field rules)
  std::string bound;   ///< human-readable violated bound
  uint64_t violations = 0;
  /// Observed null rate for nullrate constraints (0 otherwise).
  double observed = 0;
  bool breached = false;  ///< nullrate ceiling exceeded at job end
};

struct QualityJobRow {
  std::string job_id;
  bool enabled = false;  ///< gate off => the row prints as "(gate off)"
  uint64_t rows_checked = 0;
  uint64_t rows_quarantined = 0;
  uint64_t violations_total = 0;
  double violation_rate = 0;
  std::string quarantine_table;
  std::vector<QualityConstraintRow> constraints;
};

/// One row per job: rows checked/quarantined, violation rate, quarantine
/// table. Jobs with the gate off still get a row so a mixed run is legible.
ReportTable QualitySummaryTable(const std::vector<QualityJobRow>& jobs);

/// Per-constraint breakdown for one job, in constraint-id (spec) order:
/// id, kind, column, bound, violation count, observed null rate, breached.
ReportTable QualityConstraintTable(const QualityJobRow& job);

}  // namespace hyperq::workload
