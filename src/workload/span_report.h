#pragma once

#include <vector>

#include "obs/trace.h"
#include "workload/report.h"

/// \file span_report.h
/// Folds a job's pipeline span tree (obs/trace.h) into the benchmark
/// harness's ReportTable format: a per-phase latency summary and an
/// indented parent/child tree view. Bench binaries print these next to the
/// figure tables so a run's phase breakdown is visible without external
/// tooling.

namespace hyperq::workload {

/// One aggregate row per phase: span count, total/mean/max duration and the
/// share of the root span's wall time. Rows are ordered by first appearance
/// in the trace (pipeline order).
ReportTable SpanSummaryTable(const std::vector<obs::SpanRecord>& spans);

/// The raw tree: every span indented under its parent with start offset and
/// duration. `max_rows` truncates pathological traces (0 = no limit).
ReportTable SpanTreeTable(const std::vector<obs::SpanRecord>& spans, size_t max_rows = 64);

}  // namespace hyperq::workload
