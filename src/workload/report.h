#pragma once

#include <string>
#include <vector>

/// \file report.h
/// Fixed-width table printer for the benchmark harness: every bench binary
/// prints the rows/series of the paper figure it regenerates.

namespace hyperq::workload {

class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Renders with padded columns, a header rule, and a trailing newline.
  std::string ToString() const;
  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds with 3 decimal places.
std::string FormatSeconds(double seconds);
/// Formats a ratio as a percentage with 1 decimal place.
std::string FormatPercent(double fraction);
std::string FormatDouble(double v, int decimals = 2);

}  // namespace hyperq::workload
