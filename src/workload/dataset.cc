#include "workload/dataset.h"

#include "cloudstore/bulk_loader.h"
#include "common/string_util.h"
#include "types/date.h"

namespace hyperq::workload {

using common::Status;
using types::Schema;
using types::TypeDesc;

namespace {
constexpr size_t kKeyWidth = 10;
constexpr size_t kNameWidth = 16;
constexpr size_t kDateWidth = 10;
constexpr size_t kFillerTarget = 48;
}  // namespace

CustomerDataset::CustomerDataset(DatasetSpec spec) : spec_(spec) {
  if (spec_.num_fields >= 3) {
    num_fields_ = spec_.num_fields;
  } else {
    size_t base = kKeyWidth + kNameWidth + kDateWidth + 2;
    size_t filler_bytes = spec_.row_bytes > base + 8 ? spec_.row_bytes - base : 0;
    size_t filler_cols = filler_bytes == 0 ? 0 : std::max<size_t>(1, filler_bytes / kFillerTarget);
    num_fields_ = 3 + filler_cols;
  }
  size_t filler_cols = num_fields_ - 3;
  if (filler_cols > 0) {
    size_t base = kKeyWidth + kNameWidth + kDateWidth + num_fields_ - 1;
    size_t filler_bytes = spec_.row_bytes > base ? spec_.row_bytes - base : filler_cols;
    filler_width_ = std::max<size_t>(1, filler_bytes / filler_cols);
  } else {
    filler_width_ = 0;
  }
  for (uint64_t i = 0; i < spec_.rows; ++i) {
    RowClass rc = Classify(i);
    if (rc.bad_date) ++bad_dates_;
    if (rc.duplicate) ++duplicates_;
    if (rc.short_row) ++short_rows_;
  }
}

CustomerDataset::RowClass CustomerDataset::Classify(uint64_t i) const {
  common::Random rng(spec_.seed * 0x9E3779B97F4A7C15ULL + i * 2654435761ULL + 17);
  RowClass rc;
  rc.bad_date = rng.NextBool(spec_.bad_date_fraction);
  rc.duplicate = i > 0 && rng.NextBool(spec_.duplicate_fraction);
  rc.short_row = num_fields_ > 3 && rng.NextBool(spec_.short_row_fraction);
  return rc;
}

Schema CustomerDataset::MakeLayout() const {
  Schema layout;
  layout.AddField(types::Field("CUST_ID", TypeDesc::Varchar(static_cast<int32_t>(kKeyWidth + 2))));
  layout.AddField(
      types::Field("CUST_NAME", TypeDesc::Varchar(static_cast<int32_t>(kNameWidth + 8))));
  layout.AddField(
      types::Field("JOIN_DATE", TypeDesc::Varchar(static_cast<int32_t>(kDateWidth + 4))));
  for (size_t f = 3; f < num_fields_; ++f) {
    layout.AddField(types::Field("FILLER" + std::to_string(f - 2),
                                 TypeDesc::Varchar(static_cast<int32_t>(filler_width_ + 8))));
  }
  return layout;
}

std::string CustomerDataset::MakeTargetDdl(const std::string& table_name) const {
  std::string ddl = "CREATE MULTISET TABLE " + table_name + " (";
  ddl += "CUST_ID VARCHAR(" + std::to_string(kKeyWidth + 2) + ") NOT NULL, ";
  ddl += "CUST_NAME VARCHAR(" + std::to_string(kNameWidth + 8) + "), ";
  ddl += "JOIN_DATE DATE";
  for (size_t f = 3; f < num_fields_; ++f) {
    ddl += ", FILLER" + std::to_string(f - 2) + " VARCHAR(" +
           std::to_string(filler_width_ + 8) + ")";
  }
  ddl += ") UNIQUE PRIMARY INDEX (CUST_ID)";
  return ddl;
}

std::string CustomerDataset::MakeInsertDml(const std::string& table_name) const {
  std::string dml = "INSERT INTO " + table_name + " VALUES (";
  dml += "TRIM(:CUST_ID), TRIM(:CUST_NAME), ";
  dml += "CAST(:JOIN_DATE AS DATE FORMAT 'YYYY-MM-DD')";
  for (size_t f = 3; f < num_fields_; ++f) {
    dml += ", :FILLER" + std::to_string(f - 2);
  }
  dml += ")";
  return dml;
}

std::string CustomerDataset::MakeLine(uint64_t i) const {
  RowClass rc = Classify(i);
  common::Random rng(spec_.seed * 0x51AFD6ED558CCD6DULL + i * 0x9E3779B97F4A7C15ULL + 3);

  // A duplicate row reuses the *effective* key of an earlier row; that row
  // may itself be a duplicate, so resolve transitively.
  uint64_t key_of = i;
  while (Classify(key_of).duplicate && key_of > 0) key_of /= 2;
  std::string line = common::Sprintf("%0*llu", static_cast<int>(kKeyWidth),
                                     static_cast<unsigned long long>(key_of + 1));
  line += spec_.delimiter;
  line += rng.NextAlnum(kNameWidth);
  line += spec_.delimiter;
  if (rc.bad_date) {
    line += "xx" + rng.NextAlnum(kDateWidth - 2);
  } else {
    types::DateDays days =
        types::DaysFromYmd(2000, 1, 1).ValueOrDie() + static_cast<int32_t>(rng.NextBounded(8400));
    line += types::FormatDateIso(days);
  }
  size_t fillers = num_fields_ - 3;
  if (rc.short_row && fillers > 0) --fillers;  // drop one field: data error
  for (size_t f = 0; f < fillers; ++f) {
    line += spec_.delimiter;
    line += rng.NextAlnum(filler_width_);
  }
  return line;
}

Status CustomerDataset::WriteDataFile(const std::string& path) const {
  common::ByteBuffer buf;
  buf.reserve(spec_.rows * (spec_.row_bytes + 2));
  for (uint64_t i = 0; i < spec_.rows; ++i) {
    buf.AppendString(MakeLine(i));
    buf.AppendByte('\n');
  }
  return cloud::WriteFileBytes(path, buf.AsSlice());
}

std::vector<legacy::VartextRecord> CustomerDataset::MakeRecords() const {
  std::vector<legacy::VartextRecord> records;
  records.reserve(spec_.rows);
  for (uint64_t i = 0; i < spec_.rows; ++i) {
    std::string line = MakeLine(i);
    legacy::VartextRecord record;
    size_t start = 0;
    for (size_t p = 0; p <= line.size(); ++p) {
      if (p == line.size() || line[p] == spec_.delimiter) {
        legacy::VartextField field;
        field.text = line.substr(start, p - start);
        field.null = field.text.empty();
        record.push_back(std::move(field));
        start = p + 1;
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::string CustomerDataset::MakeImportScript(const std::string& host,
                                              const std::string& target_table,
                                              const std::string& data_file, int sessions,
                                              uint64_t max_errors) const {
  Schema layout = MakeLayout();
  std::string script;
  script += ".logon " + host + "/etl_user,etl_pass;\n";
  script += ".sessions " + std::to_string(sessions) + ";\n";
  if (max_errors != 0) script += ".set max_errors " + std::to_string(max_errors) + ";\n";
  script += ".layout CustLayout;\n";
  for (const auto& f : layout.fields()) {
    script += ".field " + f.name + " " + f.type.ToString() + ";\n";
  }
  script += ".begin import tables " + target_table + " errortables " + target_table + "_ET " +
            target_table + "_UV;\n";
  script += ".dml label InsApply;\n";
  script += MakeInsertDml(target_table) + ";\n";
  script += ".import infile " + data_file + " format vartext '" +
            std::string(1, spec_.delimiter) + "' layout CustLayout apply InsApply;\n";
  script += ".end load;\n";
  script += ".logoff;\n";
  return script;
}

}  // namespace hyperq::workload
