#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "legacy/row_format.h"
#include "types/schema.h"

/// \file dataset.h
/// Synthetic workload generator standing in for the paper's real-world
/// retail ingestion jobs (customer/sales feeds): delimited input files with
/// a unique key, a name, a date column, and filler columns padding rows to a
/// target width. Supports injecting the two error classes of Section 7:
/// malformed dates (transformation errors) and duplicate keys (uniqueness
/// violations), plus field-count data errors.

namespace hyperq::workload {

struct DatasetSpec {
  uint64_t rows = 10000;
  /// Approximate bytes per row in the delimited file.
  size_t row_bytes = 500;
  /// Total columns; 0 derives a count from row_bytes (filler columns of
  /// ~48 bytes each). Minimum 3 (CUST_ID, CUST_NAME, JOIN_DATE).
  size_t num_fields = 0;
  /// Fraction of rows whose JOIN_DATE is malformed (DML transformation
  /// errors).
  double bad_date_fraction = 0;
  /// Fraction of rows that duplicate an earlier CUST_ID (uniqueness
  /// violations).
  double duplicate_fraction = 0;
  /// Fraction of rows with a missing field (data errors at conversion).
  double short_row_fraction = 0;
  uint64_t seed = 42;
  char delimiter = '|';
};

class CustomerDataset {
 public:
  explicit CustomerDataset(DatasetSpec spec);

  const DatasetSpec& spec() const { return spec_; }
  size_t num_fields() const { return num_fields_; }

  /// Vartext load layout: every field VARCHAR (legacy vartext restriction).
  types::Schema MakeLayout() const;

  /// CREATE TABLE DDL (legacy dialect) for the typed target table, with a
  /// UNIQUE PRIMARY INDEX on CUST_ID.
  std::string MakeTargetDdl(const std::string& table_name) const;

  /// The job's DML transformation (legacy dialect): trims the key/name and
  /// casts JOIN_DATE via a legacy FORMAT clause — Example 2.1 shape.
  std::string MakeInsertDml(const std::string& table_name) const;

  /// Generates the delimited line for row `i` (0-based). Deterministic.
  std::string MakeLine(uint64_t i) const;

  /// Writes the whole data file.
  common::Status WriteDataFile(const std::string& path) const;

  /// All records as parsed vartext (for the baseline loader).
  std::vector<legacy::VartextRecord> MakeRecords() const;

  /// ETL script running the whole job (Example 2.1 shape), parameterized by
  /// host, sessions and data file.
  std::string MakeImportScript(const std::string& host, const std::string& target_table,
                               const std::string& data_file, int sessions,
                               uint64_t max_errors = 0) const;

  /// Number of rows whose JOIN_DATE was generated malformed.
  uint64_t expected_bad_dates() const { return bad_dates_; }
  uint64_t expected_duplicates() const { return duplicates_; }
  uint64_t expected_short_rows() const { return short_rows_; }

 private:
  /// Per-row deterministic classification (same decision in MakeLine and the
  /// expected_* counters).
  struct RowClass {
    bool bad_date;
    bool duplicate;
    bool short_row;
  };
  RowClass Classify(uint64_t i) const;

  DatasetSpec spec_;
  size_t num_fields_;
  size_t filler_width_;
  uint64_t bad_dates_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t short_rows_ = 0;
};

}  // namespace hyperq::workload
