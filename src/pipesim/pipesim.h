#pragma once

#include <cstdint>

/// \file pipesim.h
/// Discrete-event simulation of the Hyper-Q acquisition pipeline used for
/// the core-count scalability study (paper Figure 9). The host machine for
/// this reproduction has 2 cores, so 2-16 core scaling cannot be measured
/// directly; instead the pipeline (sessions -> credit pool -> converter pool
/// -> writer pool, with immediate acks and credit-based back-pressure) is
/// simulated with per-stage costs calibrated from the real DataConverter and
/// FileWriter implementations. DESIGN.md documents this substitution.
///
/// Model (mirrors src/hyperq exactly):
///   - each session receives its chunks serially; receiving chunk i+1 begins
///     as soon as chunk i is acknowledged;
///   - a chunk is acknowledged after a credit is acquired (an empty pool
///     blocks the session: back-pressure);
///   - converter workers drain a FIFO of pending chunks;
///   - converted chunks queue to writer workers; the credit is returned when
///     a writer STARTS the chunk (just before the disk write);
///   - a fixed setup/teardown cost is paid once per job.

namespace hyperq::pipesim {

struct PipeSimParams {
  int sessions = 4;
  int converter_workers = 2;
  int file_writers = 1;
  uint64_t credits = 64;
  uint64_t chunks = 1000;
  double recv_seconds_per_chunk = 0.0005;
  double convert_seconds_per_chunk = 0.002;
  double write_seconds_per_chunk = 0.0005;
  double setup_seconds = 0.5;  ///< startup + teardown, core-count independent
  /// Design ablation (Section 5): if true, the ack (and thus the session's
  /// next receive) waits until the chunk was written to disk — the
  /// synchronized-pipeline alternative Hyper-Q rejects in favour of
  /// immediate acks + credits.
  bool ack_after_write = false;
};

struct PipeSimResult {
  double total_seconds = 0;
  uint64_t backpressure_blocks = 0;  ///< credit waits with an empty pool
  double converter_busy_seconds = 0;
  double converter_utilization = 0;  ///< busy / (workers * span)
  uint64_t peak_in_flight = 0;       ///< max credits simultaneously held
};

/// Runs the simulation to completion (deterministic).
PipeSimResult SimulateAcquisition(const PipeSimParams& params);

}  // namespace hyperq::pipesim
