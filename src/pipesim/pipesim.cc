#include "pipesim/pipesim.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <vector>

namespace hyperq::pipesim {

namespace {

enum class EventKind : uint8_t { kRecvDone, kConvertDone, kWriteDone };

struct Event {
  double time;
  EventKind kind;
  int actor;      ///< session / converter / writer index
  uint64_t chunk;

  bool operator>(const Event& other) const { return time > other.time; }
};

}  // namespace

PipeSimResult SimulateAcquisition(const PipeSimParams& params) {
  PipeSimResult result;
  const int sessions = std::max(1, params.sessions);
  const int converters = std::max(1, params.converter_workers);
  const int writers = std::max(1, params.file_writers);
  const uint64_t total_chunks = params.chunks;

  // Chunks per session, round-robin.
  std::vector<uint64_t> session_remaining(sessions, total_chunks / sessions);
  for (uint64_t i = 0; i < total_chunks % sessions; ++i) ++session_remaining[i];

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;

  uint64_t credits_available = std::max<uint64_t>(1, params.credits);
  uint64_t credits_held = 0;

  std::deque<int> sessions_waiting_credit;   // blocked at acquire
  std::deque<uint64_t> convert_queue;        // chunks awaiting a converter
  std::deque<uint64_t> write_queue;          // converted chunks awaiting a writer
  std::vector<bool> converter_busy(converters, false);
  std::vector<bool> writer_busy(writers, false);

  double now = 0;
  double last_write_end = 0;
  uint64_t next_chunk_id = 0;

  // Kick off: every session starts receiving its first chunk.
  for (int s = 0; s < sessions; ++s) {
    if (session_remaining[s] > 0) {
      events.push(Event{params.recv_seconds_per_chunk, EventKind::kRecvDone, s, 0});
    }
  }

  auto try_start_converter = [&] {
    for (int c = 0; c < converters && !convert_queue.empty(); ++c) {
      if (converter_busy[c]) continue;
      uint64_t chunk = convert_queue.front();
      convert_queue.pop_front();
      converter_busy[c] = true;
      events.push(Event{now + params.convert_seconds_per_chunk, EventKind::kConvertDone, c, chunk});
      result.converter_busy_seconds += params.convert_seconds_per_chunk;
    }
  };

  std::deque<int> pending_session_starts;  // sessions granted a credit; ack+next recv

  std::vector<int> chunk_session;  // chunk id -> originating session

  auto grant_credit = [&](int session) {
    --credits_available;
    ++credits_held;
    result.peak_in_flight = std::max(result.peak_in_flight, credits_held);
    // Credit acquired: chunk enters the conversion stage.
    chunk_session.push_back(session);
    convert_queue.push_back(next_chunk_id++);
    try_start_converter();
    --session_remaining[session];
    // Immediate-ack design: the session starts receiving its next chunk now.
    // Synchronized alternative: the ack waits for the disk write (see
    // kWriteDone handling below).
    if (!params.ack_after_write && session_remaining[session] > 0) {
      events.push(
          Event{now + params.recv_seconds_per_chunk, EventKind::kRecvDone, session, 0});
    }
  };

  auto try_start_writer = [&] {
    for (int w = 0; w < writers && !write_queue.empty(); ++w) {
      if (writer_busy[w]) continue;
      uint64_t chunk = write_queue.front();
      write_queue.pop_front();
      writer_busy[w] = true;
      // Credit returned just before the write.
      ++credits_available;
      --credits_held;
      if (!sessions_waiting_credit.empty() && credits_available > 0) {
        int session = sessions_waiting_credit.front();
        sessions_waiting_credit.pop_front();
        grant_credit(session);
      }
      events.push(Event{now + params.write_seconds_per_chunk, EventKind::kWriteDone, w, chunk});
    }
  };

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    now = ev.time;
    switch (ev.kind) {
      case EventKind::kRecvDone: {
        // Session finished receiving a chunk; it must acquire a credit
        // before acknowledging.
        if (credits_available > 0) {
          grant_credit(ev.actor);
        } else {
          ++result.backpressure_blocks;
          sessions_waiting_credit.push_back(ev.actor);
        }
        break;
      }
      case EventKind::kConvertDone: {
        converter_busy[ev.actor] = false;
        write_queue.push_back(ev.chunk);
        try_start_writer();
        try_start_converter();
        break;
      }
      case EventKind::kWriteDone: {
        writer_busy[ev.actor] = false;
        last_write_end = now;
        if (params.ack_after_write) {
          int session = chunk_session[ev.chunk];
          if (session_remaining[session] > 0) {
            events.push(Event{now + params.recv_seconds_per_chunk, EventKind::kRecvDone,
                              session, 0});
          }
        }
        try_start_writer();
        break;
      }
    }
  }

  double span = last_write_end;
  result.total_seconds = params.setup_seconds + span;
  if (span > 0) {
    result.converter_utilization =
        result.converter_busy_seconds / (static_cast<double>(converters) * span);
  }
  return result;
}

}  // namespace hyperq::pipesim
