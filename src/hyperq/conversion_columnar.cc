// hqlint:hotpath
#include "hyperq/conversion_columnar.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "cdw/staging_binary.h"
#include "hyperq/conversion_text.h"
#include "hyperq/quality.h"
#include "legacy/errors.h"
#include "legacy/row_format.h"
#include "types/date.h"
#include "types/type_mapping.h"

/// \file conversion_columnar.cc
/// HQB1 columnar kernels and chunk drivers: the encode half of the binary
/// direct-pipe load path. One kernel per SOURCE TypeId decodes a field
/// straight off the chunk's ByteReader — exactly the wire bytes the CSV
/// kernels consume — and appends the typed staging value to the field's
/// ColumnSink. The drivers mirror the CSV drivers' chunk loop byte for byte
/// on the error side: identical RecordError codes/messages, per-record
/// rollback by truncation, vartext framing errors poisoning the chunk.

namespace hyperq::core {

using common::ByteBuffer;
using common::ByteReader;
using common::Slice;
using common::Status;
using types::TypeId;

namespace {

using FieldPlan = ConversionPlan::FieldPlan;

Status KernelColBoolean(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col,
                        QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(uint8_t b, body->ReadByte());
  if (f.checks != nullptr) QcPresence(*f.checks, null, q);
  col->data.AppendByte(null ? 0 : (b != 0 ? 1 : 0));
  return Status::OK();
}

Status KernelColInt8(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col,
                     QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(int8_t v, body->ReadI8());
  if (f.checks != nullptr) QcNumeric(*f.checks, null, static_cast<double>(v), q);
  // BYTEINT stages as SMALLINT (the CDW has no 1-byte integer).
  col->data.AppendI16(null ? 0 : v);
  return Status::OK();
}

Status KernelColInt16(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col,
                      QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(int16_t v, body->ReadI16());
  if (f.checks != nullptr) QcNumeric(*f.checks, null, static_cast<double>(v), q);
  col->data.AppendI16(null ? 0 : v);
  return Status::OK();
}

Status KernelColInt32(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col,
                      QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(int32_t v, body->ReadI32());
  if (f.checks != nullptr) QcNumeric(*f.checks, null, static_cast<double>(v), q);
  col->data.AppendI32(null ? 0 : v);
  return Status::OK();
}

Status KernelColInt64(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col,
                      QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(int64_t v, body->ReadI64());
  if (f.checks != nullptr) QcNumeric(*f.checks, null, static_cast<double>(v), q);
  col->data.AppendI64(null ? 0 : v);
  return Status::OK();
}

Status KernelColFloat64(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col,
                        QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(double v, body->ReadF64());
  if (f.checks != nullptr) QcNumeric(*f.checks, null, v, q);
  col->data.AppendF64(null ? 0.0 : v);
  return Status::OK();
}

Status KernelColDecimal(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col,
                        QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(int64_t unscaled, body->ReadI64());
  // Quality range bounds are pre-scaled to unscaled units at compile.
  if (f.checks != nullptr) QcNumeric(*f.checks, null, static_cast<double>(unscaled), q);
  col->data.AppendI64(null ? 0 : unscaled);
  return Status::OK();
}

Status KernelColDate(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col,
                     QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(int32_t enc, body->ReadI32());
  if (null) {
    if (f.checks != nullptr) QcNullField(*f.checks, q);
    col->data.AppendI32(0);
    return Status::OK();
  }
  HQ_ASSIGN_OR_RETURN(types::DateDays days, legacy::LegacyDateDecode(enc));
  if (f.checks != nullptr) QcNumeric(*f.checks, false, static_cast<double>(days), q);
  col->data.AppendI32(days);
  return Status::OK();
}

Status KernelColTimestamp(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col,
                          QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(Slice text, body->ReadSlice(legacy::kLegacyTimestampWidth));
  if (null) {
    if (f.checks != nullptr) QcNullField(*f.checks, q);
    col->data.AppendI64(0);
    return Status::OK();
  }
  HQ_ASSIGN_OR_RETURN(types::TimestampMicros ts, types::ParseTimestampIso(text.ToStringView()));
  if (f.checks != nullptr) QcNumeric(*f.checks, false, static_cast<double>(ts), q);
  col->data.AppendI64(ts);
  return Status::OK();
}

Status KernelColChar(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col,
                     QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(Slice text, body->ReadSlice(static_cast<size_t>(f.length)));
  if (f.checks != nullptr) QcString(*f.checks, null, reinterpret_cast<const char*>(text.data()), text.size(), q);
  if (null) {
    col->data.resize(col->data.size() + static_cast<size_t>(f.length));  // zero-filled slot
  } else {
    col->data.AppendSlice(text);
  }
  return Status::OK();
}

/// CHAR wider than the CDW limit stages as VARCHAR: varlen cell, no padding.
Status KernelColCharVarlen(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col,
                           QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(Slice text, body->ReadSlice(static_cast<size_t>(f.length)));
  if (f.checks != nullptr) QcString(*f.checks, null, reinterpret_cast<const char*>(text.data()), text.size(), q);
  if (!null) col->data.AppendSlice(text);
  return Status::OK();
}

Status KernelColVarchar(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col,
                        QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(Slice text, body->ReadLengthPrefixed16());
  if (f.checks != nullptr) QcString(*f.checks, null, reinterpret_cast<const char*>(text.data()), text.size(), q);
  if (!null) col->data.AppendSlice(text);
  return Status::OK();
}

}  // namespace

ColumnKernelInfo ColumnKernelFor(const types::TypeDesc& source_type) {
  switch (source_type.id) {
    case TypeId::kBoolean:
      return {KernelColBoolean, 1};
    case TypeId::kInt8:
      return {KernelColInt8, 2};  // widened to SMALLINT in staging
    case TypeId::kInt16:
      return {KernelColInt16, 2};
    case TypeId::kInt32:
      return {KernelColInt32, 4};
    case TypeId::kInt64:
      return {KernelColInt64, 8};
    case TypeId::kFloat64:
      return {KernelColFloat64, 8};
    case TypeId::kDecimal:
      return {KernelColDecimal, 8};
    case TypeId::kDate:
      return {KernelColDate, 4};
    case TypeId::kTimestamp:
      return {KernelColTimestamp, 8};
    case TypeId::kChar: {
      auto mapped = types::MapLegacyTypeToCdw(source_type);
      if (mapped.ok() && mapped.ValueOrDie().id == TypeId::kVarchar) {
        return {KernelColCharVarlen, 0};
      }
      return {KernelColChar, static_cast<uint32_t>(source_type.length)};
    }
    case TypeId::kVarchar:
      return {KernelColVarchar, 0};
  }
  return {KernelColVarchar, 0};  // unreachable: TypeId is exhaustive
}

ColumnarChunkBuilder::ColumnarChunkBuilder(const std::vector<uint32_t>& target_widths)
    : cols_(target_widths.size()), pending_null_(target_widths.size(), 0) {
  for (size_t i = 0; i < target_widths.size(); ++i) cols_[i].fixed_width = target_widths[i];
}

void ColumnarChunkBuilder::AppendNullCell(size_t i) {
  ColumnSink& s = cols_[i];
  if (s.fixed_width != 0) s.data.resize(s.data.size() + s.fixed_width);  // zero-filled slot
  pending_null_[i] = 1;
}

void ColumnarChunkBuilder::CommitRow(uint64_t row_number) {
  cols_.back().data.AppendI64(static_cast<int64_t>(row_number));  // HQ_ROWNUM
  const uint8_t bit = static_cast<uint8_t>(1u << (rows_ & 7));
  const bool new_byte = (rows_ & 7) == 0;
  for (size_t c = 0; c < cols_.size(); ++c) {
    ColumnSink& s = cols_[c];
    if (s.fixed_width == 0) s.offsets.push_back(static_cast<uint32_t>(s.data.size()));
    if (new_byte) s.nulls.push_back(0);
    if (pending_null_[c] != 0) s.nulls.back() |= bit;
    pending_null_[c] = 0;
  }
  ++rows_;
}

void ColumnarChunkBuilder::RollbackRow() {
  // Offsets and bitmap bits are only written at commit, so the committed
  // state is fully determined by rows_: truncate each column's cell bytes
  // back to it and drop the pending null marks.
  for (ColumnSink& s : cols_) {
    s.data.resize(s.fixed_width != 0 ? static_cast<size_t>(rows_) * s.fixed_width
                                     : (s.offsets.empty() ? 0 : s.offsets.back()));
  }
  std::fill(pending_null_.begin(), pending_null_.end(), 0);
}

void ColumnarChunkBuilder::Finish(const ByteBuffer& header_template, ByteBuffer* out) const {
  if (rows_ == 0) return;  // all-bad chunk stages zero bytes (CSV parity)
  const size_t base = out->size();
  out->AppendSlice(header_template.AsSlice());
  out->PatchU32(base + cdw::kHqb1RowCountOffset, rows_);
  for (const ColumnSink& s : cols_) {
    out->AppendBytes(s.nulls.data(), s.nulls.size());
    if (s.fixed_width != 0) {
      out->AppendSlice(s.data.AsSlice());
      continue;
    }
    out->AppendU32(static_cast<uint32_t>(s.data.size()));
    for (uint32_t end : s.offsets) out->AppendU32(end);
    out->AppendSlice(s.data.AsSlice());
  }
}

void ConversionPlan::AttachBinaryStaging(const types::Schema& source_layout,
                                         const types::Schema& staging_schema) {
  staging_format_ = cdw::StagingFormat::kBinary;
  header_template_.clear();
  cdw::BuildBlockHeader(staging_schema, &header_template_);
  target_widths_.clear();
  target_widths_.reserve(staging_schema.num_fields());
  size_t fixed = 0;
  size_t nvarlen = 0;
  for (const auto& field : staging_schema.fields()) {
    auto w = static_cast<uint32_t>(cdw::BinaryFixedWidth(field.type.id, field.type.length));
    target_widths_.push_back(w);
    if (w == 0) {
      ++nvarlen;
    } else {
      fixed += w;
    }
  }
  for (size_t i = 0; i < fields_.size(); ++i) {
    ColumnKernelInfo info = ColumnKernelFor(source_layout.field(i).type);
    fields_[i].col_kernel = info.kernel;
    fields_[i].staging_width = info.staging_width;
  }
  per_row_binary_hint_ = fixed + 4 * nvarlen + (staging_schema.num_fields() + 7) / 8;
}

Status ConversionPlan::ExecuteColumnarBinary(const ConversionInput& input,
                                             ConvertedChunk* out) const {
  ByteReader reader(Slice(input.chunk.payload));
  uint64_t row_number = input.first_row_number;
  ColumnarChunkBuilder builder(target_widths_);
  const CompiledQuality* cq = quality_;
  QualityScratch qs;
  if (cq != nullptr) qs.Init(*cq);
  while (!reader.AtEnd()) {
    if (cq != nullptr) qs.BeginRow();
    Slice record;
    Status record_status = [&]() -> Status {
      HQ_ASSIGN_OR_RETURN(record, reader.ReadLengthPrefixed16());
      ByteReader body(record);
      HQ_ASSIGN_OR_RETURN(Slice indicators, body.ReadSlice(indicator_bytes_));
      for (size_t i = 0; i < fields_.size(); ++i) {
        const bool null = (indicators[i / 8] & (0x80u >> (i % 8))) != 0;
        if (null) builder.MarkNull(i);
        HQ_RETURN_NOT_OK(fields_[i].col_kernel(fields_[i], &body, null, builder.col(i), &qs));
      }
      if (!body.AtEnd()) {
        return Status::ProtocolError("trailing bytes in legacy binary record");
      }
      return Status::OK();
    }();
    if (!record_status.ok()) {
      // Positional decode: a bad record invalidates the rest of the chunk.
      builder.RollbackRow();
      out->errors.push_back(RecordError{row_number, legacy::kErrFormatViolation, "",
                                        record_status.message() +
                                            " (remainder of chunk skipped)"});
      break;
    }
    if (cq != nullptr) {
      QcFinishRow(&qs);
      qs.CommitRowStats();
      if (qs.row_kind != QualityKind::kNone) {
        // Record-atomic diversion: drop the staged cells and re-render the
        // record through the TEXT kernels into the quarantine CSV stream
        // (quarantine is always CSV diagnostics, even for HQB1 staging).
        // The re-render cannot fail — the same wire bytes just decoded —
        // and its redundant check-op output is row-local state already
        // merged by CommitRowStats, discarded at the next BeginRow.
        builder.RollbackRow();
        const size_t qmark = out->qrtn.size();
        Status rerender = BinaryBodyToCsv(record, row_number, &out->qrtn, &qs);
        if (rerender.ok()) {
          out->qrtn.resize(out->qrtn.size() - 1);  // suffix re-adds the '\n'
          out->qrtn.AppendString(cq->constraint(qs.row_id).csv_suffix);
          out->qrtn.AppendByte('\n');
          ++qs.rows_quarantined;
        } else {
          out->qrtn.resize(qmark);
        }
        ++row_number;
        continue;
      }
    }
    builder.CommitRow(row_number);
    ++out->rows_out;
    ++row_number;
  }
  const size_t capacity = out->csv.vector().capacity();
  builder.Finish(header_template_, &out->csv);
  if (out->csv.vector().capacity() != capacity) ++out->csv_reallocs;
  if (cq != nullptr) FinishChunkQuality(*cq, qs, &out->quality);
  return Status::OK();
}

Status ConversionPlan::ExecuteColumnarVartext(const ConversionInput& input,
                                              ConvertedChunk* out) const {
  ByteReader reader(Slice(input.chunk.payload));
  uint64_t row_number = input.first_row_number;
  const size_t expected = fields_.size();
  ColumnarChunkBuilder builder(target_widths_);
  const CompiledQuality* cq = quality_;
  // Raw pointer into the field table: vector::operator[] is an opaque call
  // in unoptimized builds, and this lookup sits inside the per-field split
  // loop (the bench-smoke quality-overhead gate measures that build).
  const FieldPlan* field_plans = fields_.data();
  QualityScratch qs;
  if (cq != nullptr) qs.Init(*cq);
  while (!reader.AtEnd()) {
    auto line = reader.ReadLengthPrefixed16();
    if (!line.ok()) {
      // A framing error poisons the rest of the chunk (reference semantics).
      if (cq != nullptr) FinishChunkQuality(*cq, qs, &out->quality);
      return line.status().WithContext("chunk " + std::to_string(input.chunk.chunk_seq));  // hqlint:allow(per-row-alloc)
    }
    std::string_view text = line.ValueOrDie().ToStringView();
    // Pass 1: arity. Counting first means a short record stages nothing at
    // all — no rollback needed.
    size_t nfields = 1;
    for (char c : text) {
      if (c == legacy_delimiter_) ++nfields;
    }
    if (nfields != expected) {
      out->errors.push_back(
          RecordError{row_number, legacy::kErrFieldCountMismatch, "",
                      "vartext record has " + std::to_string(nfields) +          // hqlint:allow(per-row-alloc)
                          " fields, layout expects " + std::to_string(expected)});  // hqlint:allow(per-row-alloc)
      ++row_number;
      continue;
    }
    if (cq != nullptr) qs.BeginRow();
    // Pass 2: emit. Empty vartext field == NULL (legacy rule).
    size_t start = 0;
    size_t fidx = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == legacy_delimiter_) {
        // Unchecked construction: start <= i <= size() always holds, and
        // substr's bounds check would put __throw_out_of_range_fmt on the
        // hot path (hqcheck hotpath-symbol).
        const size_t flen = i - start;
        std::string_view field(text.data() + start, flen);
        // Vartext has no kernels: the quality check op runs fused into the
        // split loop (identical to the CSV vartext driver). The guard is the
        // checks pointer itself, so both gate modes pay the same branch.
        // Raw pointer+length arguments: string_view accessors are opaque
        // calls in unoptimized builds (the overhead gate's build).
        const QualityFieldChecks* checks = field_plans[fidx].checks;
        if (checks != nullptr) QcString(*checks, flen == 0, text.data() + start, flen, &qs);
        if (field.empty()) {
          builder.MarkNull(fidx);
        } else {
          builder.col(fidx)->data.AppendString(field);
        }
        ++fidx;
        start = i + 1;
      }
    }
    if (cq != nullptr) {
      QcFinishRow(&qs);
      qs.CommitRowStats();
      if (qs.row_kind != QualityKind::kNone) {
        // Drop the staged cells (nothing committed yet: RollbackRow also
        // clears the pending null marks) and re-emit the raw line as the
        // quarantine CSV record.
        builder.RollbackRow();
        size_t qstart = 0;
        size_t qidx = 0;
        for (size_t i = 0; i <= text.size(); ++i) {
          if (i == text.size() || text[i] == legacy_delimiter_) {
            if (qidx != 0) out->qrtn.AppendByte(static_cast<uint8_t>(csv_delimiter_));
            std::string_view field(text.data() + qstart, i - qstart);
            if (!field.empty()) {
              conversion_detail::AppendCsvText(field, csv_delimiter_, &out->qrtn);
            }
            ++qidx;
            qstart = i + 1;
          }
        }
        out->qrtn.AppendByte(static_cast<uint8_t>(csv_delimiter_));
        conversion_detail::AppendIntText(row_number, csv_delimiter_, &out->qrtn);
        out->qrtn.AppendString(cq->constraint(qs.row_id).csv_suffix);
        out->qrtn.AppendByte('\n');
        ++qs.rows_quarantined;
        ++row_number;
        continue;
      }
    }
    builder.CommitRow(row_number);
    ++out->rows_out;
    ++row_number;
  }
  const size_t capacity = out->csv.vector().capacity();
  builder.Finish(header_template_, &out->csv);
  if (out->csv.vector().capacity() != capacity) ++out->csv_reallocs;
  if (cq != nullptr) FinishChunkQuality(*cq, qs, &out->quality);
  return Status::OK();
}

Status ConversionPlan::ExecuteColumnarRemappedBinary(const ConversionInput& input,
                                                     ConvertedChunk* out) const {
  ByteReader reader(Slice(input.chunk.payload));
  uint64_t row_number = input.first_row_number;
  // Per-source-field scratch, reused across records: each holds the field's
  // typed staging cell bytes. The drift is type-stable (enforced at
  // CreateRemapped), so a matched source cell's bytes ARE the target cell's
  // bytes — distribution is a straight copy.
  std::vector<ColumnSink> scratch(fields_.size());
  for (size_t i = 0; i < fields_.size(); ++i) scratch[i].fixed_width = fields_[i].staging_width;
  std::vector<uint8_t> null_flags(fields_.size(), 0);
  ColumnarChunkBuilder builder(target_widths_);
  const CompiledQuality* cq = quality_;
  QualityScratch qs;
  if (cq != nullptr) qs.Init(*cq);
  // Per-source-field CSV text scratch for quarantine re-render, allocated
  // lazily on the first violating row (the clean path never touches it).
  std::vector<ByteBuffer> qrtn_text;
  while (!reader.AtEnd()) {
    if (cq != nullptr) qs.BeginRow();
    Slice record;
    Status record_status = [&]() -> Status {
      HQ_ASSIGN_OR_RETURN(record, reader.ReadLengthPrefixed16());
      ByteReader body(record);
      HQ_ASSIGN_OR_RETURN(Slice indicators, body.ReadSlice(indicator_bytes_));
      for (size_t i = 0; i < fields_.size(); ++i) {
        scratch[i].data.clear();
        const bool null = (indicators[i / 8] & (0x80u >> (i % 8))) != 0;
        null_flags[i] = null ? 1 : 0;
        HQ_RETURN_NOT_OK(fields_[i].col_kernel(fields_[i], &body, null, &scratch[i], &qs));
      }
      if (!body.AtEnd()) {
        return Status::ProtocolError("trailing bytes in legacy binary record");
      }
      return Status::OK();
    }();
    if (!record_status.ok()) {
      // Decode goes to scratch, so the builder holds no in-progress row and
      // nothing needs rolling back (same shape as the CSV remap path).
      out->errors.push_back(RecordError{row_number, legacy::kErrFormatViolation, "",
                                        record_status.message() +
                                            " (remainder of chunk skipped)"});
      break;
    }
    if (cq != nullptr) {
      QcFinishRow(&qs);
      qs.CommitRowStats();
      if (qs.row_kind != QualityKind::kNone) {
        // Nothing staged yet (decode went to scratch): re-decode the record
        // through the TEXT kernels into per-field text scratch and assemble
        // the quarantine CSV line in target order. Cannot fail — the same
        // wire bytes just decoded; redundant check output is row-local and
        // discarded at the next BeginRow.
        if (qrtn_text.empty()) qrtn_text.resize(fields_.size());
        ByteReader body(record);
        Status rerender = [&]() -> Status {
          HQ_RETURN_NOT_OK(body.ReadSlice(indicator_bytes_).status());
          for (size_t i = 0; i < fields_.size(); ++i) {
            qrtn_text[i].clear();
            HQ_RETURN_NOT_OK(
                fields_[i].kernel(fields_[i], &body, null_flags[i] != 0, &qrtn_text[i], &qs));
          }
          return Status::OK();
        }();
        if (rerender.ok()) {
          for (size_t t = 0; t < out_source_.size(); ++t) {
            if (t != 0) out->qrtn.AppendByte(static_cast<uint8_t>(csv_delimiter_));
            const int src = out_source_[t];
            if (src < 0 || null_flags[static_cast<size_t>(src)] != 0) continue;
            out->qrtn.AppendSlice(qrtn_text[static_cast<size_t>(src)].AsSlice());
          }
          out->qrtn.AppendByte(static_cast<uint8_t>(csv_delimiter_));
          conversion_detail::AppendIntText(row_number, csv_delimiter_, &out->qrtn);
          out->qrtn.AppendString(cq->constraint(qs.row_id).csv_suffix);
          out->qrtn.AppendByte('\n');
          ++qs.rows_quarantined;
        }
        ++row_number;
        continue;
      }
    }
    for (size_t t = 0; t < out_source_.size(); ++t) {
      const int src = out_source_[t];
      if (src < 0 || null_flags[static_cast<size_t>(src)] != 0) {
        builder.AppendNullCell(t);
        continue;
      }
      builder.col(t)->data.AppendSlice(scratch[static_cast<size_t>(src)].data.AsSlice());
    }
    builder.CommitRow(row_number);
    ++out->rows_out;
    ++row_number;
  }
  builder.Finish(header_template_, &out->csv);
  if (cq != nullptr) FinishChunkQuality(*cq, qs, &out->quality);
  return Status::OK();
}

Status ConversionPlan::ExecuteColumnarRemappedVartext(const ConversionInput& input,
                                                      ConvertedChunk* out) const {
  ByteReader reader(Slice(input.chunk.payload));
  uint64_t row_number = input.first_row_number;
  const size_t expected = fields_.size();
  std::vector<std::string_view> record_fields(expected);
  ColumnarChunkBuilder builder(target_widths_);
  const CompiledQuality* cq = quality_;
  QualityScratch qs;
  if (cq != nullptr) qs.Init(*cq);
  while (!reader.AtEnd()) {
    auto line = reader.ReadLengthPrefixed16();
    if (!line.ok()) {
      // A framing error poisons the rest of the chunk (reference semantics).
      if (cq != nullptr) FinishChunkQuality(*cq, qs, &out->quality);
      return line.status().WithContext("chunk " + std::to_string(input.chunk.chunk_seq));  // hqlint:allow(per-row-alloc)
    }
    std::string_view text = line.ValueOrDie().ToStringView();
    size_t nfields = 0;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == legacy_delimiter_) {
        // Unchecked construction: start <= i <= size() always holds.
        if (nfields < expected) {
          record_fields[nfields] = std::string_view(text.data() + start, i - start);
        }
        ++nfields;
        start = i + 1;
      }
    }
    if (nfields != expected) {
      out->errors.push_back(
          RecordError{row_number, legacy::kErrFieldCountMismatch, "",
                      "vartext record has " + std::to_string(nfields) +          // hqlint:allow(per-row-alloc)
                          " fields, layout expects " + std::to_string(expected)});  // hqlint:allow(per-row-alloc)
      ++row_number;
      continue;
    }
    if (cq != nullptr) {
      // Checks run over SOURCE fields (the wire record), as everywhere.
      qs.BeginRow();
      for (size_t i = 0; i < expected; ++i) {
        const QualityFieldChecks* checks = fields_[i].checks;
        if (checks != nullptr) {
          const std::string_view rf = record_fields[i];
          QcString(*checks, rf.empty(), rf.data(), rf.size(), &qs);
        }
      }
      QcFinishRow(&qs);
      qs.CommitRowStats();
      if (qs.row_kind != QualityKind::kNone) {
        // Nothing staged yet: emit the quarantine CSV line in target order
        // straight from the split fields.
        for (size_t t = 0; t < out_source_.size(); ++t) {
          if (t != 0) out->qrtn.AppendByte(static_cast<uint8_t>(csv_delimiter_));
          const int src = out_source_[t];
          if (src < 0) continue;
          std::string_view field = record_fields[static_cast<size_t>(src)];
          if (!field.empty()) {
            conversion_detail::AppendCsvText(field, csv_delimiter_, &out->qrtn);
          }
        }
        out->qrtn.AppendByte(static_cast<uint8_t>(csv_delimiter_));
        conversion_detail::AppendIntText(row_number, csv_delimiter_, &out->qrtn);
        out->qrtn.AppendString(cq->constraint(qs.row_id).csv_suffix);
        out->qrtn.AppendByte('\n');
        ++qs.rows_quarantined;
        ++row_number;
        continue;
      }
    }
    for (size_t t = 0; t < out_source_.size(); ++t) {
      const int src = out_source_[t];
      if (src < 0) {
        builder.AppendNullCell(t);  // target field absent from the source
        continue;
      }
      std::string_view field = record_fields[static_cast<size_t>(src)];
      if (field.empty()) {
        builder.MarkNull(t);  // empty vartext field == NULL (legacy rule)
      } else {
        builder.col(t)->data.AppendString(field);
      }
    }
    builder.CommitRow(row_number);
    ++out->rows_out;
    ++row_number;
  }
  builder.Finish(header_template_, &out->csv);
  if (cq != nullptr) FinishChunkQuality(*cq, qs, &out->quality);
  return Status::OK();
}

}  // namespace hyperq::core
