// hqlint:hotpath
#include "hyperq/conversion_columnar.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "cdw/staging_binary.h"
#include "legacy/errors.h"
#include "legacy/row_format.h"
#include "types/date.h"
#include "types/type_mapping.h"

/// \file conversion_columnar.cc
/// HQB1 columnar kernels and chunk drivers: the encode half of the binary
/// direct-pipe load path. One kernel per SOURCE TypeId decodes a field
/// straight off the chunk's ByteReader — exactly the wire bytes the CSV
/// kernels consume — and appends the typed staging value to the field's
/// ColumnSink. The drivers mirror the CSV drivers' chunk loop byte for byte
/// on the error side: identical RecordError codes/messages, per-record
/// rollback by truncation, vartext framing errors poisoning the chunk.

namespace hyperq::core {

using common::ByteBuffer;
using common::ByteReader;
using common::Slice;
using common::Status;
using types::TypeId;

namespace {

using FieldPlan = ConversionPlan::FieldPlan;

Status KernelColBoolean(const FieldPlan&, ByteReader* body, bool null, ColumnSink* col) {
  HQ_ASSIGN_OR_RETURN(uint8_t b, body->ReadByte());
  col->data.AppendByte(null ? 0 : (b != 0 ? 1 : 0));
  return Status::OK();
}

Status KernelColInt8(const FieldPlan&, ByteReader* body, bool null, ColumnSink* col) {
  HQ_ASSIGN_OR_RETURN(int8_t v, body->ReadI8());
  // BYTEINT stages as SMALLINT (the CDW has no 1-byte integer).
  col->data.AppendI16(null ? 0 : v);
  return Status::OK();
}

Status KernelColInt16(const FieldPlan&, ByteReader* body, bool null, ColumnSink* col) {
  HQ_ASSIGN_OR_RETURN(int16_t v, body->ReadI16());
  col->data.AppendI16(null ? 0 : v);
  return Status::OK();
}

Status KernelColInt32(const FieldPlan&, ByteReader* body, bool null, ColumnSink* col) {
  HQ_ASSIGN_OR_RETURN(int32_t v, body->ReadI32());
  col->data.AppendI32(null ? 0 : v);
  return Status::OK();
}

Status KernelColInt64(const FieldPlan&, ByteReader* body, bool null, ColumnSink* col) {
  HQ_ASSIGN_OR_RETURN(int64_t v, body->ReadI64());
  col->data.AppendI64(null ? 0 : v);
  return Status::OK();
}

Status KernelColFloat64(const FieldPlan&, ByteReader* body, bool null, ColumnSink* col) {
  HQ_ASSIGN_OR_RETURN(double v, body->ReadF64());
  col->data.AppendF64(null ? 0.0 : v);
  return Status::OK();
}

Status KernelColDecimal(const FieldPlan&, ByteReader* body, bool null, ColumnSink* col) {
  HQ_ASSIGN_OR_RETURN(int64_t unscaled, body->ReadI64());
  col->data.AppendI64(null ? 0 : unscaled);
  return Status::OK();
}

Status KernelColDate(const FieldPlan&, ByteReader* body, bool null, ColumnSink* col) {
  HQ_ASSIGN_OR_RETURN(int32_t enc, body->ReadI32());
  if (null) {
    col->data.AppendI32(0);
    return Status::OK();
  }
  HQ_ASSIGN_OR_RETURN(types::DateDays days, legacy::LegacyDateDecode(enc));
  col->data.AppendI32(days);
  return Status::OK();
}

Status KernelColTimestamp(const FieldPlan&, ByteReader* body, bool null, ColumnSink* col) {
  HQ_ASSIGN_OR_RETURN(Slice text, body->ReadSlice(legacy::kLegacyTimestampWidth));
  if (null) {
    col->data.AppendI64(0);
    return Status::OK();
  }
  HQ_ASSIGN_OR_RETURN(types::TimestampMicros ts, types::ParseTimestampIso(text.ToStringView()));
  col->data.AppendI64(ts);
  return Status::OK();
}

Status KernelColChar(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col) {
  HQ_ASSIGN_OR_RETURN(Slice text, body->ReadSlice(static_cast<size_t>(f.length)));
  if (null) {
    col->data.resize(col->data.size() + static_cast<size_t>(f.length));  // zero-filled slot
  } else {
    col->data.AppendSlice(text);
  }
  return Status::OK();
}

/// CHAR wider than the CDW limit stages as VARCHAR: varlen cell, no padding.
Status KernelColCharVarlen(const FieldPlan& f, ByteReader* body, bool null, ColumnSink* col) {
  HQ_ASSIGN_OR_RETURN(Slice text, body->ReadSlice(static_cast<size_t>(f.length)));
  if (!null) col->data.AppendSlice(text);
  return Status::OK();
}

Status KernelColVarchar(const FieldPlan&, ByteReader* body, bool null, ColumnSink* col) {
  HQ_ASSIGN_OR_RETURN(Slice text, body->ReadLengthPrefixed16());
  if (!null) col->data.AppendSlice(text);
  return Status::OK();
}

}  // namespace

ColumnKernelInfo ColumnKernelFor(const types::TypeDesc& source_type) {
  switch (source_type.id) {
    case TypeId::kBoolean:
      return {KernelColBoolean, 1};
    case TypeId::kInt8:
      return {KernelColInt8, 2};  // widened to SMALLINT in staging
    case TypeId::kInt16:
      return {KernelColInt16, 2};
    case TypeId::kInt32:
      return {KernelColInt32, 4};
    case TypeId::kInt64:
      return {KernelColInt64, 8};
    case TypeId::kFloat64:
      return {KernelColFloat64, 8};
    case TypeId::kDecimal:
      return {KernelColDecimal, 8};
    case TypeId::kDate:
      return {KernelColDate, 4};
    case TypeId::kTimestamp:
      return {KernelColTimestamp, 8};
    case TypeId::kChar: {
      auto mapped = types::MapLegacyTypeToCdw(source_type);
      if (mapped.ok() && mapped.ValueOrDie().id == TypeId::kVarchar) {
        return {KernelColCharVarlen, 0};
      }
      return {KernelColChar, static_cast<uint32_t>(source_type.length)};
    }
    case TypeId::kVarchar:
      return {KernelColVarchar, 0};
  }
  return {KernelColVarchar, 0};  // unreachable: TypeId is exhaustive
}

ColumnarChunkBuilder::ColumnarChunkBuilder(const std::vector<uint32_t>& target_widths)
    : cols_(target_widths.size()), pending_null_(target_widths.size(), 0) {
  for (size_t i = 0; i < target_widths.size(); ++i) cols_[i].fixed_width = target_widths[i];
}

void ColumnarChunkBuilder::AppendNullCell(size_t i) {
  ColumnSink& s = cols_[i];
  if (s.fixed_width != 0) s.data.resize(s.data.size() + s.fixed_width);  // zero-filled slot
  pending_null_[i] = 1;
}

void ColumnarChunkBuilder::CommitRow(uint64_t row_number) {
  cols_.back().data.AppendI64(static_cast<int64_t>(row_number));  // HQ_ROWNUM
  const uint8_t bit = static_cast<uint8_t>(1u << (rows_ & 7));
  const bool new_byte = (rows_ & 7) == 0;
  for (size_t c = 0; c < cols_.size(); ++c) {
    ColumnSink& s = cols_[c];
    if (s.fixed_width == 0) s.offsets.push_back(static_cast<uint32_t>(s.data.size()));
    if (new_byte) s.nulls.push_back(0);
    if (pending_null_[c] != 0) s.nulls.back() |= bit;
    pending_null_[c] = 0;
  }
  ++rows_;
}

void ColumnarChunkBuilder::RollbackRow() {
  // Offsets and bitmap bits are only written at commit, so the committed
  // state is fully determined by rows_: truncate each column's cell bytes
  // back to it and drop the pending null marks.
  for (ColumnSink& s : cols_) {
    s.data.resize(s.fixed_width != 0 ? static_cast<size_t>(rows_) * s.fixed_width
                                     : (s.offsets.empty() ? 0 : s.offsets.back()));
  }
  std::fill(pending_null_.begin(), pending_null_.end(), 0);
}

void ColumnarChunkBuilder::Finish(const ByteBuffer& header_template, ByteBuffer* out) const {
  if (rows_ == 0) return;  // all-bad chunk stages zero bytes (CSV parity)
  const size_t base = out->size();
  out->AppendSlice(header_template.AsSlice());
  out->PatchU32(base + cdw::kHqb1RowCountOffset, rows_);
  for (const ColumnSink& s : cols_) {
    out->AppendBytes(s.nulls.data(), s.nulls.size());
    if (s.fixed_width != 0) {
      out->AppendSlice(s.data.AsSlice());
      continue;
    }
    out->AppendU32(static_cast<uint32_t>(s.data.size()));
    for (uint32_t end : s.offsets) out->AppendU32(end);
    out->AppendSlice(s.data.AsSlice());
  }
}

void ConversionPlan::AttachBinaryStaging(const types::Schema& source_layout,
                                         const types::Schema& staging_schema) {
  staging_format_ = cdw::StagingFormat::kBinary;
  header_template_.clear();
  cdw::BuildBlockHeader(staging_schema, &header_template_);
  target_widths_.clear();
  target_widths_.reserve(staging_schema.num_fields());
  size_t fixed = 0;
  size_t nvarlen = 0;
  for (const auto& field : staging_schema.fields()) {
    auto w = static_cast<uint32_t>(cdw::BinaryFixedWidth(field.type.id, field.type.length));
    target_widths_.push_back(w);
    if (w == 0) {
      ++nvarlen;
    } else {
      fixed += w;
    }
  }
  for (size_t i = 0; i < fields_.size(); ++i) {
    ColumnKernelInfo info = ColumnKernelFor(source_layout.field(i).type);
    fields_[i].col_kernel = info.kernel;
    fields_[i].staging_width = info.staging_width;
  }
  per_row_binary_hint_ = fixed + 4 * nvarlen + (staging_schema.num_fields() + 7) / 8;
}

Status ConversionPlan::ExecuteColumnarBinary(const ConversionInput& input,
                                             ConvertedChunk* out) const {
  ByteReader reader(Slice(input.chunk.payload));
  uint64_t row_number = input.first_row_number;
  ColumnarChunkBuilder builder(target_widths_);
  while (!reader.AtEnd()) {
    Status record_status = [&]() -> Status {
      HQ_ASSIGN_OR_RETURN(Slice record, reader.ReadLengthPrefixed16());
      ByteReader body(record);
      HQ_ASSIGN_OR_RETURN(Slice indicators, body.ReadSlice(indicator_bytes_));
      for (size_t i = 0; i < fields_.size(); ++i) {
        const bool null = (indicators[i / 8] & (0x80u >> (i % 8))) != 0;
        if (null) builder.MarkNull(i);
        HQ_RETURN_NOT_OK(fields_[i].col_kernel(fields_[i], &body, null, builder.col(i)));
      }
      if (!body.AtEnd()) {
        return Status::ProtocolError("trailing bytes in legacy binary record");
      }
      return Status::OK();
    }();
    if (!record_status.ok()) {
      // Positional decode: a bad record invalidates the rest of the chunk.
      builder.RollbackRow();
      out->errors.push_back(RecordError{row_number, legacy::kErrFormatViolation, "",
                                        record_status.message() +
                                            " (remainder of chunk skipped)"});
      break;
    }
    builder.CommitRow(row_number);
    ++out->rows_out;
    ++row_number;
  }
  const size_t capacity = out->csv.vector().capacity();
  builder.Finish(header_template_, &out->csv);
  if (out->csv.vector().capacity() != capacity) ++out->csv_reallocs;
  return Status::OK();
}

Status ConversionPlan::ExecuteColumnarVartext(const ConversionInput& input,
                                              ConvertedChunk* out) const {
  ByteReader reader(Slice(input.chunk.payload));
  uint64_t row_number = input.first_row_number;
  const size_t expected = fields_.size();
  ColumnarChunkBuilder builder(target_widths_);
  while (!reader.AtEnd()) {
    auto line = reader.ReadLengthPrefixed16();
    if (!line.ok()) {
      // A framing error poisons the rest of the chunk (reference semantics).
      return line.status().WithContext("chunk " + std::to_string(input.chunk.chunk_seq));  // hqlint:allow(per-row-alloc)
    }
    std::string_view text = line.ValueOrDie().ToStringView();
    // Pass 1: arity. Counting first means a short record stages nothing at
    // all — no rollback needed.
    size_t nfields = 1;
    for (char c : text) {
      if (c == legacy_delimiter_) ++nfields;
    }
    if (nfields != expected) {
      out->errors.push_back(
          RecordError{row_number, legacy::kErrFieldCountMismatch, "",
                      "vartext record has " + std::to_string(nfields) +          // hqlint:allow(per-row-alloc)
                          " fields, layout expects " + std::to_string(expected)});  // hqlint:allow(per-row-alloc)
      ++row_number;
      continue;
    }
    // Pass 2: emit. Empty vartext field == NULL (legacy rule).
    size_t start = 0;
    size_t fidx = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == legacy_delimiter_) {
        // Unchecked construction: start <= i <= size() always holds, and
        // substr's bounds check would put __throw_out_of_range_fmt on the
        // hot path (hqcheck hotpath-symbol).
        std::string_view field(text.data() + start, i - start);
        if (field.empty()) {
          builder.MarkNull(fidx);
        } else {
          builder.col(fidx)->data.AppendString(field);
        }
        ++fidx;
        start = i + 1;
      }
    }
    builder.CommitRow(row_number);
    ++out->rows_out;
    ++row_number;
  }
  const size_t capacity = out->csv.vector().capacity();
  builder.Finish(header_template_, &out->csv);
  if (out->csv.vector().capacity() != capacity) ++out->csv_reallocs;
  return Status::OK();
}

Status ConversionPlan::ExecuteColumnarRemappedBinary(const ConversionInput& input,
                                                     ConvertedChunk* out) const {
  ByteReader reader(Slice(input.chunk.payload));
  uint64_t row_number = input.first_row_number;
  // Per-source-field scratch, reused across records: each holds the field's
  // typed staging cell bytes. The drift is type-stable (enforced at
  // CreateRemapped), so a matched source cell's bytes ARE the target cell's
  // bytes — distribution is a straight copy.
  std::vector<ColumnSink> scratch(fields_.size());
  for (size_t i = 0; i < fields_.size(); ++i) scratch[i].fixed_width = fields_[i].staging_width;
  std::vector<uint8_t> null_flags(fields_.size(), 0);
  ColumnarChunkBuilder builder(target_widths_);
  while (!reader.AtEnd()) {
    Status record_status = [&]() -> Status {
      HQ_ASSIGN_OR_RETURN(Slice record, reader.ReadLengthPrefixed16());
      ByteReader body(record);
      HQ_ASSIGN_OR_RETURN(Slice indicators, body.ReadSlice(indicator_bytes_));
      for (size_t i = 0; i < fields_.size(); ++i) {
        scratch[i].data.clear();
        const bool null = (indicators[i / 8] & (0x80u >> (i % 8))) != 0;
        null_flags[i] = null ? 1 : 0;
        HQ_RETURN_NOT_OK(fields_[i].col_kernel(fields_[i], &body, null, &scratch[i]));
      }
      if (!body.AtEnd()) {
        return Status::ProtocolError("trailing bytes in legacy binary record");
      }
      return Status::OK();
    }();
    if (!record_status.ok()) {
      // Decode goes to scratch, so the builder holds no in-progress row and
      // nothing needs rolling back (same shape as the CSV remap path).
      out->errors.push_back(RecordError{row_number, legacy::kErrFormatViolation, "",
                                        record_status.message() +
                                            " (remainder of chunk skipped)"});
      break;
    }
    for (size_t t = 0; t < out_source_.size(); ++t) {
      const int src = out_source_[t];
      if (src < 0 || null_flags[static_cast<size_t>(src)] != 0) {
        builder.AppendNullCell(t);
        continue;
      }
      builder.col(t)->data.AppendSlice(scratch[static_cast<size_t>(src)].data.AsSlice());
    }
    builder.CommitRow(row_number);
    ++out->rows_out;
    ++row_number;
  }
  builder.Finish(header_template_, &out->csv);
  return Status::OK();
}

Status ConversionPlan::ExecuteColumnarRemappedVartext(const ConversionInput& input,
                                                      ConvertedChunk* out) const {
  ByteReader reader(Slice(input.chunk.payload));
  uint64_t row_number = input.first_row_number;
  const size_t expected = fields_.size();
  std::vector<std::string_view> record_fields(expected);
  ColumnarChunkBuilder builder(target_widths_);
  while (!reader.AtEnd()) {
    auto line = reader.ReadLengthPrefixed16();
    if (!line.ok()) {
      // A framing error poisons the rest of the chunk (reference semantics).
      return line.status().WithContext("chunk " + std::to_string(input.chunk.chunk_seq));  // hqlint:allow(per-row-alloc)
    }
    std::string_view text = line.ValueOrDie().ToStringView();
    size_t nfields = 0;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == legacy_delimiter_) {
        // Unchecked construction: start <= i <= size() always holds.
        if (nfields < expected) {
          record_fields[nfields] = std::string_view(text.data() + start, i - start);
        }
        ++nfields;
        start = i + 1;
      }
    }
    if (nfields != expected) {
      out->errors.push_back(
          RecordError{row_number, legacy::kErrFieldCountMismatch, "",
                      "vartext record has " + std::to_string(nfields) +          // hqlint:allow(per-row-alloc)
                          " fields, layout expects " + std::to_string(expected)});  // hqlint:allow(per-row-alloc)
      ++row_number;
      continue;
    }
    for (size_t t = 0; t < out_source_.size(); ++t) {
      const int src = out_source_[t];
      if (src < 0) {
        builder.AppendNullCell(t);  // target field absent from the source
        continue;
      }
      std::string_view field = record_fields[static_cast<size_t>(src)];
      if (field.empty()) {
        builder.MarkNull(t);  // empty vartext field == NULL (legacy rule)
      } else {
        builder.col(t)->data.AppendString(field);
      }
    }
    builder.CommitRow(row_number);
    ++out->rows_out;
    ++row_number;
  }
  builder.Finish(header_template_, &out->csv);
  return Status::OK();
}

}  // namespace hyperq::core
