#include "hyperq/export_job.h"

#include "legacy/row_format.h"
#include "sql/transpiler.h"

namespace hyperq::core {

using common::Result;
using common::Status;
using types::Row;
using types::Value;

Result<std::shared_ptr<ExportJob>> ExportJob::Create(const std::string& job_id,
                                                     const legacy::BeginExportBody& begin,
                                                     cdw::CdwServer* cdw,
                                                     const HyperQOptions& options) {
  // PXC: transpile the legacy SELECT and run it in the CDW.
  HQ_ASSIGN_OR_RETURN(std::string cdw_sql, sql::TranspileSqlText(begin.select_sql));
  HQ_ASSIGN_OR_RETURN(cdw::ExecResult result, cdw->ExecuteSql(cdw_sql));
  if (result.schema.num_fields() == 0) {
    return Status::Invalid("export statement did not produce a result set");
  }
  TdfCursorOptions cursor_options;
  cursor_options.chunk_rows = options.export_chunk_rows;
  cursor_options.prefetch = options.export_prefetch_chunks;
  auto cursor =
      std::make_unique<TdfCursor>(result.schema, std::move(result.rows), cursor_options);
  return std::shared_ptr<ExportJob>(
      new ExportJob(job_id, begin, std::move(result.schema), std::move(cursor)));
}

ExportJob::ExportJob(std::string job_id, legacy::BeginExportBody begin, types::Schema schema,
                     std::unique_ptr<TdfCursor> cursor)
    : job_id_(std::move(job_id)),
      begin_(std::move(begin)),
      schema_(std::move(schema)),
      cursor_(std::move(cursor)) {}

Result<legacy::ExportChunkBody> ExportJob::GetChunk(uint64_t seq) {
  legacy::ExportChunkBody chunk;
  chunk.chunk_seq = seq;
  if (cursor_->PastEnd(seq)) {
    chunk.row_count = 0;
    chunk.last = true;
    return chunk;
  }
  HQ_ASSIGN_OR_RETURN(auto packet, cursor_->FetchChunk(seq));
  // PXC: unwrap the TDF packet and re-encode rows in the legacy format.
  HQ_ASSIGN_OR_RETURN(tdf::TdfReader reader, tdf::TdfReader::Open(packet->AsSlice()));
  HQ_ASSIGN_OR_RETURN(std::vector<Row> rows, reader.ToFlatRows());

  common::ByteBuffer payload;
  if (begin_.format == legacy::DataFormat::kVartext) {
    for (const auto& row : rows) {
      legacy::VartextRecord record = legacy::RowToVartext(row);
      HQ_RETURN_NOT_OK(legacy::EncodeVartextRecord(record, begin_.delimiter, &payload));
    }
  } else {
    legacy::BinaryRowCodec codec(schema_);
    for (const auto& row : rows) {
      // Coerce each value to the declared column type before encoding
      // (computed columns carry VARCHAR(0) typing).
      Row coerced;
      coerced.reserve(row.size());
      for (size_t i = 0; i < row.size(); ++i) {
        HQ_ASSIGN_OR_RETURN(Value v, types::CastValue(row[i], schema_.field(i).type));
        coerced.push_back(std::move(v));
      }
      HQ_RETURN_NOT_OK(codec.EncodeRow(coerced, &payload));
    }
  }
  chunk.row_count = static_cast<uint32_t>(rows.size());
  chunk.last = seq + 1 >= cursor_->total_chunks();
  chunk.payload = std::move(payload.vector());
  return chunk;
}

}  // namespace hyperq::core
