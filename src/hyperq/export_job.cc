#include "hyperq/export_job.h"

#include <chrono>

#include "common/retry.h"
#include "legacy/row_format.h"
#include "sql/transpiler.h"

namespace hyperq::core {

using common::Result;
using common::Status;
using types::Row;
using types::Value;

Result<std::shared_ptr<ExportJob>> ExportJob::Create(const std::string& job_id,
                                                     const legacy::BeginExportBody& begin,
                                                     cdw::CdwServer* cdw,
                                                     const HyperQOptions& options,
                                                     obs::MetricsRegistry* metrics,
                                                     obs::Tracer* tracer) {
  std::shared_ptr<obs::Trace> trace;
  if (tracer != nullptr) trace = tracer->StartTrace(job_id, obs::Phase::kExport);

  // PXC: transpile the legacy SELECT and run it in the CDW, retrying
  // transient endpoint failures (the SELECT is read-only, so a retry after a
  // lost response is harmless).
  HQ_ASSIGN_OR_RETURN(std::string cdw_sql, sql::TranspileSqlText(begin.select_sql));
  auto query_start = std::chrono::steady_clock::now();
  common::RetryOptions retry_options = options.io_retry;
  retry_options.breaker = common::BreakerFor("cdw");
  common::RetryPolicy retry(std::move(retry_options));
  HQ_ASSIGN_OR_RETURN(cdw::ExecResult result,
                      retry.RunResult<cdw::ExecResult>("cdw.exec", [&](
                          const common::RetryAttempt&) { return cdw->ExecuteSql(cdw_sql); }));
  if (trace != nullptr) {
    trace->RecordSpan(obs::Phase::kQuery, "query", 0, query_start,
                      std::chrono::steady_clock::now());
  }
  if (result.schema.num_fields() == 0) {
    return Status::Invalid("export statement did not produce a result set");
  }
  TdfCursorOptions cursor_options;
  cursor_options.chunk_rows = options.export_chunk_rows;
  cursor_options.prefetch = options.export_prefetch_chunks;
  auto cursor =
      std::make_unique<TdfCursor>(result.schema, std::move(result.rows), cursor_options);
  return std::shared_ptr<ExportJob>(new ExportJob(job_id, begin, std::move(result.schema),
                                                  std::move(cursor), options.io_retry, metrics,
                                                  std::move(trace)));
}

ExportJob::ExportJob(std::string job_id, legacy::BeginExportBody begin, types::Schema schema,
                     std::unique_ptr<TdfCursor> cursor, common::RetryOptions io_retry,
                     obs::MetricsRegistry* metrics, std::shared_ptr<obs::Trace> trace)
    : job_id_(std::move(job_id)),
      begin_(std::move(begin)),
      schema_(std::move(schema)),
      cursor_(std::move(cursor)),
      io_retry_(std::move(io_retry)),
      trace_(std::move(trace)) {
  if (metrics != nullptr) {
    m_.jobs_started = metrics->GetCounter("hyperq_export_jobs_started_total");
    m_.jobs_completed = metrics->GetCounter("hyperq_export_jobs_completed_total");
    m_.rows_exported = metrics->GetCounter("hyperq_rows_exported_total");
    m_.bytes_exported = metrics->GetCounter("hyperq_bytes_exported_total");
    m_.chunk_seconds = metrics->GetHistogram("hyperq_export_chunk_seconds");
    m_.jobs_started->Increment();
  }
}

Result<legacy::ExportChunkBody> ExportJob::GetChunk(uint64_t seq) {
  legacy::ExportChunkBody chunk;
  chunk.chunk_seq = seq;
  if (cursor_->PastEnd(seq)) {
    chunk.row_count = 0;
    chunk.last = true;
    if (m_.jobs_completed != nullptr) m_.jobs_completed->Increment();
    if (trace_ != nullptr) trace_->Finish();
    return chunk;
  }
  obs::ScopedTimer chunk_timer(m_.chunk_seconds);
  obs::ScopedSpan chunk_span(trace_.get(), obs::Phase::kExportChunk,
                             "chunk_" + std::to_string(seq));
  // tdf.read retries: a fetch that failed before consuming the buffered
  // packet is safe to re-issue (the prefetcher keeps the chunk until served).
  common::RetryOptions fetch_options = io_retry_;
  fetch_options.breaker = common::BreakerFor("tdf");
  common::RetryPolicy fetch_retry(std::move(fetch_options));
  HQ_ASSIGN_OR_RETURN(auto packet,
                      fetch_retry.RunResult<std::shared_ptr<const common::ByteBuffer>>(
                          "tdf.read",
                          [&](const common::RetryAttempt&) { return cursor_->FetchChunk(seq); }));
  // PXC: unwrap the TDF packet and re-encode rows in the legacy format.
  HQ_ASSIGN_OR_RETURN(tdf::TdfReader reader, tdf::TdfReader::Open(packet->AsSlice()));
  HQ_ASSIGN_OR_RETURN(std::vector<Row> rows, reader.ToFlatRows());

  common::ByteBuffer payload;
  if (begin_.format == legacy::DataFormat::kVartext) {
    for (const auto& row : rows) {
      legacy::VartextRecord record = legacy::RowToVartext(row);
      HQ_RETURN_NOT_OK(legacy::EncodeVartextRecord(record, begin_.delimiter, &payload));
    }
  } else {
    legacy::BinaryRowCodec codec(schema_);
    for (const auto& row : rows) {
      // Coerce each value to the declared column type before encoding
      // (computed columns carry VARCHAR(0) typing).
      Row coerced;
      coerced.reserve(row.size());
      for (size_t i = 0; i < row.size(); ++i) {
        HQ_ASSIGN_OR_RETURN(Value v, types::CastValue(row[i], schema_.field(i).type));
        coerced.push_back(std::move(v));
      }
      HQ_RETURN_NOT_OK(codec.EncodeRow(coerced, &payload));
    }
  }
  chunk.row_count = static_cast<uint32_t>(rows.size());
  chunk.last = seq + 1 >= cursor_->total_chunks();
  chunk.payload = std::move(payload.vector());
  if (m_.rows_exported != nullptr) {
    m_.rows_exported->Increment(chunk.row_count);
    m_.bytes_exported->Increment(chunk.payload.size());
  }
  if (chunk.last) {
    chunk_timer.StopAndObserve();
    chunk_span.End();
    if (m_.jobs_completed != nullptr) m_.jobs_completed->Increment();
    if (trace_ != nullptr) trace_->Finish();
  }
  return chunk;
}

}  // namespace hyperq::core
