#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "hyperq/conversion_plan.h"
#include "types/type.h"

/// \file conversion_columnar.h
/// The HQB1 columnar encode side of the direct-pipe load path: support types
/// for the ConversionPlan binary kernel family (conversion_columnar.cc).
/// Where the CSV kernels append escaped text, the columnar kernels append
/// typed little-endian staging values into per-column sinks; the builder
/// assembles the sinks into one self-describing HQB1 block per chunk
/// (cdw/staging_binary.h) that CDW COPY appends without per-cell parsing.
///
/// Same hot-loop discipline as the CSV path: steady-state encoding performs
/// zero per-row heap allocations (sink growth is amortized ByteBuffer
/// doubling), and per-record rollback is pure truncation derived from the
/// committed row count — no undo log.

namespace hyperq::core {

/// Output state of one staging column while a chunk is being encoded.
struct ColumnSink {
  /// Fixed staging cell width in bytes; 0 = varlen (VARCHAR).
  uint32_t fixed_width = 0;
  /// Fixed value bytes (fixed columns) or cell payload bytes (varlen).
  common::ByteBuffer data;
  /// Varlen END offsets, one per committed row (appended at CommitRow).
  std::vector<uint32_t> offsets;
  /// LSB-first null bitmap, bit (row & 7) of byte (row >> 3).
  std::vector<uint8_t> nulls;
};

/// Accumulates one chunk's rows column-wise and serializes the HQB1 block.
/// Row protocol: kernels append cell bytes into col(i) (callers MarkNull
/// first for NULL cells so the bitmap is recorded), then exactly one of
/// CommitRow / RollbackRow. Rollback is truncation to the committed state:
/// offsets and bitmap bits are only written at commit, so only in-progress
/// cell bytes need cutting.
class ColumnarChunkBuilder {
 public:
  /// `target_widths` has one entry per staging column INCLUDING the trailing
  /// HQ_ROWNUM BIGINT (width 8), matching the block header's column order.
  explicit ColumnarChunkBuilder(const std::vector<uint32_t>& target_widths);

  /// Sink of staging column `i` (HQ_ROWNUM's sink is never written by
  /// kernels; CommitRow fills it).
  ColumnSink* col(size_t i) { return &cols_[i]; }

  /// Records that column `i` of the in-progress row is NULL.
  void MarkNull(size_t i) { pending_null_[i] = 1; }

  /// Appends the canonical NULL cell to column `i` (zero-filled fixed slot /
  /// empty varlen cell) and marks it NULL — the remap path's "no source
  /// field" slot, equivalent to what a kernel emits for a NULL indicator.
  void AppendNullCell(size_t i);

  /// Seals the in-progress row: appends HQ_ROWNUM, varlen offsets and null
  /// bitmap bits for every column.
  void CommitRow(uint64_t row_number);

  /// Discards the in-progress row (truncates uncommitted cell bytes).
  void RollbackRow();

  uint32_t rows() const { return rows_; }

  /// Appends the finished HQB1 block (header copy with patched row count +
  /// column sections) to `out`. Emits nothing when no row committed (CSV
  /// parity: an all-bad chunk stages zero bytes).
  void Finish(const common::ByteBuffer& header_template, common::ByteBuffer* out) const;

 private:
  std::vector<ColumnSink> cols_;
  std::vector<uint8_t> pending_null_;
  uint32_t rows_ = 0;
};

/// Columnar kernel + staging width for a SOURCE layout field type (the
/// staging width reflects the CDW mapping: BYTEINT widens to SMALLINT,
/// CHAR wider than the CDW limit stages as varlen).
struct ColumnKernelInfo {
  ConversionPlan::ColumnKernel kernel = nullptr;
  uint32_t staging_width = 0;  ///< 0 = varlen
};

ColumnKernelInfo ColumnKernelFor(const types::TypeDesc& source_type);

}  // namespace hyperq::core
