// hqlint:hotpath
#include "hyperq/conversion_plan.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <string_view>

#include "hyperq/conversion_text.h"
#include "hyperq/quality.h"
#include "legacy/errors.h"
#include "legacy/row_format.h"
#include "types/date.h"

namespace hyperq::core {

using common::ByteBuffer;
using common::ByteReader;
using common::Slice;
using common::Status;
using types::TypeId;

namespace {

// Mirrors the table in types/decimal.cc (kept private there on purpose: the
// plan replicates Decimal::ToString byte-for-byte without constructing one).
constexpr int64_t kPow10[] = {1LL,
                              10LL,
                              100LL,
                              1000LL,
                              10000LL,
                              100000LL,
                              1000000LL,
                              10000000LL,
                              100000000LL,
                              1000000000LL,
                              10000000000LL,
                              100000000000LL,
                              1000000000000LL,
                              10000000000000LL,
                              100000000000000LL,
                              1000000000000000LL,
                              10000000000000000LL,
                              100000000000000000LL,
                              1000000000000000000LL};

using conversion_detail::AppendCsvText;
using conversion_detail::AppendIntText;

void AppendFloatText(double v, char delimiter, ByteBuffer* out) {
  char buf[40];
  int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  AppendCsvText(std::string_view(buf, static_cast<size_t>(n)), delimiter, out);
}

void AppendDecimalText(int64_t unscaled, int32_t scale, char delimiter, ByteBuffer* out) {
  // Byte-identical to types::Decimal::ToString without the heap strings.
  bool neg = unscaled < 0;
  uint64_t mag =
      neg ? static_cast<uint64_t>(-(unscaled + 1)) + 1 : static_cast<uint64_t>(unscaled);
  uint64_t pow = static_cast<uint64_t>(kPow10[scale]);
  uint64_t int_part = mag / pow;
  uint64_t frac_part = mag % pow;
  char buf[48];
  char* p = buf;
  if (neg) *p++ = '-';
  p = std::to_chars(p, buf + sizeof(buf), int_part).ptr;
  if (scale > 0) {
    *p++ = '.';
    char fbuf[24];
    auto fr = std::to_chars(fbuf, fbuf + sizeof(fbuf), frac_part);
    auto flen = static_cast<size_t>(fr.ptr - fbuf);
    for (size_t i = flen; i < static_cast<size_t>(scale); ++i) *p++ = '0';
    std::memcpy(p, fbuf, flen);
    p += flen;
  }
  AppendCsvText(std::string_view(buf, static_cast<size_t>(p - buf)), delimiter, out);
}

void AppendDateText(types::DateDays days, char delimiter, ByteBuffer* out) {
  types::YearMonthDay ymd = types::YmdFromDays(days);
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", ymd.year, ymd.month, ymd.day);
  AppendCsvText(std::string_view(buf, static_cast<size_t>(n)), delimiter, out);
}

void AppendTimestampText(types::TimestampMicros micros, char delimiter, ByteBuffer* out) {
  // Mirrors types::FormatTimestampIso including the negative-remainder fix.
  int64_t days = micros / 86400000000LL;
  int64_t rem = micros % 86400000000LL;
  if (rem < 0) {
    rem += 86400000000LL;
    --days;
  }
  types::YearMonthDay ymd = types::YmdFromDays(static_cast<types::DateDays>(days));
  int64_t secs = rem / 1000000LL;
  int64_t frac = rem % 1000000LL;
  char buf[48];
  int n = std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%06d", ymd.year,
                        ymd.month, ymd.day, static_cast<int>(secs / 3600),
                        static_cast<int>((secs / 60) % 60), static_cast<int>(secs % 60),
                        static_cast<int>(frac));
  AppendCsvText(std::string_view(buf, static_cast<size_t>(n)), delimiter, out);
}

using FieldPlan = ConversionPlan::FieldPlan;

Status KernelBoolean(const FieldPlan& f, ByteReader* body, bool null, ByteBuffer* out,
                     QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(uint8_t b, body->ReadByte());
  if (f.checks != nullptr) QcPresence(*f.checks, null, q);
  if (!null) AppendCsvText(b != 0 ? "1" : "0", f.csv_delimiter, out);
  return Status::OK();
}

Status KernelInt8(const FieldPlan& f, ByteReader* body, bool null, ByteBuffer* out,
                  QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(int8_t v, body->ReadI8());
  if (f.checks != nullptr) QcNumeric(*f.checks, null, static_cast<double>(v), q);
  if (!null) AppendIntText<int32_t>(v, f.csv_delimiter, out);
  return Status::OK();
}

Status KernelInt16(const FieldPlan& f, ByteReader* body, bool null, ByteBuffer* out,
                   QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(int16_t v, body->ReadI16());
  if (f.checks != nullptr) QcNumeric(*f.checks, null, static_cast<double>(v), q);
  if (!null) AppendIntText<int32_t>(v, f.csv_delimiter, out);
  return Status::OK();
}

Status KernelInt32(const FieldPlan& f, ByteReader* body, bool null, ByteBuffer* out,
                   QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(int32_t v, body->ReadI32());
  if (f.checks != nullptr) QcNumeric(*f.checks, null, static_cast<double>(v), q);
  if (!null) AppendIntText(v, f.csv_delimiter, out);
  return Status::OK();
}

Status KernelInt64(const FieldPlan& f, ByteReader* body, bool null, ByteBuffer* out,
                   QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(int64_t v, body->ReadI64());
  if (f.checks != nullptr) QcNumeric(*f.checks, null, static_cast<double>(v), q);
  if (!null) AppendIntText(v, f.csv_delimiter, out);
  return Status::OK();
}

Status KernelFloat64(const FieldPlan& f, ByteReader* body, bool null, ByteBuffer* out,
                     QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(double v, body->ReadF64());
  if (f.checks != nullptr) QcNumeric(*f.checks, null, v, q);
  if (!null) AppendFloatText(v, f.csv_delimiter, out);
  return Status::OK();
}

Status KernelDecimal(const FieldPlan& f, ByteReader* body, bool null, ByteBuffer* out,
                     QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(int64_t unscaled, body->ReadI64());
  // Quality range bounds are pre-scaled to unscaled units at compile.
  if (f.checks != nullptr) QcNumeric(*f.checks, null, static_cast<double>(unscaled), q);
  if (!null) AppendDecimalText(unscaled, f.scale, f.csv_delimiter, out);
  return Status::OK();
}

Status KernelDate(const FieldPlan& f, ByteReader* body, bool null, ByteBuffer* out,
                  QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(int32_t enc, body->ReadI32());
  if (null) {
    if (f.checks != nullptr) QcNullField(*f.checks, q);
    return Status::OK();
  }
  HQ_ASSIGN_OR_RETURN(types::DateDays days, legacy::LegacyDateDecode(enc));
  if (f.checks != nullptr) QcNumeric(*f.checks, false, static_cast<double>(days), q);
  AppendDateText(days, f.csv_delimiter, out);
  return Status::OK();
}

Status KernelTimestamp(const FieldPlan& f, ByteReader* body, bool null, ByteBuffer* out,
                       QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(Slice text, body->ReadSlice(legacy::kLegacyTimestampWidth));
  if (null) {
    if (f.checks != nullptr) QcNullField(*f.checks, q);
    return Status::OK();
  }
  HQ_ASSIGN_OR_RETURN(types::TimestampMicros ts, types::ParseTimestampIso(text.ToStringView()));
  if (f.checks != nullptr) QcNumeric(*f.checks, false, static_cast<double>(ts), q);
  AppendTimestampText(ts, f.csv_delimiter, out);
  return Status::OK();
}

Status KernelChar(const FieldPlan& f, ByteReader* body, bool null, ByteBuffer* out,
                  QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(Slice text, body->ReadSlice(static_cast<size_t>(f.length)));
  // CHAR is checked as wired, blank padding included (documented in quality.h).
  if (f.checks != nullptr) QcString(*f.checks, null, reinterpret_cast<const char*>(text.data()), text.size(), q);
  if (!null) AppendCsvText(text.ToStringView(), f.csv_delimiter, out);
  return Status::OK();
}

Status KernelVarchar(const FieldPlan& f, ByteReader* body, bool null, ByteBuffer* out,
                     QualityScratch* q) {
  HQ_ASSIGN_OR_RETURN(Slice text, body->ReadLengthPrefixed16());
  if (f.checks != nullptr) QcString(*f.checks, null, reinterpret_cast<const char*>(text.data()), text.size(), q);
  if (!null) AppendCsvText(text.ToStringView(), f.csv_delimiter, out);
  return Status::OK();
}

struct KernelInfo {
  ConversionPlan::FieldKernel kernel;
  uint32_t width_hint;
};

KernelInfo KernelFor(const types::TypeDesc& type) {
  switch (type.id) {
    case TypeId::kBoolean:
      return {KernelBoolean, 1};
    case TypeId::kInt8:
      return {KernelInt8, 4};
    case TypeId::kInt16:
      return {KernelInt16, 6};
    case TypeId::kInt32:
      return {KernelInt32, 11};
    case TypeId::kInt64:
      return {KernelInt64, 20};
    case TypeId::kFloat64:
      return {KernelFloat64, 24};
    case TypeId::kDecimal:
      return {KernelDecimal, 21};
    case TypeId::kDate:
      return {KernelDate, 10};
    case TypeId::kTimestamp:
      return {KernelTimestamp, 26};
    case TypeId::kChar:
      return {KernelChar, static_cast<uint32_t>(type.length) + 2};
    case TypeId::kVarchar:
      return {KernelVarchar, 0};  // content rides in the payload bytes
  }
  return {KernelVarchar, 0};  // unreachable: TypeId is exhaustive
}

/// Worst-case width of the trailing ",HQ_ROWNUM\n" suffix.
constexpr size_t kRowNumSuffixHint = 22;

}  // namespace

ConversionPlan ConversionPlan::Compile(const types::Schema& layout, legacy::DataFormat format,
                                       char legacy_delimiter, cdw::CsvOptions csv_options,
                                       cdw::StagingFormat staging_format,
                                       const types::Schema* staging_schema) {
  ConversionPlan plan;
  plan.format_ = format;
  plan.legacy_delimiter_ = legacy_delimiter;
  plan.csv_delimiter_ = csv_options.delimiter;
  plan.indicator_bytes_ = (layout.num_fields() + 7) / 8;
  plan.fields_.reserve(layout.num_fields());
  size_t fixed = 0;
  for (const auto& field : layout.fields()) {
    KernelInfo info = KernelFor(field.type);
    FieldPlan fp;
    fp.kernel = info.kernel;
    fp.scale = field.type.scale;
    fp.length = field.type.length;
    fp.width_hint = info.width_hint;
    fp.csv_delimiter = csv_options.delimiter;
    plan.fields_.push_back(fp);
    fixed += info.width_hint;
    if (field.type.id == TypeId::kVarchar) plan.has_varwidth_ = true;
  }
  plan.per_row_hint_ = fixed + layout.num_fields() + kRowNumSuffixHint;
  if (staging_format == cdw::StagingFormat::kBinary && staging_schema != nullptr) {
    plan.AttachBinaryStaging(layout, *staging_schema);
  }
  return plan;
}

size_t ConversionPlan::EstimateCsvBytes(uint32_t row_count, size_t payload_bytes) const {
  size_t estimate;
  if (format_ == legacy::DataFormat::kVartext) {
    // Text is payload-carried; budget for quoting expansion plus the
    // per-record rownum suffix.
    estimate = payload_bytes + payload_bytes / 4 + row_count * kRowNumSuffixHint + 64;
  } else {
    estimate = static_cast<size_t>(row_count) * per_row_hint_ +
               (has_varwidth_ ? payload_bytes : 0) + 64;
  }
  // Chunk headers may carry row_count == 0; never reserve below the old
  // payload-proportional floor.
  return std::max(estimate, payload_bytes + payload_bytes / 8);
}

size_t ConversionPlan::EstimateStagingBytes(uint32_t row_count, size_t payload_bytes) const {
  if (staging_format_ != cdw::StagingFormat::kBinary) {
    return EstimateCsvBytes(row_count, payload_bytes);
  }
  const bool payload_carried = has_varwidth_ || format_ == legacy::DataFormat::kVartext;
  size_t estimate = header_template_.size() +
                    static_cast<size_t>(row_count) * per_row_binary_hint_ +
                    (payload_carried ? payload_bytes : 0) + 64;
  return std::max(estimate, payload_bytes + payload_bytes / 8);
}

Status ConversionPlan::BinaryBodyToCsv(Slice record, uint64_t row_number, ByteBuffer* out,
                                       QualityScratch* q) const {
  ByteReader body(record);
  HQ_ASSIGN_OR_RETURN(Slice indicators, body.ReadSlice(indicator_bytes_));
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out->AppendByte(static_cast<uint8_t>(csv_delimiter_));
    const bool null = (indicators[i / 8] & (0x80u >> (i % 8))) != 0;
    HQ_RETURN_NOT_OK(fields_[i].kernel(fields_[i], &body, null, out, q));
  }
  if (!body.AtEnd()) {
    return Status::ProtocolError("trailing bytes in legacy binary record");
  }
  out->AppendByte(static_cast<uint8_t>(csv_delimiter_));
  AppendIntText(row_number, csv_delimiter_, out);
  out->AppendByte('\n');
  return Status::OK();
}

Status ConversionPlan::BinaryRecordToCsv(ByteReader* reader, uint64_t row_number,
                                         ByteBuffer* out, QualityScratch* q) const {
  HQ_ASSIGN_OR_RETURN(Slice record, reader->ReadLengthPrefixed16());
  return BinaryBodyToCsv(record, row_number, out, q);
}

Status ConversionPlan::ExecuteBinary(const ConversionInput& input, ConvertedChunk* out) const {
  ByteReader reader(Slice(input.chunk.payload));
  uint64_t row_number = input.first_row_number;
  size_t capacity = out->csv.vector().capacity();
  const CompiledQuality* cq = quality_;
  QualityScratch qs;
  if (cq != nullptr) qs.Init(*cq);
  while (!reader.AtEnd()) {
    const size_t mark = out->csv.size();
    if (cq != nullptr) qs.BeginRow();
    Status s = BinaryRecordToCsv(&reader, row_number, &out->csv, &qs);
    if (!s.ok()) {
      // Binary decode is positional: a bad record invalidates the rest of
      // the chunk payload. Roll back the partially-emitted record.
      out->csv.resize(mark);
      out->errors.push_back(RecordError{row_number, legacy::kErrFormatViolation, "",
                                        s.message() + " (remainder of chunk skipped)"});
      break;
    }
    if (cq != nullptr) {
      QcFinishRow(&qs);
      qs.CommitRowStats();
      if (qs.row_kind != QualityKind::kNone) {
        // Record-atomic diversion: the emitted line moves to the quarantine
        // stream with its reason tail; the staging output rolls back.
        QcQuarantineCsvRow(*cq, &qs, &out->csv, mark, &out->qrtn);
        ++row_number;
        continue;
      }
    }
    ++out->rows_out;
    ++row_number;
    if (out->csv.vector().capacity() != capacity) {
      capacity = out->csv.vector().capacity();
      ++out->csv_reallocs;
    }
  }
  if (cq != nullptr) FinishChunkQuality(*cq, qs, &out->quality);
  return Status::OK();
}

Status ConversionPlan::ExecuteVartext(const ConversionInput& input, ConvertedChunk* out) const {
  ByteReader reader(Slice(input.chunk.payload));
  uint64_t row_number = input.first_row_number;
  const size_t expected = fields_.size();
  size_t capacity = out->csv.vector().capacity();
  const CompiledQuality* cq = quality_;
  // Raw pointer into the field table: vector::operator[] is an opaque call
  // in unoptimized builds, and this lookup sits inside the per-field split
  // loop (the bench-smoke quality-overhead gate measures that build).
  const FieldPlan* field_plans = fields_.data();
  QualityScratch qs;
  if (cq != nullptr) qs.Init(*cq);
  while (!reader.AtEnd()) {
    auto line = reader.ReadLengthPrefixed16();
    if (!line.ok()) {
      // A framing error poisons the rest of the chunk (reference semantics).
      if (cq != nullptr) FinishChunkQuality(*cq, qs, &out->quality);
      return line.status().WithContext("chunk " + std::to_string(input.chunk.chunk_seq));  // hqlint:allow(per-row-alloc)
    }
    std::string_view text = line.ValueOrDie().ToStringView();
    const char* text_data = text.data();
    const size_t mark = out->csv.size();
    if (cq != nullptr) qs.BeginRow();
    size_t nfields = 0;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == legacy_delimiter_) {
        if (nfields != 0) out->csv.AppendByte(static_cast<uint8_t>(csv_delimiter_));
        // Unchecked construction: start <= i <= size() always holds, and
        // substr's bounds check would put __throw_out_of_range_fmt on the
        // hot path (hqcheck hotpath-symbol).
        const size_t flen = i - start;
        std::string_view field(text_data + start, flen);
        // Vartext has no kernels: the quality check op runs fused into the
        // split loop. Like the columnar kernels, the guard is the checks
        // pointer itself (nullptr on every field when the gate is off), so
        // both gate modes pay the same predicted branch. Raw pointer+length
        // arguments: string_view accessors are opaque calls in unoptimized
        // builds (the overhead gate's build).
        if (nfields < expected) {
          const QualityFieldChecks* checks = field_plans[nfields].checks;
          if (checks != nullptr) QcString(*checks, flen == 0, text_data + start, flen, &qs);
        }
        // Empty vartext field == NULL (legacy rule): emit nothing.
        if (!field.empty()) AppendCsvText(field, csv_delimiter_, &out->csv);
        ++nfields;
        start = i + 1;
      }
    }
    if (nfields != expected) {
      out->csv.resize(mark);
      out->errors.push_back(
          RecordError{row_number, legacy::kErrFieldCountMismatch, "",
                      "vartext record has " + std::to_string(nfields) +          // hqlint:allow(per-row-alloc)
                          " fields, layout expects " + std::to_string(expected)});  // hqlint:allow(per-row-alloc)
      ++row_number;
      continue;
    }
    out->csv.AppendByte(static_cast<uint8_t>(csv_delimiter_));
    AppendIntText(row_number, csv_delimiter_, &out->csv);
    out->csv.AppendByte('\n');
    if (cq != nullptr) {
      QcFinishRow(&qs);
      qs.CommitRowStats();
      if (qs.row_kind != QualityKind::kNone) {
        QcQuarantineCsvRow(*cq, &qs, &out->csv, mark, &out->qrtn);
        ++row_number;
        continue;
      }
    }
    ++out->rows_out;
    ++row_number;
    if (out->csv.vector().capacity() != capacity) {
      capacity = out->csv.vector().capacity();
      ++out->csv_reallocs;
    }
  }
  if (cq != nullptr) FinishChunkQuality(*cq, qs, &out->quality);
  return Status::OK();
}

void ConversionPlan::AttachQuality(const CompiledQuality* quality) {
  quality_ = quality;
  for (size_t i = 0; i < fields_.size(); ++i) {
    fields_[i].checks =
        quality != nullptr && i < quality->num_fields() ? quality->field_checks(i) : nullptr;
  }
}

Status ConversionPlan::Execute(const ConversionInput& input, ConvertedChunk* out) const {
  out->order_index = input.order_index;
  out->first_row_number = input.first_row_number;
  out->rows_in = input.chunk.row_count;
  if (staging_format_ == cdw::StagingFormat::kBinary) {
    if (remapped_) {
      if (format_ == legacy::DataFormat::kVartext) return ExecuteColumnarRemappedVartext(input, out);
      return ExecuteColumnarRemappedBinary(input, out);
    }
    if (format_ == legacy::DataFormat::kVartext) return ExecuteColumnarVartext(input, out);
    return ExecuteColumnarBinary(input, out);
  }
  if (remapped_) {
    if (format_ == legacy::DataFormat::kVartext) return ExecuteRemappedVartext(input, out);
    return ExecuteRemappedBinary(input, out);
  }
  if (format_ == legacy::DataFormat::kVartext) return ExecuteVartext(input, out);
  return ExecuteBinary(input, out);
}

}  // namespace hyperq::core
