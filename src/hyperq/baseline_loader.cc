#include "hyperq/baseline_loader.h"

#include "common/stopwatch.h"
#include "hyperq/error_handler.h"
#include "legacy/errors.h"
#include "sql/printer.h"
#include "sql/transpiler.h"

namespace hyperq::core {

using common::Result;
using common::Status;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using types::Value;

Result<ExprPtr> SubstitutePlaceholders(const Expr& expr, const types::Schema& layout,
                                       const legacy::VartextRecord& record) {
  switch (expr.kind) {
    case ExprKind::kPlaceholder: {
      const auto& ph = static_cast<const sql::PlaceholderExpr&>(expr);
      int idx = layout.FieldIndex(ph.name);
      if (idx < 0) {
        return Status::ParseError("placeholder :" + ph.name + " not in layout");
      }
      const legacy::VartextField& field = record[static_cast<size_t>(idx)];
      if (field.null) {
        return ExprPtr(std::make_unique<sql::LiteralExpr>(Value::Null()));
      }
      return ExprPtr(std::make_unique<sql::LiteralExpr>(Value::String(field.text)));
    }
    case ExprKind::kLiteral:
    case ExprKind::kColumnRef:
    case ExprKind::kStar:
      return expr.Clone();
    case ExprKind::kUnary: {
      const auto& u = static_cast<const sql::UnaryExpr&>(expr);
      HQ_ASSIGN_OR_RETURN(ExprPtr operand, SubstitutePlaceholders(*u.operand, layout, record));
      return ExprPtr(std::make_unique<sql::UnaryExpr>(u.op, std::move(operand)));
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      HQ_ASSIGN_OR_RETURN(ExprPtr left, SubstitutePlaceholders(*b.left, layout, record));
      HQ_ASSIGN_OR_RETURN(ExprPtr right, SubstitutePlaceholders(*b.right, layout, record));
      return ExprPtr(std::make_unique<sql::BinaryExpr>(b.op, std::move(left), std::move(right)));
    }
    case ExprKind::kFunction: {
      const auto& fn = static_cast<const sql::FunctionExpr&>(expr);
      auto copy = std::make_unique<sql::FunctionExpr>();
      copy->name = fn.name;
      copy->distinct = fn.distinct;
      for (const auto& a : fn.args) {
        HQ_ASSIGN_OR_RETURN(ExprPtr e, SubstitutePlaceholders(*a, layout, record));
        copy->args.push_back(std::move(e));
      }
      return ExprPtr(std::move(copy));
    }
    case ExprKind::kCast: {
      const auto& cast = static_cast<const sql::CastExpr&>(expr);
      HQ_ASSIGN_OR_RETURN(ExprPtr operand, SubstitutePlaceholders(*cast.operand, layout, record));
      return ExprPtr(std::make_unique<sql::CastExpr>(std::move(operand), cast.target, cast.format));
    }
    case ExprKind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      auto copy = std::make_unique<sql::CaseExpr>();
      if (c.operand) {
        HQ_ASSIGN_OR_RETURN(copy->operand, SubstitutePlaceholders(*c.operand, layout, record));
      }
      for (const auto& [w, t] : c.whens) {
        HQ_ASSIGN_OR_RETURN(ExprPtr we, SubstitutePlaceholders(*w, layout, record));
        HQ_ASSIGN_OR_RETURN(ExprPtr te, SubstitutePlaceholders(*t, layout, record));
        copy->whens.emplace_back(std::move(we), std::move(te));
      }
      if (c.else_expr) {
        HQ_ASSIGN_OR_RETURN(copy->else_expr, SubstitutePlaceholders(*c.else_expr, layout, record));
      }
      return ExprPtr(std::move(copy));
    }
    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const sql::IsNullExpr&>(expr);
      HQ_ASSIGN_OR_RETURN(ExprPtr operand, SubstitutePlaceholders(*isn.operand, layout, record));
      return ExprPtr(std::make_unique<sql::IsNullExpr>(std::move(operand), isn.negated));
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      auto copy = std::make_unique<sql::InListExpr>();
      HQ_ASSIGN_OR_RETURN(copy->operand, SubstitutePlaceholders(*in.operand, layout, record));
      for (const auto& e : in.list) {
        HQ_ASSIGN_OR_RETURN(ExprPtr item, SubstitutePlaceholders(*e, layout, record));
        copy->list.push_back(std::move(item));
      }
      copy->negated = in.negated;
      return ExprPtr(std::move(copy));
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const sql::BetweenExpr&>(expr);
      auto copy = std::make_unique<sql::BetweenExpr>();
      HQ_ASSIGN_OR_RETURN(copy->operand, SubstitutePlaceholders(*bt.operand, layout, record));
      HQ_ASSIGN_OR_RETURN(copy->low, SubstitutePlaceholders(*bt.low, layout, record));
      HQ_ASSIGN_OR_RETURN(copy->high, SubstitutePlaceholders(*bt.high, layout, record));
      copy->negated = bt.negated;
      return ExprPtr(std::move(copy));
    }
  }
  return Status::Internal("unknown expression kind");
}

namespace {

Result<sql::StatementPtr> SubstituteInStatement(const sql::Statement& stmt,
                                                const types::Schema& layout,
                                                const legacy::VartextRecord& record) {
  if (stmt.kind != sql::StatementKind::kInsert) {
    return Status::NotImplemented("baseline loader supports INSERT DML only");
  }
  const auto& ins = static_cast<const sql::InsertStmt&>(stmt);
  if (ins.rows.size() != 1) return Status::Invalid("baseline INSERT must have one VALUES row");
  auto out = std::make_unique<sql::InsertStmt>();
  out->table = ins.table;
  out->columns = ins.columns;
  std::vector<ExprPtr> row;
  for (const auto& e : ins.rows[0]) {
    HQ_ASSIGN_OR_RETURN(ExprPtr sub, SubstitutePlaceholders(*e, layout, record));
    row.push_back(std::move(sub));
  }
  out->rows.push_back(std::move(row));
  return sql::StatementPtr(std::move(out));
}

}  // namespace

Result<BaselineReport> BaselineSingletonLoader::Load(
    const sql::Statement& legacy_dml, const types::Schema& layout,
    const std::vector<legacy::VartextRecord>& records) {
  BaselineReport report;
  common::Stopwatch timer;
  uint64_t row_number = 0;
  for (const auto& record : records) {
    ++row_number;
    if (record.size() != layout.num_fields()) {
      std::string sql_text = "INSERT INTO " + error_table_ + " VALUES (" +
                             std::to_string(legacy::kErrFieldCountMismatch) + ", NULL, " +
                             SqlQuote("field count mismatch, row number: " +
                                      std::to_string(row_number)) +
                             ")";
      ++report.statements_issued;
      HQ_RETURN_NOT_OK(cdw_->ExecuteSql(sql_text).status());
      ++report.errors_logged;
      continue;
    }
    HQ_ASSIGN_OR_RETURN(sql::StatementPtr substituted,
                        SubstituteInStatement(legacy_dml, layout, record));
    HQ_ASSIGN_OR_RETURN(sql::StatementPtr cdw_stmt, sql::TranspileStatement(*substituted));
    std::string sql_text = sql::PrintStatement(*cdw_stmt);
    cdw::ExecOptions exec;
    exec.enforce_unique_primary = true;
    ++report.statements_issued;
    auto result = cdw_->ExecuteSql(sql_text, exec);
    if (result.ok()) {
      report.rows_loaded += result->rows_inserted;
      continue;
    }
    if (!result.status().IsConversionError() && !result.status().IsConstraintViolation()) {
      return result.status();
    }
    uint32_t code = result.status().IsConstraintViolation()
                        ? legacy::kErrUniquenessViolation
                        : legacy::kErrFormatViolation;
    std::string err_sql = "INSERT INTO " + error_table_ + " VALUES (" + std::to_string(code) +
                          ", NULL, " +
                          SqlQuote(result.status().message() +
                                   ", row number: " + std::to_string(row_number)) +
                          ")";
    ++report.statements_issued;
    HQ_RETURN_NOT_OK(cdw_->ExecuteSql(err_sql).status());
    ++report.errors_logged;
  }
  report.elapsed_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace hyperq::core
