#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cdw/cdw_server.h"
#include "cloudstore/object_store.h"
#include "common/buffer_pool.h"
#include "common/memory_tracker.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "hyperq/credit_manager.h"
#include "hyperq/export_job.h"
#include "hyperq/hyperq_config.h"
#include "hyperq/import_job.h"
#include "net/listener.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/stream_job.h"

/// \file server.h
/// The Hyper-Q node. The Alpha process (network listener) accepts legacy
/// client connections; each connection is served by a session pipeline
/// (Coalescer -> PXC -> data path or Beta). Node-wide resources exist once
/// per node exactly as the paper prescribes: one CreditManager shared by all
/// concurrent ETL jobs (Section 5), one DataConverter worker pool, one
/// memory budget.

namespace hyperq::core {

class HyperQServer {
 public:
  HyperQServer(cdw::CdwServer* cdw, cloud::ObjectStore* store, HyperQOptions options = {});
  ~HyperQServer();

  HyperQServer(const HyperQServer&) = delete;
  HyperQServer& operator=(const HyperQServer&) = delete;

  /// Starts the Alpha accept loop.
  void Start() HQ_EXCLUDES(lifecycle_mu_);

  /// Stops accepting connections and joins finished session threads. Active
  /// sessions end when their clients log off / close.
  void Stop() HQ_EXCLUDES(lifecycle_mu_, sessions_mu_);

  /// Client-side dial (legacy tools "connect" here instead of to the EDW).
  std::shared_ptr<net::Transport> Connect();

  CreditManager* credit_manager() { return &credits_; }
  common::MemoryTracker* memory_tracker() { return &memory_; }
  /// Node-wide buffer recycler (null when buffer_pool_max_buffers == 0).
  common::BufferPool* buffer_pool() { return buffer_pool_.get(); }
  const HyperQOptions& options() const { return options_; }

  /// The node's metrics registry / tracer (null when observability is off).
  obs::MetricsRegistry* metrics() { return metrics_; }
  obs::Tracer* tracer() { return tracer_; }

  /// Point-in-time view of every node metric. Sampled gauges (converter
  /// queue depth / worker utilization, in-flight memory) are refreshed
  /// first. Empty snapshot when observability is disabled.
  obs::MetricsSnapshot MetricsSnapshot() const;

  /// Dump of the process-wide lock-order graph (observed rank-pair edges,
  /// per-rank contention, cycle analysis) — see common::LockOrderGraph and
  /// DESIGN.md "Lock hierarchy & deadlock detection". Available regardless
  /// of `enable_observability` (recording is always on).
  enum class LockGraphFormat { kDot, kJson };
  std::string LockGraph(LockGraphFormat format = LockGraphFormat::kDot) const;

  /// Per-job instrumentation, available after the job's DML apply (jobs are
  /// retained after completion).
  common::Result<PhaseTimings> JobTimings(const std::string& job_id) const HQ_EXCLUDES(jobs_mu_);
  common::Result<AcquisitionStats> JobStats(const std::string& job_id) const
      HQ_EXCLUDES(jobs_mu_);
  common::Result<DmlApplyResult> JobDmlResult(const std::string& job_id) const
      HQ_EXCLUDES(jobs_mu_);
  /// The job's data-quality outcome (enabled=false when the gate is off)
  /// and its quarantine table name ("" when the gate is off). Works for
  /// import and streaming jobs alike.
  common::Result<QualityJobReport> JobQualityReport(const std::string& job_id) const
      HQ_EXCLUDES(jobs_mu_);
  common::Result<std::string> JobQuarantineTable(const std::string& job_id) const
      HQ_EXCLUDES(jobs_mu_);
  /// The job's span tree (import and export jobs alike).
  common::Result<std::shared_ptr<obs::Trace>> JobTrace(const std::string& job_id) const;

  /// Streaming-session instrumentation (jobs are retained after EndStream).
  common::Result<stream::StreamStats> StreamJobStats(const std::string& job_id) const
      HQ_EXCLUDES(jobs_mu_);

 private:
  void AcceptLoop() HQ_EXCLUDES(sessions_mu_);
  void HandleSession(std::shared_ptr<net::Transport> transport) HQ_EXCLUDES(jobs_mu_);

  common::Result<std::shared_ptr<ImportJob>> GetOrCreateImportJob(
      const legacy::BeginLoadBody& begin) HQ_EXCLUDES(jobs_mu_);
  common::Result<std::shared_ptr<ExportJob>> GetOrCreateExportJob(
      const legacy::BeginExportBody& begin) HQ_EXCLUDES(jobs_mu_);
  common::Result<std::shared_ptr<stream::StreamJob>> GetOrCreateStreamJob(
      const legacy::BeginStreamBody& begin) HQ_EXCLUDES(jobs_mu_);

  cdw::CdwServer* cdw_;
  cloud::ObjectStore* store_;
  HyperQOptions options_;

  /// Observability plumbing. The server uses the injected registry/tracer
  /// from HyperQOptions when present, otherwise owns its own; both stay null
  /// when `enable_observability` is false (zero overhead — every hot-path
  /// call site tests one cached pointer).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  std::unique_ptr<obs::Tracer> owned_tracer_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  struct Instruments {
    obs::Counter* sessions_total = nullptr;
    obs::Counter* parcels_total = nullptr;
    obs::Gauge* sessions_active = nullptr;
    obs::Gauge* converter_queue = nullptr;
    obs::Gauge* converter_active = nullptr;
    obs::Gauge* memory_in_flight = nullptr;
    obs::Gauge* pool_buffers = nullptr;
    obs::Gauge* pool_bytes = nullptr;
    obs::Gauge* pool_hits = nullptr;
    obs::Gauge* pool_misses = nullptr;
    obs::Histogram* decode_seconds = nullptr;
    obs::Gauge* lock_edges = nullptr;
    obs::Gauge* lock_contention[common::kNumLockRanks] = {};
  } m_;

  CreditManager credits_;
  common::ThreadPool converter_pool_;
  common::MemoryTracker memory_;
  std::unique_ptr<common::BufferPool> buffer_pool_;

  net::Listener listener_;
  /// Serializes Start()/Stop(): without it two racing Stops (or a Stop racing
  /// a Start) both touch accept_thread_ and started_.
  common::Mutex lifecycle_mu_{common::LockRank::kLifecycle, "server_lifecycle"};
  std::thread accept_thread_ HQ_GUARDED_BY(lifecycle_mu_);
  bool started_ HQ_GUARDED_BY(lifecycle_mu_) = false;
  /// Stop() nests this inside lifecycle_mu_ (kLifecycle > kServer).
  common::Mutex sessions_mu_ HQ_ACQUIRED_AFTER(lifecycle_mu_){common::LockRank::kServer,
                                                              "server_sessions"};
  std::vector<std::thread> session_threads_ HQ_GUARDED_BY(sessions_mu_);
  /// Live session transports; Stop() closes them so handler threads blocked
  /// in a read observe EOF and exit (clients that never log off must not be
  /// able to wedge shutdown).
  std::vector<std::weak_ptr<net::Transport>> session_transports_ HQ_GUARDED_BY(sessions_mu_);
  std::atomic<uint32_t> next_session_id_{1};

  mutable common::Mutex jobs_mu_{common::LockRank::kServer, "server_jobs"};
  std::map<std::string, std::shared_ptr<ImportJob>> import_jobs_ HQ_GUARDED_BY(jobs_mu_);
  std::map<std::string, std::shared_ptr<ExportJob>> export_jobs_ HQ_GUARDED_BY(jobs_mu_);
  std::map<std::string, std::shared_ptr<stream::StreamJob>> stream_jobs_ HQ_GUARDED_BY(jobs_mu_);
};

}  // namespace hyperq::core
