#include "hyperq/tdf_cursor.h"

#include <algorithm>

#include "common/fault.h"

namespace hyperq::core {

using common::ByteBuffer;
using common::Result;
using common::Status;

TdfCursor::TdfCursor(types::Schema schema, std::vector<types::Row> rows, TdfCursorOptions options)
    : schema_(std::move(schema)), rows_(std::move(rows)), options_(options) {
  if (options_.chunk_rows == 0) options_.chunk_rows = 1;
  if (options_.prefetch == 0) options_.prefetch = 1;
  total_chunks_ = (rows_.size() + options_.chunk_rows - 1) / options_.chunk_rows;
  prefetcher_ = std::thread([this] { PrefetchLoop(); });
}

TdfCursor::~TdfCursor() {
  {
    common::MutexLock lock(&mu_);
    shutdown_ = true;
    window_open_.NotifyAll();
    chunk_ready_.NotifyAll();
  }
  if (prefetcher_.joinable()) prefetcher_.join();
}

void TdfCursor::PrefetchLoop() {
  tdf::TdfWriter writer(tdf::TdfSchema::FromFlat(schema_));
  for (;;) {
    uint64_t seq;
    {
      common::MutexLock lock(&mu_);
      while (!shutdown_ && !(next_to_encode_ < total_chunks_ &&
                             next_to_encode_ < lowest_unserved_ + options_.prefetch)) {
        window_open_.Wait(lock);
      }
      if (shutdown_ || next_to_encode_ >= total_chunks_) return;
      seq = next_to_encode_++;
    }
    // Encode outside the lock.
    size_t begin = static_cast<size_t>(seq) * options_.chunk_rows;
    size_t end = std::min(rows_.size(), begin + options_.chunk_rows);
    for (size_t r = begin; r < end; ++r) {
      // Rows came from the executor and match the schema; failures here are
      // internal bugs and surface as an empty packet.
      (void)writer.AppendFlatRow(rows_[r]);
    }
    auto packet = std::make_shared<const ByteBuffer>(writer.Finish());
    {
      common::MutexLock lock(&mu_);
      buffered_[seq] = std::move(packet);
      ++chunks_encoded_;
      max_buffered_ = std::max<uint64_t>(max_buffered_, buffered_.size());
      chunk_ready_.NotifyAll();
    }
  }
}

Result<std::shared_ptr<const ByteBuffer>> TdfCursor::FetchChunk(uint64_t seq) {
  // tdf.read: the TDF-packet read hop of the export path. Faults fire before
  // the buffered packet is consumed (and before mu_ — latency stalls must
  // not run under the cursor lock), so a retried fetch still finds it.
  HQ_RETURN_NOT_OK(common::FaultInjector::Global().Inject("tdf.read"));
  common::MutexLock lock(&mu_);
  if (seq >= total_chunks_) return Status::NotFound("chunk past end of export cursor");
  while (!shutdown_ && buffered_.count(seq) == 0) chunk_ready_.Wait(lock);
  if (shutdown_) return Status::Cancelled("cursor shut down");
  auto packet = buffered_.at(seq);
  buffered_.erase(seq);
  if (served_.size() < total_chunks_) served_.resize(total_chunks_, false);
  served_[seq] = true;
  while (lowest_unserved_ < total_chunks_ && served_[lowest_unserved_]) {
    ++lowest_unserved_;
  }
  window_open_.NotifyAll();
  return packet;
}

uint64_t TdfCursor::chunks_encoded() const {
  common::MutexLock lock(&mu_);
  return chunks_encoded_;
}

uint64_t TdfCursor::max_buffered() const {
  common::MutexLock lock(&mu_);
  return max_buffered_;
}

}  // namespace hyperq::core
