#pragma once

#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/sync.h"
#include "tdf/tdf.h"
#include "types/schema.h"

/// \file tdf_cursor.h
/// The TDFCursor process (paper Section 3): on-demand retrieval and
/// buffering of result chunks for export jobs. A background thread pulls row
/// batches from the query result, encodes each batch as a TDF packet, and
/// buffers up to `prefetch` packets ahead of the slowest client session.
/// Client sessions request chunks by order number; requests for a chunk past
/// the end return nullopt.

namespace hyperq::core {

struct TdfCursorOptions {
  size_t chunk_rows = 4096;
  size_t prefetch = 8;
};

class TdfCursor {
 public:
  /// Takes ownership of the materialized result rows (the simulated CDW
  /// returns results eagerly; the cursor re-batches them on demand).
  TdfCursor(types::Schema schema, std::vector<types::Row> rows, TdfCursorOptions options = {});
  ~TdfCursor();

  TdfCursor(const TdfCursor&) = delete;
  TdfCursor& operator=(const TdfCursor&) = delete;

  const types::Schema& schema() const { return schema_; }
  uint64_t total_chunks() const { return total_chunks_; }

  /// Fetches chunk `seq` (0-based) as an encoded TDF packet; blocks until
  /// prefetched. nullopt when `seq` is past the last chunk. Chunks may be
  /// requested by different sessions in any interleaving, but each chunk at
  /// most advances the prefetch window — fetching far ahead of the window
  /// blocks until earlier chunks were served.
  common::Result<std::shared_ptr<const common::ByteBuffer>> FetchChunk(uint64_t seq)
      HQ_EXCLUDES(mu_);

  /// True when `seq` is beyond the final chunk.
  bool PastEnd(uint64_t seq) const { return seq >= total_chunks_; }

  /// Encoding/prefetch statistics.
  uint64_t chunks_encoded() const HQ_EXCLUDES(mu_);
  uint64_t max_buffered() const HQ_EXCLUDES(mu_);

 private:
  void PrefetchLoop() HQ_EXCLUDES(mu_);

  types::Schema schema_;
  std::vector<types::Row> rows_;
  TdfCursorOptions options_;
  uint64_t total_chunks_;

  mutable common::Mutex mu_{common::LockRank::kJob, "tdf_cursor"};
  common::CondVar chunk_ready_;
  common::CondVar window_open_;
  std::map<uint64_t, std::shared_ptr<const common::ByteBuffer>> buffered_ HQ_GUARDED_BY(mu_);
  std::vector<bool> served_ HQ_GUARDED_BY(mu_);
  uint64_t next_to_encode_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t lowest_unserved_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t chunks_encoded_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t max_buffered_ HQ_GUARDED_BY(mu_) = 0;
  bool shutdown_ HQ_GUARDED_BY(mu_) = false;
  std::thread prefetcher_;
};

}  // namespace hyperq::core
