#include "hyperq/import_job.h"

#include <cctype>
#include <chrono>

#include "cloudstore/bulk_loader.h"
#include "common/fault.h"
#include "common/logging.h"
#include "legacy/errors.h"
#include "sql/parser.h"

namespace hyperq::core {

using common::Result;
using common::Slice;
using common::Status;

namespace {

std::string SanitizeId(const std::string& id) {
  std::string out;
  for (char c : id) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

Status RecreateTable(cdw::CdwServer* cdw, const std::string& name, const types::Schema& schema,
                     std::vector<std::string> primary_key = {}, bool unique = false) {
  HQ_RETURN_NOT_OK(cdw->catalog()->DropTable(name, /*if_exists=*/true));
  return cdw->catalog()->CreateTable(name, schema, std::move(primary_key), unique).status();
}

}  // namespace

Result<std::shared_ptr<ImportJob>> ImportJob::Create(const std::string& job_id,
                                                     const legacy::BeginLoadBody& begin,
                                                     JobContext ctx) {
  if (ctx.cdw == nullptr || ctx.store == nullptr || ctx.credits == nullptr ||
      ctx.converter_pool == nullptr || ctx.memory == nullptr) {
    return Status::Invalid("incomplete job context");
  }
  // The target table must already exist in the CDW.
  HQ_RETURN_NOT_OK(ctx.cdw->catalog()->GetTable(begin.target_table).status());

  // Config specs are part of the job contract: an unparseable fault_spec or
  // quality spec fails BeginLoad loudly (ProtocolError) instead of silently
  // degrading to "no injection" / "no gate".
  if (!ctx.options.fault_spec.empty()) {
    uint64_t seed = 0;
    std::vector<std::pair<int, common::FaultRule>> rules;
    Status parsed = common::ParseFaultSpec(ctx.options.fault_spec, &seed, &rules);
    if (!parsed.ok()) {
      return Status::ProtocolError("invalid fault_spec: " + parsed.message());
    }
  }
  const TableQualitySpec* table_quality = nullptr;
  QualitySpec parsed_quality;
  if (!ctx.options.quality.spec.empty()) {
    auto parsed = ParseQualitySpec(ctx.options.quality.spec);
    if (!parsed.ok()) {
      return Status::ProtocolError("invalid quality spec: " + parsed.status().message());
    }
    parsed_quality = std::move(parsed).ValueOrDie();
    table_quality = FindTableQuality(parsed_quality, begin.target_table);
  }

  HQ_ASSIGN_OR_RETURN(types::Schema staging_schema, MakeStagingSchema(begin.layout));
  HQ_ASSIGN_OR_RETURN(DataConverter converter,
                      DataConverter::Create(begin.layout, begin.format, begin.delimiter,
                                            cdw::CsvOptions{}, ctx.options.staging_format,
                                            table_quality));

  // Per-job error-handling overrides from the client script (.set commands).
  if (begin.max_errors != 0) ctx.options.max_errors = begin.max_errors;
  if (begin.max_retries != 0) ctx.options.max_retries = begin.max_retries;

  auto job = std::shared_ptr<ImportJob>(
      new ImportJob(job_id, begin, std::move(ctx), std::move(converter), staging_schema));

  // CDW-side state: staging table + fresh error tables. A recreated staging
  // table must not inherit a prior job's COPY-idempotence ledger.
  HQ_RETURN_NOT_OK(RecreateTable(job->ctx_.cdw, job->staging_table_, staging_schema));
  job->ctx_.cdw->ForgetCopies(job->staging_table_);
  HQ_RETURN_NOT_OK(
      RecreateTable(job->ctx_.cdw, job->begin_.error_table_et, MakeEtErrorSchema()));
  HQ_RETURN_NOT_OK(RecreateTable(job->ctx_.cdw, job->begin_.error_table_uv,
                                 MakeUvErrorSchema(begin.layout)));
  if (!job->qrtn_table_.empty()) {
    // Quarantine table for the quality gate: recreated per run like the
    // error tables, and deliberately NOT dropped at ApplyDml — it is the
    // operator's record of what the gate rejected and why.
    HQ_ASSIGN_OR_RETURN(types::Schema qrtn_schema, MakeQuarantineSchema(begin.layout));
    HQ_RETURN_NOT_OK(RecreateTable(job->ctx_.cdw, job->qrtn_table_, qrtn_schema));
    job->ctx_.cdw->ForgetCopies(job->qrtn_table_);
  }
  job->StartWriters();
  return job;
}

ImportJob::ImportJob(std::string job_id, legacy::BeginLoadBody begin, JobContext ctx,
                     DataConverter converter, types::Schema staging_schema)
    : job_id_(std::move(job_id)),
      begin_(std::move(begin)),
      ctx_(std::move(ctx)),
      converter_(std::move(converter)),
      staging_schema_(std::move(staging_schema)) {
  staging_table_ = "HQ_STG_" + SanitizeId(job_id_);
  remote_prefix_ = "staging/" + SanitizeId(job_id_) + "/";
  const CompiledQuality* quality = converter_.quality();
  if (quality != nullptr) {
    qrtn_table_ = "HQ_QRTN_" + SanitizeId(job_id_);
    qrtn_remote_prefix_ = "quarantine/" + SanitizeId(job_id_) + "/";
    quality_violations_by_id_.assign(quality->num_constraints(), 0);
    quality_field_nulls_.assign(quality->num_fields(), 0);
  }
  if (begin_.error_table_et.empty()) begin_.error_table_et = begin_.target_table + "_ET";
  if (begin_.error_table_uv.empty()) begin_.error_table_uv = begin_.target_table + "_UV";
  if (ctx_.tracer != nullptr) trace_ = ctx_.tracer->StartTrace(job_id_, obs::Phase::kImport);
  if (ctx_.metrics != nullptr) {
    obs::MetricsRegistry* r = ctx_.metrics;
    m_.chunks = r->GetCounter("hyperq_chunks_total");
    m_.rows_received = r->GetCounter("hyperq_rows_received_total");
    m_.bytes_received = r->GetCounter("hyperq_bytes_received_total");
    m_.rows_staged = r->GetCounter("hyperq_rows_staged_total");
    m_.data_errors = r->GetCounter("hyperq_data_errors_total");
    m_.files_uploaded = r->GetCounter("hyperq_files_uploaded_total");
    m_.bytes_uploaded = r->GetCounter("hyperq_bytes_uploaded_total");
    m_.rows_copied = r->GetCounter("hyperq_rows_copied_total");
    m_.chunks_abandoned = r->GetCounter("hyperq_chunks_abandoned_total");
    m_.csv_reallocs = r->GetCounter("hyperq_convert_csv_realloc_total");
    m_.jobs_started = r->GetCounter("hyperq_import_jobs_started_total");
    m_.jobs_completed = r->GetCounter("hyperq_import_jobs_completed_total");
    m_.jobs_failed = r->GetCounter("hyperq_import_jobs_failed_total");
    m_.convert_seconds = r->GetHistogram("hyperq_convert_seconds");
    m_.write_seconds = r->GetHistogram("hyperq_file_write_seconds");
    m_.upload_seconds = r->GetHistogram("hyperq_upload_seconds");
    m_.apply_seconds = r->GetHistogram("hyperq_dml_apply_seconds");
    m_.converter_queue = r->GetGauge("hyperq_converter_queue_depth");
    m_.jobs_active = r->GetGauge("hyperq_import_jobs_active");
    m_.staging_bytes_per_row = r->GetGauge("hyperq_staging_bytes_per_row");
    if (quality != nullptr) {
      m_.rows_quarantined = r->GetCounter("hyperq_quality_rows_quarantined_total");
      m_.violation_rate_bp = r->GetGauge("hyperq_quality_violation_rate_bp");
      m_.quality_violations.reserve(quality->num_constraints());
      for (size_t id = 0; id < quality->num_constraints(); ++id) {
        const QualityConstraintInfo& info = quality->constraint(id);
        m_.quality_violations.push_back(
            r->GetCounter("hyperq_quality_violations_total{constraint=\"" +
                          std::to_string(id) + ":" +
                          std::string(QualityKindName(info.kind)) + ":" + info.column + "\"}"));
      }
    }
    m_.jobs_started->Increment();
    m_.jobs_active->Add(1);
  }
}

ImportJob::~ImportJob() {
  ordered_chunks_.Close();
  for (auto& t : writer_threads_) {
    if (t.joinable()) t.join();
  }
  ReleaseActiveGauge();
}

void ImportJob::ReleaseActiveGauge() {
  if (m_.jobs_active != nullptr && active_gauge_held_.exchange(false)) {
    m_.jobs_active->Sub(1);
  }
}

void ImportJob::StartWriters() {
  size_t n = std::max<size_t>(1, ctx_.options.file_writers);
  FileWriterOptions fw_options;
  fw_options.directory = ctx_.options.local_staging_dir + "/" + SanitizeId(job_id_);
  fw_options.file_size_threshold = ctx_.options.file_size_threshold;
  fw_options.compress = ctx_.options.compress_staging_files;
  fw_options.file_extension = cdw::StagingFileExtension(ctx_.options.staging_format);
  fw_options.compress_seconds =
      ctx_.metrics == nullptr ? nullptr : ctx_.metrics->GetHistogram("hyperq_compress_seconds");
  fw_options.trace = trace_;
  fw_options.trace_parent = trace_ == nullptr ? 0 : trace_->root_id();
  for (size_t i = 0; i < n; ++i) {
    file_writers_.push_back(
        std::make_unique<FileWriter>(fw_options, "part_w" + std::to_string(i)));
  }
  if (converter_.quality() != nullptr) {
    // Quarantine stream rides the same writer threads and disk/retry path
    // but always as CSV (diagnostics, not typed reload data).
    FileWriterOptions q_options = fw_options;
    q_options.file_extension = cdw::StagingFileExtension(cdw::StagingFormat::kCsv);
    for (size_t i = 0; i < n; ++i) {
      qrtn_writers_.push_back(
          std::make_unique<FileWriter>(q_options, "qrtn_w" + std::to_string(i)));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    writer_threads_.emplace_back([this, i] { WriterLoop(i); });
  }
}

common::RetryPolicy ImportJob::MakeIoRetry(const char* breaker_endpoint) const {
  common::RetryOptions options = ctx_.options.io_retry;
  options.breaker = common::BreakerFor(breaker_endpoint);
  if (trace_ != nullptr) {
    std::shared_ptr<obs::Trace> trace = trace_;
    options.on_backoff = [trace](std::string_view point, int attempt, uint64_t sleep_micros) {
      auto start = std::chrono::steady_clock::now();
      trace->RecordSpan(obs::Phase::kRetryBackoff,
                        "retry:" + std::string(point) + "#" + std::to_string(attempt), 0, start,
                        start + std::chrono::microseconds(sleep_micros));
    };
  }
  return common::RetryPolicy(std::move(options));
}

void ImportJob::NoteFatal(const Status& s) {
  common::MutexLock lock(&mu_);
  if (fatal_.ok()) fatal_ = s;
}

Status ImportJob::fatal_status() const {
  common::MutexLock lock(&mu_);
  return fatal_;
}

Status ImportJob::SubmitChunk(const legacy::DataChunkBody& chunk) {
  HQ_RETURN_NOT_OK(fatal_status());

  // Back-pressure: block while the node-wide credit pool is exhausted
  // (Figure 4). The ack to the client is sent only after this returns.
  auto wait_start = std::chrono::steady_clock::now();
  Credit credit = ctx_.credits->Acquire();
  if (trace_ != nullptr) {
    auto wait_end = std::chrono::steady_clock::now();
    // Only genuine throttle events are worth a span (the wait histogram in
    // the CreditManager sees every acquisition).
    if (wait_end - wait_start >= std::chrono::milliseconds(1)) {
      trace_->RecordSpan(obs::Phase::kCreditWait, "credit_wait", 0, wait_start, wait_end);
    }
  }

  // Reserve in-flight memory for the raw chunk plus the converted output
  // (estimated at parity). Exhaustion is the simulated OOM of Figure 10.
  uint64_t reserve_bytes = static_cast<uint64_t>(chunk.payload.size()) * 2;
  Status mem = ctx_.memory->Reserve(reserve_bytes);
  if (!mem.ok()) {
    NoteFatal(mem);
    return mem;
  }

  uint64_t order;
  uint64_t first_row;
  {
    common::MutexLock lock(&mu_);
    order = chunk_counter_++;
    first_row = row_counter_ + 1;
    row_counter_ += chunk.row_count;
    bytes_received_ += chunk.payload.size();
    ++outstanding_conversions_;
  }

  // Move-only state shared into the std::function task.
  struct TaskState {
    legacy::DataChunkBody chunk;
    Credit credit;
    common::MemoryReservation reservation;
  };
  auto state = std::make_shared<TaskState>();
  state->chunk.chunk_seq = chunk.chunk_seq;
  state->chunk.row_count = chunk.row_count;
  if (ctx_.buffers != nullptr) {
    // Copy the payload into a pooled buffer so the allocation is recycled
    // once the converter is done with the raw bytes.
    state->chunk.payload = ctx_.buffers->Acquire(chunk.payload.size());
    state->chunk.payload.insert(state->chunk.payload.end(), chunk.payload.begin(),
                                chunk.payload.end());
  } else {
    state->chunk.payload = chunk.payload;
  }
  state->credit = std::move(credit);
  state->reservation = common::MemoryReservation(ctx_.memory, reserve_bytes);

  if (m_.chunks != nullptr) {
    m_.chunks->Increment();
    m_.rows_received->Increment(chunk.row_count);
    m_.bytes_received->Increment(chunk.payload.size());
    m_.converter_queue->Set(static_cast<int64_t>(ctx_.converter_pool->queued()));
  }

  bool submitted = ctx_.converter_pool->Submit([this, state, order, first_row] {
    ConversionInput input;
    input.order_index = order;
    input.first_row_number = first_row;
    input.chunk = std::move(state->chunk);
    obs::ScopedTimer convert_timer(m_.convert_seconds);
    obs::ScopedSpan convert_span(trace_.get(), obs::Phase::kRowConvert, "convert");
    auto converted = converter_.Convert(input, ctx_.buffers);
    convert_timer.StopAndObserve();
    convert_span.End();
    if (ctx_.buffers != nullptr) ctx_.buffers->Release(std::move(input.chunk.payload));

    WorkItem item;
    item.credit = std::move(state->credit);
    item.reservation = std::move(state->reservation);
    if (converted.ok()) {
      item.converted = std::move(converted).ValueOrDie();
    } else {
      item.status = converted.status();
    }
    if (!ordered_chunks_.Push(order, std::move(item))) {
      NoteFatal(Status::Cancelled("chunk queue closed before conversion finished"));
    }
    {
      common::MutexLock lock(&mu_);
      --outstanding_conversions_;
      if (outstanding_conversions_ == 0) conversions_done_.NotifyAll();
    }
  });
  if (!submitted) {
    common::MutexLock lock(&mu_);
    --outstanding_conversions_;
    return Status::Cancelled("converter pool is shut down");
  }
  return Status::OK();
}

void ImportJob::WriterLoop(size_t writer_index) {
  FileWriter& writer = *file_writers_[writer_index];
  for (;;) {
    std::optional<WorkItem> item = ordered_chunks_.PopNext();
    if (!item.has_value()) break;
    if (!item->status.ok()) {
      NoteFatal(item->status);
      continue;  // credit + reservation released by WorkItem destruction
    }
    // Return the credit to the pool just before the disk write (Figure 4).
    item->credit.Return();
    std::vector<FinalizedFile> finalized;
    obs::ScopedTimer write_timer(m_.write_seconds);
    obs::ScopedSpan write_span(trace_.get(), obs::Phase::kFileWrite, "write");
    // Transient staging-disk failures (the bulkload.file fault point fires
    // before any bytes land, so a failed attempt leaves no partial write)
    // are retried with backoff.
    common::RetryPolicy retry = MakeIoRetry("staging_disk");
    Status s = retry.Run("bulkload.file", [&](const common::RetryAttempt&) {
      return writer.Append(item->converted.csv.AsSlice(), &finalized);
    });
    write_timer.StopAndObserve();
    write_span.End();
    const size_t staged_bytes = item->converted.csv.size();
    // The staging bytes are on disk (or abandoned): recycle the buffer either way.
    if (ctx_.buffers != nullptr) {
      ctx_.buffers->Release(std::move(item->converted.csv.vector()));
    }
    if (!s.ok()) {
      if (common::IsRetryableStatus(s)) {
        // Retries exhausted: degrade instead of failing the whole job. The
        // chunk's rows never reach rows_staged_ and the abandonment lands in
        // the ET error table with its own code, so surviving chunks still
        // commit and the client report shows partial success plus an audit
        // row (ISSUE 5 graceful-degradation contract).
        RecordError abandoned;
        abandoned.row_number = item->converted.first_row_number;
        abandoned.code = legacy::kErrChunkAbandoned;
        abandoned.message = "chunk abandoned after staging retries: " + s.message();
        if (m_.chunks_abandoned != nullptr) m_.chunks_abandoned->Increment();
        common::MutexLock lock(&mu_);
        ++chunks_abandoned_;
        data_errors_.push_back(std::move(abandoned));
      } else {
        NoteFatal(s);
      }
      continue;
    }
    if (m_.rows_staged != nullptr) {
      m_.rows_staged->Increment(item->converted.rows_out);
      if (!item->converted.errors.empty()) {
        m_.data_errors->Increment(item->converted.errors.size());
      }
      if (item->converted.csv_reallocs != 0) {
        m_.csv_reallocs->Increment(item->converted.csv_reallocs);
      }
    }

    // Quality gate: persist the chunk's quarantine stream through the same
    // disk/retry path, then merge the chunk's quality counters.
    const ChunkQuality& cq = item->converted.quality;
    uint64_t qrtn_rows_written = 0;
    if (!qrtn_writers_.empty() && cq.rows_quarantined != 0) {
      std::vector<FinalizedFile> qrtn_finalized;
      common::RetryPolicy qrtn_retry = MakeIoRetry("staging_disk");
      Status qs = qrtn_retry.Run("bulkload.file", [&](const common::RetryAttempt&) {
        return qrtn_writers_[writer_index]->Append(item->converted.qrtn.AsSlice(),
                                                   &qrtn_finalized);
      });
      if (qs.ok()) {
        qrtn_rows_written = cq.rows_quarantined;
      } else if (common::IsRetryableStatus(qs)) {
        // Same degradation as an abandoned staging chunk: the diverted rows
        // are lost but audited in the ET table; the load itself continues.
        RecordError abandoned;
        abandoned.row_number = item->converted.first_row_number;
        abandoned.code = legacy::kErrChunkAbandoned;
        abandoned.message = "quarantine rows abandoned after staging retries: " + qs.message();
        if (m_.chunks_abandoned != nullptr) m_.chunks_abandoned->Increment();
        common::MutexLock lock(&mu_);
        data_errors_.push_back(std::move(abandoned));
      } else {
        NoteFatal(qs);
      }
      if (!qrtn_finalized.empty()) {
        common::MutexLock lock(&finalize_mu_);
        for (auto& f : qrtn_finalized) qrtn_finalized_files_.push_back(std::move(f));
      }
    }
    if (m_.rows_quarantined != nullptr && cq.rows_quarantined != 0) {
      m_.rows_quarantined->Increment(cq.rows_quarantined);
    }
    if (!m_.quality_violations.empty()) {
      for (size_t id = 0; id < cq.violations_by_id.size(); ++id) {
        if (cq.violations_by_id[id] != 0) {
          m_.quality_violations[id]->Increment(cq.violations_by_id[id]);
        }
      }
    }
    {
      common::MutexLock lock(&mu_);
      rows_staged_ += item->converted.rows_out;
      bytes_staged_ += staged_bytes;
      quality_rows_checked_ += cq.rows_checked;
      rows_quarantined_ += cq.rows_quarantined;
      qrtn_rows_staged_ += qrtn_rows_written;
      for (size_t id = 0; id < cq.violations_by_id.size(); ++id) {
        quality_violations_by_id_[id] += cq.violations_by_id[id];
      }
      for (size_t f = 0; f < cq.field_nulls.size(); ++f) {
        quality_field_nulls_[f] += cq.field_nulls[f];
      }
      for (auto& e : item->converted.errors) data_errors_.push_back(std::move(e));
    }
    if (!finalized.empty()) {
      common::MutexLock lock(&finalize_mu_);
      for (auto& f : finalized) finalized_files_.push_back(std::move(f));
    }
  }
  std::vector<FinalizedFile> finalized;
  Status s = writer.Finish(&finalized);
  if (!s.ok()) NoteFatal(s);
  if (!finalized.empty()) {
    common::MutexLock lock(&finalize_mu_);
    for (auto& f : finalized) finalized_files_.push_back(std::move(f));
  }
  if (!qrtn_writers_.empty()) {
    std::vector<FinalizedFile> qrtn_finalized;
    Status qs = qrtn_writers_[writer_index]->Finish(&qrtn_finalized);
    if (!qs.ok()) NoteFatal(qs);
    if (!qrtn_finalized.empty()) {
      common::MutexLock lock(&finalize_mu_);
      for (auto& f : qrtn_finalized) qrtn_finalized_files_.push_back(std::move(f));
    }
  }
}

Status ImportJob::FinishAcquisition(uint64_t client_total_chunks, uint64_t client_total_rows) {
  {
    common::MutexLock lock(&mu_);
    if (acquisition_finished_) return fatal_;
    while (outstanding_conversions_ != 0) conversions_done_.Wait(lock);
    acquisition_finished_ = true;
  }
  ordered_chunks_.Close();
  for (auto& t : writer_threads_) {
    if (t.joinable()) t.join();
  }
  HQ_RETURN_NOT_OK(fatal_status());

  {
    common::MutexLock lock(&mu_);
    if (client_total_chunks != 0 && client_total_chunks != chunk_counter_) {
      return Status::ProtocolError("client reported " + std::to_string(client_total_chunks) +
                                   " chunks, received " + std::to_string(chunk_counter_));
    }
    if (client_total_rows != 0 && client_total_rows != row_counter_) {
      return Status::ProtocolError("client reported " + std::to_string(client_total_rows) +
                                   " rows, received " + std::to_string(row_counter_));
    }
  }

  // Bulk-upload all finalized staging files (plus the quarantine files, under
  // their own remote prefix) in one batched request.
  std::vector<std::vector<uint8_t>> payloads;
  std::vector<std::pair<std::string, Slice>> batch;
  uint64_t bytes_uploaded = 0;
  {
    common::MutexLock lock(&finalize_mu_);
    payloads.reserve(finalized_files_.size() + qrtn_finalized_files_.size());
    auto stage_for_upload = [&](const FinalizedFile& f,
                                const std::string& prefix) -> Status {
      HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, cloud::ReadFileBytes(f.path));
      bytes_uploaded += bytes.size();
      payloads.push_back(std::move(bytes));
      std::string name = f.path;
      size_t slash = name.find_last_of('/');
      if (slash != std::string::npos) name = name.substr(slash + 1);
      batch.emplace_back(prefix + name, Slice(payloads.back()));
      return Status::OK();
    };
    for (const auto& f : finalized_files_) {
      HQ_RETURN_NOT_OK(stage_for_upload(f, remote_prefix_));
    }
    for (const auto& f : qrtn_finalized_files_) {
      HQ_RETURN_NOT_OK(stage_for_upload(f, qrtn_remote_prefix_));
    }
  }
  if (!batch.empty()) {
    obs::ScopedTimer upload_timer(m_.upload_seconds);
    obs::ScopedSpan upload_span(trace_.get(), obs::Phase::kStorePut, "upload");
    // Resume-aware retry: PutBatch reports the applied prefix on failure, so
    // each attempt re-uploads only the objects not yet known durable
    // (re-putting a lost-ack object is an idempotent overwrite).
    size_t start = 0;
    common::RetryPolicy retry = MakeIoRetry("objstore");
    HQ_RETURN_NOT_OK(retry.Run("objstore.put", [&](const common::RetryAttempt&) {
      std::vector<std::pair<std::string, Slice>> rest(batch.begin() + static_cast<long>(start),
                                                      batch.end());
      size_t applied = 0;
      Status put = ctx_.store->PutBatch(rest, &applied);
      if (!put.ok()) start += applied;
      return put;
    }));
  }
  if (m_.files_uploaded != nullptr) {
    m_.files_uploaded->Increment(batch.size());
    m_.bytes_uploaded->Increment(bytes_uploaded);
  }
  // Local staging files have served their purpose. (Writers joined above;
  // the lock still makes the access provably safe.)
  {
    common::MutexLock lock(&finalize_mu_);
    for (const auto& f : finalized_files_) std::remove(f.path.c_str());
    for (const auto& f : qrtn_finalized_files_) std::remove(f.path.c_str());
  }

  // In-the-cloud COPY into the staging table. Safe to retry: the CDW keeps a
  // per-table ledger of ingested staging objects, so a re-COPY after a lost
  // ack skips already-ingested files and returns the cumulative row count.
  uint64_t copied;
  {
    obs::ScopedSpan copy_span(trace_.get(), obs::Phase::kCdwCopy, "copy");
    // Format negotiation: the job tells COPY what it staged, so a malformed
    // object fails loudly instead of being misparsed under auto-sniffing.
    cdw::CopyOptions copy_options;
    copy_options.format = ctx_.options.staging_format == cdw::StagingFormat::kBinary
                              ? cdw::CopyFormat::kBinary
                              : cdw::CopyFormat::kCsv;
    common::RetryPolicy retry = MakeIoRetry("cdw");
    HQ_ASSIGN_OR_RETURN(copied, retry.RunResult<uint64_t>("cdw.copy", [&](
                                    const common::RetryAttempt&) {
                          return ctx_.cdw->CopyInto(staging_table_, remote_prefix_,
                                                    copy_options);
                        }));
  }
  if (m_.rows_copied != nullptr) m_.rows_copied->Increment(copied);

  // Quarantine COPY runs BEFORE the degradation policy is evaluated, so an
  // aborted-over-threshold job still leaves its full diagnostics queryable.
  uint64_t qrtn_copied = 0;
  if (!qrtn_table_.empty()) {
    obs::ScopedSpan copy_span(trace_.get(), obs::Phase::kCdwCopy, "copy_quarantine");
    cdw::CopyOptions copy_options;
    copy_options.format = cdw::CopyFormat::kCsv;
    common::RetryPolicy retry = MakeIoRetry("cdw");
    HQ_ASSIGN_OR_RETURN(qrtn_copied, retry.RunResult<uint64_t>("cdw.copy", [&](
                                         const common::RetryAttempt&) {
                          return ctx_.cdw->CopyInto(qrtn_table_, qrtn_remote_prefix_,
                                                    copy_options);
                        }));
  }

  common::MutexLock lock(&mu_);
  stats_.chunks = chunk_counter_;
  stats_.rows_received = row_counter_;
  stats_.rows_staged = rows_staged_;
  stats_.bytes_received = bytes_received_;
  stats_.data_errors = data_errors_.size();
  stats_.files_uploaded = batch.size();
  stats_.bytes_uploaded = bytes_uploaded;
  stats_.rows_copied = copied;
  stats_.chunks_abandoned = chunks_abandoned_;
  stats_.bytes_staged = bytes_staged_;
  stats_.rows_quarantined = rows_quarantined_;
  if (m_.staging_bytes_per_row != nullptr && rows_staged_ != 0) {
    m_.staging_bytes_per_row->Set(static_cast<int64_t>(bytes_staged_ / rows_staged_));
  }
  timings_.acquisition_seconds = acquisition_timer_.ElapsedSeconds();
  if (copied != rows_staged_) {
    return Status::Internal("COPY loaded " + std::to_string(copied) + " rows, staged " +
                            std::to_string(rows_staged_));
  }
  if (qrtn_copied != qrtn_rows_staged_) {
    return Status::Internal("quarantine COPY loaded " + std::to_string(qrtn_copied) +
                            " rows, staged " + std::to_string(qrtn_rows_staged_));
  }
  if (converter_.quality() != nullptr) {
    quality_report_ =
        BuildQualityJobReport(*converter_.quality(), quality_violations_by_id_,
                              quality_field_nulls_, quality_rows_checked_, rows_quarantined_);
    if (m_.violation_rate_bp != nullptr) {
      m_.violation_rate_bp->Set(static_cast<int64_t>(quality_report_.violation_rate * 10000));
    }
    if (ctx_.options.quality.abort_over_threshold) {
      // Reason-coded graceful degradation, job flavor: the load aborts (the
      // quarantine table and report survive) when the job-level watermark or
      // any nullrate ceiling is breached.
      if (quality_report_.violation_rate > ctx_.options.quality.max_violation_rate) {
        return Status::ConstraintViolation(
            "quality violation rate " + std::to_string(quality_report_.violation_rate) +
            " exceeds max_violation_rate " +
            std::to_string(ctx_.options.quality.max_violation_rate) + " (" +
            std::to_string(rows_quarantined_) + " of " +
            std::to_string(quality_rows_checked_) + " rows quarantined to " + qrtn_table_ +
            ")");
      }
      for (const auto& c : quality_report_.constraints) {
        if (c.breached) {
          return Status::ConstraintViolation(
              "quality constraint " + c.column + " " + c.bound + " breached (observed " +
              std::to_string(c.observed) + "); quarantine table " + qrtn_table_);
        }
      }
    }
  }
  return Status::OK();
}

Result<legacy::JobReportBody> ImportJob::ApplyDml(const std::string& label,
                                                  const std::string& sql) {
  (void)label;
  Status fatal = fatal_status();
  if (!fatal.ok()) {
    if (m_.jobs_failed != nullptr) m_.jobs_failed->Increment();
    ReleaseActiveGauge();
    if (trace_ != nullptr) trace_->Finish();
    return fatal;
  }
  common::Stopwatch app_timer;
  obs::ScopedTimer apply_timer(m_.apply_seconds);
  obs::ScopedSpan apply_span(trace_.get(), obs::Phase::kDmlApply, "apply");

  HQ_ASSIGN_OR_RETURN(sql::StatementPtr legacy_stmt, sql::ParseStatement(sql));

  // Record acquisition-phase data errors in the ET table first (the legacy
  // tuple-at-a-time semantics: bad input records are excluded and logged).
  std::vector<RecordError> data_errors;
  uint64_t total_rows;
  {
    common::MutexLock lock(&mu_);
    data_errors = data_errors_;
    total_rows = row_counter_;
  }
  common::RetryPolicy exec_retry = MakeIoRetry("cdw");
  for (const auto& e : data_errors) {
    std::string sql_text =
        "INSERT INTO " + begin_.error_table_et + " VALUES (" + std::to_string(e.code) + ", " +
        (e.field.empty() ? std::string("NULL") : SqlQuote(e.field)) + ", " +
        SqlQuote(e.message + " (input row number: " + std::to_string(e.row_number) + ")") + ")";
    HQ_RETURN_NOT_OK(exec_retry.Run("cdw.exec", [&](const common::RetryAttempt&) {
      return ctx_.cdw->ExecuteSql(sql_text).status();
    }));
  }

  AdaptiveOptions adaptive;
  adaptive.max_errors = ctx_.options.max_errors;
  adaptive.max_retries = ctx_.options.max_retries;
  adaptive.enforce_uniqueness = ctx_.options.enforce_uniqueness;
  adaptive.io_retry = ctx_.options.io_retry;
  AdaptiveDmlApplier applier(ctx_.cdw, legacy_stmt.get(), begin_.layout, staging_table_,
                             begin_.target_table, begin_.error_table_et, begin_.error_table_uv,
                             adaptive);
  HQ_ASSIGN_OR_RETURN(DmlApplyResult dml, applier.Apply(1, total_rows));

  // Staging table is job-scoped scratch state; the CDW's COPY-idempotence
  // ledger for it goes with it.
  HQ_RETURN_NOT_OK(ctx_.cdw->catalog()->DropTable(staging_table_, /*if_exists=*/true));
  ctx_.cdw->ForgetCopies(staging_table_);

  // Publish the result and application timing under the job lock: sessions
  // may poll JobDmlResult()/JobTimings() while the apply is still running.
  {
    common::MutexLock lock(&mu_);
    dml_result_ = dml;
    timings_.application_seconds = app_timer.ElapsedSeconds();
  }

  legacy::JobReportBody report;
  report.rows_inserted = dml.rows_inserted;
  report.rows_updated = dml.rows_updated;
  report.rows_deleted = dml.rows_deleted;
  report.et_errors = dml.et_errors + data_errors.size();
  report.uv_errors = dml.uv_errors;
  report.message = "job " + job_id_ + " complete";

  apply_timer.StopAndObserve();
  apply_span.End();
  if (m_.jobs_completed != nullptr) m_.jobs_completed->Increment();
  ReleaseActiveGauge();
  if (trace_ != nullptr) trace_->Finish();
  return report;
}

PhaseTimings ImportJob::timings() const {
  common::MutexLock lock(&mu_);
  return timings_;
}

AcquisitionStats ImportJob::stats() const {
  common::MutexLock lock(&mu_);
  return stats_;
}

DmlApplyResult ImportJob::dml_result() const {
  common::MutexLock lock(&mu_);
  return dml_result_;
}

QualityJobReport ImportJob::quality_report() const {
  common::MutexLock lock(&mu_);
  return quality_report_;
}

}  // namespace hyperq::core
