#include "hyperq/coalescer.h"

namespace hyperq::core {

using common::ByteBuffer;
using common::Result;
using common::Slice;
using common::Status;

Result<legacy::Message> Coalescer::NextMessage() {
  for (;;) {
    legacy::Message msg;
    HQ_ASSIGN_OR_RETURN(size_t consumed, legacy::TryDecodeMessage(Slice(pending_), &msg));
    if (consumed > 0) {
      pending_.erase(pending_.begin(), pending_.begin() + static_cast<ptrdiff_t>(consumed));
      ++stats_.messages_formed;
      return msg;
    }
    uint8_t buf[64 * 1024];
    HQ_ASSIGN_OR_RETURN(size_t n, transport_->Read(buf, sizeof(buf)));
    if (n == 0) {
      if (pending_.empty()) return Status::Cancelled("client closed connection");
      return Status::ProtocolError("client closed connection mid-frame");
    }
    ++stats_.reads;
    stats_.bytes_received += n;
    pending_.insert(pending_.end(), buf, buf + n);
  }
}

Status Coalescer::Send(const legacy::Message& msg) {
  ByteBuffer buf;
  legacy::EncodeMessage(msg, &buf);
  return transport_->Write(buf.AsSlice());
}

}  // namespace hyperq::core
