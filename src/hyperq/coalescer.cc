#include "hyperq/coalescer.h"

namespace hyperq::core {

using common::ByteBuffer;
using common::Result;
using common::Slice;
using common::Status;

Result<legacy::Message> Coalescer::NextMessage() {
  std::chrono::steady_clock::duration decode_elapsed{0};
  for (;;) {
    legacy::Message msg;
    const bool timed = decode_seconds_ != nullptr;
    auto decode_start =
        timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point();
    HQ_ASSIGN_OR_RETURN(size_t consumed, legacy::TryDecodeMessage(Slice(pending_), &msg));
    if (timed) decode_elapsed += std::chrono::steady_clock::now() - decode_start;
    if (consumed > 0) {
      pending_.erase(pending_.begin(), pending_.begin() + static_cast<ptrdiff_t>(consumed));
      ++stats_.messages_formed;
      if (timed) {
        last_decode_end_ = std::chrono::steady_clock::now();
        last_decode_elapsed_ = decode_elapsed;
        decode_seconds_->Observe(std::chrono::duration<double>(decode_elapsed).count());
      }
      return msg;
    }
    uint8_t buf[64 * 1024];
    HQ_ASSIGN_OR_RETURN(size_t n, transport_->Read(buf, sizeof(buf)));
    if (n == 0) {
      if (pending_.empty()) return Status::Cancelled("client closed connection");
      return Status::ProtocolError("client closed connection mid-frame");
    }
    ++stats_.reads;
    stats_.bytes_received += n;
    pending_.insert(pending_.end(), buf, buf + n);
  }
}

Status Coalescer::Send(const legacy::Message& msg) {
  ByteBuffer buf;
  legacy::EncodeMessage(msg, &buf);
  return transport_->Write(buf.AsSlice());
}

}  // namespace hyperq::core
