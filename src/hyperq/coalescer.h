#pragma once

#include <chrono>
#include <memory>

#include "legacy/parcel.h"
#include "net/transport.h"
#include "obs/metrics.h"

/// \file coalescer.h
/// The Coalescer process (paper Section 3): "interacts with a Coalescer
/// process to form complete TCP messages from the raw bytes received over
/// the wire". Reassembles LDWP frames from an arbitrary byte stream and
/// keeps wire statistics.

namespace hyperq::core {

struct CoalescerStats {
  uint64_t bytes_received = 0;
  uint64_t messages_formed = 0;
  uint64_t reads = 0;  ///< transport reads (fragments)
};

class Coalescer {
 public:
  explicit Coalescer(std::shared_ptr<net::Transport> transport)
      : transport_(std::move(transport)) {}

  /// Blocks for the next complete message. Cancelled = clean EOF.
  common::Result<legacy::Message> NextMessage();

  /// Sends one message back to the client.
  common::Status Send(const legacy::Message& msg);

  /// Observes pure decode time (frame parsing, excluding the blocking
  /// transport reads) per formed message. Null disables.
  void BindDecodeHistogram(obs::Histogram* decode_seconds) { decode_seconds_ = decode_seconds; }

  /// Decode cost of the most recent message, for post-hoc span attribution
  /// (the owning job is only known after the parcel is decoded). The
  /// interval ends when the message was formed and spans the accumulated
  /// parse time.
  std::chrono::steady_clock::time_point last_decode_end() const { return last_decode_end_; }
  std::chrono::steady_clock::duration last_decode_elapsed() const { return last_decode_elapsed_; }

  const CoalescerStats& stats() const { return stats_; }
  net::Transport* transport() { return transport_.get(); }

 private:
  std::shared_ptr<net::Transport> transport_;
  std::vector<uint8_t> pending_;
  CoalescerStats stats_;
  obs::Histogram* decode_seconds_ = nullptr;
  std::chrono::steady_clock::time_point last_decode_end_;
  std::chrono::steady_clock::duration last_decode_elapsed_{0};
};

}  // namespace hyperq::core
