#pragma once

#include <memory>

#include "legacy/parcel.h"
#include "net/transport.h"

/// \file coalescer.h
/// The Coalescer process (paper Section 3): "interacts with a Coalescer
/// process to form complete TCP messages from the raw bytes received over
/// the wire". Reassembles LDWP frames from an arbitrary byte stream and
/// keeps wire statistics.

namespace hyperq::core {

struct CoalescerStats {
  uint64_t bytes_received = 0;
  uint64_t messages_formed = 0;
  uint64_t reads = 0;  ///< transport reads (fragments)
};

class Coalescer {
 public:
  explicit Coalescer(std::shared_ptr<net::Transport> transport)
      : transport_(std::move(transport)) {}

  /// Blocks for the next complete message. Cancelled = clean EOF.
  common::Result<legacy::Message> NextMessage();

  /// Sends one message back to the client.
  common::Status Send(const legacy::Message& msg);

  const CoalescerStats& stats() const { return stats_; }
  net::Transport* transport() { return transport_.get(); }

 private:
  std::shared_ptr<net::Transport> transport_;
  std::vector<uint8_t> pending_;
  CoalescerStats stats_;
};

}  // namespace hyperq::core
