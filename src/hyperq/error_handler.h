#pragma once

#include <string>

#include "cdw/cdw_server.h"
#include "common/result.h"
#include "common/retry.h"
#include "sql/ast.h"
#include "types/schema.h"

/// \file error_handler.h
/// Adaptive error handling (paper Section 7). The application phase runs the
/// bound DML over the whole staging table in one set-oriented statement. If
/// the CDW aborts it (a conversion failure or an emulated uniqueness
/// violation, reported at chunk granularity with no tuple identified), the
/// handler recursively re-applies the DML on halves of the row range until
/// either a single row isolates the faulty tuple (recorded in the ET or UV
/// error table) or a preconfigured limit stops the search:
///   - max_errors: once this many individual errors are recorded, remaining
///     failing ranges are logged as a single range error (code 9057,
///     "row numbers: (a, b)") instead of being split further — Figure 6;
///   - max_retries: maximum split depth for any chunk.

namespace hyperq::core {

struct AdaptiveOptions {
  uint64_t max_errors = 100;
  int max_retries = 64;
  bool enforce_uniqueness = true;
  /// Transient-failure policy for every statement shipped to the CDW. The
  /// adaptive splitting above absorbs *tuple* errors; this absorbs *endpoint*
  /// errors (injected or real), which would otherwise abort the whole apply.
  common::RetryOptions io_retry;
};

struct DmlApplyResult {
  uint64_t rows_inserted = 0;
  uint64_t rows_updated = 0;
  uint64_t rows_deleted = 0;
  uint64_t et_errors = 0;  ///< transformation/data errors recorded
  uint64_t uv_errors = 0;  ///< uniqueness violations recorded
  uint64_t range_errors = 0;  ///< 9057 range entries among et_errors
  /// DML statements issued against the CDW (instrumentation for benchmarks).
  uint64_t statements_issued = 0;
};

/// Schemas of the error tables Hyper-Q materializes in the CDW.
/// ET (transformation errors): ERRORCODE INTEGER, ERRORFIELD VARCHAR(128),
///   ERRORMESSAGE VARCHAR(1024)    — Figure 6 shape.
/// UV (uniqueness violations): the layout's columns as text, plus
///   SEQNO BIGINT, ERRCODE INTEGER — Figure 5(c) shape.
types::Schema MakeEtErrorSchema();
types::Schema MakeUvErrorSchema(const types::Schema& layout);

/// Quarantine table for the data-quality gate (HQ_QRTN_<job>): the load
/// layout's columns as raw text — quarantined rows are diagnostics, not typed
/// reload data — plus the reason columns the conversion kernels emit:
///   QRTN_ROWNUM BIGINT        source row number (the HQ_ROWNUM value)
///   QRTN_CONSTRAINT INTEGER   constraint id within the table's spec block
///   QRTN_KIND VARCHAR(16)     reason-code family (notnull, range, ...)
///   QRTN_COLUMN VARCHAR(128)  column the constraint names
///   QRTN_BOUND VARCHAR(256)   violated bound, human-readable
/// Fails when the layout already uses a QRTN_* reserved name.
common::Result<types::Schema> MakeQuarantineSchema(const types::Schema& layout);

class AdaptiveDmlApplier {
 public:
  /// `legacy_dml` is the un-bound legacy DML (with :placeholders).
  /// `staging_table` must contain the layout columns plus HQ_ROWNUM.
  AdaptiveDmlApplier(cdw::CdwServer* cdw, const sql::Statement* legacy_dml,
                     types::Schema layout, std::string staging_table, std::string target_table,
                     std::string et_table, std::string uv_table, AdaptiveOptions options);

  /// Applies the DML over staging rows [first_row, last_row] (inclusive,
  /// 1-based global row numbers).
  common::Result<DmlApplyResult> Apply(uint64_t first_row, uint64_t last_row);

 private:
  common::Status ApplyRange(uint64_t first, uint64_t last, int depth, DmlApplyResult* result);
  /// True when the status is a tuple-level failure the handler absorbs.
  static bool IsAbsorbableFailure(const common::Status& s);

  common::Status RecordSingletonError(uint64_t row, const common::Status& failure,
                                      DmlApplyResult* result);
  common::Status RecordRangeError(uint64_t first, uint64_t last, DmlApplyResult* result);
  /// Finds which target column's expression fails for a given staging row
  /// (best-effort; empty when not identifiable).
  std::string IdentifyErrorField(uint64_t row);

  /// Executes the bound+transpiled DML for a row range.
  common::Result<cdw::ExecResult> ExecuteBound(uint64_t first, uint64_t last,
                                               DmlApplyResult* result);

  /// The per-statement retry policy (io_retry options + the "cdw" breaker).
  common::RetryPolicy ExecRetry() const;

  cdw::CdwServer* cdw_;
  const sql::Statement* legacy_dml_;
  types::Schema layout_;
  std::string staging_table_;
  std::string target_table_;
  std::string et_table_;
  std::string uv_table_;
  AdaptiveOptions options_;
  uint64_t errors_recorded_ = 0;
};

/// SQL-quotes a string literal (doubling single quotes).
std::string SqlQuote(const std::string& s);

}  // namespace hyperq::core
