#include "hyperq/credit_manager.h"

#include <algorithm>

namespace hyperq::core {

Credit& Credit::operator=(Credit&& other) noexcept {
  if (this != &other) {
    Return();
    pool_ = other.pool_;
    other.pool_ = nullptr;
  }
  return *this;
}

void Credit::Return() {
  if (pool_ != nullptr) {
    pool_->ReturnOne();
    pool_ = nullptr;
  }
}

Credit CreditManager::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.acquisitions;
  if (available_ == 0) {
    ++stats_.blocked_acquisitions;
    cv_.wait(lock, [&] { return available_ > 0; });
  }
  --available_;
  stats_.max_outstanding = std::max(stats_.max_outstanding, pool_size_ - available_);
  return Credit(this);
}

Credit CreditManager::TryAcquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (available_ == 0) return Credit();
  ++stats_.acquisitions;
  --available_;
  stats_.max_outstanding = std::max(stats_.max_outstanding, pool_size_ - available_);
  return Credit(this);
}

uint64_t CreditManager::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return available_;
}

uint64_t CreditManager::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_size_ - available_;
}

CreditStats CreditManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void CreditManager::ReturnOne() {
  std::lock_guard<std::mutex> lock(mu_);
  ++available_;
  cv_.notify_one();
}

}  // namespace hyperq::core
