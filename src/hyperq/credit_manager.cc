#include "hyperq/credit_manager.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace hyperq::core {

Credit& Credit::operator=(Credit&& other) noexcept {
  if (this != &other) {
    Return();
    pool_ = other.pool_;
    other.pool_ = nullptr;
  }
  return *this;
}

void Credit::Return() {
  if (pool_ != nullptr) {
    pool_->ReturnOne();
    pool_ = nullptr;
  }
}

void CreditManager::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  in_use_gauge_ = registry->GetGauge("hyperq_credits_in_use");
  acquisitions_total_ = registry->GetCounter("hyperq_credit_acquisitions_total");
  throttle_total_ = registry->GetCounter("hyperq_credit_throttle_total");
  wait_seconds_ = registry->GetHistogram("hyperq_credit_wait_seconds");
}

void CreditManager::NoteAcquired() {
  --available_;
  stats_.max_outstanding = std::max(stats_.max_outstanding, pool_size_ - available_);
  if (in_use_gauge_ != nullptr) in_use_gauge_->Set(static_cast<int64_t>(pool_size_ - available_));
}

Credit CreditManager::Acquire() {
  common::MutexLock lock(&mu_);
  ++stats_.acquisitions;
  if (acquisitions_total_ != nullptr) acquisitions_total_->Increment();
  if (available_ == 0) {
    ++stats_.blocked_acquisitions;
    if (throttle_total_ != nullptr) throttle_total_->Increment();
    common::Stopwatch wait_timer;
    while (available_ == 0) cv_.Wait(lock);
    if (wait_seconds_ != nullptr) wait_seconds_->Observe(wait_timer.ElapsedSeconds());
  } else if (wait_seconds_ != nullptr) {
    wait_seconds_->Observe(0.0);
  }
  NoteAcquired();
  return Credit(this);
}

Credit CreditManager::TryAcquire() {
  common::MutexLock lock(&mu_);
  if (available_ == 0) return Credit();
  ++stats_.acquisitions;
  if (acquisitions_total_ != nullptr) acquisitions_total_->Increment();
  NoteAcquired();
  return Credit(this);
}

uint64_t CreditManager::available() const {
  common::MutexLock lock(&mu_);
  return available_;
}

uint64_t CreditManager::outstanding() const {
  common::MutexLock lock(&mu_);
  return pool_size_ - available_;
}

CreditStats CreditManager::stats() const {
  common::MutexLock lock(&mu_);
  return stats_;
}

void CreditManager::ReturnOne() {
  common::MutexLock lock(&mu_);
  ++available_;
  if (in_use_gauge_ != nullptr) in_use_gauge_->Set(static_cast<int64_t>(pool_size_ - available_));
  cv_.NotifyOne();
}

}  // namespace hyperq::core
