#include "hyperq/file_writer.h"

#include <filesystem>

#include "cloudstore/bulk_loader.h"
#include "cloudstore/compression.h"
#include "common/fault.h"

namespace hyperq::core {

using common::ByteBuffer;
using common::Slice;
using common::Status;

FileWriter::FileWriter(FileWriterOptions options, std::string prefix)
    : options_(std::move(options)), prefix_(std::move(prefix)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
}

FileWriter::~FileWriter() {
  if (current_ != nullptr) {
    std::fclose(current_);
    std::remove(current_path_.c_str());
  }
}

Status FileWriter::OpenNext() {
  current_path_ = options_.directory + "/" + prefix_ + "_" +
                  std::to_string(next_file_index_++) + options_.file_extension;
  current_ = std::fopen(current_path_.c_str(), "wb");
  if (current_ == nullptr) {
    return Status::IOError("cannot create staging file: " + current_path_);
  }
  current_bytes_ = 0;
  return Status::OK();
}

Status FileWriter::FinalizeCurrent(std::vector<FinalizedFile>* finalized) {
  if (current_ == nullptr) return Status::OK();
  std::fclose(current_);
  current_ = nullptr;
  FinalizedFile file;
  file.raw_bytes = current_bytes_;
  if (options_.compress) {
    HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> raw, cloud::ReadFileBytes(current_path_));
    obs::ScopedTimer compress_timer(options_.compress_seconds);
    obs::ScopedSpan compress_span(options_.trace.get(), obs::Phase::kCompress, "compress",
                                  options_.trace_parent);
    ByteBuffer compressed;
    cloud::Compress(Slice(raw), &compressed);
    compress_timer.StopAndObserve();
    compress_span.End();
    std::string compressed_path = current_path_ + ".hqz";
    HQ_RETURN_NOT_OK(cloud::WriteFileBytes(compressed_path, compressed.AsSlice()));
    std::remove(current_path_.c_str());
    file.path = compressed_path;
    file.final_bytes = compressed.size();
  } else {
    file.path = current_path_;
    file.final_bytes = current_bytes_;
  }
  finalized->push_back(std::move(file));
  ++files_finalized_;
  return Status::OK();
}

Status FileWriter::Append(Slice data, std::vector<FinalizedFile>* finalized) {
  // Fault point for the local-disk half of bulk loading. Deliberately before
  // any bytes are written: a failed Append leaves no partial state, so the
  // ImportJob writer loop can retry (or abandon) the whole chunk cleanly.
  HQ_RETURN_NOT_OK(common::FaultInjector::Global().Inject("bulkload.file"));
  if (current_ == nullptr) {
    HQ_RETURN_NOT_OK(OpenNext());
  }
  if (data.size() != 0 &&
      std::fwrite(data.data(), 1, data.size(), current_) != data.size()) {
    return Status::IOError("short write to staging file: " + current_path_);
  }
  current_bytes_ += data.size();
  bytes_written_ += data.size();
  if (current_bytes_ >= options_.file_size_threshold) {
    HQ_RETURN_NOT_OK(FinalizeCurrent(finalized));
  }
  return Status::OK();
}

Status FileWriter::Finish(std::vector<FinalizedFile>* finalized) {
  if (current_ != nullptr && current_bytes_ == 0) {
    // Empty open file: discard.
    std::fclose(current_);
    current_ = nullptr;
    std::remove(current_path_.c_str());
    return Status::OK();
  }
  return FinalizeCurrent(finalized);
}

}  // namespace hyperq::core
