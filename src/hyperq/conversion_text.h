#pragma once

#include <charconv>
#include <string_view>

#include "common/bytes.h"

/// \file conversion_text.h
/// CSV text emission shared by the fused conversion plan (conversion_plan.cc)
/// and the schema-drift remap path (conversion_remap.cc). Both paths must
/// produce byte-identical output to DataConverter::ConvertReference, so the
/// escaping lives in exactly one place.

namespace hyperq::core::conversion_detail {

/// Appends one non-NULL CSV field with exactly EncodeCsvRecord's escaping:
/// empty strings are quoted (to stay distinct from NULL), and any text
/// containing the delimiter, '"', '\n' or '\r' is quoted with '"' doubled.
inline void AppendCsvText(std::string_view text, char delimiter, common::ByteBuffer* out) {
  bool needs_quotes = text.empty();
  for (char c : text) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) {
    out->AppendString(text);
    return;
  }
  out->AppendByte('"');
  // Emit runs ending at each '"' inclusive, then restart the next run AT the
  // quote so it is emitted twice ("" escape) without per-character appends.
  // Unchecked string_view construction instead of substr(): run <= i < size
  // always holds, and substr's pos>size bounds check would compile
  // __throw_out_of_range_fmt into the hot loop (caught by hqcheck's
  // hotpath-symbol proof).
  size_t run = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '"') {
      out->AppendString(std::string_view(text.data() + run, i - run + 1));
      run = i;
    }
  }
  out->AppendString(std::string_view(text.data() + run, text.size() - run));
  out->AppendByte('"');
}

template <typename Int>
inline void AppendIntText(Int v, char delimiter, common::ByteBuffer* out) {
  char buf[24];
  auto r = std::to_chars(buf, buf + sizeof(buf), v);
  AppendCsvText(std::string_view(buf, static_cast<size_t>(r.ptr - buf)), delimiter, out);
}

}  // namespace hyperq::core::conversion_detail
