#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "types/schema.h"
#include "types/value.h"

/// \file quality.h
/// Declarative data-quality gate (ROADMAP "Data-quality gate and quarantine
/// path"): per-table constraint specs parsed off the hot path and compiled
/// into the conversion kernels of BOTH staging families as fused per-field
/// check ops. Violating rows are diverted record-atomically into a
/// quarantine CSV stream (loaded into HQ_QRTN_<job> through the same
/// upload→COPY tail as staging data) carrying the raw field values plus a
/// reason code richer than ET codes: constraint id, kind, column, violated
/// bound, and the source row number.
///
/// Spec grammar (whitespace around tokens is ignored):
///
///   spec        := table-block*
///   table-block := table-name '{' rule (';' rule)* '}'
///   rule        := column ':' check (',' check)*
///                | 'pair' ':' column ('<' | '<=') column
///                | 'require' ':' column 'if' column
///   check       := 'notnull'
///                | 'nullrate<=' number            (aggregate ceiling, no row
///                                                  quarantine; policy input)
///                | 'range[' [number] ',' [number] ']'   (numeric/date/ts)
///                | 'len[' [int] ',' [int] ']'           (string byte length)
///                | 'charset[' set ']'   (chars + 'a-z' ranges; ']' illegal)
///                | 'pattern[' glob ']'  (literals, '?' = any one, '*' = any run)
///
/// Example:
///   orders{O_TOTAL:notnull,range[0,100000];O_ID:len[1,16],charset[A-Z0-9_],
///   pattern[ORD*];pair:O_SHIP<=O_DUE;require:O_SHIP if O_TOTAL}
///
/// Semantics (mirrored exactly by the interpretive reference validator in
/// DataConverter::ConvertReference — the differential suite diffs the two):
///   - `range` bounds are in the column's kernel value space: integers and
///     floats as-is, DECIMAL in *scaled* units (bounds are pre-multiplied by
///     10^scale at compile), DATE in days since epoch, TIMESTAMP in
///     microseconds. Only numeric/date/timestamp columns accept `range` and
///     `pair`; any column accepts `notnull`/`nullrate`/`require`; only
///     CHAR/VARCHAR accept `len`/`charset`/`pattern` (CHAR values are checked
///     as wired, including padding).
///   - Per row, each constraint is violated at most once; a row's quarantine
///     reason is its FIRST violation in evaluation order: fields in layout
///     order (notnull, then range | len,charset,pattern), then cross-field
///     rules in spec order. All violations are counted for the
///     hyperq_quality_violations_total{constraint=...} counters.
///   - NULL fields never fail value checks (only notnull / require see them);
///     a nullrate ceiling is evaluated per job / per micro-batch over decoded
///     rows, breaches feed the degradation policy instead of quarantining.

namespace hyperq::core {

/// Constraint kinds double as quarantine reason-code families.
enum class QualityKind : uint8_t {
  kNone = 0,
  kNotNull,
  kNullRate,
  kRange,
  kLength,
  kCharset,
  kPattern,
  kOrderedPair,
  kConditionalRequired,
};
inline constexpr int kNumQualityKinds = 9;
std::string_view QualityKindName(QualityKind kind);

/// Gate policy knobs (HyperQOptions::quality).
struct QualityOptions {
  /// Declarative constraint spec (grammar above; "" = gate off). One spec
  /// serves the whole node: each job applies its target table's block.
  std::string spec;
  /// false: quarantine-and-continue (default). true: abort-over-threshold —
  /// an import job fails when its violation rate exceeds
  /// `max_violation_rate` (or any nullrate ceiling is breached); a streaming
  /// micro-batch whose rate exceeds `batch_max_violation_rate` is rejected
  /// (rows dropped, quarantine still shipped) without poisoning the stream.
  bool abort_over_threshold = false;
  double max_violation_rate = 1.0;        ///< quarantined/received, per job
  double batch_max_violation_rate = 1.0;  ///< quarantined/received, per batch
};

/// One parsed (not yet column-resolved) constraint.
struct QualityConstraintSpec {
  QualityKind kind = QualityKind::kNone;
  std::string column;   ///< checked column (pair: left side)
  std::string column2;  ///< pair: right side; require: the 'if' column
  bool strict = false;  ///< pair: '<' vs '<='
  bool has_min = false;
  bool has_max = false;
  double min = 0;  ///< range/len lower bound; nullrate ceiling lives in max
  double max = 0;
  std::string text;  ///< charset set / pattern glob, verbatim
};

struct TableQualitySpec {
  std::string table;
  std::vector<QualityConstraintSpec> constraints;
};

struct QualitySpec {
  std::vector<TableQualitySpec> tables;
};

/// Parses the full multi-table spec. Errors name the offending token; an
/// empty spec yields an empty table list (gate off).
common::Result<QualitySpec> ParseQualitySpec(std::string_view spec);

/// Case-insensitive lookup of a table's block (nullptr = no gate for it).
const TableQualitySpec* FindTableQuality(const QualitySpec& spec, std::string_view table);

/// Hard limits keeping the per-chunk scratch fixed-size (alloc-free).
inline constexpr size_t kMaxQualityFields = 128;
inline constexpr size_t kMaxQualityConstraints = 64;
inline constexpr size_t kMaxQualityCaptures = 32;

/// The check ops run per field inside the conversion kernels, and the
/// bench-smoke overhead gate (<2% on clean data) is measured on the default
/// unoptimized preset, where plain `inline` is ignored and every helper call
/// pays a full stack frame. Force-inline the hot helpers so the clean path
/// costs a few predicted branches instead of call overhead.
#define HQ_QC_FORCE_INLINE inline __attribute__((always_inline))


/// Compiled per-field check ops: a POD the kernels read through
/// FieldPlan::checks. Everything is pre-resolved — bounds pre-scaled,
/// charset as a 256-bit mask, pattern as a pointer into the compiled
/// program pool — so the hot path does no lookups and no allocation.
struct QualityFieldChecks {
  uint16_t field_index = 0;
  int16_t capture_slot = -1;  ///< cross-field capture (-1 = none)
  bool not_null = false;
  bool count_nulls = false;  ///< field has a nullrate ceiling
  bool has_range = false;
  bool has_length = false;
  bool has_charset = false;
  bool has_pattern = false;
  uint16_t id_not_null = 0;
  uint16_t id_range = 0;
  uint16_t id_length = 0;
  uint16_t id_charset = 0;
  uint16_t id_pattern = 0;
  double min = 0;
  double max = 0;
  uint32_t min_len = 0;
  uint32_t max_len = 0;
  uint64_t charset[4] = {0, 0, 0, 0};
  const char* pattern = nullptr;  ///< into CompiledQuality's stable pool
  uint32_t pattern_len = 0;
};

/// Compiled cross-field rule, evaluated once per decoded row.
struct QualityCrossCheck {
  QualityKind kind = QualityKind::kOrderedPair;
  uint16_t id = 0;
  uint16_t field = 0;   ///< reporting column (pair/require: left column)
  int16_t slot_a = -1;  ///< pair: left; require: the required column
  int16_t slot_b = -1;  ///< pair: right; require: the 'if' column
  bool strict = false;
};

/// Everything quarantine emission and reporting need about one constraint,
/// precomputed so the per-violating-row work is two buffer appends.
struct QualityConstraintInfo {
  QualityKind kind = QualityKind::kNone;
  std::string column;  ///< resolved column name
  std::string bound;   ///< human-readable violated bound, e.g. "range[0,10]"
  /// Ready-made CSV tail ",<id>,<kind>,<column>,<bound>" with CSV escaping
  /// already applied — appended verbatim after the quarantined record.
  std::string csv_suffix;
};

struct QualityScratch;

/// A table block compiled against a concrete wire layout.
class CompiledQuality {
 public:
  /// Resolves column names against `layout`. Unknown columns are an error
  /// unless `allow_missing_columns` (the schema-drift case: constraints whose
  /// columns left the wire layout go dormant for the drift window).
  static common::Result<CompiledQuality> Compile(const TableQualitySpec& spec,
                                                 const types::Schema& layout,
                                                 bool allow_missing_columns,
                                                 char csv_delimiter = ',');

  /// Per-field ops for kernels; nullptr when the field has no checks and no
  /// capture (the clean-path branch tests exactly this pointer).
  const QualityFieldChecks* field_checks(size_t field) const {
    return fields_[field].field_index == kNoChecks ? nullptr : &fields_[field];
  }
  const std::vector<QualityCrossCheck>& cross_checks() const { return cross_; }
  size_t num_constraints() const { return infos_.size(); }
  const QualityConstraintInfo& constraint(size_t id) const { return infos_[id]; }
  uint8_t num_captures() const { return num_captures_; }
  size_t num_fields() const { return fields_.size(); }

  struct NullRateCeiling {
    uint16_t field = 0;
    uint16_t id = 0;
    double ceiling = 0;
  };
  const std::vector<NullRateCeiling>& null_rate_ceilings() const { return null_rates_; }

  /// Interpretive check of one decoded value — the reference validator used
  /// by ConvertReference. Feeds the same scratch the kernels do and must
  /// agree with them bit for bit (the quarantine differential gates this).
  void ValidateValue(size_t field, const types::Value& value, QualityScratch* q) const;

 private:
  /// field_index sentinel marking "no checks for this field".
  static constexpr uint16_t kNoChecks = 0xffff;

  std::vector<QualityFieldChecks> fields_;  ///< one per layout field
  std::vector<QualityCrossCheck> cross_;
  std::vector<QualityConstraintInfo> infos_;
  std::vector<NullRateCeiling> null_rates_;
  /// Backing store for QualityFieldChecks::pattern: heap array so the
  /// pointers survive moves of this object.
  std::unique_ptr<char[]> pattern_pool_;
  uint8_t num_captures_ = 0;
};

/// Per-chunk check state: fixed-size, stack-allocatable, zeroed wholesale.
/// Row-local results are buffered and merged only at row commit so a record
/// that later fails wire decode contributes nothing to the aggregates.
struct QualityScratch {
  // --- row-local (reset by BeginRow) ---
  QualityKind row_kind = QualityKind::kNone;  ///< first violation (kNone = clean)
  uint16_t row_id = 0;
  uint16_t nviol = 0;
  uint16_t nnull = 0;
  uint16_t viol_ids[kMaxQualityConstraints];
  uint8_t viol_kinds[kMaxQualityConstraints];
  uint16_t null_fields[kMaxQualityFields];
  double cap_val[kMaxQualityCaptures];
  uint8_t cap_null[kMaxQualityCaptures];
  // --- chunk aggregates (merged by CommitRowStats) ---
  uint64_t rows_checked = 0;
  uint64_t rows_quarantined = 0;
  uint64_t violations_by_kind[kNumQualityKinds] = {};
  uint64_t violations_by_id[kMaxQualityConstraints] = {};
  uint32_t field_nulls[kMaxQualityFields] = {};
  uint8_t num_captures = 0;
  /// Cross-check table cached out of CompiledQuality: QcFinishRow runs per
  /// row, and accessor/begin/end member calls are opaque in unoptimized
  /// builds (the overhead gate's build).
  const QualityCrossCheck* cross = nullptr;
  size_t ncross = 0;

  void Init(const CompiledQuality& cq) {
    num_captures = cq.num_captures();
    cross = cq.cross_checks().data();
    ncross = cq.cross_checks().size();
  }

  /// Row reset, shaped for the clean path: row_id is only read when
  /// row_kind != kNone and QcViolate writes both together, so it needs no
  /// per-row reset; the capture loop is guarded so specs without cross
  /// checks pay one predicted branch.
  __attribute__((always_inline)) void BeginRow() {
    row_kind = QualityKind::kNone;
    nviol = 0;
    nnull = 0;
    if (num_captures != 0) {
      for (uint8_t s = 0; s < num_captures; ++s) cap_null[s] = 1;
    }
  }

  /// Merges the row-local buffers into the chunk aggregates. Call exactly
  /// once per successfully decoded record (clean or quarantined), never for
  /// a record that failed wire decode. A clean row pays one increment and
  /// one predicted branch.
  __attribute__((always_inline)) void CommitRowStats() {
    ++rows_checked;
    if ((nviol | nnull) != 0) {
      for (uint16_t i = 0; i < nviol; ++i) {
        ++violations_by_id[viol_ids[i]];
        ++violations_by_kind[viol_kinds[i]];
      }
      for (uint16_t i = 0; i < nnull; ++i) ++field_nulls[null_fields[i]];
    }
  }
};

/// Records one constraint violation for the in-progress row. First call
/// decides the row's quarantine reason; every call feeds the counters.
HQ_QC_FORCE_INLINE void QcViolate(QualityScratch* q, QualityKind kind, uint16_t id) {
  if (q->row_kind == QualityKind::kNone) {
    q->row_kind = kind;
    q->row_id = id;
  }
  if (q->nviol < kMaxQualityConstraints) {
    q->viol_ids[q->nviol] = id;
    q->viol_kinds[q->nviol] = static_cast<uint8_t>(kind);
    ++q->nviol;
  }
}

/// NULL-field bookkeeping shared by every typed entry point.
HQ_QC_FORCE_INLINE void QcNullField(const QualityFieldChecks& c, QualityScratch* q) {
  if (c.count_nulls && q->nnull < kMaxQualityFields) q->null_fields[q->nnull++] = c.field_index;
  if (c.not_null) QcViolate(q, QualityKind::kNotNull, c.id_not_null);
}

/// Iterative glob matcher: '*' any run, '?' any one byte, else literal.
/// No recursion, no allocation, O(n*m) worst case on adversarial patterns.
/// Raw pointer + length (not string_view): the accessor members are opaque
/// calls in unoptimized builds, which the overhead gate measures.
HQ_QC_FORCE_INLINE bool QcGlobMatch(const char* p, uint32_t plen, const char* s, size_t n) {
  size_t pi = 0;
  size_t si = 0;
  size_t star_p = static_cast<size_t>(-1);
  size_t star_s = 0;
  while (si < n) {
    if (pi < plen && (p[pi] == '?' || p[pi] == s[si])) {
      ++pi;
      ++si;
    } else if (pi < plen && p[pi] == '*') {
      star_p = ++pi;
      star_s = si;
    } else if (star_p != static_cast<size_t>(-1)) {
      pi = star_p;
      si = ++star_s;
    } else {
      return false;
    }
  }
  while (pi < plen && p[pi] == '*') ++pi;
  return pi == plen;
}

/// Numeric-family check op (ints, float, decimal-unscaled, date days,
/// timestamp micros — bounds are pre-scaled to the same unit at compile).
HQ_QC_FORCE_INLINE void QcNumeric(const QualityFieldChecks& c, bool null, double v, QualityScratch* q) {
  if (null) {
    QcNullField(c, q);
    return;
  }
  if (c.capture_slot >= 0) {
    q->cap_val[c.capture_slot] = v;
    q->cap_null[c.capture_slot] = 0;
  }
  if (c.has_range && !(v >= c.min && v <= c.max)) QcViolate(q, QualityKind::kRange, c.id_range);
}

/// String-family check op (CHAR/VARCHAR, and every vartext field). Takes a
/// raw pointer + length rather than string_view: the drivers already hold
/// both, and string_view's accessors are opaque per-call overhead in the
/// unoptimized build the overhead gate measures.
HQ_QC_FORCE_INLINE void QcString(const QualityFieldChecks& c, bool null, const char* s, size_t n,
                                 QualityScratch* q) {
  if (null) {
    QcNullField(c, q);
    return;
  }
  if (c.capture_slot >= 0) q->cap_null[c.capture_slot] = 0;
  if (c.has_length && !(n >= c.min_len && n <= c.max_len)) {
    QcViolate(q, QualityKind::kLength, c.id_length);
  }
  if (c.has_charset) {
    for (size_t i = 0; i < n; ++i) {
      const uint8_t u = static_cast<uint8_t>(s[i]);
      if ((c.charset[u >> 6] & (1ull << (u & 63))) == 0) {
        QcViolate(q, QualityKind::kCharset, c.id_charset);
        break;
      }
    }
  }
  if (c.has_pattern && !QcGlobMatch(c.pattern, c.pattern_len, s, n)) {
    QcViolate(q, QualityKind::kPattern, c.id_pattern);
  }
}

/// Presence-only check op (boolean: notnull/nullrate/require apply, no value
/// checks compile against it).
HQ_QC_FORCE_INLINE void QcPresence(const QualityFieldChecks& c, bool null, QualityScratch* q) {
  if (null) {
    QcNullField(c, q);
    return;
  }
  if (c.capture_slot >= 0) q->cap_null[c.capture_slot] = 0;
}

/// Cross-field rules, evaluated after all fields of a decoded row ran.
HQ_QC_FORCE_INLINE void QcFinishRow(QualityScratch* q) {
  for (size_t i = 0; i < q->ncross; ++i) {
    const QualityCrossCheck& x = q->cross[i];
    bool violated;
    if (x.kind == QualityKind::kOrderedPair) {
      if (q->cap_null[x.slot_a] != 0 || q->cap_null[x.slot_b] != 0) continue;
      const double a = q->cap_val[x.slot_a];
      const double b = q->cap_val[x.slot_b];
      violated = x.strict ? !(a < b) : !(a <= b);
    } else {  // kConditionalRequired: slot_a required when slot_b present
      violated = q->cap_null[x.slot_b] == 0 && q->cap_null[x.slot_a] != 0;
    }
    if (violated) QcViolate(q, x.kind, x.id);
  }
}

/// Moves the just-emitted CSV record [mark, csv.size()) into the quarantine
/// stream with the row's reason-code tail, and rolls the staging output back
/// — the record-atomic diversion of the CSV family. Two appends, no alloc.
inline void QcQuarantineCsvRow(const CompiledQuality& cq, QualityScratch* q,
                               common::ByteBuffer* csv, size_t mark,
                               common::ByteBuffer* qrtn) {
  const QualityConstraintInfo& info = cq.constraint(q->row_id);
  // Strip the record's trailing '\n'; the reason tail re-adds it.
  qrtn->AppendBytes(csv->data() + mark, csv->size() - mark - 1);
  qrtn->AppendString(info.csv_suffix);
  qrtn->AppendByte('\n');
  csv->resize(mark);
  ++q->rows_quarantined;
}

/// Per-chunk quality outcome carried on ConvertedChunk (vectors are sized
/// once per chunk when the gate is on; the per-row path never touches them).
struct ChunkQuality {
  uint64_t rows_checked = 0;
  uint64_t rows_quarantined = 0;
  uint64_t violations_by_kind[kNumQualityKinds] = {};
  std::vector<uint64_t> violations_by_id;
  std::vector<uint32_t> field_nulls;
};

/// Copies the chunk aggregates out of the scratch (end-of-chunk, cold).
void FinishChunkQuality(const CompiledQuality& cq, const QualityScratch& q, ChunkQuality* out);

/// Per-job (or per-batch) quality report: the aggregate the workload span
/// tables render and the degradation policy evaluates.
struct QualityJobReport {
  bool enabled = false;
  uint64_t rows_checked = 0;
  uint64_t rows_quarantined = 0;
  uint64_t violations_total = 0;
  double violation_rate = 0;  ///< rows_quarantined / rows_checked
  struct Constraint {
    uint16_t id = 0;
    QualityKind kind = QualityKind::kNone;
    std::string column;
    std::string bound;
    /// Row-constraints: violation count. nullrate: observed NULL count.
    uint64_t violations = 0;
    /// nullrate only: observed NULL fraction over decoded rows.
    double observed = 0;
    bool breached = false;
  };
  std::vector<Constraint> constraints;
};

/// Builds the report from job-side aggregates (violations_by_id sized to
/// num_constraints, field_nulls to num_fields).
QualityJobReport BuildQualityJobReport(const CompiledQuality& cq,
                                       const std::vector<uint64_t>& violations_by_id,
                                       const std::vector<uint64_t>& field_nulls,
                                       uint64_t rows_checked, uint64_t rows_quarantined);

}  // namespace hyperq::core
