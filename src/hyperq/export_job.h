#pragma once

#include <memory>
#include <string>

#include "cdw/cdw_server.h"
#include "common/result.h"
#include "hyperq/hyperq_config.h"
#include "hyperq/tdf_cursor.h"
#include "legacy/parcel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// \file export_job.h
/// One virtualized export job (Figure 2b): the legacy SELECT is transpiled
/// and executed in the CDW; results are retrieved through a TDFCursor that
/// buffers TDF-encoded chunks ahead of demand; per client request, the PXC
/// unwraps the TDF packet and re-encodes the rows in the legacy wire format
/// the client expects.

namespace hyperq::core {

class ExportJob {
 public:
  /// `metrics`/`tracer` are the node-wide observability hooks (null =
  /// disabled); they live outside HyperQOptions because the server owns them.
  static common::Result<std::shared_ptr<ExportJob>> Create(const std::string& job_id,
                                                           const legacy::BeginExportBody& begin,
                                                           cdw::CdwServer* cdw,
                                                           const HyperQOptions& options,
                                                           obs::MetricsRegistry* metrics = nullptr,
                                                           obs::Tracer* tracer = nullptr);

  const types::Schema& schema() const { return schema_; }
  uint64_t total_chunks() const { return cursor_->total_chunks(); }
  const std::string& job_id() const { return job_id_; }

  /// Fetches chunk `seq` re-encoded in the legacy format. Chunks past the
  /// end return an empty final chunk (row_count 0, last = true).
  common::Result<legacy::ExportChunkBody> GetChunk(uint64_t seq);

  const TdfCursor& cursor() const { return *cursor_; }
  /// The job's span tree (null when observability is disabled).
  std::shared_ptr<obs::Trace> trace() const { return trace_; }

 private:
  ExportJob(std::string job_id, legacy::BeginExportBody begin, types::Schema schema,
            std::unique_ptr<TdfCursor> cursor, common::RetryOptions io_retry,
            obs::MetricsRegistry* metrics, std::shared_ptr<obs::Trace> trace);

  std::string job_id_;
  legacy::BeginExportBody begin_;
  types::Schema schema_;
  std::unique_ptr<TdfCursor> cursor_;
  /// Retry policy template for the tdf.read hop (breaker bound per use).
  common::RetryOptions io_retry_;

  std::shared_ptr<obs::Trace> trace_;
  struct Instruments {
    obs::Counter* jobs_started = nullptr;
    obs::Counter* jobs_completed = nullptr;
    obs::Counter* rows_exported = nullptr;
    obs::Counter* bytes_exported = nullptr;
    obs::Histogram* chunk_seconds = nullptr;
  } m_;
};

}  // namespace hyperq::core
