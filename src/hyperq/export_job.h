#pragma once

#include <memory>
#include <string>

#include "cdw/cdw_server.h"
#include "common/result.h"
#include "hyperq/hyperq_config.h"
#include "hyperq/tdf_cursor.h"
#include "legacy/parcel.h"

/// \file export_job.h
/// One virtualized export job (Figure 2b): the legacy SELECT is transpiled
/// and executed in the CDW; results are retrieved through a TDFCursor that
/// buffers TDF-encoded chunks ahead of demand; per client request, the PXC
/// unwraps the TDF packet and re-encodes the rows in the legacy wire format
/// the client expects.

namespace hyperq::core {

class ExportJob {
 public:
  static common::Result<std::shared_ptr<ExportJob>> Create(const std::string& job_id,
                                                           const legacy::BeginExportBody& begin,
                                                           cdw::CdwServer* cdw,
                                                           const HyperQOptions& options);

  const types::Schema& schema() const { return schema_; }
  uint64_t total_chunks() const { return cursor_->total_chunks(); }
  const std::string& job_id() const { return job_id_; }

  /// Fetches chunk `seq` re-encoded in the legacy format. Chunks past the
  /// end return an empty final chunk (row_count 0, last = true).
  common::Result<legacy::ExportChunkBody> GetChunk(uint64_t seq);

  const TdfCursor& cursor() const { return *cursor_; }

 private:
  ExportJob(std::string job_id, legacy::BeginExportBody begin, types::Schema schema,
            std::unique_ptr<TdfCursor> cursor);

  std::string job_id_;
  legacy::BeginExportBody begin_;
  types::Schema schema_;
  std::unique_ptr<TdfCursor> cursor_;
};

}  // namespace hyperq::core
