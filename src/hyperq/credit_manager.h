#pragma once

#include <cstdint>

#include "common/sync.h"
#include "obs/metrics.h"

/// \file credit_manager.h
/// The back-pressure watchdog of Section 5 / Figure 4. One CreditManager is
/// spawned per Hyper-Q node and shared by all concurrent ETL jobs. A session
/// must hold a credit before handing a chunk to the DataConverter; the
/// credit travels with the chunk through conversion and is returned to the
/// pool just before the FileWriter writes the data to disk. An empty pool
/// blocks acquisition, throttling the otherwise immediately-acknowledged
/// client stream.

namespace hyperq::core {

class CreditManager;

/// RAII credit. Returns itself to the pool on destruction unless already
/// returned explicitly (the FileWriter returns it just before the write).
class Credit {
 public:
  Credit() = default;
  explicit Credit(CreditManager* pool) : pool_(pool) {}
  Credit(Credit&& other) noexcept : pool_(other.pool_) { other.pool_ = nullptr; }
  Credit& operator=(Credit&& other) noexcept;
  ~Credit() { Return(); }

  /// Returns the credit to the pool now.
  void Return();

  bool held() const { return pool_ != nullptr; }

 private:
  CreditManager* pool_ = nullptr;
};

struct CreditStats {
  uint64_t acquisitions = 0;
  uint64_t blocked_acquisitions = 0;  ///< had to wait (back-pressure events)
  uint64_t max_outstanding = 0;
};

class CreditManager {
 public:
  explicit CreditManager(uint64_t pool_size) : available_(pool_size), pool_size_(pool_size) {}

  /// Wires telemetry: credits-in-use gauge, acquisition/throttle counters,
  /// and a wait-time histogram for blocked acquisitions. Call before traffic
  /// starts; `registry` must outlive the manager. Null disables.
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Blocks until a credit is available.
  Credit Acquire() HQ_EXCLUDES(mu_);

  /// Non-blocking; returns an empty Credit when the pool is exhausted.
  Credit TryAcquire() HQ_EXCLUDES(mu_);

  uint64_t pool_size() const { return pool_size_; }
  uint64_t available() const HQ_EXCLUDES(mu_);
  uint64_t outstanding() const HQ_EXCLUDES(mu_);
  CreditStats stats() const HQ_EXCLUDES(mu_);

 private:
  friend class Credit;
  void ReturnOne() HQ_EXCLUDES(mu_);
  /// Bumps outstanding-count bookkeeping after one successful acquisition.
  void NoteAcquired() HQ_REQUIRES(mu_);

  mutable common::Mutex mu_{common::LockRank::kPool, "credit_manager"};
  common::CondVar cv_;
  uint64_t available_ HQ_GUARDED_BY(mu_);
  const uint64_t pool_size_;
  CreditStats stats_ HQ_GUARDED_BY(mu_);

  // Cached instrument pointers; written once by BindMetrics before traffic
  // starts, read-only afterwards (instrument updates themselves are atomic).
  obs::Gauge* in_use_gauge_ = nullptr;
  obs::Counter* acquisitions_total_ = nullptr;
  obs::Counter* throttle_total_ = nullptr;
  obs::Histogram* wait_seconds_ = nullptr;
};

}  // namespace hyperq::core
