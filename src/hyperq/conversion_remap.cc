#include <string_view>
#include <vector>

#include "hyperq/conversion_plan.h"
#include "hyperq/conversion_text.h"
#include "hyperq/quality.h"
#include "legacy/errors.h"

/// \file conversion_remap.cc
/// Schema-drift remapping (METL-style dynamic mapping): when a streaming
/// session's layout changes mid-flight, chunks keep flowing in the NEW source
/// layout while the staging table (and everything downstream: COPY, DML,
/// HQ_ROWNUM bookkeeping) stays in the ORIGINAL target layout. A remapped
/// plan decodes every source field with the same kernels as the fused path,
/// buffers each field's escaped CSV text, and re-emits the record in target
/// order — so the staging bytes for unchanged fields are identical to what
/// the non-drifted plan would have produced.
///
/// This lives outside the hotpath-linted translation unit on purpose: a
/// drift window is a rare, short-lived condition and the per-record scratch
/// reuse below is O(1) amortized allocations anyway.

namespace hyperq::core {

using common::ByteBuffer;
using common::ByteReader;
using common::Slice;
using common::Status;
using conversion_detail::AppendCsvText;
using conversion_detail::AppendIntText;

ConversionPlan ConversionPlan::CompileRemapped(const types::Schema& source_layout,
                                               const types::Schema& target_layout,
                                               legacy::DataFormat format, char legacy_delimiter,
                                               cdw::CsvOptions csv_options,
                                               cdw::StagingFormat staging_format,
                                               const types::Schema* staging_schema) {
  // Kernels, indicator width and size hints all describe the SOURCE layout:
  // that is what arrives on the wire.
  ConversionPlan plan = Compile(source_layout, format, legacy_delimiter, csv_options);
  plan.remapped_ = true;
  plan.out_source_.reserve(target_layout.num_fields());
  for (const auto& field : target_layout.fields()) {
    int src = source_layout.FieldIndex(field.name);
    plan.out_source_.push_back(src);
    if (src < 0) ++plan.nulled_targets_;
  }
  for (const auto& field : source_layout.fields()) {
    if (target_layout.FieldIndex(field.name) < 0) ++plan.dropped_sources_;
  }
  if (staging_format == cdw::StagingFormat::kBinary && staging_schema != nullptr) {
    // Kernels/widths come from the SOURCE layout, block headers from the
    // TARGET staging schema (what the staging table was created from).
    plan.AttachBinaryStaging(source_layout, *staging_schema);
  }
  return plan;
}

Status ConversionPlan::ExecuteRemappedBinary(const ConversionInput& input,
                                             ConvertedChunk* out) const {
  ByteReader reader(Slice(input.chunk.payload));
  uint64_t row_number = input.first_row_number;
  // Per-source-field scratch, reused across records: each holds the field's
  // fully escaped CSV text (empty ⟺ the field was NULL, since non-NULL empty
  // strings are escaped to `""`).
  std::vector<ByteBuffer> scratch(fields_.size());
  std::vector<uint8_t> null_flags(fields_.size(), 0);
  const CompiledQuality* cq = quality_;
  QualityScratch qs;
  if (cq != nullptr) qs.Init(*cq);
  while (!reader.AtEnd()) {
    if (cq != nullptr) qs.BeginRow();
    Status record_status = [&]() -> Status {
      HQ_ASSIGN_OR_RETURN(Slice record, reader.ReadLengthPrefixed16());
      ByteReader body(record);
      HQ_ASSIGN_OR_RETURN(Slice indicators, body.ReadSlice(indicator_bytes_));
      for (size_t i = 0; i < fields_.size(); ++i) {
        scratch[i].clear();
        const bool null = (indicators[i / 8] & (0x80u >> (i % 8))) != 0;
        null_flags[i] = null ? 1 : 0;
        HQ_RETURN_NOT_OK(fields_[i].kernel(fields_[i], &body, null, &scratch[i], &qs));
      }
      if (!body.AtEnd()) {
        return Status::ProtocolError("trailing bytes in legacy binary record");
      }
      return Status::OK();
    }();
    if (!record_status.ok()) {
      // Same semantics as the fused binary path: positional decode means a
      // bad record invalidates the rest of the chunk payload. Nothing was
      // emitted for this record (decode goes to scratch), so no rollback.
      out->errors.push_back(RecordError{row_number, legacy::kErrFormatViolation, "",
                                        record_status.message() +
                                            " (remainder of chunk skipped)"});
      break;
    }
    ByteBuffer* dest = &out->csv;
    bool quarantined = false;
    if (cq != nullptr) {
      QcFinishRow(&qs);
      qs.CommitRowStats();
      if (qs.row_kind != QualityKind::kNone) {
        // Nothing emitted yet (decode went to scratch): build the record
        // directly into the quarantine stream instead of the staging CSV.
        dest = &out->qrtn;
        quarantined = true;
      }
    }
    for (size_t t = 0; t < out_source_.size(); ++t) {
      if (t != 0) dest->AppendByte(static_cast<uint8_t>(csv_delimiter_));
      const int src = out_source_[t];
      if (src < 0 || null_flags[static_cast<size_t>(src)] != 0) continue;  // NULL slot
      dest->AppendSlice(scratch[static_cast<size_t>(src)].AsSlice());
    }
    dest->AppendByte(static_cast<uint8_t>(csv_delimiter_));
    AppendIntText(row_number, csv_delimiter_, dest);
    if (quarantined) {
      dest->AppendString(cq->constraint(qs.row_id).csv_suffix);
      dest->AppendByte('\n');
      ++qs.rows_quarantined;
      ++row_number;
      continue;
    }
    dest->AppendByte('\n');
    ++out->rows_out;
    ++row_number;
  }
  if (cq != nullptr) FinishChunkQuality(*cq, qs, &out->quality);
  return Status::OK();
}

Status ConversionPlan::ExecuteRemappedVartext(const ConversionInput& input,
                                              ConvertedChunk* out) const {
  ByteReader reader(Slice(input.chunk.payload));
  uint64_t row_number = input.first_row_number;
  const size_t expected = fields_.size();
  std::vector<std::string_view> record_fields(expected);
  const CompiledQuality* cq = quality_;
  QualityScratch qs;
  if (cq != nullptr) qs.Init(*cq);
  while (!reader.AtEnd()) {
    auto line = reader.ReadLengthPrefixed16();
    if (!line.ok()) {
      // A framing error poisons the rest of the chunk (reference semantics).
      if (cq != nullptr) FinishChunkQuality(*cq, qs, &out->quality);
      return line.status().WithContext("chunk " + std::to_string(input.chunk.chunk_seq));
    }
    std::string_view text = line.ValueOrDie().ToStringView();
    size_t nfields = 0;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == legacy_delimiter_) {
        // Unchecked construction: start <= i <= size() always holds; substr's
        // bounds check would put __throw_out_of_range_fmt on the hot path.
        if (nfields < expected) {
          record_fields[nfields] = std::string_view(text.data() + start, i - start);
        }
        ++nfields;
        start = i + 1;
      }
    }
    if (nfields != expected) {
      out->errors.push_back(
          RecordError{row_number, legacy::kErrFieldCountMismatch, "",
                      "vartext record has " + std::to_string(nfields) +
                          " fields, layout expects " + std::to_string(expected)});
      ++row_number;
      continue;
    }
    ByteBuffer* dest = &out->csv;
    bool quarantined = false;
    if (cq != nullptr) {
      // Checks run over SOURCE fields (the wire record), as everywhere.
      qs.BeginRow();
      for (size_t i = 0; i < expected; ++i) {
        const QualityFieldChecks* checks = fields_[i].checks;
        if (checks != nullptr) {
          const std::string_view rf = record_fields[i];
          QcString(*checks, rf.empty(), rf.data(), rf.size(), &qs);
        }
      }
      QcFinishRow(&qs);
      qs.CommitRowStats();
      if (qs.row_kind != QualityKind::kNone) {
        dest = &out->qrtn;
        quarantined = true;
      }
    }
    for (size_t t = 0; t < out_source_.size(); ++t) {
      if (t != 0) dest->AppendByte(static_cast<uint8_t>(csv_delimiter_));
      const int src = out_source_[t];
      if (src < 0) continue;  // target field absent from the source: NULL
      std::string_view field = record_fields[static_cast<size_t>(src)];
      // Empty vartext field == NULL (legacy rule): emit nothing.
      if (!field.empty()) AppendCsvText(field, csv_delimiter_, dest);
    }
    dest->AppendByte(static_cast<uint8_t>(csv_delimiter_));
    AppendIntText(row_number, csv_delimiter_, dest);
    if (quarantined) {
      dest->AppendString(cq->constraint(qs.row_id).csv_suffix);
      dest->AppendByte('\n');
      ++qs.rows_quarantined;
      ++row_number;
      continue;
    }
    dest->AppendByte('\n');
    ++out->rows_out;
    ++row_number;
  }
  if (cq != nullptr) FinishChunkQuality(*cq, qs, &out->quality);
  return Status::OK();
}

}  // namespace hyperq::core
