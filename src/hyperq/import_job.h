#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cdw/cdw_server.h"
#include "cloudstore/object_store.h"
#include "common/buffer_pool.h"
#include "common/memory_tracker.h"
#include "common/retry.h"
#include "common/sequenced_queue.h"
#include "common/stopwatch.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "hyperq/credit_manager.h"
#include "hyperq/data_converter.h"
#include "hyperq/error_handler.h"
#include "hyperq/file_writer.h"
#include "hyperq/hyperq_config.h"
#include "legacy/parcel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// \file import_job.h
/// One virtualized import job (Figure 2a of the paper): receives legacy data
/// chunks from any number of parallel client sessions, converts them in the
/// background, serializes staging files, uploads them to the cloud store,
/// COPYs into a CDW staging table, and finally applies the job's DML
/// transformation with adaptive error handling.
///
/// Pipeline stages and hand-offs (Sections 4-5):
///   session thread: CreditManager.Acquire -> submit -> ack client
///   converter pool: legacy encoding -> staging CSV (+ data-error capture)
///   sequenced queue: restores chunk order
///   writer threads: return credit, write/rotate/finalize local files
///   finish: bulk-upload -> COPY -> (ApplyDml) adaptive application

namespace hyperq::core {

struct JobContext {
  cdw::CdwServer* cdw = nullptr;
  cloud::ObjectStore* store = nullptr;
  CreditManager* credits = nullptr;
  common::ThreadPool* converter_pool = nullptr;
  common::MemoryTracker* memory = nullptr;
  /// Node-wide recycler for chunk payload copies and converted CSV buffers
  /// (null = allocate fresh per chunk); set by the HyperQServer.
  common::BufferPool* buffers = nullptr;
  /// Node-wide observability (null = disabled); set by the HyperQServer.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  HyperQOptions options;
};

struct PhaseTimings {
  double acquisition_seconds = 0;  ///< data receipt + conversion + upload + COPY
  double application_seconds = 0;  ///< DML transformation in the CDW
  double other_seconds = 0;        ///< startup/teardown bookkeeping
};

struct AcquisitionStats {
  uint64_t chunks = 0;
  uint64_t rows_received = 0;
  uint64_t rows_staged = 0;
  uint64_t bytes_received = 0;
  uint64_t data_errors = 0;
  uint64_t files_uploaded = 0;
  uint64_t bytes_uploaded = 0;
  uint64_t rows_copied = 0;
  /// Staging bytes written by the converter stage (CSV text or HQB1 blocks,
  /// per HyperQOptions::staging_format); bytes_staged / rows_staged is the
  /// exported staging-bytes-per-row gauge.
  uint64_t bytes_staged = 0;
  /// Chunks dropped after exhausting per-chunk staging retries (graceful
  /// degradation: each lands in the ET table with code 9058 instead of
  /// failing the job).
  uint64_t chunks_abandoned = 0;
  /// Rows the data-quality gate diverted to the HQ_QRTN_<job> table.
  uint64_t rows_quarantined = 0;
};

class ImportJob {
 public:
  /// Creates CDW-side state (staging + error tables) and starts the writer
  /// stage. `job_id` must be unique on the node.
  static common::Result<std::shared_ptr<ImportJob>> Create(const std::string& job_id,
                                                           const legacy::BeginLoadBody& begin,
                                                           JobContext ctx);

  ~ImportJob();

  /// Accepts one data chunk from a client session. Blocks while the credit
  /// pool is empty (back-pressure); the caller acknowledges the chunk to the
  /// client after this returns.
  common::Status SubmitChunk(const legacy::DataChunkBody& chunk) HQ_EXCLUDES(mu_);

  /// Drains the pipeline, finalizes and uploads staging files, and COPYs
  /// into the staging table. Idempotent.
  common::Status FinishAcquisition(uint64_t client_total_chunks, uint64_t client_total_rows)
      HQ_EXCLUDES(mu_, finalize_mu_);

  /// Application phase: transpiles and applies the legacy DML with adaptive
  /// error handling; records data errors; drops the staging table.
  common::Result<legacy::JobReportBody> ApplyDml(const std::string& label,
                                                 const std::string& sql)
      HQ_EXCLUDES(mu_);

  const std::string& job_id() const { return job_id_; }
  const legacy::BeginLoadBody& begin() const { return begin_; }
  PhaseTimings timings() const HQ_EXCLUDES(mu_);
  AcquisitionStats stats() const HQ_EXCLUDES(mu_);
  DmlApplyResult dml_result() const HQ_EXCLUDES(mu_);
  /// Per-job data-quality outcome (enabled=false when the gate is off).
  /// Complete once FinishAcquisition returns.
  QualityJobReport quality_report() const HQ_EXCLUDES(mu_);
  /// Quarantine table name ("" when the gate is off). The table outlives the
  /// job on purpose: quarantined rows are the operator's diagnostics.
  const std::string& quarantine_table() const { return qrtn_table_; }
  /// The job's span tree (null when observability is disabled).
  std::shared_ptr<obs::Trace> trace() const { return trace_; }

 private:
  ImportJob(std::string job_id, legacy::BeginLoadBody begin, JobContext ctx,
            DataConverter converter, types::Schema staging_schema);

  struct WorkItem {
    ConvertedChunk converted;
    Credit credit;
    common::MemoryReservation reservation;
    common::Status status;  ///< conversion failure (fatal)
  };

  void StartWriters();
  void WriterLoop(size_t writer_index) HQ_EXCLUDES(mu_, finalize_mu_);
  void NoteFatal(const common::Status& s) HQ_EXCLUDES(mu_);
  /// The job's retry policy for one substrate hop: io_retry options from the
  /// config, the named endpoint's circuit breaker, and (when tracing) an
  /// on_backoff hook that records Phase::kRetryBackoff spans.
  common::RetryPolicy MakeIoRetry(const char* breaker_endpoint) const;
  common::Status fatal_status() const HQ_EXCLUDES(mu_);
  /// Drops the jobs-active gauge exactly once (job end or destruction).
  void ReleaseActiveGauge();

  std::string job_id_;
  legacy::BeginLoadBody begin_;
  JobContext ctx_;
  DataConverter converter_;
  types::Schema staging_schema_;
  std::string staging_table_;
  std::string remote_prefix_;
  /// Quarantine path state (all empty / unused when the gate is off).
  std::string qrtn_table_;
  std::string qrtn_remote_prefix_;

  /// Per-job span tree; node-wide instrument pointers cached once at
  /// construction (all null when observability is off — hot paths test one
  /// pointer and skip).
  std::shared_ptr<obs::Trace> trace_;
  struct Instruments {
    obs::Counter* chunks = nullptr;
    obs::Counter* rows_received = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* rows_staged = nullptr;
    obs::Counter* data_errors = nullptr;
    obs::Counter* files_uploaded = nullptr;
    obs::Counter* bytes_uploaded = nullptr;
    obs::Counter* rows_copied = nullptr;
    obs::Counter* chunks_abandoned = nullptr;
    obs::Counter* jobs_started = nullptr;
    obs::Counter* jobs_completed = nullptr;
    obs::Counter* jobs_failed = nullptr;
    obs::Counter* csv_reallocs = nullptr;
    obs::Histogram* convert_seconds = nullptr;
    obs::Histogram* write_seconds = nullptr;
    obs::Histogram* upload_seconds = nullptr;
    obs::Histogram* apply_seconds = nullptr;
    obs::Gauge* converter_queue = nullptr;
    obs::Gauge* jobs_active = nullptr;
    obs::Gauge* staging_bytes_per_row = nullptr;
    obs::Counter* rows_quarantined = nullptr;
    /// Violation-rate of the finished job, in basis points (rate * 10000).
    obs::Gauge* violation_rate_bp = nullptr;
    /// One labeled counter per compiled constraint
    /// (hyperq_quality_violations_total{constraint="..."}), id-indexed.
    std::vector<obs::Counter*> quality_violations;
  } m_;
  std::atomic<bool> active_gauge_held_{true};

  common::SequencedQueue<WorkItem> ordered_chunks_;
  std::vector<std::thread> writer_threads_;
  std::vector<std::unique_ptr<FileWriter>> file_writers_;
  /// Per-writer quarantine-file writers (same cardinality as file_writers_
  /// when the gate is on, else empty). Quarantine files are always CSV.
  std::vector<std::unique_ptr<FileWriter>> qrtn_writers_;
  common::Mutex finalize_mu_{common::LockRank::kJob, "import_job_finalize"};
  std::vector<FinalizedFile> finalized_files_ HQ_GUARDED_BY(finalize_mu_);
  std::vector<FinalizedFile> qrtn_finalized_files_ HQ_GUARDED_BY(finalize_mu_);

  mutable common::Mutex mu_{common::LockRank::kJob, "import_job"};
  common::CondVar conversions_done_;
  uint64_t outstanding_conversions_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t chunk_counter_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t row_counter_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t bytes_received_ HQ_GUARDED_BY(mu_) = 0;
  std::vector<RecordError> data_errors_ HQ_GUARDED_BY(mu_);
  uint64_t rows_staged_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t bytes_staged_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t chunks_abandoned_ HQ_GUARDED_BY(mu_) = 0;
  /// Quality-gate aggregates across all converted chunks (id/field indexed,
  /// sized in the constructor when the gate is on).
  uint64_t quality_rows_checked_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t rows_quarantined_ HQ_GUARDED_BY(mu_) = 0;
  /// Quarantine rows durably written to staging files (the COPY row-count
  /// check target; differs from rows_quarantined_ only on abandoned chunks).
  uint64_t qrtn_rows_staged_ HQ_GUARDED_BY(mu_) = 0;
  std::vector<uint64_t> quality_violations_by_id_ HQ_GUARDED_BY(mu_);
  std::vector<uint64_t> quality_field_nulls_ HQ_GUARDED_BY(mu_);
  QualityJobReport quality_report_ HQ_GUARDED_BY(mu_);
  common::Status fatal_ HQ_GUARDED_BY(mu_);
  bool acquisition_finished_ HQ_GUARDED_BY(mu_) = false;

  AcquisitionStats stats_ HQ_GUARDED_BY(mu_);
  common::Stopwatch acquisition_timer_;
  PhaseTimings timings_ HQ_GUARDED_BY(mu_);
  DmlApplyResult dml_result_ HQ_GUARDED_BY(mu_);
};

}  // namespace hyperq::core
