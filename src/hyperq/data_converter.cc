#include "hyperq/data_converter.h"

#include "common/buffer_pool.h"
#include "hyperq/conversion_plan.h"
#include "legacy/errors.h"
#include "types/type_mapping.h"

namespace hyperq::core {

using common::ByteReader;
using common::Result;
using common::Slice;
using common::Status;
using types::Row;
using types::Schema;
using types::TypeId;
using types::Value;

Result<Schema> MakeStagingSchema(const Schema& layout) {
  HQ_ASSIGN_OR_RETURN(Schema mapped, types::MapLegacySchemaToCdw(layout));
  if (mapped.FieldIndex(kRowNumColumn) >= 0) {
    return Status::Invalid(std::string("layout already contains reserved column ") +
                           kRowNumColumn);
  }
  mapped.AddField(types::Field(kRowNumColumn, types::TypeDesc::Int64(), /*nullable=*/false));
  return mapped;
}

Result<DataConverter> DataConverter::Create(Schema layout, legacy::DataFormat format,
                                            char delimiter, cdw::CsvOptions csv_options,
                                            cdw::StagingFormat staging_format,
                                            const TableQualitySpec* quality) {
  if (layout.num_fields() == 0) return Status::Invalid("empty load layout");
  if (format == legacy::DataFormat::kVartext) {
    for (const auto& f : layout.fields()) {
      if (f.type.id != TypeId::kVarchar) {
        return Status::Invalid("vartext layouts require all fields to be VARCHAR (legacy "
                               "restriction); field " +
                               f.name + " is " + f.type.ToString());
      }
    }
  }
  std::unique_ptr<CompiledQuality> compiled;
  if (quality != nullptr) {
    HQ_ASSIGN_OR_RETURN(CompiledQuality cq,
                        CompiledQuality::Compile(*quality, layout, /*allow_missing_columns=*/false,
                                                 csv_options.delimiter));
    compiled = std::make_unique<CompiledQuality>(std::move(cq));
  }
  if (staging_format == cdw::StagingFormat::kBinary) {
    HQ_ASSIGN_OR_RETURN(Schema staging, MakeStagingSchema(layout));
    return DataConverter(std::move(layout), format, delimiter, csv_options, staging_format,
                         &staging, std::move(compiled));
  }
  return DataConverter(std::move(layout), format, delimiter, csv_options, staging_format,
                       nullptr, std::move(compiled));
}

Result<DataConverter> DataConverter::CreateRemapped(Schema source_layout,
                                                    const Schema& target_layout,
                                                    legacy::DataFormat format, char delimiter,
                                                    cdw::CsvOptions csv_options,
                                                    cdw::StagingFormat staging_format,
                                                    const TableQualitySpec* quality) {
  if (source_layout.num_fields() == 0) return Status::Invalid("empty load layout");
  if (target_layout.num_fields() == 0) return Status::Invalid("empty target layout");
  if (format == legacy::DataFormat::kVartext) {
    for (const auto& f : source_layout.fields()) {
      if (f.type.id != TypeId::kVarchar) {
        return Status::Invalid("vartext layouts require all fields to be VARCHAR (legacy "
                               "restriction); field " +
                               f.name + " is " + f.type.ToString());
      }
    }
  }
  // Quality checks run on the decoded wire record, so the spec compiles
  // against the SOURCE layout. Constraints naming columns the drifted wire
  // no longer carries go dormant for the window instead of failing the
  // session (allow_missing_columns).
  std::unique_ptr<CompiledQuality> compiled;
  if (quality != nullptr) {
    HQ_ASSIGN_OR_RETURN(CompiledQuality cq,
                        CompiledQuality::Compile(*quality, source_layout,
                                                 /*allow_missing_columns=*/true,
                                                 csv_options.delimiter));
    compiled = std::make_unique<CompiledQuality>(std::move(cq));
  }
  if (staging_format == cdw::StagingFormat::kBinary) {
    // Binary staging requires type-stable drift: a name-matched field whose
    // CDW-mapped staging type changed cannot be encoded into the target
    // layout's typed block columns (the negotiation rule: type-changing
    // drift requires csv staging).
    for (const auto& tf : target_layout.fields()) {
      int src = source_layout.FieldIndex(tf.name);
      if (src < 0) continue;
      HQ_ASSIGN_OR_RETURN(types::TypeDesc src_staging,
                          types::MapLegacyTypeToCdw(source_layout.field(src).type));
      HQ_ASSIGN_OR_RETURN(types::TypeDesc tgt_staging, types::MapLegacyTypeToCdw(tf.type));
      if (!(src_staging == tgt_staging)) {
        return Status::Invalid("schema drift changed the staging type of field " + tf.name +
                               " (" + tgt_staging.ToString() + " -> " + src_staging.ToString() +
                               "); type-changing drift requires csv staging");
      }
    }
    HQ_ASSIGN_OR_RETURN(Schema staging, MakeStagingSchema(target_layout));
    return DataConverter(std::move(source_layout), target_layout, format, delimiter,
                         csv_options, staging_format, &staging, std::move(compiled));
  }
  return DataConverter(std::move(source_layout), target_layout, format, delimiter, csv_options,
                       staging_format, nullptr, std::move(compiled));
}

DataConverter::DataConverter(Schema layout, legacy::DataFormat format, char delimiter,
                             cdw::CsvOptions csv_options, cdw::StagingFormat staging_format,
                             const Schema* staging_schema,
                             std::unique_ptr<CompiledQuality> quality)
    : layout_(std::move(layout)),
      format_(format),
      delimiter_(delimiter),
      csv_options_(csv_options),
      plan_(std::make_unique<ConversionPlan>(ConversionPlan::Compile(
          layout_, format_, delimiter_, csv_options_, staging_format, staging_schema))),
      quality_(std::move(quality)) {
  plan_->AttachQuality(quality_.get());
}

DataConverter::DataConverter(Schema source_layout, const Schema& target_layout,
                             legacy::DataFormat format, char delimiter,
                             cdw::CsvOptions csv_options, cdw::StagingFormat staging_format,
                             const Schema* staging_schema,
                             std::unique_ptr<CompiledQuality> quality)
    : layout_(std::move(source_layout)),
      format_(format),
      delimiter_(delimiter),
      csv_options_(csv_options),
      plan_(std::make_unique<ConversionPlan>(ConversionPlan::CompileRemapped(
          layout_, target_layout, format_, delimiter_, csv_options_, staging_format,
          staging_schema))),
      quality_(std::move(quality)) {
  plan_->AttachQuality(quality_.get());
}

DataConverter::DataConverter(DataConverter&&) noexcept = default;
DataConverter& DataConverter::operator=(DataConverter&&) noexcept = default;
DataConverter::~DataConverter() = default;

Result<ConvertedChunk> DataConverter::Convert(const ConversionInput& input,
                                              common::BufferPool* pool) const {
  ConvertedChunk out;
  const size_t estimate =
      plan_->EstimateStagingBytes(input.chunk.row_count, input.chunk.payload.size());
  if (pool != nullptr) {
    out.csv = common::ByteBuffer(pool->Acquire(estimate));
  } else {
    out.csv.reserve(estimate);
  }
  HQ_RETURN_NOT_OK(plan_->Execute(input, &out));
  return out;
}

Result<ConvertedChunk> DataConverter::ConvertReference(const ConversionInput& input) const {
  ConvertedChunk out;
  out.order_index = input.order_index;
  out.first_row_number = input.first_row_number;
  out.rows_in = input.chunk.row_count;
  out.csv.reserve(input.chunk.payload.size() + input.chunk.payload.size() / 8);

  uint64_t row_number = input.first_row_number;
  cdw::CsvRecord record;
  record.reserve(layout_.num_fields() + 1);

  // Interpretive twin of the fused quality gate: checks run over the
  // materialized Values (binary) or decoded field text (vartext), so the
  // differential test can demand identical quarantine rows and counters from
  // two independent implementations.
  const CompiledQuality* cq = quality_.get();
  QualityScratch qs;
  if (cq != nullptr) qs.Init(*cq);

  if (format_ == legacy::DataFormat::kVartext) {
    ByteReader reader(Slice(input.chunk.payload));
    while (!reader.AtEnd()) {
      auto decoded = legacy::DecodeVartextRecord(&reader, delimiter_, layout_.num_fields());
      if (!decoded.ok()) {
        // Field-count mismatch is a recoverable per-record data error; a
        // framing error poisons the rest of the chunk.
        if (decoded.status().IsConversionError()) {
          out.errors.push_back(RecordError{row_number, legacy::kErrFieldCountMismatch, "",
                                           decoded.status().message()});
          ++row_number;
          continue;
        }
        if (cq != nullptr) FinishChunkQuality(*cq, qs, &out.quality);
        return decoded.status().WithContext("chunk " + std::to_string(input.chunk.chunk_seq));
      }
      record.clear();
      if (cq != nullptr) qs.BeginRow();
      size_t field_index = 0;
      for (const auto& field : *decoded) {
        if (cq != nullptr) {
          const QualityFieldChecks* checks = cq->field_checks(field_index);
          if (checks != nullptr) {
            QcString(*checks, field.null, field.text.data(), field.text.size(), &qs);
          }
        }
        ++field_index;
        if (field.null) {
          record.push_back(std::nullopt);
        } else {
          record.push_back(field.text);
        }
      }
      record.push_back(std::to_string(row_number));
      const size_t mark = out.csv.size();
      cdw::EncodeCsvRecord(record, csv_options_, &out.csv);
      if (cq != nullptr) {
        QcFinishRow(&qs);
        qs.CommitRowStats();
        if (qs.row_kind != QualityKind::kNone) {
          QcQuarantineCsvRow(*cq, &qs, &out.csv, mark, &out.qrtn);
          ++row_number;
          continue;
        }
      }
      ++out.rows_out;
      ++row_number;
    }
  } else {
    legacy::BinaryRowCodec codec(layout_);
    ByteReader reader(Slice(input.chunk.payload));
    while (!reader.AtEnd()) {
      auto decoded = codec.DecodeRow(&reader);
      if (!decoded.ok()) {
        // Binary decode is positional: a bad record invalidates the rest of
        // the chunk payload.
        out.errors.push_back(RecordError{row_number, legacy::kErrFormatViolation, "",
                                         decoded.status().message() +
                                             " (remainder of chunk skipped)"});
        break;
      }
      const Row& row = *decoded;
      record.clear();
      if (cq != nullptr) qs.BeginRow();
      size_t field_index = 0;
      for (const auto& v : row) {
        if (cq != nullptr) cq->ValidateValue(field_index, v, &qs);
        ++field_index;
        if (v.is_null()) {
          record.push_back(std::nullopt);
        } else {
          record.push_back(types::ValueToCdwText(v));
        }
      }
      record.push_back(std::to_string(row_number));
      const size_t mark = out.csv.size();
      cdw::EncodeCsvRecord(record, csv_options_, &out.csv);
      if (cq != nullptr) {
        QcFinishRow(&qs);
        qs.CommitRowStats();
        if (qs.row_kind != QualityKind::kNone) {
          QcQuarantineCsvRow(*cq, &qs, &out.csv, mark, &out.qrtn);
          ++row_number;
          continue;
        }
      }
      ++out.rows_out;
      ++row_number;
    }
  }
  if (cq != nullptr) FinishChunkQuality(*cq, qs, &out.quality);
  return out;
}

}  // namespace hyperq::core
