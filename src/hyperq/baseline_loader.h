#pragma once

#include <string>
#include <vector>

#include "cdw/cdw_server.h"
#include "common/result.h"
#include "legacy/row_format.h"
#include "sql/ast.h"
#include "types/schema.h"

/// \file baseline_loader.h
/// The Figure-11 baseline: "loads data records using singleton inserts, and
/// when an erroneous tuple is encountered, it is inserted right away into
/// the error log." Each input record becomes its own DML statement against
/// the CDW — no staging, no bulk COPY, no adaptive splitting — so it pays
/// the per-statement round trip for every row, but its cost is flat in the
/// error rate.

namespace hyperq::core {

struct BaselineReport {
  uint64_t rows_loaded = 0;
  uint64_t errors_logged = 0;
  uint64_t statements_issued = 0;
  double elapsed_seconds = 0;
};

class BaselineSingletonLoader {
 public:
  BaselineSingletonLoader(cdw::CdwServer* cdw, std::string error_table)
      : cdw_(cdw), error_table_(std::move(error_table)) {}

  /// Applies `legacy_dml` once per record, substituting each :field with the
  /// record's literal value. `layout` names the fields positionally.
  common::Result<BaselineReport> Load(const sql::Statement& legacy_dml,
                                      const types::Schema& layout,
                                      const std::vector<legacy::VartextRecord>& records);

 private:
  cdw::CdwServer* cdw_;
  std::string error_table_;
};

/// Substitutes :placeholders in an expression tree with literal values
/// (exposed for tests).
common::Result<sql::ExprPtr> SubstitutePlaceholders(const sql::Expr& expr,
                                                    const types::Schema& layout,
                                                    const legacy::VartextRecord& record);

}  // namespace hyperq::core
