#include "hyperq/server.h"

#include <cstdlib>

#include "common/fault.h"
#include "common/logging.h"
#include "common/retry.h"
#include "hyperq/coalescer.h"
#include "obs/export.h"
#include "legacy/row_format.h"
#include "sql/transpiler.h"

namespace hyperq::core {

using common::Result;
using common::Status;
using legacy::Message;
using legacy::Parcel;
using legacy::ParcelKind;

namespace {

/// Maps internal status codes to legacy-style numeric error codes for
/// Failure parcels.
uint32_t LegacyCodeFor(const Status& s) {
  switch (s.code()) {
    case common::StatusCode::kParseError:
      return 3706;  // syntax error
    case common::StatusCode::kNotFound:
      return 3807;  // object does not exist
    case common::StatusCode::kConstraintViolation:
      return 2801;  // duplicate unique key
    case common::StatusCode::kConversionError:
      return 2666;
    case common::StatusCode::kResourceExhausted:
      return 3710;  // insufficient memory
    // Codes with no legacy analogue map into a synthetic 9xxx band so the
    // client can still distinguish them; spelled out so the next StatusCode
    // gets a deliberate mapping decision instead of silently landing here.
    case common::StatusCode::kOk:
    case common::StatusCode::kInvalid:
    case common::StatusCode::kIOError:
    case common::StatusCode::kAlreadyExists:
    case common::StatusCode::kNotImplemented:
    case common::StatusCode::kProtocolError:
    case common::StatusCode::kTypeError:
    case common::StatusCode::kCancelled:
    case common::StatusCode::kInternal:
      break;
  }
  return 9000 + static_cast<uint32_t>(s.code());
}

Message FailureMessage(uint32_t session_id, uint32_t seq, const Status& s) {
  legacy::FailureBody failure;
  failure.code = LegacyCodeFor(s);
  failure.message = s.ToString();
  return legacy::MakeMessage(session_id, seq, failure.Encode());
}

}  // namespace

HyperQServer::HyperQServer(cdw::CdwServer* cdw, cloud::ObjectStore* store, HyperQOptions options)
    : cdw_(cdw),
      store_(store),
      options_(std::move(options)),
      credits_(options_.credit_pool_size),
      converter_pool_(options_.converter_workers),
      memory_(options_.memory_budget_bytes) {
  // Arm the node's fault spec unless the HQ_FAULTS environment variable is
  // set (the env spec takes precedence and was armed on first injector use).
  if (!options_.fault_spec.empty() && std::getenv("HQ_FAULTS") == nullptr) {
    Status armed = common::FaultInjector::Global().Arm(options_.fault_spec);
    if (!armed.ok()) {
      HQ_LOG_WARN() << "ignoring invalid fault_spec: " << armed.ToString();
    }
  }
  if (options_.buffer_pool_max_buffers != 0) {
    common::BufferPoolOptions pool_options;
    pool_options.max_buffers = options_.buffer_pool_max_buffers;
    pool_options.max_bytes = options_.buffer_pool_max_bytes;
    buffer_pool_ = std::make_unique<common::BufferPool>(pool_options);
  }
  if (options_.enable_observability) {
    if (options_.metrics != nullptr) {
      metrics_ = options_.metrics;
    } else {
      owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
      metrics_ = owned_metrics_.get();
    }
    if (options_.tracer != nullptr) {
      tracer_ = options_.tracer;
    } else {
      owned_tracer_ = std::make_unique<obs::Tracer>();
      tracer_ = owned_tracer_.get();
    }
    credits_.BindMetrics(metrics_);
    m_.sessions_total = metrics_->GetCounter("hyperq_sessions_total");
    m_.parcels_total = metrics_->GetCounter("hyperq_parcels_total");
    m_.sessions_active = metrics_->GetGauge("hyperq_sessions_active");
    m_.converter_queue = metrics_->GetGauge("hyperq_converter_queue_depth");
    m_.converter_active = metrics_->GetGauge("hyperq_converter_workers_active");
    m_.memory_in_flight = metrics_->GetGauge("hyperq_memory_in_flight_bytes");
    m_.pool_buffers = metrics_->GetGauge("hyperq_buffer_pool_buffers");
    m_.pool_bytes = metrics_->GetGauge("hyperq_buffer_pool_bytes");
    m_.pool_hits = metrics_->GetGauge("hyperq_buffer_pool_hits");
    m_.pool_misses = metrics_->GetGauge("hyperq_buffer_pool_misses");
    m_.decode_seconds = metrics_->GetHistogram("hyperq_parcel_decode_seconds");
    m_.lock_edges = metrics_->GetGauge("hyperq_lock_order_edges");
    for (int r = 0; r < common::kNumLockRanks; ++r) {
      m_.lock_contention[r] = metrics_->GetGauge(
          std::string("hyperq_lock_contention_total{rank=\"") +
          common::LockRankName(static_cast<common::LockRank>(r)) + "\"}");
    }
  }
}

HyperQServer::~HyperQServer() { Stop(); }

void HyperQServer::Start() {
  common::MutexLock lock(&lifecycle_mu_);
  if (started_) return;
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void HyperQServer::Stop() {
  common::MutexLock lifecycle_lock(&lifecycle_mu_);
  if (!started_) return;
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> sessions;
  {
    // lock-order: kLifecycle > kServer
    common::MutexLock lock(&sessions_mu_);
    sessions.swap(session_threads_);
    // Force EOF on any session whose client is still connected.
    for (auto& weak : session_transports_) {
      if (auto transport = weak.lock()) transport->Close();
    }
    session_transports_.clear();
  }
  for (auto& t : sessions) {
    if (t.joinable()) t.join();
  }
  started_ = false;
}

std::shared_ptr<net::Transport> HyperQServer::Connect() { return listener_.Dial(); }

void HyperQServer::AcceptLoop() {
  for (;;) {
    auto transport = listener_.Accept();
    if (!transport.has_value()) return;
    common::MutexLock lock(&sessions_mu_);
    session_transports_.push_back(*transport);
    session_threads_.emplace_back(
        [this, t = std::move(*transport)]() mutable { HandleSession(std::move(t)); });
  }
}

Result<std::shared_ptr<ImportJob>> HyperQServer::GetOrCreateImportJob(
    const legacy::BeginLoadBody& begin) {
  common::MutexLock lock(&jobs_mu_);
  auto it = import_jobs_.find(begin.job_id);
  if (it != import_jobs_.end()) return it->second;
  JobContext ctx;
  ctx.cdw = cdw_;
  ctx.store = store_;
  ctx.credits = &credits_;
  ctx.converter_pool = &converter_pool_;
  ctx.memory = &memory_;
  ctx.buffers = buffer_pool_.get();
  ctx.metrics = metrics_;
  ctx.tracer = tracer_;
  ctx.options = options_;
  HQ_ASSIGN_OR_RETURN(std::shared_ptr<ImportJob> job,
                      ImportJob::Create(begin.job_id, begin, std::move(ctx)));
  import_jobs_[begin.job_id] = job;
  return job;
}

Result<std::shared_ptr<ExportJob>> HyperQServer::GetOrCreateExportJob(
    const legacy::BeginExportBody& begin) {
  common::MutexLock lock(&jobs_mu_);
  auto it = export_jobs_.find(begin.job_id);
  if (it != export_jobs_.end()) return it->second;
  HQ_ASSIGN_OR_RETURN(std::shared_ptr<ExportJob> job,
                      ExportJob::Create(begin.job_id, begin, cdw_, options_, metrics_, tracer_));
  export_jobs_[begin.job_id] = job;
  return job;
}

Result<std::shared_ptr<stream::StreamJob>> HyperQServer::GetOrCreateStreamJob(
    const legacy::BeginStreamBody& begin) {
  common::MutexLock lock(&jobs_mu_);
  auto it = stream_jobs_.find(begin.job_id);
  if (it != stream_jobs_.end()) return it->second;
  JobContext ctx;
  ctx.cdw = cdw_;
  ctx.store = store_;
  ctx.credits = &credits_;
  ctx.converter_pool = &converter_pool_;
  ctx.memory = &memory_;
  ctx.buffers = buffer_pool_.get();
  ctx.metrics = metrics_;
  ctx.tracer = tracer_;
  ctx.options = options_;
  HQ_ASSIGN_OR_RETURN(std::shared_ptr<stream::StreamJob> job,
                      stream::StreamJob::Create(begin.job_id, begin, std::move(ctx)));
  stream_jobs_[begin.job_id] = job;
  return job;
}

void HyperQServer::HandleSession(std::shared_ptr<net::Transport> transport) {
  Coalescer coalescer(std::move(transport));
  coalescer.BindDecodeHistogram(m_.decode_seconds);
  if (m_.sessions_total != nullptr) {
    m_.sessions_total->Increment();
    m_.sessions_active->Add(1);
  }
  struct SessionGauge {
    obs::Gauge* g;
    ~SessionGauge() {
      if (g != nullptr) g->Sub(1);
    }
  } session_gauge{m_.sessions_active};

  uint32_t session_id = 0;
  uint32_t seq = 0;
  std::shared_ptr<ImportJob> import_job;
  std::shared_ptr<ExportJob> export_job;
  std::shared_ptr<stream::StreamJob> stream_job;

  auto reply = [&](Message msg) { return coalescer.Send(msg); };
  auto reply_failure = [&](const Status& s) {
    (void)reply(FailureMessage(session_id, ++seq, s));
  };

  for (;;) {
    auto msg = coalescer.NextMessage();
    if (!msg.ok()) {
      if (!msg.status().IsCancelled()) {
        HQ_LOG_WARN() << "session " << session_id << ": " << msg.status().ToString();
      }
      return;
    }
    if (msg->parcels.empty()) continue;
    const Parcel& parcel = msg->parcels[0];
    if (m_.parcels_total != nullptr) m_.parcels_total->Increment(msg->parcels.size());
    // Attribute the parcel's decode cost to the session's active job trace
    // (decode ran before we knew the owning job, hence post-hoc recording).
    if (import_job != nullptr && import_job->trace() != nullptr &&
        parcel.kind == ParcelKind::kDataChunk) {
      auto end = coalescer.last_decode_end();
      import_job->trace()->RecordSpan(obs::Phase::kParcelDecode, "decode", 0,
                                      end - coalescer.last_decode_elapsed(), end);
    }

    switch (parcel.kind) {
      case ParcelKind::kLogonRequest: {
        auto body = legacy::LogonRequestBody::Decode(parcel);
        if (!body.ok()) {
          reply_failure(body.status());
          break;
        }
        session_id = next_session_id_.fetch_add(1);
        legacy::LogonOkBody ok;
        ok.session_id = session_id;
        ok.server_banner = options_.server_banner;
        (void)reply(legacy::MakeMessage(session_id, ++seq, ok.Encode()));
        break;
      }

      case ParcelKind::kRunRequest: {
        // PXC: cross-compile the legacy SQL; Beta: execute + encode results.
        auto body = legacy::RunRequestBody::Decode(parcel);
        if (!body.ok()) {
          reply_failure(body.status());
          break;
        }
        auto cdw_sql = sql::TranspileSqlText(body->sql);
        if (!cdw_sql.ok()) {
          reply_failure(cdw_sql.status());
          break;
        }
        cdw::ExecOptions exec;
        exec.enforce_unique_primary = options_.enforce_uniqueness;
        // Injected cdw.exec faults fire before the statement runs, so a
        // retry never re-executes a committed DML.
        common::RetryOptions retry_options = options_.io_retry;
        retry_options.breaker = common::BreakerFor("cdw");
        common::RetryPolicy retry(std::move(retry_options));
        auto result = retry.RunResult<cdw::ExecResult>(
            "cdw.exec",
            [&](const common::RetryAttempt&) { return cdw_->ExecuteSql(*cdw_sql, exec); });
        if (!result.ok()) {
          reply_failure(result.status());
          break;
        }
        Message out;
        out.session_id = session_id;
        out.seq = ++seq;
        legacy::StatementStatusBody status_body;
        status_body.code = 0;
        status_body.activity_count = result->activity_count();
        out.parcels.push_back(status_body.Encode());
        if (result->schema.num_fields() > 0) {
          legacy::DataSetHeaderBody header;
          header.schema = result->schema;
          out.parcels.push_back(header.Encode());
          legacy::BinaryRowCodec codec(result->schema);
          bool encode_ok = true;
          for (const auto& row : result->rows) {
            types::Row coerced;
            coerced.reserve(row.size());
            for (size_t i = 0; i < row.size(); ++i) {
              auto v = types::CastValue(row[i], result->schema.field(i).type);
              if (!v.ok()) {
                reply_failure(v.status());
                encode_ok = false;
                break;
              }
              coerced.push_back(std::move(v).ValueOrDie());
            }
            if (!encode_ok) break;
            common::ByteBuffer record;
            Status s = codec.EncodeRow(coerced, &record);
            if (!s.ok()) {
              reply_failure(s);
              encode_ok = false;
              break;
            }
            Parcel rec;
            rec.kind = ParcelKind::kRecord;
            rec.payload = std::move(record.vector());
            out.parcels.push_back(std::move(rec));
          }
          if (!encode_ok) break;
          Parcel end;
          end.kind = ParcelKind::kEndStatement;
          out.parcels.push_back(std::move(end));
        }
        (void)reply(out);
        break;
      }

      case ParcelKind::kBeginLoad: {
        auto body = legacy::BeginLoadBody::Decode(parcel);
        if (!body.ok()) {
          reply_failure(body.status());
          break;
        }
        // A session serves either a batch load or a stream, never both.
        if (stream_job != nullptr) {
          reply_failure(Status::ProtocolError("session already serves stream " +
                                              stream_job->job_id() + "; BeginLoad refused"));
          break;
        }
        auto job = GetOrCreateImportJob(*body);
        if (!job.ok()) {
          reply_failure(job.status());
          break;
        }
        import_job = *job;
        Parcel ready;
        ready.kind = ParcelKind::kLoadReady;
        (void)reply(legacy::MakeMessage(session_id, ++seq, std::move(ready)));
        break;
      }

      case ParcelKind::kDataChunk: {
        auto body = legacy::DataChunkBody::Decode(parcel);
        if (!body.ok()) {
          reply_failure(body.status());
          break;
        }
        if (!import_job && !stream_job) {
          reply_failure(Status::ProtocolError("DataChunk before BeginLoad"));
          break;
        }
        // A session serves either a batch load or a stream, never both.
        Status s = stream_job != nullptr ? stream_job->SubmitChunk(*body)
                                         : import_job->SubmitChunk(*body);
        if (!s.ok()) {
          reply_failure(s);
          break;
        }
        // Minimal processing done: acknowledge immediately; conversion and
        // serialization continue in the background (Section 5).
        legacy::ChunkAckBody ack;
        ack.chunk_seq = body->chunk_seq;
        (void)reply(legacy::MakeMessage(session_id, ++seq, ack.Encode()));
        break;
      }

      case ParcelKind::kEndLoad: {
        auto body = legacy::EndLoadBody::Decode(parcel);
        if (!body.ok()) {
          reply_failure(body.status());
          break;
        }
        if (!import_job) {
          reply_failure(Status::ProtocolError("EndLoad before BeginLoad"));
          break;
        }
        Status s = import_job->FinishAcquisition(body->total_chunks, body->total_rows);
        if (!s.ok()) {
          reply_failure(s);
          break;
        }
        legacy::StatementStatusBody status_body;
        status_body.code = 0;
        status_body.activity_count = import_job->stats().rows_copied;
        status_body.message = "acquisition complete";
        (void)reply(legacy::MakeMessage(session_id, ++seq, status_body.Encode()));
        break;
      }

      case ParcelKind::kApplyDml: {
        auto body = legacy::ApplyDmlBody::Decode(parcel);
        if (!body.ok()) {
          reply_failure(body.status());
          break;
        }
        if (!import_job) {
          reply_failure(Status::ProtocolError("ApplyDml before BeginLoad"));
          break;
        }
        auto report = import_job->ApplyDml(body->label, body->sql);
        if (!report.ok()) {
          reply_failure(report.status());
          break;
        }
        (void)reply(legacy::MakeMessage(session_id, ++seq, report->Encode()));
        break;
      }

      case ParcelKind::kBeginExport: {
        auto body = legacy::BeginExportBody::Decode(parcel);
        if (!body.ok()) {
          reply_failure(body.status());
          break;
        }
        auto job = GetOrCreateExportJob(*body);
        if (!job.ok()) {
          reply_failure(job.status());
          break;
        }
        export_job = *job;
        legacy::ExportReadyBody ready;
        ready.schema = export_job->schema();
        ready.total_chunks = export_job->total_chunks();
        (void)reply(legacy::MakeMessage(session_id, ++seq, ready.Encode()));
        break;
      }

      case ParcelKind::kExportChunkRequest: {
        auto body = legacy::ExportChunkRequestBody::Decode(parcel);
        if (!body.ok()) {
          reply_failure(body.status());
          break;
        }
        if (!export_job) {
          reply_failure(Status::ProtocolError("ExportChunkRequest before BeginExport"));
          break;
        }
        auto chunk = export_job->GetChunk(body->chunk_seq);
        if (!chunk.ok()) {
          reply_failure(chunk.status());
          break;
        }
        // export.send: the hop that pushes the chunk back over the legacy
        // wire. Injected faults fire before the reply is written, so a retry
        // re-sends the same already-materialized chunk (GetChunk caches).
        common::RetryOptions send_options = options_.io_retry;
        send_options.breaker = common::BreakerFor("export");
        common::RetryPolicy send_retry(std::move(send_options));
        Status sent = send_retry.Run("export.send", [&](const common::RetryAttempt&) {
          return common::FaultInjector::Global().Inject("export.send");
        });
        if (!sent.ok()) {
          reply_failure(sent);
          break;
        }
        (void)reply(legacy::MakeMessage(session_id, ++seq, chunk->Encode()));
        break;
      }

      case ParcelKind::kEndExport: {
        if (export_job) {
          common::MutexLock lock(&jobs_mu_);
          export_jobs_.erase(export_job->job_id());
          export_job.reset();
        }
        legacy::StatementStatusBody status_body;
        status_body.code = 0;
        status_body.message = "export complete";
        (void)reply(legacy::MakeMessage(session_id, ++seq, status_body.Encode()));
        break;
      }

      case ParcelKind::kBeginStream: {
        auto body = legacy::BeginStreamBody::Decode(parcel);
        if (!body.ok()) {
          reply_failure(body.status());
          break;
        }
        // A session serves either a batch load or a stream, never both.
        if (import_job != nullptr) {
          reply_failure(Status::ProtocolError("session already serves batch load " +
                                              import_job->job_id() + "; BeginStream refused"));
          break;
        }
        auto job = GetOrCreateStreamJob(*body);
        if (!job.ok()) {
          reply_failure(job.status());
          break;
        }
        stream_job = *job;
        Parcel ready;
        ready.kind = ParcelKind::kStreamReady;
        (void)reply(legacy::MakeMessage(session_id, ++seq, std::move(ready)));
        break;
      }

      case ParcelKind::kStreamLayout: {
        auto body = legacy::StreamLayoutBody::Decode(parcel);
        if (!body.ok()) {
          reply_failure(body.status());
          break;
        }
        if (!stream_job) {
          reply_failure(Status::ProtocolError("StreamLayout before BeginStream"));
          break;
        }
        Status s = stream_job->ChangeLayout(body->layout);
        if (!s.ok()) {
          reply_failure(s);
          break;
        }
        legacy::StatementStatusBody status_body;
        status_body.code = 0;
        status_body.message = "layout changed";
        (void)reply(legacy::MakeMessage(session_id, ++seq, status_body.Encode()));
        break;
      }

      case ParcelKind::kCommitBatch: {
        auto body = legacy::CommitBatchBody::Decode(parcel);
        if (!body.ok()) {
          reply_failure(body.status());
          break;
        }
        if (!stream_job) {
          reply_failure(Status::ProtocolError("CommitBatch before BeginStream"));
          break;
        }
        auto committed = stream_job->CommitBatch(body->batch_seq, body->watermark_micros);
        if (!committed.ok()) {
          reply_failure(committed.status());
          break;
        }
        (void)reply(legacy::MakeMessage(session_id, ++seq, committed->Encode()));
        break;
      }

      case ParcelKind::kEndStream: {
        auto body = legacy::EndStreamBody::Decode(parcel);
        if (!body.ok()) {
          reply_failure(body.status());
          break;
        }
        if (!stream_job) {
          reply_failure(Status::ProtocolError("EndStream before BeginStream"));
          break;
        }
        auto report = stream_job->Finish(body->total_chunks, body->total_rows);
        if (!report.ok()) {
          reply_failure(report.status());
          break;
        }
        stream_job.reset();
        (void)reply(legacy::MakeMessage(session_id, ++seq, report->Encode()));
        break;
      }

      case ParcelKind::kLogoff:
        return;

      // Server-to-client kinds: a client sending one is a protocol
      // violation. Enumerated (not defaulted) so adding a new request kind
      // to ParcelKind forces a decision here instead of silently bouncing.
      case ParcelKind::kLogonOk:
      case ParcelKind::kFailure:
      case ParcelKind::kStatementStatus:
      case ParcelKind::kDataSetHeader:
      case ParcelKind::kRecord:
      case ParcelKind::kEndStatement:
      case ParcelKind::kLoadReady:
      case ParcelKind::kChunkAck:
      case ParcelKind::kJobReport:
      case ParcelKind::kExportReady:
      case ParcelKind::kExportChunk:
      case ParcelKind::kStreamReady:
      case ParcelKind::kBatchCommitted:
        reply_failure(Status::ProtocolError(
            "unexpected parcel: " + std::string(legacy::ParcelKindName(parcel.kind))));
        break;
    }
  }
}

Result<PhaseTimings> HyperQServer::JobTimings(const std::string& job_id) const {
  common::MutexLock lock(&jobs_mu_);
  auto it = import_jobs_.find(job_id);
  if (it == import_jobs_.end()) return Status::NotFound("job not found: " + job_id);
  return it->second->timings();
}

Result<AcquisitionStats> HyperQServer::JobStats(const std::string& job_id) const {
  common::MutexLock lock(&jobs_mu_);
  auto it = import_jobs_.find(job_id);
  if (it == import_jobs_.end()) return Status::NotFound("job not found: " + job_id);
  return it->second->stats();
}

Result<DmlApplyResult> HyperQServer::JobDmlResult(const std::string& job_id) const {
  common::MutexLock lock(&jobs_mu_);
  auto it = import_jobs_.find(job_id);
  if (it == import_jobs_.end()) return Status::NotFound("job not found: " + job_id);
  return it->second->dml_result();
}

Result<QualityJobReport> HyperQServer::JobQualityReport(const std::string& job_id) const {
  common::MutexLock lock(&jobs_mu_);
  if (auto it = import_jobs_.find(job_id); it != import_jobs_.end()) {
    return it->second->quality_report();
  }
  if (auto it = stream_jobs_.find(job_id); it != stream_jobs_.end()) {
    return it->second->quality_report();
  }
  return Status::NotFound("job not found: " + job_id);
}

Result<std::string> HyperQServer::JobQuarantineTable(const std::string& job_id) const {
  common::MutexLock lock(&jobs_mu_);
  if (auto it = import_jobs_.find(job_id); it != import_jobs_.end()) {
    return it->second->quarantine_table();
  }
  if (auto it = stream_jobs_.find(job_id); it != stream_jobs_.end()) {
    return it->second->quarantine_table();
  }
  return Status::NotFound("job not found: " + job_id);
}

Result<stream::StreamStats> HyperQServer::StreamJobStats(const std::string& job_id) const {
  common::MutexLock lock(&jobs_mu_);
  auto it = stream_jobs_.find(job_id);
  if (it == stream_jobs_.end()) return Status::NotFound("stream job not found: " + job_id);
  return it->second->stats();
}

obs::MetricsSnapshot HyperQServer::MetricsSnapshot() const {
  if (metrics_ == nullptr) return {};
  // Sampled gauges: these track pool state only while jobs actively poke
  // them, so refresh from the live sources before snapshotting.
  m_.converter_queue->Set(static_cast<int64_t>(converter_pool_.queued()));
  m_.converter_active->Set(static_cast<int64_t>(converter_pool_.active()));
  m_.memory_in_flight->Set(static_cast<int64_t>(memory_.used()));
  if (buffer_pool_ != nullptr) {
    common::BufferPoolStats pool = buffer_pool_->stats();
    m_.pool_buffers->Set(static_cast<int64_t>(pool.buffers_pooled));
    m_.pool_bytes->Set(static_cast<int64_t>(pool.bytes_pooled));
    m_.pool_hits->Set(static_cast<int64_t>(pool.hits));
    m_.pool_misses->Set(static_cast<int64_t>(pool.misses));
  }
  common::LockOrderSnapshot locks = common::LockOrderGraph::Global().Snapshot();
  m_.lock_edges->Set(static_cast<int64_t>(locks.edges.size()));
  for (int r = 0; r < common::kNumLockRanks; ++r) {
    m_.lock_contention[r]->Set(static_cast<int64_t>(locks.contention[r]));
  }
  // Pull-based resilience telemetry: src/common cannot depend on src/obs
  // (see retry.h layering note), so the injector, retry stats and breaker
  // registry accumulate process-wide counters that are polled into gauges
  // here, the same way the lock-contention gauges work.
  for (const auto& [point, count] : common::FaultInjector::Global().InjectedCounts()) {
    if (count == 0) continue;
    metrics_
        ->GetGauge("hyperq_faults_injected_total{point=\"" + std::string(point) + "\"}")
        ->Set(static_cast<int64_t>(count));
  }
  common::RetryStats::Snapshot retries = common::RetryStats::Global().Snap();
  for (const auto& [point, count] : retries.retries) {
    metrics_->GetGauge("hyperq_retry_attempts_total{point=\"" + point + "\"}")
        ->Set(static_cast<int64_t>(count));
  }
  for (const auto& [point, count] : retries.exhausted) {
    metrics_->GetGauge("hyperq_retry_exhausted_total{point=\"" + point + "\"}")
        ->Set(static_cast<int64_t>(count));
  }
  for (const auto& [endpoint, state] : common::BreakerStates()) {
    metrics_->GetGauge("hyperq_circuit_state{endpoint=\"" + endpoint + "\"}")
        ->Set(static_cast<int64_t>(state));
  }

  obs::MetricsSnapshot snap = metrics_->Snapshot();
  // Per-rank lock wait-time histograms live in the always-on LockOrderGraph
  // (a registry histogram per rank would need obs to be linked below
  // common); splice them into the snapshot under the standard bucket layout,
  // which LockWaitBucketBounds() mirrors.
  for (int r = 0; r < common::kNumLockRanks; ++r) {
    if (locks.wait_count[r] == 0) continue;
    obs::HistogramSnapshot h;
    h.count = locks.wait_count[r];
    h.sum = locks.wait_sum_seconds[r];
    h.buckets.assign(locks.wait_buckets[r],
                     locks.wait_buckets[r] + common::kNumLockWaitBuckets);
    snap.histograms[std::string("hyperq_lock_wait_seconds{rank=\"") +
                    common::LockRankName(static_cast<common::LockRank>(r)) + "\"}"] =
        std::move(h);
  }
  return snap;
}

std::string HyperQServer::LockGraph(LockGraphFormat format) const {
  common::LockOrderSnapshot locks = common::LockOrderGraph::Global().Snapshot();
  return format == LockGraphFormat::kJson ? obs::LockGraphToJson(locks)
                                          : obs::LockGraphToDot(locks);
}

Result<std::shared_ptr<obs::Trace>> HyperQServer::JobTrace(const std::string& job_id) const {
  if (tracer_ == nullptr) return Status::Invalid("observability is disabled");
  std::shared_ptr<obs::Trace> trace = tracer_->Find(job_id);
  if (trace == nullptr) return Status::NotFound("no trace for job: " + job_id);
  return trace;
}

}  // namespace hyperq::core
