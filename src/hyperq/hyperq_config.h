#pragma once

#include <cstdint>
#include <string>

#include "cdw/staging_format.h"
#include "common/retry.h"
#include "hyperq/quality.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// \file hyperq_config.h
/// Tuning surface of a Hyper-Q node. These are the knobs the paper describes
/// customers configuring per ETL job requirement (Sections 5-7).

namespace hyperq::core {

struct HyperQOptions {
  /// DataConverter worker threads (paper: "several chunks are converted
  /// concurrently").
  size_t converter_workers = 4;

  /// FileWriter worker threads (paper: "multiple FileWriter processes
  /// working in parallel").
  size_t file_writers = 2;

  /// CreditManager pool size; one pool per node shared by all jobs.
  uint64_t credit_pool_size = 64;

  /// Staging file rotation threshold in bytes ("the maximum size of the
  /// serialized file is chosen to maximize the load performance").
  size_t file_size_threshold = 4u << 20;

  /// Compress finalized staging files before upload.
  bool compress_staging_files = false;

  /// Staging bytes written between the converter and COPY. kCsv (the
  /// compatibility default) stages escaped text that the CDW parses cell by
  /// cell; kBinary stages HQB1 typed columnar blocks (cdw/staging_binary.h)
  /// that COPY validates against the catalog fingerprint and appends without
  /// per-cell parsing — the direct-pipe load path. Streaming sessions fall
  /// back to kCsv for a session whose schema drift is type-changing (the
  /// negotiation rule; see DataConverter::CreateRemapped).
  cdw::StagingFormat staging_format = cdw::StagingFormat::kCsv;

  /// In-flight pipeline memory budget (0 = unlimited). Exceeding it is the
  /// simulated out-of-memory condition of Figure 10's one-million-credit run.
  uint64_t memory_budget_bytes = 0;

  /// Node-wide BufferPool recycling chunk payload copies and converted CSV
  /// buffers across converter pool -> sequenced queue -> FileWriter.
  /// `buffer_pool_max_buffers = 0` disables pooling entirely.
  size_t buffer_pool_max_buffers = 64;
  size_t buffer_pool_max_bytes = 64u << 20;

  /// Local directory for intermediate staging files.
  std::string local_staging_dir = "/tmp/hyperq_staging";

  /// Adaptive error handling (Section 7).
  uint64_t max_errors = 100;
  int max_retries = 64;

  /// Export chunking.
  size_t export_chunk_rows = 4096;
  size_t export_prefetch_chunks = 8;

  /// Streaming sessions: how many committed micro-batches keep their COPY
  /// idempotence ledger entries. A client can only replay the most recent
  /// CommitBatch (the protocol is synchronous), so entries older than the
  /// last batch exist purely as slack; evicting past this window bounds the
  /// ledger for arbitrarily long streams without weakening exactly-once.
  size_t stream_ledger_keep_batches = 2;

  /// Emulated uniqueness enforcement (Section 7: "the CDW might not provide
  /// native support for uniqueness constraints. In those cases, Hyper-Q
  /// enforces uniqueness through emulation").
  bool enforce_uniqueness = true;

  std::string server_banner = "Hyper-Q ETL virtualization (LDWP bridge)";

  /// Fault-injection spec armed into the process-global FaultInjector at
  /// node construction (grammar in common/fault.h; same as the HQ_FAULTS
  /// env variable, which takes precedence when set). Empty = leave the
  /// injector alone.
  std::string fault_spec;

  /// Declarative data-quality gate (src/hyperq/quality.h): per-table
  /// constraint spec compiled into the conversion kernels, quarantine
  /// diversion into HQ_QRTN_<job>, and the degradation policy deciding
  /// quarantine-and-continue vs abort-over-threshold. `quality.spec = ""`
  /// keeps the gate off (zero hot-path cost beyond one predicted branch).
  QualityOptions quality;

  /// Retry policy for every transient-failure hop of the load path: staging
  /// uploads, COPY, DML/ET statements, export queries. Chunk staging shares
  /// it for the bounded per-chunk retry before a chunk is abandoned into the
  /// ET table (graceful degradation).
  common::RetryOptions io_retry;

  /// Runtime observability (src/obs/). When enabled the node keeps a
  /// MetricsRegistry and a per-job Tracer; pass shared instances here to
  /// aggregate with other components (object store, CDW), or leave null and
  /// the node owns its own. Disabling zeroes the instrumentation cost (all
  /// instrument pointers stay null on the hot path).
  bool enable_observability = true;
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

}  // namespace hyperq::core
