#include "hyperq/error_handler.h"

#include "common/string_util.h"
#include "hyperq/data_converter.h"
#include "legacy/errors.h"
#include "sql/binder.h"
#include "sql/printer.h"
#include "sql/transpiler.h"

namespace hyperq::core {

using common::Result;
using common::Status;
using types::Schema;
using types::TypeDesc;
using types::Value;

Schema MakeEtErrorSchema() {
  Schema schema;
  schema.AddField(types::Field("ERRORCODE", TypeDesc::Int32(), /*nullable=*/true));
  schema.AddField(types::Field("ERRORFIELD", TypeDesc::Varchar(128)));
  schema.AddField(types::Field("ERRORMESSAGE", TypeDesc::Varchar(1024)));
  return schema;
}

Schema MakeUvErrorSchema(const Schema& layout) {
  Schema schema;
  for (const auto& f : layout.fields()) {
    int32_t width = f.type.length > 0 ? f.type.length : 64;
    schema.AddField(types::Field(f.name, TypeDesc::Varchar(width)));
  }
  schema.AddField(types::Field("SEQNO", TypeDesc::Int64()));
  schema.AddField(types::Field("ERRCODE", TypeDesc::Int32()));
  return schema;
}

common::Result<Schema> MakeQuarantineSchema(const Schema& layout) {
  static constexpr const char* kReserved[] = {"QRTN_ROWNUM", "QRTN_CONSTRAINT", "QRTN_KIND",
                                              "QRTN_COLUMN", "QRTN_BOUND"};
  for (const char* name : kReserved) {
    if (layout.FieldIndex(name) >= 0) {
      return common::Status::Invalid(std::string("layout already contains reserved column ") +
                                     name);
    }
  }
  Schema schema;
  for (const auto& f : layout.fields()) {
    int32_t width = f.type.length > 0 ? f.type.length : 64;
    schema.AddField(types::Field(f.name, TypeDesc::Varchar(width)));
  }
  schema.AddField(types::Field("QRTN_ROWNUM", TypeDesc::Int64(), /*nullable=*/false));
  schema.AddField(types::Field("QRTN_CONSTRAINT", TypeDesc::Int32(), /*nullable=*/false));
  schema.AddField(types::Field("QRTN_KIND", TypeDesc::Varchar(16), /*nullable=*/false));
  schema.AddField(types::Field("QRTN_COLUMN", TypeDesc::Varchar(128)));
  schema.AddField(types::Field("QRTN_BOUND", TypeDesc::Varchar(256)));
  return schema;
}

std::string SqlQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

AdaptiveDmlApplier::AdaptiveDmlApplier(cdw::CdwServer* cdw, const sql::Statement* legacy_dml,
                                       Schema layout, std::string staging_table,
                                       std::string target_table, std::string et_table,
                                       std::string uv_table, AdaptiveOptions options)
    : cdw_(cdw),
      legacy_dml_(legacy_dml),
      layout_(std::move(layout)),
      staging_table_(std::move(staging_table)),
      target_table_(std::move(target_table)),
      et_table_(std::move(et_table)),
      uv_table_(std::move(uv_table)),
      options_(options) {}

bool AdaptiveDmlApplier::IsAbsorbableFailure(const Status& s) {
  return s.IsConversionError() || s.IsConstraintViolation();
}

common::RetryPolicy AdaptiveDmlApplier::ExecRetry() const {
  common::RetryOptions options = options_.io_retry;
  options.breaker = common::BreakerFor("cdw");
  return common::RetryPolicy(std::move(options));
}

Result<cdw::ExecResult> AdaptiveDmlApplier::ExecuteBound(uint64_t first, uint64_t last,
                                                         DmlApplyResult* result) {
  sql::BindOptions bind;
  bind.staging_table = staging_table_;
  bind.row_number_column = kRowNumColumn;
  bind.first_row = static_cast<int64_t>(first);
  bind.last_row = static_cast<int64_t>(last);
  HQ_ASSIGN_OR_RETURN(sql::StatementPtr bound, sql::BindDmlToStaging(*legacy_dml_, layout_, bind));
  HQ_ASSIGN_OR_RETURN(sql::StatementPtr cdw_stmt, sql::TranspileStatement(*bound));
  // Hyper-Q ships SQL text to the warehouse, so round-trip through the
  // printer exactly as the real system does.
  std::string sql_text = sql::PrintStatement(*cdw_stmt);
  cdw::ExecOptions exec;
  exec.enforce_unique_primary = options_.enforce_uniqueness;
  ++result->statements_issued;
  // Tuple-level failures (conversion, constraint) are not retryable, so the
  // policy passes them straight through to the adaptive splitter; only
  // transient endpoint failures burn retry attempts here.
  return ExecRetry().RunResult<cdw::ExecResult>(
      "cdw.exec", [&](const common::RetryAttempt&) { return cdw_->ExecuteSql(sql_text, exec); });
}

Result<DmlApplyResult> AdaptiveDmlApplier::Apply(uint64_t first_row, uint64_t last_row) {
  DmlApplyResult result;
  if (last_row < first_row) return result;  // empty load
  HQ_RETURN_NOT_OK(ApplyRange(first_row, last_row, 0, &result));
  return result;
}

Status AdaptiveDmlApplier::ApplyRange(uint64_t first, uint64_t last, int depth,
                                      DmlApplyResult* result) {
  auto attempt = ExecuteBound(first, last, result);
  if (attempt.ok()) {
    result->rows_inserted += attempt->rows_inserted;
    result->rows_updated += attempt->rows_updated;
    result->rows_deleted += attempt->rows_deleted;
    return Status::OK();
  }
  const Status& failure = attempt.status();
  if (!IsAbsorbableFailure(failure)) return failure;

  if (first == last) {
    return RecordSingletonError(first, failure, result);
  }
  if (errors_recorded_ >= options_.max_errors || depth >= options_.max_retries) {
    // Stop splitting: record the whole failing range (Figure 6's final row).
    return RecordRangeError(first, last, result);
  }
  uint64_t mid = first + (last - first) / 2;
  HQ_RETURN_NOT_OK(ApplyRange(first, mid, depth + 1, result));
  HQ_RETURN_NOT_OK(ApplyRange(mid + 1, last, depth + 1, result));
  return Status::OK();
}

std::string AdaptiveDmlApplier::IdentifyErrorField(uint64_t row) {
  // Only the INSERT form carries per-target-column expressions we can probe
  // one at a time.
  if (legacy_dml_->kind != sql::StatementKind::kInsert) return "";
  const auto& ins = static_cast<const sql::InsertStmt&>(*legacy_dml_);
  if (ins.rows.size() != 1) return "";

  // Resolve target column names for labelling.
  std::vector<std::string> column_names = ins.columns;
  if (column_names.empty()) {
    auto table = cdw_->catalog()->GetTable(ins.table);
    if (table.ok()) {
      for (const auto& f : (*table)->schema().fields()) column_names.push_back(f.name);
    }
  }

  for (size_t i = 0; i < ins.rows[0].size(); ++i) {
    // Probe: SELECT <expr_i> FROM staging S WHERE S.HQ_ROWNUM BETWEEN row AND row.
    sql::InsertStmt probe_insert;
    probe_insert.table = ins.table;
    std::vector<sql::ExprPtr> one_row;
    one_row.push_back(ins.rows[0][i]->Clone());
    probe_insert.rows.push_back(std::move(one_row));

    sql::BindOptions bind;
    bind.staging_table = staging_table_;
    bind.row_number_column = kRowNumColumn;
    bind.first_row = static_cast<int64_t>(row);
    bind.last_row = static_cast<int64_t>(row);
    auto bound = sql::BindDmlToStaging(probe_insert, layout_, bind);
    if (!bound.ok()) return "";
    // Execute only the SELECT part of the bound INSERT ... SELECT.
    auto& bound_insert = static_cast<sql::InsertStmt&>(**bound);
    if (!bound_insert.select) return "";
    auto transpiled = sql::TranspileStatement(*bound_insert.select);
    if (!transpiled.ok()) return "";
    auto probe = cdw_->Execute(**transpiled);
    if (!probe.ok() && IsAbsorbableFailure(probe.status())) {
      if (i < column_names.size()) return column_names[i];
      return "";
    }
  }
  return "";
}

Status AdaptiveDmlApplier::RecordSingletonError(uint64_t row, const Status& failure,
                                                DmlApplyResult* result) {
  ++errors_recorded_;
  if (failure.IsConstraintViolation()) {
    // Uniqueness violation: copy the staging tuple into the UV table with
    // SEQNO and the legacy error code (Figure 5c).
    std::string select_cols;
    for (const auto& f : layout_.fields()) {
      if (!select_cols.empty()) select_cols += ", ";
      select_cols += "CAST(S." + f.name + " AS VARCHAR(" +
                     std::to_string(f.type.length > 0 ? f.type.length : 64) + "))";
    }
    std::string sql_text =
        "INSERT INTO " + uv_table_ + " SELECT " + select_cols + ", S." + kRowNumColumn + ", " +
        std::to_string(legacy::kErrUniquenessViolation) + " FROM " + staging_table_ +
        " S WHERE S." + kRowNumColumn + " = " + std::to_string(row);
    ++result->statements_issued;
    HQ_RETURN_NOT_OK(ExecRetry().Run("cdw.exec", [&](const common::RetryAttempt&) {
      return cdw_->ExecuteSql(sql_text).status();
    }));
    ++result->uv_errors;
    return Status::OK();
  }
  // Transformation error: Figure 6 shape.
  std::string field = IdentifyErrorField(row);
  const bool is_date = failure.message().find("DATE conversion") != std::string::npos;
  uint32_t code = is_date ? legacy::kErrDateConversionDml : legacy::kErrFormatViolation;
  std::string message;
  if (is_date) {
    message = "DATE conversion failed during DML on " + target_table_ +
              ", row number: " + std::to_string(row);
  } else {
    message = failure.message() + " during DML on " + target_table_ +
              ", row number: " + std::to_string(row);
  }
  std::string sql_text = "INSERT INTO " + et_table_ + " VALUES (" + std::to_string(code) + ", " +
                         (field.empty() ? std::string("NULL") : SqlQuote(field)) + ", " +
                         SqlQuote(message) + ")";
  ++result->statements_issued;
  HQ_RETURN_NOT_OK(ExecRetry().Run("cdw.exec", [&](const common::RetryAttempt&) {
    return cdw_->ExecuteSql(sql_text).status();
  }));
  ++result->et_errors;
  return Status::OK();
}

Status AdaptiveDmlApplier::RecordRangeError(uint64_t first, uint64_t last,
                                            DmlApplyResult* result) {
  std::string message = "Max number of errors reached during DML on " + target_table_ +
                        ", row numbers: (" + std::to_string(first) + ", " + std::to_string(last) +
                        ")";
  std::string sql_text = "INSERT INTO " + et_table_ + " VALUES (" +
                         std::to_string(legacy::kErrMaxErrorsReached) + ", NULL, " +
                         SqlQuote(message) + ")";
  ++result->statements_issued;
  HQ_RETURN_NOT_OK(ExecRetry().Run("cdw.exec", [&](const common::RetryAttempt&) {
    return cdw_->ExecuteSql(sql_text).status();
  }));
  ++result->et_errors;
  ++result->range_errors;
  return Status::OK();
}

}  // namespace hyperq::core
