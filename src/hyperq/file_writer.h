#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// \file file_writer.h
/// The FileWriter stage (paper Section 5): serializes converted chunks to
/// local disk files, rotating at a tuned size threshold and finalizing files
/// (optionally compressing) for upload. Each writer thread owns one
/// FileWriter instance producing its own file series, so multiple writers
/// parallelize serialization without coordination.

namespace hyperq::core {

struct FileWriterOptions {
  std::string directory;
  size_t file_size_threshold = 4u << 20;
  bool compress = false;

  /// Extension of the file series (".csv" for text staging, ".hqb" for HQB1
  /// binary blocks — see cdw::StagingFileExtension). Rotation happens only
  /// after a whole chunk append, so every finalized file ends on a record
  /// (resp. block) boundary regardless of format.
  std::string file_extension = ".csv";

  /// Optional telemetry: compression latency histogram and the owning job's
  /// trace (compress spans attach under `trace_parent`). Null disables.
  obs::Histogram* compress_seconds = nullptr;
  std::shared_ptr<obs::Trace> trace;
  uint64_t trace_parent = 0;
};

struct FinalizedFile {
  std::string path;
  size_t raw_bytes = 0;
  size_t final_bytes = 0;
};

class FileWriter {
 public:
  /// `prefix` distinguishes this writer's file series (e.g. "job1_w0").
  FileWriter(FileWriterOptions options, std::string prefix);
  ~FileWriter();

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// Appends chunk bytes to the current file; rotates when the threshold is
  /// crossed. Any finalized files are appended to `finalized`.
  common::Status Append(common::Slice data, std::vector<FinalizedFile>* finalized);

  /// Flushes and finalizes the in-progress file (if any).
  common::Status Finish(std::vector<FinalizedFile>* finalized);

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t files_finalized() const { return files_finalized_; }

 private:
  common::Status OpenNext();
  common::Status FinalizeCurrent(std::vector<FinalizedFile>* finalized);

  FileWriterOptions options_;
  std::string prefix_;
  std::FILE* current_ = nullptr;
  std::string current_path_;
  size_t current_bytes_ = 0;
  uint64_t next_file_index_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t files_finalized_ = 0;
};

}  // namespace hyperq::core
