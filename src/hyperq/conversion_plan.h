#pragma once

#include <cstdint>
#include <vector>

#include "cdw/staging_format.h"
#include "common/bytes.h"
#include "common/status.h"
#include "hyperq/data_converter.h"
#include "legacy/parcel.h"
#include "types/schema.h"

/// \file conversion_plan.h
/// Compiled per-layout conversion plans: the fast path of the DataConverter
/// stage (paper Section 4). Where the reference path materializes every cell
/// as a types::Value and then a per-cell std::string inside a cdw::CsvRecord,
/// a ConversionPlan is built once per layout at DataConverter::Create time as
/// a vector of per-field kernel functions (one per TypeId x format) that
/// decode a field straight off the chunk's ByteReader and append its
/// CSV-escaped text directly into the output ByteBuffer. Numeric, decimal and
/// date/timestamp formatting go through fixed-size stack scratch
/// (std::to_chars-style), so steady-state conversion performs O(1) heap
/// allocations per row (the output buffer growth, amortized and pooled).
///
/// Contract: output bytes and error capture are bit-identical to
/// DataConverter::ConvertReference — same CSV escaping, same NULL vs
/// empty-string encoding, same HQ_ROWNUM column, same RecordError codes and
/// messages. tests/hyperq/conversion_diff_test.cc enforces this over random
/// layouts and adversarial chunks.

namespace hyperq::core {

/// Per-column output sink of the HQB1 columnar encoder (conversion_columnar.h).
struct ColumnSink;
/// Data-quality gate types (quality.h); plans only hold pointers.
class CompiledQuality;
struct QualityFieldChecks;
struct QualityScratch;

class ConversionPlan {
 public:
  struct FieldPlan;

  /// A field kernel consumes the field's wire bytes from `body` (always, even
  /// for NULL fields: binary slots are positional) and, when not null,
  /// appends the CSV-escaped text to `out`. When the field carries quality
  /// checks (`f.checks != nullptr`) the kernel runs them fused over the
  /// decoded value into `q`; gate-off cost is that one predicted branch.
  /// Errors must carry exactly the message the reference decode path would
  /// produce.
  using FieldKernel = common::Status (*)(const FieldPlan&, common::ByteReader* body, bool null,
                                         common::ByteBuffer* out, QualityScratch* q);

  /// The HQB1 counterpart of FieldKernel: consumes the same wire bytes but
  /// appends the typed staging value (little-endian, already widened to the
  /// CDW-mapped staging type) to the field's ColumnSink. NULL cells append
  /// the zero-filled fixed slot (nothing for varlen); the caller owns the
  /// null bitmap. Quality checks fuse here exactly as in FieldKernel.
  /// Implemented in conversion_columnar.cc.
  using ColumnKernel = common::Status (*)(const FieldPlan&, common::ByteReader* body, bool null,
                                          ColumnSink* col, QualityScratch* q);

  struct FieldPlan {
    FieldKernel kernel = nullptr;
    /// HQB1 columnar kernel (set only when compiled for binary staging).
    ColumnKernel col_kernel = nullptr;
    /// Fused quality check ops for this field (nullptr = none; the clean
    /// path tests exactly this pointer). Owned by DataConverter's
    /// CompiledQuality, attached via AttachQuality.
    const QualityFieldChecks* checks = nullptr;
    /// DECIMAL scale (digits after the point).
    int32_t scale = 0;
    /// CHAR width in bytes.
    int32_t length = 0;
    /// Worst-case CSV text width for fixed-width types (0 = payload-carried).
    uint32_t width_hint = 0;
    /// Fixed width of the field's CDW-mapped staging cell (0 = varlen).
    uint32_t staging_width = 0;
    /// CSV output delimiter (copied here so kernels stay context-free).
    char csv_delimiter = ',';
  };

  /// Compiles a plan for a layout DataConverter::Create already validated
  /// (non-empty; all-VARCHAR when vartext). When `staging_format` is kBinary,
  /// `staging_schema` (the MakeStagingSchema result: CDW-mapped columns +
  /// HQ_ROWNUM) must be supplied; Execute then emits one HQB1 block per
  /// chunk instead of CSV text.
  static ConversionPlan Compile(const types::Schema& layout, legacy::DataFormat format,
                                char legacy_delimiter, cdw::CsvOptions csv_options,
                                cdw::StagingFormat staging_format = cdw::StagingFormat::kCsv,
                                const types::Schema* staging_schema = nullptr);

  /// Compiles a schema-drift remap plan: chunks arrive encoded in
  /// `source_layout` but the staging CSV must keep `target_layout`'s column
  /// order (the layout the staging table was created from). Fields are
  /// matched by name, case-insensitively:
  ///   - a source field absent from the target is decoded and dropped,
  ///   - a target field absent from the source becomes NULL,
  ///   - matched fields are emitted in target order with the source kernel.
  /// Implemented in conversion_remap.cc (off the fused hot path: drift
  /// windows are rare and correctness beats fusion there).
  /// With binary staging, `staging_schema` is the TARGET layout's staging
  /// schema (what the staging table and the block headers carry); the caller
  /// (DataConverter::CreateRemapped) must already have verified the drift is
  /// type-stable — every name-matched field keeps its staging type.
  static ConversionPlan CompileRemapped(const types::Schema& source_layout,
                                        const types::Schema& target_layout,
                                        legacy::DataFormat format, char legacy_delimiter,
                                        cdw::CsvOptions csv_options,
                                        cdw::StagingFormat staging_format = cdw::StagingFormat::kCsv,
                                        const types::Schema* staging_schema = nullptr);

  /// Arms the data-quality gate: distributes `quality`'s per-field check ops
  /// into the FieldPlans and keeps the compiled table for cross-field rules
  /// and quarantine reason tails. `quality` must outlive the plan (the
  /// owning DataConverter guarantees this); nullptr detaches.
  void AttachQuality(const CompiledQuality* quality);
  const CompiledQuality* quality() const { return quality_; }

  /// Converts one chunk into `out` (csv is appended to; metadata fields and
  /// errors are filled in). Per-record data errors are collected and the
  /// partial CSV of the offending record is rolled back; only a vartext
  /// framing error fails the whole chunk (mirroring the reference path).
  /// With a quality gate attached, rows violating a constraint are diverted
  /// record-atomically into `out->qrtn` (always CSV: raw field text in
  /// target order + HQ_ROWNUM + the reason tail) and `out->quality` carries
  /// the chunk's aggregate counters.
  common::Status Execute(const ConversionInput& input, ConvertedChunk* out) const;

  /// Output-size estimate for reserving the CSV buffer: per-field width
  /// hints x row count plus the variable-width bytes carried in the payload.
  size_t EstimateCsvBytes(uint32_t row_count, size_t payload_bytes) const;

  /// Format-aware estimate for the staging output buffer: EstimateCsvBytes
  /// for CSV plans, header + typed-section sizing for HQB1 plans.
  size_t EstimateStagingBytes(uint32_t row_count, size_t payload_bytes) const;

  cdw::StagingFormat staging_format() const { return staging_format_; }

  size_t num_fields() const { return fields_.size(); }

  bool remapped() const { return remapped_; }
  /// Columns emitted per record (target layout width when remapped).
  size_t num_target_fields() const { return remapped_ ? out_source_.size() : fields_.size(); }
  /// Source fields with no name match in the target (decoded, then dropped).
  size_t dropped_source_fields() const { return dropped_sources_; }
  /// Target slots with no name match in the source (emitted as NULL).
  size_t nulled_target_fields() const { return nulled_targets_; }

 private:
  ConversionPlan() = default;

  common::Status ExecuteBinary(const ConversionInput& input, ConvertedChunk* out) const;
  common::Status ExecuteVartext(const ConversionInput& input, ConvertedChunk* out) const;
  common::Status ExecuteRemappedBinary(const ConversionInput& input, ConvertedChunk* out) const;
  common::Status ExecuteRemappedVartext(const ConversionInput& input, ConvertedChunk* out) const;
  /// HQB1 columnar drivers (conversion_columnar.cc): same chunk loop and
  /// error/rollback semantics as the CSV drivers above, emitting one HQB1
  /// block instead of CSV lines.
  common::Status ExecuteColumnarBinary(const ConversionInput& input, ConvertedChunk* out) const;
  common::Status ExecuteColumnarVartext(const ConversionInput& input, ConvertedChunk* out) const;
  common::Status ExecuteColumnarRemappedBinary(const ConversionInput& input,
                                               ConvertedChunk* out) const;
  common::Status ExecuteColumnarRemappedVartext(const ConversionInput& input,
                                                ConvertedChunk* out) const;
  /// Binds the HQB1 encoding state (header template, target widths, column
  /// kernels for `source_layout`'s fields). Defined in conversion_columnar.cc.
  void AttachBinaryStaging(const types::Schema& source_layout,
                           const types::Schema& staging_schema);
  /// Fused decode+encode of one binary record (fields, HQ_ROWNUM, newline).
  common::Status BinaryRecordToCsv(common::ByteReader* reader, uint64_t row_number,
                                   common::ByteBuffer* out, QualityScratch* q) const;
  /// Same, over an already-framed record body — shared by BinaryRecordToCsv
  /// and the columnar drivers' quarantine re-render (a violating HQB1 row is
  /// re-encoded as CSV text for the quarantine stream).
  common::Status BinaryBodyToCsv(common::Slice record, uint64_t row_number,
                                 common::ByteBuffer* out, QualityScratch* q) const;

  std::vector<FieldPlan> fields_;
  legacy::DataFormat format_ = legacy::DataFormat::kBinary;
  char legacy_delimiter_ = '|';
  char csv_delimiter_ = ',';
  size_t indicator_bytes_ = 0;
  /// Sum of fixed width hints + delimiters + HQ_ROWNUM + newline, per row.
  size_t per_row_hint_ = 0;
  bool has_varwidth_ = false;
  /// HQB1 staging state (set by AttachBinaryStaging; empty for CSV plans).
  cdw::StagingFormat staging_format_ = cdw::StagingFormat::kCsv;
  /// Pre-serialized block header for the staging schema (row count 0).
  common::ByteBuffer header_template_;
  /// Fixed staging cell width per staging column incl. HQ_ROWNUM (0=varlen).
  std::vector<uint32_t> target_widths_;
  /// Typed-section bytes per row (fixed widths + varlen offsets + bitmap).
  size_t per_row_binary_hint_ = 0;
  /// Remap mode (CompileRemapped): target slot -> source field index, -1 when
  /// the target field has no source (NULL). fields_ describes the SOURCE
  /// layout in remap mode; emission order comes from this table.
  std::vector<int> out_source_;
  bool remapped_ = false;
  size_t dropped_sources_ = 0;
  size_t nulled_targets_ = 0;
  /// Attached quality gate (nullptr = off). Not owned.
  const CompiledQuality* quality_ = nullptr;
};

}  // namespace hyperq::core
