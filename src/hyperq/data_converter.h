#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cdw/staging_format.h"
#include "common/bytes.h"
#include "common/result.h"
#include "hyperq/quality.h"
#include "legacy/parcel.h"
#include "legacy/row_format.h"
#include "types/schema.h"

namespace hyperq::common {
class BufferPool;
}  // namespace hyperq::common

/// \file data_converter.h
/// The DataConverter stage (paper Section 4): converts chunks from the
/// legacy wire encoding (binary indicdata or vartext) into the CDW staging
/// CSV format, "detecting null values, handling empty strings, and escaping
/// special characters" on the fly. Conversion is lazy with respect to the
/// client: the PXC acknowledges the chunk first and conversion runs in the
/// background on a worker pool.
///
/// Each converted record gains a trailing HQ_ROWNUM column carrying its
/// global input row number — the handle the adaptive error handler uses to
/// re-apply sub-ranges of the staging table (Section 7).

namespace hyperq::core {

/// Name of the synthetic row-number column appended to staging tables.
inline constexpr const char* kRowNumColumn = "HQ_ROWNUM";

/// Builds the CDW staging-table schema for a load layout: mapped layout
/// columns plus HQ_ROWNUM BIGINT.
common::Result<types::Schema> MakeStagingSchema(const types::Schema& layout);

/// A record that failed conversion (a *data error* in the paper's taxonomy;
/// it is recorded in the ET error table and excluded from the load).
struct RecordError {
  uint64_t row_number = 0;
  uint32_t code = 0;
  std::string field;
  std::string message;
};

struct ConversionInput {
  /// Dense arrival index used for ordered hand-off to the FileWriters.
  uint64_t order_index = 0;
  /// Global row number of the chunk's first record (1-based).
  uint64_t first_row_number = 0;
  legacy::DataChunkBody chunk;
};

struct ConvertedChunk {
  uint64_t order_index = 0;
  uint64_t first_row_number = 0;
  uint32_t rows_in = 0;
  uint32_t rows_out = 0;
  common::ByteBuffer csv;
  std::vector<RecordError> errors;
  /// Times the CSV buffer had to grow beyond its initial reservation
  /// (exported as an obs counter; should stay 0 when the plan's size
  /// estimate is right).
  uint64_t csv_reallocs = 0;
  /// Quality-gate quarantine stream: one CSV line per violating row (raw
  /// field text in target order, HQ_ROWNUM, then the reason tail
  /// constraint-id,kind,column,bound). Always CSV, even for HQB1 staging —
  /// quarantine rows are all-varchar diagnostics, not typed reload data.
  /// Empty when the gate is off or the chunk is clean.
  common::ByteBuffer qrtn;
  /// Per-chunk quality counters (zeroed when the gate is off).
  ChunkQuality quality;
};

/// Compiled fast path for Convert (see conversion_plan.h).
class ConversionPlan;

class DataConverter {
 public:
  /// Fails fast on invalid combinations (vartext requires an all-VARCHAR
  /// layout, the legacy restriction). `staging_format` selects the staging
  /// bytes Convert emits: CSV text (the compatibility default) or HQB1
  /// typed columnar blocks (the direct-pipe path, staging_binary.h).
  /// `quality` (optional) arms the data-quality gate: the table's constraint
  /// spec is compiled against `layout` here — off the hot path — and fused
  /// into the conversion kernels. Unknown columns are an error (the spec is
  /// part of the job contract).
  static common::Result<DataConverter> Create(
      types::Schema layout, legacy::DataFormat format, char delimiter,
      cdw::CsvOptions csv_options = {},
      cdw::StagingFormat staging_format = cdw::StagingFormat::kCsv,
      const TableQualitySpec* quality = nullptr);

  /// Drift-tolerant converter: chunks are decoded in `source_layout` but the
  /// CSV columns are emitted in `target_layout` order, matched by name
  /// (unmatched source fields dropped, unmatched target fields NULLed). Used
  /// by streaming sessions after a mid-stream layout change; the staging
  /// table keeps the target layout's staging schema. layout() returns the
  /// SOURCE layout (what the wire carries).
  ///
  /// With binary staging the drift must be TYPE-STABLE: every name-matched
  /// field must keep its CDW-mapped staging type, because the staging file's
  /// block headers carry the target layout's typed columns and a converter
  /// cannot change a file's cell encoding mid-stream. Type-changing drift
  /// returns Invalid — callers fall back to CSV staging for that session
  /// (the documented negotiation rule).
  /// `quality` compiles against the SOURCE layout (checks run on decoded
  /// wire fields); constraints whose columns left the wire layout go dormant
  /// for the drift window instead of erroring.
  static common::Result<DataConverter> CreateRemapped(
      types::Schema source_layout, const types::Schema& target_layout,
      legacy::DataFormat format, char delimiter, cdw::CsvOptions csv_options = {},
      cdw::StagingFormat staging_format = cdw::StagingFormat::kCsv,
      const TableQualitySpec* quality = nullptr);

  DataConverter(DataConverter&&) noexcept;
  DataConverter& operator=(DataConverter&&) noexcept;
  ~DataConverter();

  /// Converts one chunk via the compiled plan. Per-record data errors
  /// (field-count mismatch, undecodable binary record) are collected, the
  /// offending record is skipped, and conversion continues (tuple-at-a-time
  /// error semantics of the legacy EDW, Section 7). When `pool` is non-null
  /// the CSV output buffer is acquired from it (return it via
  /// BufferPool::Release once the bytes are written out).
  common::Result<ConvertedChunk> Convert(const ConversionInput& input,
                                         common::BufferPool* pool = nullptr) const;

  /// The original interpretive path (Value materialization + CsvRecord).
  /// Kept as the reference implementation: the differential test requires
  /// Convert to produce byte-identical CSV and identical error capture, and
  /// bench_ablation_convert uses it as the ablation baseline.
  common::Result<ConvertedChunk> ConvertReference(const ConversionInput& input) const;

  const types::Schema& layout() const { return layout_; }
  const ConversionPlan& plan() const { return *plan_; }
  /// The compiled quality gate, nullptr when off.
  const CompiledQuality* quality() const { return quality_.get(); }

 private:
  DataConverter(types::Schema layout, legacy::DataFormat format, char delimiter,
                cdw::CsvOptions csv_options, cdw::StagingFormat staging_format,
                const types::Schema* staging_schema,
                std::unique_ptr<CompiledQuality> quality);
  DataConverter(types::Schema source_layout, const types::Schema& target_layout,
                legacy::DataFormat format, char delimiter, cdw::CsvOptions csv_options,
                cdw::StagingFormat staging_format, const types::Schema* staging_schema,
                std::unique_ptr<CompiledQuality> quality);

  types::Schema layout_;
  legacy::DataFormat format_;
  char delimiter_;
  cdw::CsvOptions csv_options_;
  std::unique_ptr<ConversionPlan> plan_;
  /// Owns the compiled constraint table the plan's FieldPlans point into.
  std::unique_ptr<CompiledQuality> quality_;
};

}  // namespace hyperq::core
