#include "hyperq/quality.h"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/status.h"

/// \file quality.cc
/// Cold-path half of the data-quality gate: spec parsing, constraint
/// compilation (bound pre-scaling, charset masks, pattern pool, precomputed
/// CSV reason tails), the interpretive reference validator, and report
/// assembly. Nothing here runs per row — the fused per-field ops live as
/// inline helpers in quality.h and execute inside the conversion kernels.

namespace hyperq::core {

using common::Result;
using common::Status;

std::string_view QualityKindName(QualityKind kind) {
  switch (kind) {
    case QualityKind::kNone:
      return "none";
    case QualityKind::kNotNull:
      return "notnull";
    case QualityKind::kNullRate:
      return "nullrate";
    case QualityKind::kRange:
      return "range";
    case QualityKind::kLength:
      return "len";
    case QualityKind::kCharset:
      return "charset";
    case QualityKind::kPattern:
      return "pattern";
    case QualityKind::kOrderedPair:
      return "pair";
    case QualityKind::kConditionalRequired:
      return "require";
  }
  return "unknown";
}

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\n' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\n' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits on `sep` at bracket depth 0 so `range[0,10]` survives a ','-split
/// and `charset[;]` survives a ';'-split.
std::vector<std::string_view> SplitTop(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '[') {
      ++depth;
    } else if (s[i] == ']') {
      if (depth > 0) --depth;
    } else if (s[i] == sep && depth == 0) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  parts.push_back(s.substr(start));
  return parts;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<double> ParseNumber(std::string_view text, std::string_view what) {
  const std::string buf(Trim(text));
  if (buf.empty()) return Status::ParseError("quality spec: empty " + std::string(what));
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("quality spec: bad " + std::string(what) + " '" + buf + "'");
  }
  return v;
}

/// Parses the `[...]` payload of a bracketed check; `text` is the full check
/// token, `prefix` e.g. "range". Returns the inside, un-trimmed.
Result<std::string_view> BracketBody(std::string_view text, std::string_view prefix) {
  std::string_view rest = text.substr(prefix.size());
  if (rest.empty() || rest.front() != '[' || rest.back() != ']') {
    return Status::ParseError("quality spec: expected " + std::string(prefix) +
                              "[...], got '" + std::string(text) + "'");
  }
  return rest.substr(1, rest.size() - 2);
}

Status ParseCheck(std::string_view token, const std::string& column,
                  std::vector<QualityConstraintSpec>* out) {
  QualityConstraintSpec c;
  c.column = column;
  if (EqualsIgnoreCase(token, "notnull")) {
    c.kind = QualityKind::kNotNull;
  } else if (token.size() > 10 && EqualsIgnoreCase(token.substr(0, 10), "nullrate<=")) {
    auto v = ParseNumber(token.substr(10), "nullrate ceiling");
    if (!v.ok()) return v.status();
    if (*v < 0 || *v > 1) {
      return Status::ParseError("quality spec: nullrate ceiling must be in [0,1], got '" +
                                std::string(token.substr(10)) + "'");
    }
    c.kind = QualityKind::kNullRate;
    c.has_max = true;
    c.max = *v;
  } else if (token.size() >= 5 && EqualsIgnoreCase(token.substr(0, 5), "range")) {
    auto body = BracketBody(token, "range");
    if (!body.ok()) return body.status();
    auto parts = SplitTop(*body, ',');
    if (parts.size() != 2) {
      return Status::ParseError("quality spec: range wants [lo,hi], got '" +
                                std::string(token) + "'");
    }
    c.kind = QualityKind::kRange;
    if (!Trim(parts[0]).empty()) {
      auto lo = ParseNumber(parts[0], "range lower bound");
      if (!lo.ok()) return lo.status();
      c.has_min = true;
      c.min = *lo;
    }
    if (!Trim(parts[1]).empty()) {
      auto hi = ParseNumber(parts[1], "range upper bound");
      if (!hi.ok()) return hi.status();
      c.has_max = true;
      c.max = *hi;
    }
    if (!c.has_min && !c.has_max) {
      return Status::ParseError("quality spec: range[,] constrains nothing");
    }
    if (c.has_min && c.has_max && c.min > c.max) {
      return Status::ParseError("quality spec: empty range on column " + column);
    }
  } else if (token.size() >= 3 && EqualsIgnoreCase(token.substr(0, 3), "len")) {
    auto body = BracketBody(token, "len");
    if (!body.ok()) return body.status();
    auto parts = SplitTop(*body, ',');
    if (parts.size() != 2) {
      return Status::ParseError("quality spec: len wants [lo,hi], got '" + std::string(token) +
                                "'");
    }
    c.kind = QualityKind::kLength;
    c.min = 0;
    c.max = 1e9;
    if (!Trim(parts[0]).empty()) {
      auto lo = ParseNumber(parts[0], "len lower bound");
      if (!lo.ok()) return lo.status();
      if (*lo < 0) return Status::ParseError("quality spec: negative len bound");
      c.has_min = true;
      c.min = *lo;
    }
    if (!Trim(parts[1]).empty()) {
      auto hi = ParseNumber(parts[1], "len upper bound");
      if (!hi.ok()) return hi.status();
      if (*hi < 0) return Status::ParseError("quality spec: negative len bound");
      c.has_max = true;
      c.max = *hi;
    }
    if (!c.has_min && !c.has_max) {
      return Status::ParseError("quality spec: len[,] constrains nothing");
    }
    if (c.min > c.max) return Status::ParseError("quality spec: empty len range on " + column);
  } else if (token.size() >= 7 && EqualsIgnoreCase(token.substr(0, 7), "charset")) {
    auto body = BracketBody(token, "charset");
    if (!body.ok()) return body.status();
    if (body->empty()) return Status::ParseError("quality spec: empty charset on " + column);
    c.kind = QualityKind::kCharset;
    c.text = std::string(*body);
  } else if (token.size() >= 7 && EqualsIgnoreCase(token.substr(0, 7), "pattern")) {
    auto body = BracketBody(token, "pattern");
    if (!body.ok()) return body.status();
    c.kind = QualityKind::kPattern;
    c.text = std::string(*body);
  } else {
    return Status::ParseError("quality spec: unknown check '" + std::string(token) +
                              "' on column " + column);
  }
  out->push_back(std::move(c));
  return Status::OK();
}

Status ParseRule(std::string_view rule, std::vector<QualityConstraintSpec>* out) {
  const size_t colon = rule.find(':');
  if (colon == std::string_view::npos) {
    return Status::ParseError("quality spec: rule missing ':' in '" + std::string(rule) + "'");
  }
  const std::string_view head = Trim(rule.substr(0, colon));
  const std::string_view body = Trim(rule.substr(colon + 1));
  if (head.empty()) return Status::ParseError("quality spec: rule with empty column name");
  if (EqualsIgnoreCase(head, "pair")) {
    const size_t lt = body.find('<');
    if (lt == std::string_view::npos) {
      return Status::ParseError("quality spec: pair wants A<B or A<=B, got '" +
                                std::string(body) + "'");
    }
    QualityConstraintSpec c;
    c.kind = QualityKind::kOrderedPair;
    c.strict = !(lt + 1 < body.size() && body[lt + 1] == '=');
    c.column = std::string(Trim(body.substr(0, lt)));
    c.column2 = std::string(Trim(body.substr(lt + (c.strict ? 1 : 2))));
    if (c.column.empty() || c.column2.empty()) {
      return Status::ParseError("quality spec: pair with empty column in '" +
                                std::string(body) + "'");
    }
    out->push_back(std::move(c));
    return Status::OK();
  }
  if (EqualsIgnoreCase(head, "require")) {
    // require:<required-column> if <present-column>
    const size_t if_pos = body.find(" if ");
    if (if_pos == std::string_view::npos) {
      return Status::ParseError("quality spec: require wants 'B if A', got '" +
                                std::string(body) + "'");
    }
    QualityConstraintSpec c;
    c.kind = QualityKind::kConditionalRequired;
    c.column = std::string(Trim(body.substr(0, if_pos)));
    c.column2 = std::string(Trim(body.substr(if_pos + 4)));
    if (c.column.empty() || c.column2.empty()) {
      return Status::ParseError("quality spec: require with empty column in '" +
                                std::string(body) + "'");
    }
    out->push_back(std::move(c));
    return Status::OK();
  }
  const std::string column(head);
  for (std::string_view token : SplitTop(body, ',')) {
    token = Trim(token);
    if (token.empty()) {
      return Status::ParseError("quality spec: empty check on column " + column);
    }
    HQ_RETURN_NOT_OK(ParseCheck(token, column, out));
  }
  return Status::OK();
}

}  // namespace

Result<QualitySpec> ParseQualitySpec(std::string_view spec) {
  QualitySpec out;
  std::string_view rest = Trim(spec);
  while (!rest.empty()) {
    const size_t open = rest.find('{');
    if (open == std::string_view::npos) {
      return Status::ParseError("quality spec: expected '{' after table name '" +
                                std::string(rest.substr(0, 32)) + "'");
    }
    TableQualitySpec table;
    table.table = std::string(Trim(rest.substr(0, open)));
    if (table.table.empty()) {
      return Status::ParseError("quality spec: table block with empty table name");
    }
    // Find the matching '}' — check bodies never contain braces.
    const size_t close = rest.find('}', open + 1);
    if (close == std::string_view::npos) {
      return Status::ParseError("quality spec: unterminated '{' for table " + table.table);
    }
    const std::string_view block = rest.substr(open + 1, close - open - 1);
    for (std::string_view rule : SplitTop(block, ';')) {
      rule = Trim(rule);
      if (rule.empty()) continue;
      HQ_RETURN_NOT_OK(ParseRule(rule, &table.constraints));
    }
    if (table.constraints.empty()) {
      return Status::ParseError("quality spec: table " + table.table + " has no constraints");
    }
    for (const TableQualitySpec& prev : out.tables) {
      if (EqualsIgnoreCase(prev.table, table.table)) {
        return Status::ParseError("quality spec: duplicate table block " + table.table);
      }
    }
    out.tables.push_back(std::move(table));
    rest = Trim(rest.substr(close + 1));
  }
  return out;
}

const TableQualitySpec* FindTableQuality(const QualitySpec& spec, std::string_view table) {
  for (const TableQualitySpec& t : spec.tables) {
    if (EqualsIgnoreCase(t.table, table)) return &t;
  }
  return nullptr;
}

namespace {

bool TypeIsOrderable(types::TypeId id) {
  return types::IsNumeric(id) || id == types::TypeId::kDate || id == types::TypeId::kTimestamp;
}

/// CSV-escapes one field with the exact convention of the staging encoder
/// (EncodeCsvRecord / conversion_text.h): quote when the field contains the
/// delimiter, a quote, or a newline; double embedded quotes.
void AppendCsvEscaped(std::string_view field, char delimiter, std::string* out) {
  bool needs_quote = field.empty();
  for (char ch : field) {
    if (ch == delimiter || ch == '"' || ch == '\n' || ch == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char ch : field) {
    if (ch == '"') out->push_back('"');
    out->push_back(ch);
  }
  out->push_back('"');
}

std::string FormatBound(const QualityConstraintSpec& c) {
  char buf[64];
  switch (c.kind) {
    case QualityKind::kNotNull:
      return "notnull";
    case QualityKind::kNullRate:
      std::snprintf(buf, sizeof(buf), "nullrate<=%g", c.max);
      return buf;
    case QualityKind::kRange: {
      std::string s = "range[";
      if (c.has_min) {
        std::snprintf(buf, sizeof(buf), "%g", c.min);
        s += buf;
      }
      s += ',';
      if (c.has_max) {
        std::snprintf(buf, sizeof(buf), "%g", c.max);
        s += buf;
      }
      s += ']';
      return s;
    }
    case QualityKind::kLength: {
      std::string s = "len[";
      if (c.has_min) {
        std::snprintf(buf, sizeof(buf), "%g", c.min);
        s += buf;
      }
      s += ',';
      if (c.has_max) {
        std::snprintf(buf, sizeof(buf), "%g", c.max);
        s += buf;
      }
      s += ']';
      return s;
    }
    case QualityKind::kCharset:
      return "charset[" + c.text + "]";
    case QualityKind::kPattern:
      return "pattern[" + c.text + "]";
    case QualityKind::kOrderedPair:
      return c.column + (c.strict ? "<" : "<=") + c.column2;
    case QualityKind::kConditionalRequired:
      return "required if " + c.column2;
    case QualityKind::kNone:
      break;
  }
  return "?";
}

Result<std::array<uint64_t, 4>> ParseCharsetMask(const std::string& set,
                                                 const std::string& column) {
  std::array<uint64_t, 4> mask = {0, 0, 0, 0};
  auto add = [&mask](uint8_t ch) { mask[ch >> 6] |= 1ull << (ch & 63); };
  for (size_t i = 0; i < set.size(); ++i) {
    // 'a-b' range when '-' sits between two members; leading/trailing '-'
    // is a literal dash.
    if (i + 2 < set.size() && set[i + 1] == '-') {
      const uint8_t lo = static_cast<uint8_t>(set[i]);
      const uint8_t hi = static_cast<uint8_t>(set[i + 2]);
      if (lo > hi) {
        return Status::ParseError("quality spec: inverted charset range '" +
                                  set.substr(i, 3) + "' on column " + column);
      }
      for (unsigned ch = lo; ch <= hi; ++ch) add(static_cast<uint8_t>(ch));
      i += 2;
    } else {
      add(static_cast<uint8_t>(set[i]));
    }
  }
  return mask;
}

}  // namespace

Result<CompiledQuality> CompiledQuality::Compile(const TableQualitySpec& spec,
                                                 const types::Schema& layout,
                                                 bool allow_missing_columns,
                                                 char csv_delimiter) {
  if (layout.num_fields() > kMaxQualityFields) {
    return Status::Invalid("quality gate supports at most " +
                           std::to_string(kMaxQualityFields) + " columns, layout has " +
                           std::to_string(layout.num_fields()));
  }
  if (spec.constraints.size() > kMaxQualityConstraints) {
    return Status::Invalid("quality spec for " + spec.table + " has " +
                           std::to_string(spec.constraints.size()) +
                           " constraints, limit is " + std::to_string(kMaxQualityConstraints));
  }
  CompiledQuality cq;
  cq.fields_.resize(layout.num_fields());
  for (QualityFieldChecks& f : cq.fields_) f.field_index = kNoChecks;

  // Pass 1: resolve columns, validate types, collect pattern pool size.
  size_t pool_bytes = 0;
  std::vector<int> resolved(spec.constraints.size(), -1);
  std::vector<int> resolved2(spec.constraints.size(), -1);
  for (size_t ci = 0; ci < spec.constraints.size(); ++ci) {
    const QualityConstraintSpec& c = spec.constraints[ci];
    const int fi = layout.FieldIndex(c.column);
    if (fi < 0 && !allow_missing_columns) {
      return Status::Invalid("quality spec for " + spec.table + ": unknown column " + c.column);
    }
    resolved[ci] = fi;
    if (c.kind == QualityKind::kOrderedPair || c.kind == QualityKind::kConditionalRequired) {
      const int fi2 = layout.FieldIndex(c.column2);
      if (fi2 < 0 && !allow_missing_columns) {
        return Status::Invalid("quality spec for " + spec.table + ": unknown column " +
                               c.column2);
      }
      resolved2[ci] = fi2;
    }
    if (fi >= 0) {
      const types::TypeDesc& t = layout.field(fi).type;
      if (c.kind == QualityKind::kRange && !TypeIsOrderable(t.id)) {
        return Status::Invalid("quality spec: range on non-numeric column " + c.column + " (" +
                               t.ToString() + ")");
      }
      if ((c.kind == QualityKind::kLength || c.kind == QualityKind::kCharset ||
           c.kind == QualityKind::kPattern) &&
          !types::IsString(t.id)) {
        return Status::Invalid("quality spec: " + std::string(QualityKindName(c.kind)) +
                               " on non-string column " + c.column + " (" + t.ToString() + ")");
      }
      if (c.kind == QualityKind::kOrderedPair && !TypeIsOrderable(t.id)) {
        return Status::Invalid("quality spec: pair on non-numeric column " + c.column);
      }
    }
    if (resolved2[ci] >= 0 && c.kind == QualityKind::kOrderedPair &&
        !TypeIsOrderable(layout.field(resolved2[ci]).type.id)) {
      return Status::Invalid("quality spec: pair on non-numeric column " + c.column2);
    }
    if (c.kind == QualityKind::kPattern) pool_bytes += c.text.size();
  }

  // Pass 2: pattern pool, per-field ops, cross checks, capture slots, infos.
  cq.pattern_pool_ = pool_bytes > 0 ? std::make_unique<char[]>(pool_bytes) : nullptr;
  size_t pool_off = 0;
  int capture_of[kMaxQualityFields];
  for (size_t i = 0; i < kMaxQualityFields; ++i) capture_of[i] = -1;
  auto capture_slot = [&cq, &capture_of](int fi) -> Result<int16_t> {
    if (capture_of[fi] >= 0) return static_cast<int16_t>(capture_of[fi]);
    if (cq.num_captures_ >= kMaxQualityCaptures) {
      return Status::Invalid("quality spec: more than " +
                             std::to_string(kMaxQualityCaptures) +
                             " distinct cross-check columns");
    }
    capture_of[fi] = cq.num_captures_++;
    QualityFieldChecks& f = cq.fields_[fi];
    f.field_index = static_cast<uint16_t>(fi);
    f.capture_slot = static_cast<int16_t>(capture_of[fi]);
    return static_cast<int16_t>(capture_of[fi]);
  };

  for (size_t ci = 0; ci < spec.constraints.size(); ++ci) {
    const QualityConstraintSpec& c = spec.constraints[ci];
    const uint16_t id = static_cast<uint16_t>(ci);
    const int fi = resolved[ci];

    QualityConstraintInfo info;
    info.kind = c.kind;
    info.column = c.column;
    info.bound = FormatBound(c);
    info.csv_suffix.push_back(csv_delimiter);
    info.csv_suffix += std::to_string(id);
    info.csv_suffix.push_back(csv_delimiter);
    info.csv_suffix += QualityKindName(c.kind);
    info.csv_suffix.push_back(csv_delimiter);
    AppendCsvEscaped(info.column, csv_delimiter, &info.csv_suffix);
    info.csv_suffix.push_back(csv_delimiter);
    AppendCsvEscaped(info.bound, csv_delimiter, &info.csv_suffix);
    cq.infos_.push_back(std::move(info));

    if (fi < 0) continue;  // dormant under schema drift
    QualityFieldChecks& f = cq.fields_[fi];

    switch (c.kind) {
      case QualityKind::kNotNull:
        f.field_index = static_cast<uint16_t>(fi);
        f.not_null = true;
        f.id_not_null = id;
        break;
      case QualityKind::kNullRate:
        f.field_index = static_cast<uint16_t>(fi);
        f.count_nulls = true;
        cq.null_rates_.push_back({static_cast<uint16_t>(fi), id, c.max});
        break;
      case QualityKind::kRange: {
        f.field_index = static_cast<uint16_t>(fi);
        f.has_range = true;
        f.id_range = id;
        // Kernels see DECIMAL as its unscaled integer: pre-scale the bounds.
        const types::TypeDesc& t = layout.field(fi).type;
        const double scale =
            t.id == types::TypeId::kDecimal ? std::pow(10.0, t.scale) : 1.0;
        f.min = c.has_min ? c.min * scale : -HUGE_VAL;
        f.max = c.has_max ? c.max * scale : HUGE_VAL;
        break;
      }
      case QualityKind::kLength:
        f.field_index = static_cast<uint16_t>(fi);
        f.has_length = true;
        f.id_length = id;
        f.min_len = c.has_min ? static_cast<uint32_t>(c.min) : 0;
        f.max_len = c.has_max ? static_cast<uint32_t>(c.max) : ~0u;
        break;
      case QualityKind::kCharset: {
        f.field_index = static_cast<uint16_t>(fi);
        f.has_charset = true;
        f.id_charset = id;
        auto mask = ParseCharsetMask(c.text, c.column);
        if (!mask.ok()) return mask.status();
        for (int w = 0; w < 4; ++w) f.charset[w] = (*mask)[w];
        break;
      }
      case QualityKind::kPattern:
        f.field_index = static_cast<uint16_t>(fi);
        f.has_pattern = true;
        f.id_pattern = id;
        std::memcpy(cq.pattern_pool_.get() + pool_off, c.text.data(), c.text.size());
        f.pattern = cq.pattern_pool_.get() + pool_off;
        f.pattern_len = static_cast<uint32_t>(c.text.size());
        pool_off += c.text.size();
        break;
      case QualityKind::kOrderedPair:
      case QualityKind::kConditionalRequired: {
        const int fi2 = resolved2[ci];
        if (fi2 < 0) break;  // dormant
        auto slot_a = capture_slot(fi);
        if (!slot_a.ok()) return slot_a.status();
        auto slot_b = capture_slot(fi2);
        if (!slot_b.ok()) return slot_b.status();
        QualityCrossCheck x;
        x.kind = c.kind;
        x.id = id;
        x.field = static_cast<uint16_t>(fi);
        x.slot_a = *slot_a;
        x.slot_b = *slot_b;
        x.strict = c.strict;
        cq.cross_.push_back(x);
        break;
      }
      case QualityKind::kNone:
        return Status::Internal("quality spec: unparsed constraint");
    }
  }
  return cq;
}

void CompiledQuality::ValidateValue(size_t field, const types::Value& value,
                                    QualityScratch* q) const {
  const QualityFieldChecks* c = field_checks(field);
  if (c == nullptr) return;
  if (value.is_null()) {
    QcNullField(*c, q);
    return;
  }
  if (value.is_int()) {
    QcNumeric(*c, false, static_cast<double>(value.int_value()), q);
  } else if (value.is_string()) {
    const std::string_view sv = value.string_value();
    QcString(*c, false, sv.data(), sv.size(), q);
  } else if (value.is_float()) {
    QcNumeric(*c, false, value.float_value(), q);
  } else if (value.is_decimal()) {
    QcNumeric(*c, false, static_cast<double>(value.decimal_value().unscaled()), q);
  } else if (value.is_date()) {
    QcNumeric(*c, false, static_cast<double>(value.date_days()), q);
  } else if (value.is_timestamp()) {
    QcNumeric(*c, false, static_cast<double>(value.timestamp_micros()), q);
  } else {
    QcPresence(*c, false, q);
  }
}

void FinishChunkQuality(const CompiledQuality& cq, const QualityScratch& q, ChunkQuality* out) {
  out->rows_checked = q.rows_checked;
  out->rows_quarantined = q.rows_quarantined;
  for (int k = 0; k < kNumQualityKinds; ++k) out->violations_by_kind[k] = q.violations_by_kind[k];
  out->violations_by_id.assign(q.violations_by_id, q.violations_by_id + cq.num_constraints());
  out->field_nulls.assign(q.field_nulls, q.field_nulls + cq.num_fields());
}

QualityJobReport BuildQualityJobReport(const CompiledQuality& cq,
                                       const std::vector<uint64_t>& violations_by_id,
                                       const std::vector<uint64_t>& field_nulls,
                                       uint64_t rows_checked, uint64_t rows_quarantined) {
  QualityJobReport report;
  report.enabled = true;
  report.rows_checked = rows_checked;
  report.rows_quarantined = rows_quarantined;
  report.violation_rate =
      rows_checked > 0 ? static_cast<double>(rows_quarantined) / rows_checked : 0.0;
  for (size_t id = 0; id < cq.num_constraints(); ++id) {
    const QualityConstraintInfo& info = cq.constraint(id);
    QualityJobReport::Constraint c;
    c.id = static_cast<uint16_t>(id);
    c.kind = info.kind;
    c.column = info.column;
    c.bound = info.bound;
    if (info.kind == QualityKind::kNullRate) {
      for (const CompiledQuality::NullRateCeiling& nr : cq.null_rate_ceilings()) {
        if (nr.id != id) continue;
        c.violations = nr.field < field_nulls.size() ? field_nulls[nr.field] : 0;
        c.observed = rows_checked > 0 ? static_cast<double>(c.violations) / rows_checked : 0.0;
        c.breached = c.observed > nr.ceiling;
        break;
      }
    } else {
      c.violations = id < violations_by_id.size() ? violations_by_id[id] : 0;
      report.violations_total += c.violations;
    }
    report.constraints.push_back(std::move(c));
  }
  return report;
}

}  // namespace hyperq::core
