#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "legacy/session.h"
#include "net/transport.h"
#include "types/schema.h"

/// \file stream_client.h
/// Minimal streaming ETL client used by tests and benches: one LDWP session
/// driving a StreamJob. Unlike EtlClient (which interprets whole scripts and
/// replays files), StreamClient exposes the streaming verbs directly so a
/// test can interleave chunks, drift the layout mid-stream, and replay a
/// commit to exercise the exactly-once journal.

namespace hyperq::stream {

struct StreamClientOptions {
  /// Resolves the logon host to a transport (same contract as
  /// EtlClientOptions::connector).
  std::function<common::Result<std::shared_ptr<net::Transport>>(const std::string& host)>
      connector;
  std::string host = "hyperq";
  std::string user = "etl";
  std::string password = "etl";
};

class StreamClient {
 public:
  explicit StreamClient(StreamClientOptions options) : options_(std::move(options)) {}

  /// Connects, logs on, and opens the stream. The begin body's layout
  /// becomes the client's encoding layout until ChangeLayout.
  common::Status Begin(const legacy::BeginStreamBody& begin);

  /// Encodes `lines` (delimiter-separated field text, empty field = NULL)
  /// under the current layout and sends them as one data chunk.
  common::Status SendLines(const std::vector<std::string>& lines);

  /// Announces schema drift; subsequent SendLines encode under `layout`.
  common::Status ChangeLayout(const types::Schema& layout);

  /// Commits the open micro-batch at `watermark_micros` (batch_seq is
  /// assigned automatically, starting at 1).
  common::Result<legacy::BatchCommittedBody> Commit(uint64_t watermark_micros);

  /// Re-sends the last Commit verbatim — models a client that never saw the
  /// BatchCommitted reply. The server answers from its journal.
  common::Result<legacy::BatchCommittedBody> RetryCommit();

  /// Ends the stream with the client-side totals and returns the report.
  common::Result<legacy::JobReportBody> End();

  common::Status Logoff();

  uint64_t chunks_sent() const { return chunks_sent_; }
  uint64_t rows_sent() const { return rows_sent_; }
  uint64_t batches_committed() const { return batch_seq_; }

 private:
  StreamClientOptions options_;
  std::unique_ptr<legacy::LegacySession> session_;
  types::Schema layout_;
  legacy::DataFormat format_ = legacy::DataFormat::kVartext;
  char delimiter_ = '|';
  uint64_t chunks_sent_ = 0;
  uint64_t rows_sent_ = 0;
  uint64_t batch_seq_ = 0;
  uint64_t last_watermark_ = 0;
};

}  // namespace hyperq::stream
