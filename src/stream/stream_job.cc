#include "stream/stream_job.h"

#include <cctype>
#include <chrono>
#include <cstdio>

#include "cloudstore/bulk_loader.h"
#include "common/fault.h"
#include "common/logging.h"
#include "hyperq/conversion_plan.h"
#include "legacy/errors.h"
#include "sql/parser.h"

namespace hyperq::stream {

using common::Result;
using common::Slice;
using common::Status;
using core::RecordError;

namespace {

std::string SanitizeId(const std::string& id) {
  std::string out;
  for (char c : id) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

Status RecreateTable(cdw::CdwServer* cdw, const std::string& name, const types::Schema& schema) {
  HQ_RETURN_NOT_OK(cdw->catalog()->DropTable(name, /*if_exists=*/true));
  return cdw->catalog()->CreateTable(name, schema).status();
}

/// Zero-padded batch staging prefix ("batch_00000001/"): lexicographic key
/// order in the COPY ledger is commit order, which is what makes both
/// eviction paths FIFO.
std::string BatchPrefix(uint64_t batch_seq) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "batch_%08llu", static_cast<unsigned long long>(batch_seq));
  return std::string(buf);
}

}  // namespace

Result<std::shared_ptr<StreamJob>> StreamJob::Create(const std::string& job_id,
                                                     const legacy::BeginStreamBody& begin,
                                                     core::JobContext ctx) {
  if (ctx.cdw == nullptr || ctx.store == nullptr) {
    return Status::Invalid("incomplete stream job context");
  }
  // The target table must already exist in the CDW.
  HQ_RETURN_NOT_OK(ctx.cdw->catalog()->GetTable(begin.target_table).status());
  if (begin.dml_sql.empty()) {
    return Status::Invalid("stream job requires a DML statement (applied per micro-batch)");
  }
  HQ_ASSIGN_OR_RETURN(sql::StatementPtr dml, sql::ParseStatement(begin.dml_sql));

  // Config specs are part of the stream contract: an unparseable fault_spec
  // or quality spec fails BeginStream loudly (ProtocolError) instead of
  // silently degrading to "no injection" / "no gate".
  if (!ctx.options.fault_spec.empty()) {
    uint64_t seed = 0;
    std::vector<std::pair<int, common::FaultRule>> rules;
    Status parsed = common::ParseFaultSpec(ctx.options.fault_spec, &seed, &rules);
    if (!parsed.ok()) {
      return Status::ProtocolError("invalid fault_spec: " + parsed.message());
    }
  }
  const core::TableQualitySpec* table_quality = nullptr;
  core::QualitySpec parsed_quality;
  if (!ctx.options.quality.spec.empty()) {
    auto parsed = core::ParseQualitySpec(ctx.options.quality.spec);
    if (!parsed.ok()) {
      return Status::ProtocolError("invalid quality spec: " + parsed.status().message());
    }
    parsed_quality = std::move(parsed).ValueOrDie();
    table_quality = core::FindTableQuality(parsed_quality, begin.target_table);
  }

  HQ_ASSIGN_OR_RETURN(types::Schema staging_schema, core::MakeStagingSchema(begin.layout));
  HQ_ASSIGN_OR_RETURN(
      core::DataConverter converter,
      core::DataConverter::Create(begin.layout, begin.format, begin.delimiter,
                                  cdw::CsvOptions{}, ctx.options.staging_format,
                                  table_quality));

  // Per-stream error-handling overrides from the client script.
  if (begin.max_errors != 0) ctx.options.max_errors = begin.max_errors;
  if (begin.max_retries != 0) ctx.options.max_retries = begin.max_retries;

  auto job = std::shared_ptr<StreamJob>(new StreamJob(
      job_id, begin, std::move(ctx), std::move(converter), staging_schema, std::move(dml)));
  if (table_quality != nullptr) {
    // Kept so drift-swapped converters recompile the same constraint table.
    job->table_quality_ = *table_quality;
  }

  // CDW-side state: one staging table accumulating every micro-batch (the
  // globally monotone HQ_ROWNUM is what lets per-batch DML ranges compose
  // into exactly the batch-equivalent apply), plus fresh error tables. A
  // recreated staging table must not inherit a prior job's COPY ledger.
  HQ_RETURN_NOT_OK(RecreateTable(job->ctx_.cdw, job->staging_table_, staging_schema));
  job->ctx_.cdw->ForgetCopies(job->staging_table_);
  HQ_RETURN_NOT_OK(
      RecreateTable(job->ctx_.cdw, job->begin_.error_table_et, core::MakeEtErrorSchema()));
  HQ_RETURN_NOT_OK(RecreateTable(job->ctx_.cdw, job->begin_.error_table_uv,
                                 core::MakeUvErrorSchema(begin.layout)));
  if (!job->qrtn_table_.empty()) {
    // Quarantine table: recreated per stream and NOT dropped at Finish — it
    // is the operator's record of what the gate rejected and why.
    HQ_ASSIGN_OR_RETURN(types::Schema qrtn_schema, core::MakeQuarantineSchema(begin.layout));
    HQ_RETURN_NOT_OK(RecreateTable(job->ctx_.cdw, job->qrtn_table_, qrtn_schema));
    job->ctx_.cdw->ForgetCopies(job->qrtn_table_);
  }
  return job;
}

StreamJob::StreamJob(std::string job_id, legacy::BeginStreamBody begin, core::JobContext ctx,
                     core::DataConverter converter, types::Schema staging_schema,
                     sql::StatementPtr dml)
    : job_id_(std::move(job_id)),
      begin_(std::move(begin)),
      ctx_(std::move(ctx)),
      converter_(std::move(converter)),
      staging_schema_(std::move(staging_schema)),
      dml_(std::move(dml)),
      staging_format_(ctx_.options.staging_format) {
  staging_table_ = "HQ_STRM_" + SanitizeId(job_id_);
  remote_prefix_ = "stream/" + SanitizeId(job_id_) + "/";
  local_dir_ = ctx_.options.local_staging_dir + "/" + SanitizeId(job_id_);
  const core::CompiledQuality* quality = converter_.quality();
  if (quality != nullptr) {
    quality_on_ = true;
    qrtn_table_ = "HQ_QRTN_" + SanitizeId(job_id_);
    qrtn_remote_prefix_ = "quarantine/" + SanitizeId(job_id_) + "/";
    batch_violations_by_id_.assign(quality->num_constraints(), 0);
    batch_nulls_by_id_.assign(quality->num_constraints(), 0);
    quality_violations_by_id_.assign(quality->num_constraints(), 0);
    quality_nulls_by_id_.assign(quality->num_constraints(), 0);
  }
  if (begin_.error_table_et.empty()) begin_.error_table_et = begin_.target_table + "_ET";
  if (begin_.error_table_uv.empty()) begin_.error_table_uv = begin_.target_table + "_UV";
  if (ctx_.tracer != nullptr) trace_ = ctx_.tracer->StartTrace(job_id_, obs::Phase::kImport);
  if (ctx_.metrics != nullptr) {
    obs::MetricsRegistry* r = ctx_.metrics;
    m_.chunks = r->GetCounter("hyperq_stream_chunks_total");
    m_.rows_received = r->GetCounter("hyperq_stream_rows_received_total");
    m_.batches_committed = r->GetCounter("hyperq_stream_batches_committed_total");
    m_.rows_committed = r->GetCounter("hyperq_stream_rows_committed_total");
    m_.data_errors = r->GetCounter("hyperq_stream_data_errors_total");
    m_.remap_total = r->GetCounter("hyperq_stream_remap_total");
    m_.fields_dropped = r->GetCounter("hyperq_stream_fields_dropped_total");
    m_.fields_nulled = r->GetCounter("hyperq_stream_fields_nulled_total");
    m_.commit_replays = r->GetCounter("hyperq_stream_commit_replays_total");
    m_.format_fallbacks = r->GetCounter("hyperq_stream_format_fallback_total");
    m_.batch_latency = r->GetHistogram("hyperq_stream_batch_latency_seconds");
    m_.watermark_lag = r->GetGauge("hyperq_stream_watermark_lag_seconds");
    m_.jobs_active = r->GetGauge("hyperq_stream_jobs_active");
    if (quality != nullptr) {
      m_.rows_quarantined = r->GetCounter("hyperq_quality_rows_quarantined_total");
      m_.batches_rejected = r->GetCounter("hyperq_stream_batches_rejected_total");
      m_.violation_rate_bp = r->GetGauge("hyperq_quality_violation_rate_bp");
      m_.quality_violations.reserve(quality->num_constraints());
      for (size_t id = 0; id < quality->num_constraints(); ++id) {
        const core::QualityConstraintInfo& info = quality->constraint(id);
        m_.quality_violations.push_back(r->GetCounter(
            "hyperq_quality_violations_total{constraint=\"" + std::to_string(id) + ":" +
            std::string(core::QualityKindName(info.kind)) + ":" + info.column + "\"}"));
      }
    }
    m_.jobs_active->Add(1);
  }
}

StreamJob::~StreamJob() { ReleaseActiveGauge(); }

void StreamJob::ReleaseActiveGauge() {
  if (m_.jobs_active != nullptr && active_gauge_held_.exchange(false)) {
    m_.jobs_active->Sub(1);
  }
}

void StreamJob::AcquireBusy() {
  common::MutexLock lock(&mu_);
  while (busy_) busy_cv_.Wait(lock);
  busy_ = true;
}

void StreamJob::ReleaseBusy() {
  common::MutexLock lock(&mu_);
  busy_ = false;
  busy_cv_.NotifyAll();
}

common::RetryPolicy StreamJob::MakeIoRetry(const char* breaker_endpoint) const {
  common::RetryOptions options = ctx_.options.io_retry;
  options.breaker = common::BreakerFor(breaker_endpoint);
  if (trace_ != nullptr) {
    std::shared_ptr<obs::Trace> trace = trace_;
    options.on_backoff = [trace](std::string_view point, int attempt, uint64_t sleep_micros) {
      auto start = std::chrono::steady_clock::now();
      trace->RecordSpan(obs::Phase::kRetryBackoff,
                        "retry:" + std::string(point) + "#" + std::to_string(attempt), 0, start,
                        start + std::chrono::microseconds(sleep_micros));
    };
  }
  return common::RetryPolicy(std::move(options));
}

Status StreamJob::SubmitChunk(const legacy::DataChunkBody& chunk) {
  BusyToken busy(this);
  // A failed commit keeps its sealed batch for retry; accepting re-sent
  // copies of those rows here would stage them twice.
  if (sealed_.has_value()) {
    return Status::ProtocolError(
        "stream " + job_id_ + ": commit of batch " + std::to_string(sealed_->batch_seq) +
        " failed and is pending retry; re-send CommitBatch, not chunks");
  }
  uint64_t order;
  uint64_t first_row;
  uint64_t batch_seq;
  {
    common::MutexLock lock(&mu_);
    if (finished_) return Status::Invalid("stream " + job_id_ + " already ended");
    HQ_RETURN_NOT_OK(poison_);
    order = chunk_counter_++;
    first_row = row_counter_ + 1;
    row_counter_ += chunk.row_count;
    ++stats_.chunks;
    stats_.rows_received += chunk.row_count;
    batch_seq = stats_.batches_committed + 1;
  }
  if (m_.chunks != nullptr) {
    m_.chunks->Increment();
    m_.rows_received->Increment(chunk.row_count);
  }

  if (batch_writer_ == nullptr) {
    batch_open_ = std::chrono::steady_clock::now();
    core::FileWriterOptions fw_options;
    fw_options.directory = local_dir_;
    fw_options.file_size_threshold = ctx_.options.file_size_threshold;
    fw_options.compress = ctx_.options.compress_staging_files;
    fw_options.file_extension = cdw::StagingFileExtension(staging_format_);
    fw_options.trace = trace_;
    fw_options.trace_parent = trace_ == nullptr ? 0 : trace_->root_id();
    batch_writer_ =
        std::make_unique<core::FileWriter>(fw_options, BatchPrefix(batch_seq));
  }

  // Synchronous conversion on the session thread: micro-batches are small by
  // construction and strict arrival order keeps drift windows deterministic
  // (every chunk is decoded by exactly the layout that was current when it
  // was sent).
  core::ConversionInput input;
  input.order_index = order;
  input.first_row_number = first_row;
  input.chunk = chunk;
  HQ_ASSIGN_OR_RETURN(core::ConvertedChunk converted, converter_.Convert(input, ctx_.buffers));

  // Transient staging-disk failures are retried; exhausted retries degrade
  // into an ET row (code 9058) instead of failing the stream — the same
  // graceful-degradation contract as the batch path.
  common::RetryPolicy retry = MakeIoRetry("staging_disk");
  Status appended = retry.Run("bulkload.file", [&](const common::RetryAttempt&) {
    return batch_writer_->Append(converted.csv.AsSlice(), &batch_files_);
  });
  if (ctx_.buffers != nullptr) {
    ctx_.buffers->Release(std::move(converted.csv.vector()));
  }
  size_t new_errors = converted.errors.size();
  if (!appended.ok()) {
    if (!common::IsRetryableStatus(appended)) return appended;
    // The conversion errors still describe real input rows; keep them
    // alongside the abandonment marker so the ET table matches the counts.
    for (auto& e : converted.errors) batch_errors_.push_back(std::move(e));
    RecordError abandoned;
    abandoned.row_number = first_row;
    abandoned.code = legacy::kErrChunkAbandoned;
    abandoned.message = "chunk abandoned after staging retries: " + appended.message();
    batch_errors_.push_back(std::move(abandoned));
    ++new_errors;
    common::MutexLock lock(&mu_);
    ++stats_.chunks_abandoned;
  } else {
    batch_rows_staged_ += converted.rows_out;
    for (auto& e : converted.errors) batch_errors_.push_back(std::move(e));
    const core::CompiledQuality* cq = converter_.quality();
    if (cq != nullptr) {
      // Merge the chunk's quality counters into the open batch (id-keyed, so
      // aggregates survive drift-swapped converters), then persist its
      // quarantine rows through the same disk/retry path.
      const core::ChunkQuality& q = converted.quality;
      batch_quality_rows_checked_ += q.rows_checked;
      batch_rows_quarantined_ += q.rows_quarantined;
      for (size_t id = 0; id < q.violations_by_id.size(); ++id) {
        batch_violations_by_id_[id] += q.violations_by_id[id];
      }
      for (const core::CompiledQuality::NullRateCeiling& nr : cq->null_rate_ceilings()) {
        if (nr.field < q.field_nulls.size()) batch_nulls_by_id_[nr.id] += q.field_nulls[nr.field];
      }
      if (q.rows_quarantined != 0) {
        if (batch_qrtn_writer_ == nullptr) {
          core::FileWriterOptions q_options;
          q_options.directory = local_dir_;
          q_options.file_size_threshold = ctx_.options.file_size_threshold;
          q_options.compress = ctx_.options.compress_staging_files;
          q_options.file_extension = cdw::StagingFileExtension(cdw::StagingFormat::kCsv);
          q_options.trace = trace_;
          q_options.trace_parent = trace_ == nullptr ? 0 : trace_->root_id();
          batch_qrtn_writer_ = std::make_unique<core::FileWriter>(
              q_options, BatchPrefix(batch_seq) + "_qrtn");
        }
        common::RetryPolicy qrtn_retry = MakeIoRetry("staging_disk");
        Status q_appended = qrtn_retry.Run("bulkload.file", [&](const common::RetryAttempt&) {
          return batch_qrtn_writer_->Append(converted.qrtn.AsSlice(), &batch_qrtn_files_);
        });
        if (q_appended.ok()) {
          batch_qrtn_rows_staged_ += q.rows_quarantined;
        } else if (common::IsRetryableStatus(q_appended)) {
          core::RecordError abandoned;
          abandoned.row_number = first_row;
          abandoned.code = legacy::kErrChunkAbandoned;
          abandoned.message =
              "quarantine rows abandoned after staging retries: " + q_appended.message();
          batch_errors_.push_back(std::move(abandoned));
          ++new_errors;
          common::MutexLock lock(&mu_);
          ++stats_.chunks_abandoned;
        } else {
          return q_appended;
        }
      }
      if (m_.rows_quarantined != nullptr && q.rows_quarantined != 0) {
        m_.rows_quarantined->Increment(q.rows_quarantined);
      }
      if (!m_.quality_violations.empty()) {
        for (size_t id = 0; id < q.violations_by_id.size(); ++id) {
          if (q.violations_by_id[id] != 0) {
            m_.quality_violations[id]->Increment(q.violations_by_id[id]);
          }
        }
      }
      common::MutexLock lock(&mu_);
      stats_.rows_quarantined += q.rows_quarantined;
    }
  }
  ++batch_chunks_;
  if (new_errors != 0) {
    if (m_.data_errors != nullptr) m_.data_errors->Increment(new_errors);
    common::MutexLock lock(&mu_);
    stats_.data_errors += new_errors;
  }
  return Status::OK();
}

Status StreamJob::ChangeLayout(const types::Schema& layout) {
  BusyToken busy(this);
  {
    common::MutexLock lock(&mu_);
    if (finished_) return Status::Invalid("stream " + job_id_ + " already ended");
    HQ_RETURN_NOT_OK(poison_);
  }
  if (layout == converter_.layout()) return Status::OK();  // no drift

  // Drift-swapped converters recompile the same quality constraints: ids are
  // spec-ordered, so the id-keyed aggregates keep composing across windows.
  const core::TableQualitySpec* quality = quality_on_ ? &table_quality_ : nullptr;
  Result<core::DataConverter> next =
      layout == begin_.layout
          ? core::DataConverter::Create(layout, begin_.format, begin_.delimiter,
                                        cdw::CsvOptions{}, staging_format_, quality)
          : core::DataConverter::CreateRemapped(layout, begin_.layout, begin_.format,
                                                begin_.delimiter, cdw::CsvOptions{},
                                                staging_format_, quality);
  if (!next.ok() && staging_format_ == cdw::StagingFormat::kBinary &&
      layout != begin_.layout) {
    // Format negotiation: type-changing drift cannot be encoded into the
    // staging table's typed binary columns, so the session falls back to csv
    // staging (permanently — a later drift back would otherwise recreate the
    // file-name series and collide with the batch's existing objects). The
    // open staging file is finalized first so every staged object stays
    // single-format; COPY sniffs the format per object, so the resulting
    // mixed-format batch prefix loads and dedups correctly.
    HQ_LOG_WARN() << "stream " << job_id_ << ": " << next.status().message()
                  << " — falling back to csv staging for this session";
    if (batch_writer_ != nullptr) {
      HQ_RETURN_NOT_OK(batch_writer_->Finish(&batch_files_));
      batch_writer_ = nullptr;
    }
    staging_format_ = cdw::StagingFormat::kCsv;
    if (m_.format_fallbacks != nullptr) m_.format_fallbacks->Increment();
    {
      common::MutexLock lock(&mu_);
      ++stats_.format_fallbacks;
    }
    next = core::DataConverter::CreateRemapped(layout, begin_.layout, begin_.format,
                                               begin_.delimiter, cdw::CsvOptions{},
                                               cdw::StagingFormat::kCsv, quality);
  }
  HQ_RETURN_NOT_OK(next.status());
  converter_ = std::move(next).ValueOrDie();

  const core::ConversionPlan& plan = converter_.plan();
  const size_t dropped = plan.dropped_source_fields();
  const size_t nulled = plan.nulled_target_fields();
  if (plan.remapped()) {
    HQ_LOG_WARN() << "stream " << job_id_ << ": layout drift to " << layout.ToString()
                  << " — remapping by name (" << dropped << " source field(s) dropped, "
                  << nulled << " target field(s) nulled)";
    if (m_.remap_total != nullptr) {
      m_.remap_total->Increment();
      m_.fields_dropped->Increment(dropped);
      m_.fields_nulled->Increment(nulled);
    }
  }
  common::MutexLock lock(&mu_);
  ++stats_.layout_changes;
  stats_.fields_dropped += dropped;
  stats_.fields_nulled += nulled;
  return Status::OK();
}

Result<legacy::BatchCommittedBody> StreamJob::CommitBatch(uint64_t batch_seq,
                                                          uint64_t watermark_micros) {
  BusyToken busy(this);
  {
    common::MutexLock lock(&mu_);
    if (finished_) return Status::Invalid("stream " + job_id_ + " already ended");
    HQ_RETURN_NOT_OK(poison_);
    // Client replay of a committed batch (lost BatchCommitted reply): the
    // journal answers; nothing downstream runs again.
    auto it = committed_batches_.find(batch_seq);
    if (it != committed_batches_.end()) {
      ++stats_.commit_replays;
      if (m_.commit_replays != nullptr) m_.commit_replays->Increment();
      return it->second;
    }
    const uint64_t expected = stats_.batches_committed + 1;
    if (batch_seq != expected) {
      return Status::ProtocolError("commit for batch " + std::to_string(batch_seq) +
                                   ", expected " + std::to_string(expected));
    }
  }
  if (watermark_micros <= last_watermark_) {
    return Status::ProtocolError(
        "micro-batch watermark must advance: " + std::to_string(watermark_micros) +
        " <= " + std::to_string(last_watermark_));
  }
  if (!sealed_.has_value()) {
    Status sealed = SealOpenBatch(batch_seq);
    if (!sealed.ok()) {
      // Finalize is not re-runnable; the batch content is forfeit, so fail
      // every later call loudly rather than ever ack an empty batch.
      Poison(sealed);
      return sealed;
    }
  } else {
    // Retained from a failed attempt: re-run the pipeline on the same rows.
    if (sealed_->batch_seq != batch_seq) {
      return Status::Internal("sealed batch " + std::to_string(sealed_->batch_seq) +
                              " does not match commit for batch " + std::to_string(batch_seq));
    }
    common::MutexLock lock(&mu_);
    ++stats_.commit_retries;
  }
  return CommitSealed(watermark_micros);
}

Status StreamJob::SealOpenBatch(uint64_t batch_seq) {
  SealedBatch sealed;
  sealed.batch_seq = batch_seq;
  sealed.open_time = batch_chunks_ != 0 ? batch_open_ : std::chrono::steady_clock::now();
  std::unique_ptr<core::FileWriter> writer = std::move(batch_writer_);
  sealed.files = std::move(batch_files_);
  batch_files_.clear();
  sealed.errors = std::move(batch_errors_);
  batch_errors_.clear();
  sealed.rows_staged = batch_rows_staged_;
  batch_rows_staged_ = 0;
  batch_chunks_ = 0;
  sealed.first_row = committed_row_high_ + 1;
  {
    common::MutexLock lock(&mu_);
    sealed.last_row = row_counter_;
  }
  std::unique_ptr<core::FileWriter> qrtn_writer = std::move(batch_qrtn_writer_);
  sealed.qrtn_files = std::move(batch_qrtn_files_);
  batch_qrtn_files_.clear();
  sealed.quality_rows_checked = batch_quality_rows_checked_;
  sealed.rows_quarantined = batch_rows_quarantined_;
  sealed.qrtn_rows_staged = batch_qrtn_rows_staged_;
  sealed.violations_by_id = std::move(batch_violations_by_id_);
  sealed.nulls_by_id = std::move(batch_nulls_by_id_);
  batch_quality_rows_checked_ = 0;
  batch_rows_quarantined_ = 0;
  batch_qrtn_rows_staged_ = 0;
  batch_violations_by_id_.assign(sealed.violations_by_id.size(), 0);
  batch_nulls_by_id_.assign(sealed.nulls_by_id.size(), 0);
  if (writer != nullptr) {
    HQ_RETURN_NOT_OK(writer->Finish(&sealed.files));
  }
  if (qrtn_writer != nullptr) {
    HQ_RETURN_NOT_OK(qrtn_writer->Finish(&sealed.qrtn_files));
  }
  sealed_ = std::move(sealed);
  return Status::OK();
}

void StreamJob::Poison(const Status& cause) {
  Status poison = Status::Internal("stream " + job_id_ +
                                   " poisoned by unrecoverable commit failure: " +
                                   cause.message());
  HQ_LOG_ERROR() << poison.message();
  common::MutexLock lock(&mu_);
  poison_ = std::move(poison);
}

Result<legacy::BatchCommittedBody> StreamJob::CommitSealed(uint64_t watermark_micros) {
  // Everything up to the DML apply is idempotent across commit attempts:
  // uploads re-put identical bytes to the same keys, COPY dedups through the
  // per-table ledger, and ET inserts resume at errors_recorded. Open-batch
  // members stay untouched, so a failed attempt can't corrupt the next
  // batch's accounting — and the sealed batch survives for the retry.
  SealedBatch& sealed = *sealed_;
  const uint64_t batch_seq = sealed.batch_seq;
  const std::vector<core::FinalizedFile>& files = sealed.files;
  const uint64_t rows_staged = sealed.rows_staged;
  const uint64_t first_row = sealed.first_row;
  const uint64_t last_row = sealed.last_row;

  // Per-micro-batch degradation policy: a batch whose violation rate exceeds
  // the per-batch watermark is rejected — its quarantine rows still ship (the
  // operator's evidence) but its staging rows never reach the target table,
  // so a drifting upstream poisons only the offending batch, not the stream.
  // The decision is a pure function of sealed state: every commit attempt of
  // this batch decides the same way.
  const double batch_rate =
      sealed.quality_rows_checked == 0
          ? 0.0
          : static_cast<double>(sealed.rows_quarantined) /
                static_cast<double>(sealed.quality_rows_checked);
  const bool rejected = quality_on_ && ctx_.options.quality.abort_over_threshold &&
                        batch_rate > ctx_.options.quality.batch_max_violation_rate;

  // Upload this batch's files under its own zero-padded prefix — the scope
  // of the COPY below and the unit of ledger eviction. Quarantine files ride
  // the same put batch under their own per-batch prefix; a rejected batch
  // uploads only those.
  const std::string batch_prefix = remote_prefix_ + BatchPrefix(batch_seq) + "/";
  const std::string qrtn_batch_prefix = qrtn_remote_prefix_ + BatchPrefix(batch_seq) + "/";
  std::vector<std::vector<uint8_t>> payloads;
  std::vector<std::pair<std::string, Slice>> batch;
  payloads.reserve(files.size() + sealed.qrtn_files.size());
  auto stage_for_upload = [&](const std::vector<core::FinalizedFile>& local,
                              const std::string& prefix) -> Status {
    for (const auto& f : local) {
      HQ_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, cloud::ReadFileBytes(f.path));
      payloads.push_back(std::move(bytes));
      std::string name = f.path;
      size_t slash = name.find_last_of('/');
      if (slash != std::string::npos) name = name.substr(slash + 1);
      batch.emplace_back(prefix + name, Slice(payloads.back()));
    }
    return Status::OK();
  };
  if (!rejected) HQ_RETURN_NOT_OK(stage_for_upload(files, batch_prefix));
  HQ_RETURN_NOT_OK(stage_for_upload(sealed.qrtn_files, qrtn_batch_prefix));
  if (!batch.empty()) {
    obs::ScopedSpan upload_span(trace_.get(), obs::Phase::kStorePut, "upload");
    // Resume-aware retry: each attempt re-uploads only the objects not yet
    // known durable (re-putting a lost-ack object is an idempotent
    // overwrite).
    size_t start = 0;
    common::RetryPolicy retry = MakeIoRetry("objstore");
    HQ_RETURN_NOT_OK(retry.Run("objstore.put", [&](const common::RetryAttempt&) {
      std::vector<std::pair<std::string, Slice>> rest(batch.begin() + static_cast<long>(start),
                                                      batch.end());
      size_t applied = 0;
      Status put = ctx_.store->PutBatch(rest, &applied);
      if (!put.ok()) start += applied;
      return put;
    }));
  }

  // COPY the batch into the accumulating staging table. Safe to retry after
  // a lost ack: the per-table ledger skips already-ingested objects, and the
  // per-batch prefix scopes the cumulative count to exactly this batch.
  uint64_t copied = 0;
  if (!rejected && !files.empty()) {
    obs::ScopedSpan copy_span(trace_.get(), obs::Phase::kCdwCopy, "copy");
    // Default CopyFormat::kAuto on purpose: a batch cut across a format
    // fallback holds both .hqb and .csv objects, and auto sniffs per object.
    common::RetryPolicy retry = MakeIoRetry("cdw");
    HQ_ASSIGN_OR_RETURN(copied,
                        retry.RunResult<uint64_t>("cdw.copy", [&](const common::RetryAttempt&) {
                          return ctx_.cdw->CopyInto(staging_table_, batch_prefix);
                        }));
  }
  if (!rejected && copied != rows_staged) {
    return Status::Internal("micro-batch COPY loaded " + std::to_string(copied) +
                            " rows, staged " + std::to_string(rows_staged));
  }

  // COPY this batch's quarantine rows (always CSV) into the job's quarantine
  // table. Same ledger idempotence as the main COPY, scoped to the batch's
  // own quarantine prefix.
  if (sealed.qrtn_rows_staged != 0) {
    obs::ScopedSpan qrtn_span(trace_.get(), obs::Phase::kCdwCopy, "copy_quarantine");
    cdw::CopyOptions copy_options;
    copy_options.format = cdw::CopyFormat::kCsv;
    common::RetryPolicy retry = MakeIoRetry("cdw");
    uint64_t qrtn_copied = 0;
    HQ_ASSIGN_OR_RETURN(
        qrtn_copied, retry.RunResult<uint64_t>("cdw.copy", [&](const common::RetryAttempt&) {
          return ctx_.cdw->CopyInto(qrtn_table_, qrtn_batch_prefix, copy_options);
        }));
    if (qrtn_copied != sealed.qrtn_rows_staged) {
      return Status::Internal("quarantine COPY loaded " + std::to_string(qrtn_copied) +
                              " rows, staged " + std::to_string(sealed.qrtn_rows_staged));
    }
  }

  // Record this batch's data errors in the ET table, then apply the stream
  // DML over exactly the batch's row range. Sequential inclusive ranges over
  // the monotone HQ_ROWNUM partition the stream, so the union of per-batch
  // applies equals one whole-table apply (the batch-equivalence invariant
  // the drift e2e checks). errors_recorded advances per durable insert, so a
  // retried commit resumes instead of duplicating ET rows.
  common::RetryPolicy exec_retry = MakeIoRetry("cdw");
  for (; sealed.errors_recorded < sealed.errors.size(); ++sealed.errors_recorded) {
    const RecordError& e = sealed.errors[sealed.errors_recorded];
    std::string sql_text =
        "INSERT INTO " + begin_.error_table_et + " VALUES (" + std::to_string(e.code) + ", " +
        (e.field.empty() ? std::string("NULL") : core::SqlQuote(e.field)) + ", " +
        core::SqlQuote(e.message + " (input row number: " + std::to_string(e.row_number) + ")") +
        ")";
    HQ_RETURN_NOT_OK(exec_retry.Run("cdw.exec", [&](const common::RetryAttempt&) {
      return ctx_.cdw->ExecuteSql(sql_text).status();
    }));
  }

  core::DmlApplyResult dml;
  if (!rejected && last_row >= first_row) {
    obs::ScopedSpan apply_span(trace_.get(), obs::Phase::kDmlApply, "apply");
    core::AdaptiveOptions adaptive;
    adaptive.max_errors = ctx_.options.max_errors;
    adaptive.max_retries = ctx_.options.max_retries;
    adaptive.enforce_uniqueness = ctx_.options.enforce_uniqueness;
    adaptive.io_retry = ctx_.options.io_retry;
    core::AdaptiveDmlApplier applier(ctx_.cdw, dml_.get(), begin_.layout, staging_table_,
                                     begin_.target_table, begin_.error_table_et,
                                     begin_.error_table_uv, adaptive);
    Result<core::DmlApplyResult> applied = applier.Apply(first_row, last_row);
    if (!applied.ok()) {
      // The one non-idempotent stage: partial DML effects can't be re-run
      // safely, so the stream dies loudly instead of risking double-apply.
      Poison(applied.status());
      return applied.status();
    }
    dml = std::move(applied).ValueOrDie();
  }

  // The batch is durably applied; from here on the commit must succeed.
  // Retire the sealed batch, advance the committed row high-water mark, and
  // drop ledger entries that have fallen out of the replay window so
  // arbitrarily long streams keep a bounded ledger.
  for (const auto& f : files) std::remove(f.path.c_str());
  for (const auto& f : sealed.qrtn_files) std::remove(f.path.c_str());
  committed_row_high_ = last_row;

  // Prune the applied rows from the accumulating staging table. Every later
  // batch addresses a strictly higher HQ_ROWNUM range and a replayed commit
  // is answered from the journal without re-reading staging, so rows at or
  // below the new high-water mark are dead weight — left in place they make
  // each batch's COPY count check and DML range scan cost O(stream) instead
  // of O(batch). Best-effort: a failed prune costs latency, not rows.
  uint64_t pruned = 0;
  if (!rejected && last_row >= first_row) {
    Result<cdw::ExecResult> del = ctx_.cdw->ExecuteSql(
        "DELETE FROM " + staging_table_ + " WHERE HQ_ROWNUM <= " + std::to_string(last_row));
    if (del.ok()) {
      pruned = del.ValueOrDie().rows_deleted;
    } else {
      HQ_LOG_WARN() << "stream " << job_id_ << ": staging prune failed (non-fatal): "
                    << del.status().message();
    }
  }

  uint64_t evicted = 0;
  if (!rejected) {
    ledgered_prefixes_.push_back(batch_prefix);
    const size_t keep = std::max<size_t>(1, ctx_.options.stream_ledger_keep_batches);
    while (ledgered_prefixes_.size() > keep) {
      ctx_.cdw->ForgetCopiesWithPrefix(staging_table_, ledgered_prefixes_.front());
      ledgered_prefixes_.pop_front();
      ++evicted;
    }
  }
  if (sealed.qrtn_rows_staged != 0) {
    // Replays of this commit are answered from the journal without re-running
    // COPY, so the quarantine ledger entries are dead weight once durable.
    ctx_.cdw->ForgetCopiesWithPrefix(qrtn_table_, qrtn_batch_prefix);
  }

  last_watermark_ = watermark_micros;
  const auto now_wall = std::chrono::system_clock::now().time_since_epoch();
  const int64_t wall_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(now_wall).count();
  const int64_t lag_micros = wall_micros - static_cast<int64_t>(watermark_micros);
  const double batch_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sealed.open_time)
          .count();
  const size_t batch_errors = sealed.errors.size();
  const uint64_t q_rows_checked = sealed.quality_rows_checked;
  const uint64_t q_rows_quarantined = sealed.rows_quarantined;
  std::vector<uint64_t> q_violations = std::move(sealed.violations_by_id);
  std::vector<uint64_t> q_nulls = std::move(sealed.nulls_by_id);
  sealed_.reset();

  legacy::BatchCommittedBody reply;
  reply.batch_seq = batch_seq;
  reply.watermark_micros = watermark_micros;
  reply.rows_in_batch = dml.rows_inserted + dml.rows_updated + dml.rows_deleted;
  {
    common::MutexLock lock(&mu_);
    dml_totals_.rows_inserted += dml.rows_inserted;
    dml_totals_.rows_updated += dml.rows_updated;
    dml_totals_.rows_deleted += dml.rows_deleted;
    dml_totals_.et_errors += dml.et_errors;
    dml_totals_.uv_errors += dml.uv_errors;
    dml_totals_.range_errors += dml.range_errors;
    dml_totals_.statements_issued += dml.statements_issued;
    data_errors_recorded_ += batch_errors;
    // batches_committed is the commit-protocol sequence number, so a rejected
    // batch advances it too (the journal is keyed by batch_seq either way).
    ++stats_.batches_committed;
    if (rejected) ++stats_.batches_rejected;
    if (!rejected) stats_.rows_committed += rows_staged;
    stats_.ledger_evictions += evicted;
    stats_.staging_rows_pruned += pruned;
    quality_rows_checked_ += q_rows_checked;
    for (size_t id = 0; id < q_violations.size() && id < quality_violations_by_id_.size(); ++id) {
      quality_violations_by_id_[id] += q_violations[id];
    }
    for (size_t id = 0; id < q_nulls.size() && id < quality_nulls_by_id_.size(); ++id) {
      quality_nulls_by_id_[id] += q_nulls[id];
    }
    reply.rows_total =
        dml_totals_.rows_inserted + dml_totals_.rows_updated + dml_totals_.rows_deleted;
    reply.et_errors = dml_totals_.et_errors + data_errors_recorded_;
    reply.message =
        rejected ? "batch " + std::to_string(batch_seq) + " rejected by quality gate (" +
                       std::to_string(q_rows_quarantined) + "/" +
                       std::to_string(q_rows_checked) + " rows quarantined to " + qrtn_table_ +
                       ")"
                 : "batch " + std::to_string(batch_seq) + " committed";
    committed_batches_[batch_seq] = reply;
  }
  if (m_.batches_committed != nullptr) {
    if (rejected) {
      m_.batches_rejected->Increment();
    } else {
      m_.batches_committed->Increment();
      m_.rows_committed->Increment(rows_staged);
    }
    m_.batch_latency->Observe(batch_seconds);
    m_.watermark_lag->Set(std::max<int64_t>(0, lag_micros / 1000000));
  }
  if (m_.violation_rate_bp != nullptr && q_rows_checked != 0) {
    m_.violation_rate_bp->Set(batch_rate * 10000);
  }
  return reply;
}

Result<legacy::JobReportBody> StreamJob::Finish(uint64_t total_chunks, uint64_t total_rows) {
  BusyToken busy(this);
  {
    common::MutexLock lock(&mu_);
    if (finished_) return Status::Invalid("stream " + job_id_ + " already ended");
    HQ_RETURN_NOT_OK(poison_);
    if (total_chunks != 0 && total_chunks != chunk_counter_) {
      return Status::ProtocolError("client reported " + std::to_string(total_chunks) +
                                   " chunks, received " + std::to_string(chunk_counter_));
    }
    if (total_rows != 0 && total_rows != row_counter_) {
      return Status::ProtocolError("client reported " + std::to_string(total_rows) +
                                   " rows, received " + std::to_string(row_counter_));
    }
  }
  if (batch_chunks_ != 0 || batch_writer_ != nullptr || sealed_.has_value()) {
    return Status::ProtocolError(
        "stream ended with an uncommitted micro-batch; send CommitBatch before EndStream");
  }

  // Stream-scoped scratch state goes with the stream.
  HQ_RETURN_NOT_OK(ctx_.cdw->catalog()->DropTable(staging_table_, /*if_exists=*/true));
  ctx_.cdw->ForgetCopies(staging_table_);

  legacy::JobReportBody report;
  {
    common::MutexLock lock(&mu_);
    finished_ = true;
    report.rows_inserted = dml_totals_.rows_inserted;
    report.rows_updated = dml_totals_.rows_updated;
    report.rows_deleted = dml_totals_.rows_deleted;
    report.et_errors = dml_totals_.et_errors + data_errors_recorded_;
    report.uv_errors = dml_totals_.uv_errors;
    report.message = "stream " + job_id_ + " complete (" +
                     std::to_string(stats_.batches_committed) + " micro-batches)";
  }
  ReleaseActiveGauge();
  if (trace_ != nullptr) trace_->Finish();
  return report;
}

StreamStats StreamJob::stats() const {
  common::MutexLock lock(&mu_);
  return stats_;
}

core::QualityJobReport StreamJob::quality_report() {
  // The busy token serializes with in-flight calls, making the open-batch
  // and sealed aggregates safe to read here.
  BusyToken busy(this);
  const core::CompiledQuality* cq = converter_.quality();
  if (cq == nullptr) return core::QualityJobReport{};
  // All-time view: committed batches + the sealed batch (if a commit is
  // pending retry) + the open batch, to match stats_.rows_quarantined which
  // counts at submit time.
  uint64_t rows_checked = batch_quality_rows_checked_;
  std::vector<uint64_t> violations_by_id = batch_violations_by_id_;
  std::vector<uint64_t> nulls_by_id = batch_nulls_by_id_;
  if (sealed_.has_value()) {
    rows_checked += sealed_->quality_rows_checked;
    for (size_t id = 0; id < sealed_->violations_by_id.size() && id < violations_by_id.size();
         ++id) {
      violations_by_id[id] += sealed_->violations_by_id[id];
    }
    for (size_t id = 0; id < sealed_->nulls_by_id.size() && id < nulls_by_id.size(); ++id) {
      nulls_by_id[id] += sealed_->nulls_by_id[id];
    }
  }
  uint64_t rows_quarantined = 0;
  {
    common::MutexLock lock(&mu_);
    rows_checked += quality_rows_checked_;
    rows_quarantined = stats_.rows_quarantined;
    for (size_t id = 0; id < quality_violations_by_id_.size() && id < violations_by_id.size();
         ++id) {
      violations_by_id[id] += quality_violations_by_id_[id];
    }
    for (size_t id = 0; id < quality_nulls_by_id_.size() && id < nulls_by_id.size(); ++id) {
      nulls_by_id[id] += quality_nulls_by_id_[id];
    }
  }
  // BuildQualityJobReport takes field-indexed null counts; reconstruct them
  // from the id-keyed totals (ids are stable across drift recompiles, field
  // indices are not).
  std::vector<uint64_t> field_nulls(cq->num_fields(), 0);
  for (const core::CompiledQuality::NullRateCeiling& nr : cq->null_rate_ceilings()) {
    if (nr.field < field_nulls.size() && nr.id < nulls_by_id.size()) {
      field_nulls[nr.field] = nulls_by_id[nr.id];
    }
  }
  return core::BuildQualityJobReport(*cq, violations_by_id, field_nulls, rows_checked,
                                     rows_quarantined);
}

}  // namespace hyperq::stream
