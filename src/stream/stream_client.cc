#include "stream/stream_client.h"

#include <optional>

#include "legacy/row_format.h"

namespace hyperq::stream {

using common::Result;
using common::Status;
using legacy::DataChunkBody;
using legacy::DataFormat;

Status StreamClient::Begin(const legacy::BeginStreamBody& begin) {
  if (!options_.connector) return Status::Invalid("no connector configured");
  HQ_ASSIGN_OR_RETURN(auto transport, options_.connector(options_.host));
  session_ = std::make_unique<legacy::LegacySession>(transport);
  HQ_RETURN_NOT_OK(session_->Logon(options_.host, options_.user, options_.password));
  HQ_RETURN_NOT_OK(session_->BeginStream(begin));
  layout_ = begin.layout;
  format_ = begin.format;
  delimiter_ = begin.delimiter;
  return Status::OK();
}

Status StreamClient::SendLines(const std::vector<std::string>& lines) {
  if (!session_) return Status::Invalid("SendLines before Begin");
  if (lines.empty()) return Status::OK();

  DataChunkBody chunk;
  common::ByteBuffer payload;
  std::optional<legacy::BinaryRowCodec> codec;
  if (format_ == DataFormat::kBinary) codec.emplace(layout_);

  for (const auto& line : lines) {
    // Split the line into layout fields (same convention as EtlClient's file
    // replay: empty field text means NULL).
    legacy::VartextRecord record;
    size_t field_start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == delimiter_) {
        legacy::VartextField field;
        field.text = line.substr(field_start, i - field_start);
        field.null = field.text.empty();
        record.push_back(std::move(field));
        field_start = i + 1;
      }
    }

    if (format_ == DataFormat::kVartext) {
      HQ_RETURN_NOT_OK(legacy::EncodeVartextRecord(record, delimiter_, &payload));
    } else {
      if (record.size() != layout_.num_fields()) {
        return Status::ConversionError("input line has " + std::to_string(record.size()) +
                                       " fields, layout has " +
                                       std::to_string(layout_.num_fields()));
      }
      types::Row row;
      row.reserve(record.size());
      for (size_t i = 0; i < record.size(); ++i) {
        if (record[i].null) {
          row.push_back(types::Value::Null());
          continue;
        }
        HQ_ASSIGN_OR_RETURN(
            types::Value v,
            types::CastValue(types::Value::String(record[i].text), layout_.field(i).type));
        row.push_back(std::move(v));
      }
      HQ_RETURN_NOT_OK(codec->EncodeRow(row, &payload));
    }
  }

  chunk.chunk_seq = chunks_sent_;
  chunk.row_count = static_cast<uint32_t>(lines.size());
  chunk.payload = std::move(payload.vector());
  HQ_RETURN_NOT_OK(session_->SendDataChunk(chunk));
  ++chunks_sent_;
  rows_sent_ += lines.size();
  return Status::OK();
}

Status StreamClient::ChangeLayout(const types::Schema& layout) {
  if (!session_) return Status::Invalid("ChangeLayout before Begin");
  HQ_RETURN_NOT_OK(session_->SendStreamLayout(layout));
  layout_ = layout;
  return Status::OK();
}

Result<legacy::BatchCommittedBody> StreamClient::Commit(uint64_t watermark_micros) {
  if (!session_) return Status::Invalid("Commit before Begin");
  ++batch_seq_;
  last_watermark_ = watermark_micros;
  return session_->CommitBatch(batch_seq_, watermark_micros);
}

Result<legacy::BatchCommittedBody> StreamClient::RetryCommit() {
  if (!session_) return Status::Invalid("RetryCommit before Begin");
  if (batch_seq_ == 0) return Status::Invalid("RetryCommit before any Commit");
  return session_->CommitBatch(batch_seq_, last_watermark_);
}

Result<legacy::JobReportBody> StreamClient::End() {
  if (!session_) return Status::Invalid("End before Begin");
  return session_->EndStream(chunks_sent_, rows_sent_);
}

Status StreamClient::Logoff() {
  if (!session_) return Status::OK();
  HQ_RETURN_NOT_OK(session_->Logoff());
  session_.reset();
  return Status::OK();
}

}  // namespace hyperq::stream
