#pragma once

#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hyperq/data_converter.h"
#include "hyperq/error_handler.h"
#include "hyperq/file_writer.h"
#include "hyperq/import_job.h"
#include "legacy/parcel.h"
#include "sql/ast.h"

/// \file stream_job.h
/// Streaming micro-batch import (the "real-time" half of the paper's title,
/// layered on the batch load path following DOD-ETL's micro-batching and
/// METL's drift-tolerant mapping). A StreamJob is a long-lived import
/// session: chunks arrive continuously, the client cuts watermark-delimited
/// micro-batches with CommitBatch, and every commit runs the full tail of
/// the batch pipeline — finalize staging files, upload, COPY, per-batch DML
/// application — so the target table trails the stream by one micro-batch.
///
/// Exactly-once, at two protocol levels:
///   - A *server-side* COPY retry after a lost ack is absorbed by the CDW's
///     per-table idempotence ledger: the re-issued COPY (scoped to the
///     batch's own staging prefix) skips already-ingested objects and
///     returns the cumulative count.
///   - A *client-side* CommitBatch replay (lost BatchCommitted reply) hits
///     the committed-batch journal and gets the recorded result back without
///     re-running any of the commit pipeline.
///   - A commit that *fails* (retries exhausted) keeps the sealed batch: the
///     stream's open-batch state is only retired once the whole pipeline has
///     succeeded, so a retried CommitBatch re-runs the pipeline on exactly
///     the same rows instead of acking an empty batch. Every stage up to the
///     DML apply is idempotent across such retries (uploads re-put identical
///     bytes to the same keys, COPY dedups through the ledger, ET inserts
///     resume past the rows already recorded); a failure in the DML apply
///     itself — the one stage whose partial effects cannot be re-run safely —
///     poisons the stream, making every later call fail loudly.
/// Batch prefixes are zero-padded, so ledger keys sort in commit order and
/// both eviction paths (per-batch ForgetCopiesWithPrefix here, the size cap
/// in CdwServerOptions) retire oldest-first.
///
/// Schema drift: a StreamLayout parcel switches the session's conversion
/// plan. Name-matched fields are remapped into the original target layout
/// (see ConversionPlan::CompileRemapped); new fields with no target are
/// dropped (counted), removed fields become NULLs. The staging table, DML
/// binding and HQ_ROWNUM bookkeeping all stay in the original layout, which
/// is what makes a drifting stream land byte-identical to a batch run of the
/// same logical rows.

namespace hyperq::stream {

struct StreamStats {
  uint64_t chunks = 0;
  uint64_t rows_received = 0;
  uint64_t batches_committed = 0;
  uint64_t rows_committed = 0;  ///< rows staged and COPYed across batches
  uint64_t data_errors = 0;
  uint64_t chunks_abandoned = 0;
  uint64_t layout_changes = 0;
  uint64_t fields_dropped = 0;  ///< source fields with no target match
  uint64_t fields_nulled = 0;   ///< target fields with no source match
  uint64_t commit_replays = 0;  ///< CommitBatch re-sends answered from the journal
  uint64_t commit_retries = 0;  ///< pipeline re-runs on a retained sealed batch
  uint64_t ledger_evictions = 0;
  uint64_t staging_rows_pruned = 0;  ///< applied rows deleted from the staging table
  /// Sessions negotiated down from binary to csv staging because a layout
  /// drift changed a name-matched field's staging type (see
  /// DataConverter::CreateRemapped). At most 1 per stream: the fallback is
  /// sticky for the session.
  uint64_t format_fallbacks = 0;
  /// Rows the data-quality gate diverted to the HQ_QRTN_<job> table.
  uint64_t rows_quarantined = 0;
  /// Micro-batches rejected by abort-over-threshold (quarantine shipped,
  /// staging rows dropped, stream kept healthy).
  uint64_t batches_rejected = 0;
};

class StreamJob {
 public:
  /// Validates the context, parses the stream's DML, and creates the
  /// CDW-side state (staging + error tables). `job_id` must be unique on
  /// the node.
  static common::Result<std::shared_ptr<StreamJob>> Create(const std::string& job_id,
                                                           const legacy::BeginStreamBody& begin,
                                                           core::JobContext ctx);

  ~StreamJob();

  /// Accepts one data chunk into the open micro-batch. Conversion and the
  /// staging-file append run synchronously on the calling session thread:
  /// a micro-batch is small by construction and strict arrival order is
  /// what makes drift windows deterministic. Refused while a failed commit
  /// is pending retry — the rows of that batch are already sealed, and
  /// accepting re-sent copies of them would stage duplicates.
  common::Status SubmitChunk(const legacy::DataChunkBody& chunk);

  /// Switches the session's source layout (schema drift). Subsequent chunks
  /// are decoded in `layout` and remapped into the stream's original target
  /// layout by field name. No-op when `layout` equals the current one.
  common::Status ChangeLayout(const types::Schema& layout);

  /// Commits the open micro-batch: seals the staging files, uploads them
  /// under the batch's own prefix, COPYs into the staging table, records
  /// this batch's data errors, and applies the stream DML over exactly the
  /// batch's HQ_ROWNUM range. Replaying an already-committed `batch_seq`
  /// returns the journaled result. `watermark_micros` must advance. On
  /// failure the sealed batch is retained: re-sending the same CommitBatch
  /// re-runs the pipeline on the same rows (exactly-once either way), unless
  /// the failure poisoned the stream (DML apply / staging finalize), in
  /// which case this and every later call returns the poison status.
  common::Result<legacy::BatchCommittedBody> CommitBatch(uint64_t batch_seq,
                                                         uint64_t watermark_micros);

  /// Ends the stream after validating client totals; fails if uncommitted
  /// rows remain. Drops the staging table and its ledger, and reports the
  /// cumulative result of every committed batch.
  common::Result<legacy::JobReportBody> Finish(uint64_t total_chunks, uint64_t total_rows);

  const std::string& job_id() const { return job_id_; }
  const legacy::BeginStreamBody& begin() const { return begin_; }
  StreamStats stats() const HQ_EXCLUDES(mu_);
  /// Cumulative data-quality outcome across every batch so far
  /// (enabled=false when the gate is off). Serializes with in-flight calls.
  core::QualityJobReport quality_report() HQ_EXCLUDES(mu_);
  /// Quarantine table name ("" when the gate is off); outlives the stream.
  const std::string& quarantine_table() const { return qrtn_table_; }
  std::shared_ptr<obs::Trace> trace() const { return trace_; }

 private:
  StreamJob(std::string job_id, legacy::BeginStreamBody begin, core::JobContext ctx,
            core::DataConverter converter, types::Schema staging_schema,
            sql::StatementPtr dml);

  /// Serializes SubmitChunk/ChangeLayout/CommitBatch/Finish across sessions
  /// without holding mu_ (rank kJob) through CDW (rank kCdw) or store calls
  /// — the lock hierarchy is descending-only, so commit IO must run
  /// lock-free. Busy is a turn token, not a critical section.
  void AcquireBusy() HQ_EXCLUDES(mu_);
  void ReleaseBusy() HQ_EXCLUDES(mu_);
  /// RAII for the busy token.
  struct BusyToken {
    explicit BusyToken(StreamJob* job) : job_(job) { job_->AcquireBusy(); }
    ~BusyToken() { job_->ReleaseBusy(); }
    BusyToken(const BusyToken&) = delete;
    BusyToken& operator=(const BusyToken&) = delete;
    StreamJob* job_;
  };

  common::RetryPolicy MakeIoRetry(const char* breaker_endpoint) const;
  /// Moves the open-batch state into sealed_ and finalizes the staging
  /// files. On failure the caller must poison the stream: the writer's
  /// finalize path is not re-runnable, so the batch content is forfeit.
  common::Status SealOpenBatch(uint64_t batch_seq);
  /// The commit pipeline body over *sealed_; runs with the busy token held,
  /// mu_ free. Retires sealed_ (and advances the committed watermark / row
  /// high) only after every stage has succeeded.
  common::Result<legacy::BatchCommittedBody> CommitSealed(uint64_t watermark_micros);
  /// Marks the stream permanently failed; every later call returns this.
  void Poison(const common::Status& cause);
  void ReleaseActiveGauge();

  std::string job_id_;
  legacy::BeginStreamBody begin_;
  core::JobContext ctx_;
  core::DataConverter converter_;  ///< swapped on drift; busy-serialized
  types::Schema staging_schema_;
  sql::StatementPtr dml_;
  std::string staging_table_;
  std::string remote_prefix_;
  std::string local_dir_;
  /// Quality gate (all empty / unused when off). The table block is kept so
  /// drift-swapped converters recompile the same constraints — ids are
  /// spec-ordered and thus stable across recompiles, which is what lets the
  /// id-keyed aggregates below span drift windows.
  bool quality_on_ = false;
  core::TableQualitySpec table_quality_;
  std::string qrtn_table_;
  std::string qrtn_remote_prefix_;
  /// Effective staging format for NEW staging files. Starts as the node's
  /// configured format; negotiated down to kCsv (permanently, for this
  /// session) when a type-changing drift makes binary staging impossible.
  /// Already-written files keep their format — each staged object is
  /// single-format and COPY sniffs per object, so a mixed-format batch
  /// prefix loads correctly and its ledger keys stay format-tagged.
  cdw::StagingFormat staging_format_ = cdw::StagingFormat::kCsv;

  std::shared_ptr<obs::Trace> trace_;
  struct Instruments {
    obs::Counter* chunks = nullptr;
    obs::Counter* rows_received = nullptr;
    obs::Counter* batches_committed = nullptr;
    obs::Counter* rows_committed = nullptr;
    obs::Counter* data_errors = nullptr;
    obs::Counter* remap_total = nullptr;
    obs::Counter* fields_dropped = nullptr;
    obs::Counter* fields_nulled = nullptr;
    obs::Counter* commit_replays = nullptr;
    obs::Counter* format_fallbacks = nullptr;
    obs::Histogram* batch_latency = nullptr;
    obs::Gauge* watermark_lag = nullptr;
    obs::Gauge* jobs_active = nullptr;
    obs::Counter* rows_quarantined = nullptr;
    obs::Counter* batches_rejected = nullptr;
    obs::Gauge* violation_rate_bp = nullptr;
    /// hyperq_quality_violations_total{constraint="..."}, id-indexed.
    std::vector<obs::Counter*> quality_violations;
  } m_;
  std::atomic<bool> active_gauge_held_{true};

  mutable common::Mutex mu_{common::LockRank::kJob, "stream_job"};
  common::CondVar busy_cv_;
  bool busy_ HQ_GUARDED_BY(mu_) = false;

  // --- Session-serialized state (written with the busy token held; counters
  // --- mirrored under mu_ where stats() reads them). ---
  uint64_t chunk_counter_ HQ_GUARDED_BY(mu_) = 0;
  uint64_t row_counter_ HQ_GUARDED_BY(mu_) = 0;
  StreamStats stats_ HQ_GUARDED_BY(mu_);

  /// Open micro-batch (busy-serialized; no concurrent readers).
  std::unique_ptr<core::FileWriter> batch_writer_;
  std::vector<core::FinalizedFile> batch_files_;
  std::vector<core::RecordError> batch_errors_;
  uint64_t batch_chunks_ = 0;
  uint64_t batch_rows_staged_ = 0;
  /// Open-batch quarantine stream (busy-serialized; empty when gate off).
  std::unique_ptr<core::FileWriter> batch_qrtn_writer_;
  std::vector<core::FinalizedFile> batch_qrtn_files_;
  /// Open-batch quality aggregates, constraint-id keyed (stable over drift).
  uint64_t batch_quality_rows_checked_ = 0;
  uint64_t batch_rows_quarantined_ = 0;
  uint64_t batch_qrtn_rows_staged_ = 0;
  std::vector<uint64_t> batch_violations_by_id_;
  std::vector<uint64_t> batch_nulls_by_id_;
  /// Global row number of the last row belonging to a committed batch.
  uint64_t committed_row_high_ = 0;
  std::chrono::steady_clock::time_point batch_open_;

  /// A micro-batch sealed for commit. Survives a failed commit attempt so a
  /// retried CommitBatch re-runs the pipeline on the same rows;
  /// errors_recorded makes the ET-insert stage resumable across attempts.
  struct SealedBatch {
    uint64_t batch_seq = 0;
    std::vector<core::FinalizedFile> files;
    std::vector<core::RecordError> errors;
    size_t errors_recorded = 0;  ///< ET rows durably inserted so far
    uint64_t rows_staged = 0;
    uint64_t first_row = 0;
    uint64_t last_row = 0;
    std::chrono::steady_clock::time_point open_time;
    /// Quality-gate state sealed with the batch (empty/zero when off).
    std::vector<core::FinalizedFile> qrtn_files;
    uint64_t quality_rows_checked = 0;
    uint64_t rows_quarantined = 0;
    uint64_t qrtn_rows_staged = 0;
    std::vector<uint64_t> violations_by_id;
    std::vector<uint64_t> nulls_by_id;
  };
  std::optional<SealedBatch> sealed_;  ///< pending commit (busy-serialized)

  uint64_t last_watermark_ = 0;
  /// Commit journal: batch_seq -> recorded reply, for client replays. Only
  /// the latest entry is reachable by a correct client; the full map is kept
  /// because it is tiny (one small struct per batch).
  std::map<uint64_t, legacy::BatchCommittedBody> committed_batches_ HQ_GUARDED_BY(mu_);
  /// Committed batch prefixes whose ledger entries are still retained.
  std::deque<std::string> ledgered_prefixes_;

  /// Cumulative quality aggregates across committed batches.
  uint64_t quality_rows_checked_ HQ_GUARDED_BY(mu_) = 0;
  std::vector<uint64_t> quality_violations_by_id_ HQ_GUARDED_BY(mu_);
  std::vector<uint64_t> quality_nulls_by_id_ HQ_GUARDED_BY(mu_);

  /// Cumulative DML results across batches (for the final JobReport).
  core::DmlApplyResult dml_totals_ HQ_GUARDED_BY(mu_);
  uint64_t data_errors_recorded_ HQ_GUARDED_BY(mu_) = 0;
  bool finished_ HQ_GUARDED_BY(mu_) = false;
  /// Non-OK once an unrecoverable commit failure has been observed.
  common::Status poison_ HQ_GUARDED_BY(mu_);
};

}  // namespace hyperq::stream
