#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

/// \file staging_format.h
/// The CDW staging-file format: CSV with proper quoting. This is the format
/// the DataConverter emits and the COPY operation consumes — the target of
/// the on-the-fly conversion the paper describes in Section 4 ("detecting
/// null values, handling empty strings, and escaping special characters"):
///   - NULL        -> completely empty field
///   - empty string-> "" (quoted empty field; distinct from NULL!)
///   - fields containing delimiter/quote/newline are quoted, '"' doubled.

namespace hyperq::cdw {

struct CsvOptions {
  char delimiter = ',';
};

/// One staged cell: nullopt = SQL NULL.
using CsvField = std::optional<std::string>;
using CsvRecord = std::vector<CsvField>;

/// Appends one encoded CSV line (with trailing '\n').
void EncodeCsvRecord(const CsvRecord& record, const CsvOptions& options,
                     common::ByteBuffer* out);

/// Parses an entire CSV buffer into records. Handles quoted fields spanning
/// the delimiter and embedded newlines.
common::Result<std::vector<CsvRecord>> ParseCsv(common::Slice data, const CsvOptions& options);

}  // namespace hyperq::cdw
