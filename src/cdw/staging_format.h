#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

/// \file staging_format.h
/// The CDW staging-file format: CSV with proper quoting. This is the format
/// the DataConverter emits and the COPY operation consumes — the target of
/// the on-the-fly conversion the paper describes in Section 4 ("detecting
/// null values, handling empty strings, and escaping special characters"):
///   - NULL        -> completely empty field
///   - empty string-> "" (quoted empty field; distinct from NULL!)
///   - fields containing delimiter/quote/newline are quoted, '"' doubled.

namespace hyperq::cdw {

/// On-disk representation of staged load data. CSV is the compatibility
/// format every external tool can read; HQB1 (staging_binary.h) is the typed
/// columnar direct-pipe format that skips text encode/escape/parse entirely.
/// Selected per job via HyperQOptions::staging_format.
enum class StagingFormat : uint8_t {
  kCsv = 0,
  kBinary = 1,
};

std::string_view StagingFormatName(StagingFormat format);
/// File extension (with dot) for staging files of `format`: ".csv" / ".hqb".
std::string_view StagingFileExtension(StagingFormat format);

struct CsvOptions {
  char delimiter = ',';
  /// Use the SWAR (8-bytes-at-a-time) scan in CsvStreamReader::Next. Only
  /// benchmarks turn this off — both paths are byte-identical.
  bool swar_scan = true;
};

/// One staged cell: nullopt = SQL NULL.
using CsvField = std::optional<std::string>;
using CsvRecord = std::vector<CsvField>;

/// Appends one encoded CSV line (with trailing '\n').
void EncodeCsvRecord(const CsvRecord& record, const CsvOptions& options,
                     common::ByteBuffer* out);

/// One field of the record a CsvStreamReader is currently positioned on.
/// `text` borrows either from the input slice (the common, clean case) or
/// from the reader's internal scratch (fields that needed unescaping); both
/// are valid only until the next Next() call.
struct CsvFieldView {
  bool null = false;
  std::string_view text;
};

/// Streaming CSV reader over the staging format: yields one record view at a
/// time without materializing the file as std::vector<CsvRecord>. Field text
/// is zero-copy for unquoted/clean fields and lazily assembled into a reused
/// scratch buffer only when escaping ("" doubling, content after a closing
/// quote, \r stripping) forces it. Semantics are byte-identical to the batch
/// ParseCsv (which is now a thin wrapper over this class):
///   - unquoted empty field -> NULL; quoted empty field ("") -> empty string
///   - quoted fields may span delimiters and newlines; '"' doubles inside
///   - '\r' outside quotes is skipped (CRLF tolerance)
///   - a final record without trailing newline is still yielded
///   - EOF inside quotes is ParseError("unterminated quoted CSV field").
class CsvStreamReader {
 public:
  CsvStreamReader(common::Slice data, CsvOptions options)
      : data_(data), delimiter_(options.delimiter), swar_(options.swar_scan) {}

  /// Advances to the next record. Returns false at end of input; a parse
  /// error (unterminated quote) is returned as a Status.
  common::Result<bool> Next();

  /// Arity of the current record (valid after Next() returned true).
  size_t num_fields() const { return fields_.size(); }
  /// The i-th field of the current record; views die at the next Next().
  CsvFieldView field(size_t i) const;

 private:
  /// Completed-field descriptor: a span into the input (clean) or into
  /// scratch_ (dirty). Offsets, not pointers: scratch_ reallocates.
  struct FieldSpan {
    bool dirty = false;
    bool quoted = false;
    size_t begin = 0;
    size_t len = 0;
  };

  void AppendChar(size_t i);
  /// Appends the contiguous input run [begin, begin+len) to the in-progress
  /// field — the bulk equivalent of len AppendChar calls.
  void AppendRun(size_t begin, size_t len);
  void EndField();
  size_t FieldLen() const;
  /// SWAR scanners: index of the next structural byte at or after `from`
  /// (data_.size() if none). Unquoted stops at delimiter/'\n'/'\r'/'"';
  /// quoted stops only at '"'.
  size_t ScanUnquoted(size_t from) const;
  size_t ScanQuoted(size_t from) const;

  common::Slice data_;
  char delimiter_;
  bool swar_;
  size_t pos_ = 0;
  std::vector<FieldSpan> fields_;
  std::string scratch_;

  // In-progress field state.
  bool field_quoted_ = false;
  bool field_dirty_ = false;
  size_t clean_begin_ = 0;
  size_t clean_len_ = 0;
  size_t scratch_start_ = 0;
};

/// Parses an entire CSV buffer into records. Handles quoted fields spanning
/// the delimiter and embedded newlines. Batch convenience wrapper over
/// CsvStreamReader; prefer the streaming reader on the COPY hot path.
common::Result<std::vector<CsvRecord>> ParseCsv(common::Slice data, const CsvOptions& options);

}  // namespace hyperq::cdw
