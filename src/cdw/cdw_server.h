#pragma once

#include <map>
#include <memory>
#include <string>

#include "cdw/catalog.h"
#include "cdw/copy.h"
#include "cdw/executor.h"
#include "cloudstore/object_store.h"
#include "common/sync.h"
#include "obs/metrics.h"

/// \file cdw_server.h
/// Facade of the simulated cloud data warehouse: one catalog, one executor,
/// one attached object store, and a warehouse-level statement lock (cloud
/// DWs serialize DML per table; a single lock is a faithful-enough model for
/// the ETL workloads here). A configurable per-statement startup cost models
/// query compilation/queueing in the cloud service — it is what makes
/// singleton-insert loading (the Figure 11 baseline) pay a per-row round
/// trip while bulk statements amortize it.

namespace hyperq::cdw {

struct CdwServerOptions {
  /// Fixed cost added to every statement execution, microseconds.
  int64_t statement_startup_micros = 0;
  /// Fixed cost added to every COPY, microseconds.
  int64_t copy_startup_micros = 0;
  /// Optional telemetry registry (cdw_statement_seconds/cdw_copy_seconds
  /// histograms, statement/COPY/row counters). Must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// Cap on a table's COPY idempotence ledger; 0 = unbounded. When a COPY
  /// pushes the ledger past the cap, the lexicographically smallest keys are
  /// evicted first — streaming jobs stage micro-batches under zero-padded
  /// batch prefixes, so key order IS commit order and eviction is FIFO. The
  /// cap must exceed the number of objects one COPY can stage, or a retried
  /// COPY could re-ingest an object whose ledger entry was just evicted.
  size_t copy_ledger_max_entries = 0;
};

class CdwServer {
 public:
  explicit CdwServer(cloud::ObjectStore* store, CdwServerOptions options = {});

  Catalog* catalog() { return &catalog_; }
  cloud::ObjectStore* store() { return store_; }

  /// Executes one SQL statement (CDW dialect text).
  common::Result<ExecResult> ExecuteSql(std::string_view sql, const ExecOptions& options = {})
      HQ_EXCLUDES(mu_);

  /// Executes a parsed statement.
  common::Result<ExecResult> Execute(const sql::Statement& stmt, const ExecOptions& options = {})
      HQ_EXCLUDES(mu_);

  /// COPY INTO <table> FROM @store/<prefix>. Idempotent under retry: a
  /// per-table ledger of already-ingested staged objects makes a re-issued
  /// COPY (lost ack) skip what the first attempt landed, and the returned
  /// row count is cumulative for the prefix either way.
  common::Result<uint64_t> CopyInto(const std::string& table_name, const std::string& prefix,
                                    const CopyOptions& options = {}) HQ_EXCLUDES(mu_);

  /// Drops the COPY idempotence ledger for `table_name`. Call whenever the
  /// table's staging prefix is recycled (e.g. the staging table is dropped
  /// after a finished acquisition), or stale entries would mask new objects
  /// that reuse old keys.
  void ForgetCopies(const std::string& table_name) HQ_EXCLUDES(mu_);

  /// Evicts ledger entries for `table_name` whose object key starts with
  /// `key_prefix`. Streaming sessions call this once a micro-batch's commit
  /// watermark is durable: the client will never re-send that batch, so its
  /// ledger entries can go without weakening exactly-once.
  void ForgetCopiesWithPrefix(const std::string& table_name,
                              const std::string& key_prefix) HQ_EXCLUDES(mu_);

  /// Current ledger size for `table_name` (0 when absent). Test hook for the
  /// eviction policies above.
  size_t CopyLedgerSize(const std::string& table_name) const HQ_EXCLUDES(mu_);

  uint64_t statements_executed() const HQ_EXCLUDES(mu_);

 private:
  void PayStartupCost(int64_t micros) const;

  cloud::ObjectStore* store_;
  CdwServerOptions options_;
  Catalog catalog_;
  /// The single warehouse statement lock: statements and COPYs serialize on
  /// it, so the executor only ever runs single-threaded.
  mutable common::Mutex mu_{common::LockRank::kCdw, "cdw_server"};
  Executor executor_ HQ_GUARDED_BY(mu_);
  uint64_t statements_executed_ HQ_GUARDED_BY(mu_) = 0;
  /// COPY idempotence ledgers: table name -> (staged object key -> rows
  /// ingested from it). See CopyInto/ForgetCopies.
  std::map<std::string, std::map<std::string, uint64_t>> copied_objects_ HQ_GUARDED_BY(mu_);

  // Cached instrument pointers; null when options_.metrics is null.
  obs::Histogram* statement_latency_ = nullptr;
  obs::Histogram* copy_latency_ = nullptr;
  obs::Counter* statements_total_ = nullptr;
  obs::Counter* copies_total_ = nullptr;
  obs::Counter* copy_rows_total_ = nullptr;
  // Direct-pipe COPY telemetry: staged objects ingested through the HQB1
  // binary path vs the CSV fallback (files / rows / decompressed bytes).
  obs::Counter* copy_binary_files_total_ = nullptr;
  obs::Counter* copy_binary_rows_total_ = nullptr;
  obs::Counter* copy_binary_bytes_total_ = nullptr;
  obs::Counter* copy_csv_files_total_ = nullptr;
  obs::Counter* copy_csv_rows_total_ = nullptr;
  obs::Counter* copy_csv_bytes_total_ = nullptr;
};

}  // namespace hyperq::cdw
