#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "types/schema.h"

/// \file expr_eval.h
/// Row-at-a-time expression evaluation over one or more bound rows (target
/// table, staging table, join sides). This evaluator implements the *CDW*
/// dialect: legacy-only constructs (CAST ... FORMAT, ZEROIFNULL, '**',
/// :placeholders) are rejected — running them requires the Hyper-Q
/// transpiler first, which is the point of the paper.

namespace hyperq::cdw {

/// One named row visible to column references.
struct RowBinding {
  std::string alias;  ///< table alias or table name
  const types::Schema* schema;
  const types::Row* row;
};

class EvalContext {
 public:
  void AddBinding(std::string alias, const types::Schema* schema, const types::Row* row) {
    bindings_.push_back(RowBinding{std::move(alias), schema, row});
  }

  /// Resolves a (possibly qualified) column. Unqualified names matching more
  /// than one binding are ambiguous.
  common::Result<types::Value> ResolveColumn(const std::string& qualifier,
                                             const std::string& name) const;

  const std::vector<RowBinding>& bindings() const { return bindings_; }

 private:
  std::vector<RowBinding> bindings_;
};

/// Evaluates a scalar expression. Conversion failures (e.g. TO_DATE on a
/// malformed string) return ConversionError — the executor turns that into a
/// whole-statement abort (set-oriented semantics).
common::Result<types::Value> EvaluateExpr(const sql::Expr& expr, const EvalContext& ctx);

/// True for COUNT/SUM/MIN/MAX/AVG.
bool IsAggregateFunction(std::string_view name);

/// True if the expression tree contains an aggregate call.
bool ContainsAggregate(const sql::Expr& expr);

/// SQL LIKE with % and _ wildcards.
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace hyperq::cdw
