#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/schema.h"

/// \file table.h
/// Column-organized table of the simulated cloud data warehouse. Values are
/// stored per column; rows are assembled on demand. Mutations are staged by
/// the executor and committed atomically (set-oriented statement semantics:
/// a failing tuple aborts the whole statement with no partial effects, which
/// is exactly the behaviour that forces Hyper-Q's adaptive error handling).
///
/// The table records a declared unique primary key but does NOT enforce it:
/// like the cloud warehouses the paper targets, constraints are metadata
/// only, and Hyper-Q emulates enforcement (paper Section 7).

namespace hyperq::cdw {

class Table {
 public:
  Table(std::string name, types::Schema schema, std::vector<std::string> primary_key = {},
        bool unique_primary = false);

  const std::string& name() const { return name_; }
  const types::Schema& schema() const { return schema_; }
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  bool unique_primary() const { return unique_primary_; }
  /// Column indexes of the primary key.
  const std::vector<size_t>& primary_key_indexes() const { return pk_indexes_; }

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.num_fields(); }

  /// Cell accessor (no bounds checking beyond asserts).
  const types::Value& At(size_t row, size_t col) const { return columns_[col][row]; }

  /// Materializes one row.
  types::Row GetRow(size_t row) const;

  /// Appends a pre-validated row (values must already match column types).
  common::Status AppendRow(types::Row row);

  /// Appends many rows.
  common::Status AppendRows(std::vector<types::Row> rows);

  /// Appends pre-validated columnar data (values[c] is column c, all columns
  /// the same length). The columnar COPY commit path: one call appends an
  /// entire batch with no per-row re-validation.
  common::Status AppendColumns(std::vector<std::vector<types::Value>> values);

  /// Overwrites one row in place (used by committed updates).
  common::Status ReplaceRow(size_t row, types::Row values);

  /// Removes the rows whose indexes are listed (sorted ascending).
  common::Status RemoveRows(const std::vector<size_t>& sorted_rows);

  /// Removes all rows.
  void Truncate();

  /// Approximate bytes held by the table (memory accounting).
  size_t MemoryBytes() const;

  /// Number of stored rows whose primary-key tuple equals `key` (values in
  /// primary_key_indexes() order). Answered from an incrementally maintained
  /// index, so uniqueness emulation costs O(staged log n) per statement
  /// instead of a full-table rescan. Always 0 when no unique primary key is
  /// declared (the index is not maintained).
  size_t PrimaryKeyCount(const types::Row& key) const;

 private:
  /// Lexicographic tuple ordering on Value::Compare, for the key index.
  struct KeyLess {
    bool operator()(const types::Row& a, const types::Row& b) const;
  };

  bool IndexedKeys() const { return unique_primary_ && !pk_indexes_.empty(); }
  types::Row KeyOfStored(size_t row) const;
  void IndexInsert(types::Row key);
  void IndexErase(const types::Row& key);

  std::string name_;
  types::Schema schema_;
  std::vector<std::string> primary_key_;
  bool unique_primary_;
  std::vector<size_t> pk_indexes_;
  std::vector<std::vector<types::Value>> columns_;
  size_t num_rows_ = 0;
  /// Multiset of stored primary-key tuples (key -> occurrence count). The
  /// table itself never rejects duplicates (constraints are metadata only,
  /// see the file comment); the count is what lets the executor emulate
  /// enforcement without scanning.
  std::map<types::Row, size_t, KeyLess> pk_index_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace hyperq::cdw
