#include "cdw/executor.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/string_util.h"
#include "sql/parser.h"

namespace hyperq::cdw {

using common::EqualsIgnoreCase;
using common::Result;
using common::Status;
using sql::ExprKind;
using sql::SelectStmt;
using types::Row;
using types::Schema;
using types::TypeDesc;
using types::Value;

namespace {

/// Lexicographic row comparator built on Value::Compare (DISTINCT, GROUP BY).
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// A scan source: table plus the alias it is visible under.
struct Source {
  std::string alias;
  TablePtr table;
};

Result<Source> BindSource(Catalog* catalog, const sql::TableRef& ref) {
  HQ_ASSIGN_OR_RETURN(TablePtr table, catalog->GetTable(ref.name));
  Source src;
  src.alias = ref.alias.empty() ? ref.name : ref.alias;
  src.table = std::move(table);
  return src;
}

/// Builds an EvalContext over a combined row: one binding per source.
EvalContext MakeContext(const std::vector<Source>& sources, const std::vector<Row>& rows) {
  EvalContext ctx;
  for (size_t i = 0; i < sources.size(); ++i) {
    ctx.AddBinding(sources[i].alias, &sources[i].table->schema(), &rows[i]);
  }
  return ctx;
}

Result<bool> PredicateTrue(const sql::Expr* where, const EvalContext& ctx) {
  if (where == nullptr) return true;
  HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*where, ctx));
  if (v.is_null()) return false;
  if (!v.is_boolean()) return Status::TypeError("WHERE predicate is not boolean");
  return v.boolean();
}

/// Key of the declared unique primary key for one row.
Row PrimaryKeyOf(const Table& table, const Row& row) {
  Row key;
  key.reserve(table.primary_key_indexes().size());
  for (size_t idx : table.primary_key_indexes()) key.push_back(row[idx]);
  return key;
}

/// Same, reading the key columns straight from storage (no full-row copy).
Row PrimaryKeyOfStored(const Table& table, size_t row) {
  Row key;
  key.reserve(table.primary_key_indexes().size());
  for (size_t idx : table.primary_key_indexes()) key.push_back(table.At(row, idx));
  return key;
}

/// Validates + coerces a row against a table schema (set-oriented: any error
/// aborts the caller's statement). NOTE: the error message intentionally
/// carries no row identification — cloud warehouses report bulk failures at
/// statement granularity.
Result<Row> CoerceRowToTable(const Table& table, const Row& row) {
  if (row.size() != table.schema().num_fields()) {
    return Status::Invalid("value count does not match column count of " + table.name());
  }
  Row out;
  out.reserve(row.size());
  for (size_t c = 0; c < row.size(); ++c) {
    const types::Field& field = table.schema().field(c);
    HQ_ASSIGN_OR_RETURN(Value v, types::CastValue(row[c], field.type));
    if (v.is_null() && !field.nullable) {
      return Status::ConversionError("NULL value in NOT NULL column " + field.name + " of " +
                                     table.name());
    }
    out.push_back(std::move(v));
  }
  return out;
}

/// Reorders an insert row according to an explicit column list; absent
/// columns become NULL.
Result<Row> ApplyColumnList(const Table& table, const std::vector<std::string>& columns,
                            Row values) {
  if (columns.empty()) return values;
  if (values.size() != columns.size()) {
    return Status::Invalid("value count does not match column list");
  }
  Row out(table.schema().num_fields(), Value::Null());
  for (size_t i = 0; i < columns.size(); ++i) {
    HQ_ASSIGN_OR_RETURN(size_t idx, table.schema().RequireFieldIndex(columns[i]));
    out[idx] = std::move(values[i]);
  }
  return out;
}

/// Uniqueness emulation: verifies declared unique PK over existing + staged
/// rows. Aborts with a chunk-level ConstraintViolation, no tuple identified.
Status CheckUniqueness(const Table& table, const std::vector<Row>& staged_rows,
                       const std::vector<size_t>* replaced_rows = nullptr) {
  if (!table.unique_primary() || table.primary_key_indexes().empty()) return Status::OK();
  // Keys freed by rows this statement is rewriting don't count as conflicts.
  std::map<Row, size_t, RowLess> freed;
  if (replaced_rows != nullptr) {
    for (size_t r : *replaced_rows) ++freed[PrimaryKeyOfStored(table, r)];
  }
  std::set<Row, RowLess> staged_keys;
  for (const auto& row : staged_rows) {
    Row key = PrimaryKeyOf(table, row);
    bool key_has_null = false;
    for (const auto& v : key) key_has_null |= v.is_null();
    if (key_has_null) continue;  // NULL keys never collide (SQL semantics)
    size_t stored = table.PrimaryKeyCount(key);
    auto it = freed.find(key);
    if (it != freed.end()) stored -= std::min(stored, it->second);
    if (stored != 0 || !staged_keys.insert(std::move(key)).second) {
      return Status::ConstraintViolation("duplicate unique primary key in table " + table.name());
    }
  }
  return Status::OK();
}

}  // namespace

Result<ExecResult> Executor::Execute(const sql::Statement& stmt, const ExecOptions& options) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      return ExecuteSelect(static_cast<const SelectStmt&>(stmt));
    case sql::StatementKind::kInsert:
      return ExecuteInsert(static_cast<const sql::InsertStmt&>(stmt), options);
    case sql::StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const sql::UpdateStmt&>(stmt), options);
    case sql::StatementKind::kDelete:
      return ExecuteDelete(static_cast<const sql::DeleteStmt&>(stmt));
    case sql::StatementKind::kMerge:
      return ExecuteMerge(static_cast<const sql::MergeStmt&>(stmt), options);
    case sql::StatementKind::kCreateTable:
      return ExecuteCreateTable(static_cast<const sql::CreateTableStmt&>(stmt));
    case sql::StatementKind::kDropTable:
      return ExecuteDropTable(static_cast<const sql::DropTableStmt&>(stmt));
  }
  return Status::Internal("unknown statement kind");
}

Result<ExecResult> Executor::ExecuteSql(std::string_view sql, const ExecOptions& options) {
  HQ_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
  return Execute(*stmt, options);
}

// --- SELECT -----------------------------------------------------------------

namespace {

/// Static output-type inference; falls back to VARCHAR for computed items.
TypeDesc InferItemType(const sql::Expr& expr, const std::vector<Source>& sources) {
  if (expr.kind == ExprKind::kColumnRef) {
    const auto& col = static_cast<const sql::ColumnRefExpr&>(expr);
    for (const auto& src : sources) {
      if (!col.table.empty() && !EqualsIgnoreCase(src.alias, col.table)) continue;
      int idx = src.table->schema().FieldIndex(col.column);
      if (idx >= 0) return src.table->schema().field(static_cast<size_t>(idx)).type;
    }
  }
  if (expr.kind == ExprKind::kCast) {
    return static_cast<const sql::CastExpr&>(expr).target;
  }
  if (expr.kind == ExprKind::kFunction) {
    const auto& fn = static_cast<const sql::FunctionExpr&>(expr);
    if (EqualsIgnoreCase(fn.name, "COUNT")) return TypeDesc::Int64();
    if (EqualsIgnoreCase(fn.name, "TO_DATE")) return TypeDesc::Date();
    if (EqualsIgnoreCase(fn.name, "LENGTH") || EqualsIgnoreCase(fn.name, "POSITION")) {
      return TypeDesc::Int64();
    }
  }
  if (expr.kind == ExprKind::kLiteral) {
    const Value& v = static_cast<const sql::LiteralExpr&>(expr).value;
    if (v.is_int()) return TypeDesc::Int64();
    if (v.is_float()) return TypeDesc::Float64();
    if (v.is_date()) return TypeDesc::Date();
    if (v.is_boolean()) return TypeDesc::Boolean();
  }
  return TypeDesc::Varchar(0);
}

std::string ItemName(const sql::SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) {
    return static_cast<const sql::ColumnRefExpr&>(*item.expr).column;
  }
  return "EXPR_" + std::to_string(index + 1);
}

/// Evaluates an expression in aggregate context: aggregate calls compute over
/// the group's combined rows; other column refs bind to the group's first row.
Result<Value> EvaluateWithAggregates(const sql::Expr& expr, const std::vector<Source>& sources,
                                     const std::vector<std::vector<Row>>& group_rows) {
  if (expr.kind == ExprKind::kFunction) {
    const auto& fn = static_cast<const sql::FunctionExpr&>(expr);
    if (IsAggregateFunction(fn.name)) {
      const bool is_count = EqualsIgnoreCase(fn.name, "COUNT");
      const bool count_star =
          is_count && fn.args.size() == 1 && fn.args[0]->kind == ExprKind::kStar;
      if (fn.args.size() != 1) return Status::Invalid(fn.name + " takes one argument");
      std::vector<Value> inputs;
      inputs.reserve(group_rows.size());
      std::set<Row, RowLess> distinct_seen;
      for (const auto& combined : group_rows) {
        if (count_star) {
          inputs.push_back(Value::Int(1));
          continue;
        }
        EvalContext ctx = MakeContext(sources, combined);
        HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*fn.args[0], ctx));
        if (v.is_null()) continue;  // aggregates skip NULLs
        if (fn.distinct) {
          Row key{v};
          if (!distinct_seen.insert(key).second) continue;
        }
        inputs.push_back(std::move(v));
      }
      if (is_count) return Value::Int(static_cast<int64_t>(inputs.size()));
      if (inputs.empty()) return Value::Null();
      if (EqualsIgnoreCase(fn.name, "MIN") || EqualsIgnoreCase(fn.name, "MAX")) {
        const bool want_max = EqualsIgnoreCase(fn.name, "MAX");
        Value best = inputs[0];
        for (size_t i = 1; i < inputs.size(); ++i) {
          int c = inputs[i].Compare(best);
          if ((want_max && c > 0) || (!want_max && c < 0)) best = inputs[i];
        }
        return best;
      }
      // SUM / AVG.
      double total = 0;
      bool all_int = true;
      int64_t int_total = 0;
      for (const auto& v : inputs) {
        if (v.is_int()) {
          int_total += v.int_value();
          total += static_cast<double>(v.int_value());
        } else if (v.is_float()) {
          all_int = false;
          total += v.float_value();
        } else if (v.is_decimal()) {
          all_int = false;
          total += v.decimal_value().ToDouble();
        } else {
          return Status::TypeError(fn.name + " over non-numeric values");
        }
      }
      if (EqualsIgnoreCase(fn.name, "SUM")) {
        return all_int ? Value::Int(int_total) : Value::Float(total);
      }
      return Value::Float(total / static_cast<double>(inputs.size()));
    }
    // Non-aggregate function: recurse so nested aggregates work.
    auto copy = std::make_unique<sql::FunctionExpr>();
    copy->name = fn.name;
    copy->distinct = fn.distinct;
    for (const auto& a : fn.args) {
      HQ_ASSIGN_OR_RETURN(Value v, EvaluateWithAggregates(*a, sources, group_rows));
      copy->args.push_back(std::make_unique<sql::LiteralExpr>(std::move(v)));
    }
    EvalContext empty;
    return EvaluateExpr(*copy, empty);
  }
  if (!ContainsAggregate(expr)) {
    if (group_rows.empty()) return Value::Null();
    EvalContext ctx = MakeContext(sources, group_rows[0]);
    return EvaluateExpr(expr, ctx);
  }
  // Composite expression containing aggregates: rebuild with aggregate
  // results folded in as literals. Only the composite kinds are rebuilt;
  // every leaf kind is handled by the single-row evaluation below.
  switch (expr.kind) {  // hqcheck:allow(enum-switch)
    case ExprKind::kUnary: {
      const auto& u = static_cast<const sql::UnaryExpr&>(expr);
      HQ_ASSIGN_OR_RETURN(Value v, EvaluateWithAggregates(*u.operand, sources, group_rows));
      sql::UnaryExpr lifted(u.op, std::make_unique<sql::LiteralExpr>(std::move(v)));
      EvalContext empty;
      return EvaluateExpr(lifted, empty);
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      HQ_ASSIGN_OR_RETURN(Value l, EvaluateWithAggregates(*b.left, sources, group_rows));
      HQ_ASSIGN_OR_RETURN(Value r, EvaluateWithAggregates(*b.right, sources, group_rows));
      sql::BinaryExpr lifted(b.op, std::make_unique<sql::LiteralExpr>(std::move(l)),
                             std::make_unique<sql::LiteralExpr>(std::move(r)));
      EvalContext empty;
      return EvaluateExpr(lifted, empty);
    }
    case ExprKind::kCast: {
      const auto& c = static_cast<const sql::CastExpr&>(expr);
      HQ_ASSIGN_OR_RETURN(Value v, EvaluateWithAggregates(*c.operand, sources, group_rows));
      sql::CastExpr lifted(std::make_unique<sql::LiteralExpr>(std::move(v)), c.target, c.format);
      EvalContext empty;
      return EvaluateExpr(lifted, empty);
    }
    default:
      return Status::NotImplemented("aggregate inside this expression form");
  }
}

}  // namespace

Result<ExecResult> Executor::ExecuteSelect(const SelectStmt& stmt) {
  // FROM-less SELECT: evaluate items once against an empty context.
  std::vector<Source> sources;
  if (stmt.has_from) {
    HQ_ASSIGN_OR_RETURN(Source src, BindSource(catalog_, stmt.from));
    sources.push_back(std::move(src));
    for (const auto& join : stmt.joins) {
      HQ_ASSIGN_OR_RETURN(Source jsrc, BindSource(catalog_, join.table));
      sources.push_back(std::move(jsrc));
    }
  }

  // Expand stars into per-column items.
  std::vector<sql::SelectItem> items;
  for (const auto& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      if (sources.empty()) return Status::Invalid("SELECT * requires a FROM clause");
      for (const auto& src : sources) {
        for (const auto& f : src.table->schema().fields()) {
          sql::SelectItem expanded;
          expanded.expr = std::make_unique<sql::ColumnRefExpr>(src.alias, f.name);
          expanded.alias = f.name;
          items.push_back(std::move(expanded));
        }
      }
    } else {
      sql::SelectItem copy;
      copy.expr = item.expr->Clone();
      copy.alias = item.alias;
      items.push_back(std::move(copy));
    }
  }

  ExecResult result;
  bool has_aggregates = !stmt.group_by.empty();
  for (const auto& item : items) has_aggregates |= ContainsAggregate(*item.expr);

  // Output schema.
  for (size_t i = 0; i < items.size(); ++i) {
    result.schema.AddField(
        types::Field(ItemName(items[i], i), InferItemType(*items[i].expr, sources)));
  }

  // Fast path: single-table (or table-less) scan without aggregation streams
  // rows straight into the result — this is the shape of every staged DML
  // SELECT, so it must not materialize the whole table.
  if (sources.size() <= 1 && !has_aggregates) {
    const Table* table = sources.empty() ? nullptr : sources[0].table.get();
    const size_t scan_rows = table != nullptr ? table->num_rows() : 1;
    Row current;
    for (size_t r = 0; r < scan_rows; ++r) {
      EvalContext ctx;
      if (table != nullptr) {
        current = table->GetRow(r);
        ctx.AddBinding(sources[0].alias, &table->schema(), &current);
      }
      HQ_ASSIGN_OR_RETURN(bool keep, PredicateTrue(stmt.where.get(), ctx));
      if (!keep) continue;
      Row out;
      out.reserve(items.size());
      for (const auto& item : items) {
        HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*item.expr, ctx));
        out.push_back(std::move(v));
      }
      result.rows.push_back(std::move(out));
    }
    HQ_RETURN_NOT_OK(FinishSelect(stmt, &result));
    return result;
  }

  // Materialize the (joined) working set of combined rows.
  std::vector<std::vector<Row>> working;
  if (sources.empty()) {
    working.emplace_back();  // one empty combined row
  } else {
    // Nested-loop join with per-level ON filtering.
    std::vector<Row> combined(sources.size());
    // Recursive lambda over join levels.
    std::function<Result<bool>(size_t)> descend = [&](size_t level) -> Result<bool> {
      if (level == sources.size()) {
        working.push_back(combined);
        return true;
      }
      const Table& table = *sources[level].table;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        combined[level] = table.GetRow(r);
        if (level > 0) {
          // Evaluate this join's ON with bindings visible so far.
          EvalContext ctx;
          for (size_t i = 0; i <= level; ++i) {
            ctx.AddBinding(sources[i].alias, &sources[i].table->schema(), &combined[i]);
          }
          HQ_ASSIGN_OR_RETURN(bool ok, PredicateTrue(stmt.joins[level - 1].on.get(), ctx));
          if (!ok) continue;
        }
        HQ_ASSIGN_OR_RETURN(bool cont, descend(level + 1));
        if (!cont) return false;
      }
      return true;
    };
    HQ_RETURN_NOT_OK(descend(0).status());
  }

  // WHERE.
  std::vector<std::vector<Row>> filtered;
  filtered.reserve(working.size());
  for (auto& combined : working) {
    EvalContext ctx = MakeContext(sources, combined);
    HQ_ASSIGN_OR_RETURN(bool keep, PredicateTrue(stmt.where.get(), ctx));
    if (keep) filtered.push_back(std::move(combined));
  }

  if (has_aggregates) {
    std::map<Row, std::vector<std::vector<Row>>, RowLess> groups;
    if (stmt.group_by.empty()) {
      groups[Row{}] = std::move(filtered);
    } else {
      for (auto& combined : filtered) {
        EvalContext ctx = MakeContext(sources, combined);
        Row key;
        key.reserve(stmt.group_by.size());
        for (const auto& g : stmt.group_by) {
          HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*g, ctx));
          key.push_back(std::move(v));
        }
        groups[std::move(key)].push_back(std::move(combined));
      }
    }
    for (const auto& [key, group_rows] : groups) {
      if (stmt.having) {
        HQ_ASSIGN_OR_RETURN(Value h, EvaluateWithAggregates(*stmt.having, sources, group_rows));
        if (!(h.is_boolean() && h.boolean())) continue;
      }
      Row out;
      out.reserve(items.size());
      for (const auto& item : items) {
        HQ_ASSIGN_OR_RETURN(Value v, EvaluateWithAggregates(*item.expr, sources, group_rows));
        out.push_back(std::move(v));
      }
      result.rows.push_back(std::move(out));
    }
  } else {
    result.rows.reserve(filtered.size());
    for (const auto& combined : filtered) {
      EvalContext ctx = MakeContext(sources, combined);
      Row out;
      out.reserve(items.size());
      for (const auto& item : items) {
        HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*item.expr, ctx));
        out.push_back(std::move(v));
      }
      result.rows.push_back(std::move(out));
    }
  }

  HQ_RETURN_NOT_OK(FinishSelect(stmt, &result));
  return result;
}

// DISTINCT / ORDER BY / LIMIT tail shared by the scan and join paths.
Status Executor::FinishSelect(const SelectStmt& stmt, ExecResult* result_out) {
  ExecResult& result = *result_out;
  if (stmt.distinct) {
    std::set<Row, RowLess> seen;
    std::vector<Row> unique;
    for (auto& row : result.rows) {
      if (seen.insert(row).second) unique.push_back(std::move(row));
    }
    result.rows = std::move(unique);
  }

  if (!stmt.order_by.empty()) {
    // Evaluate sort keys; order keys computed against the *output* row when
    // the expression is a plain output column, otherwise re-evaluated is not
    // possible post-projection — we map output-name references; positional
    // literals (ORDER BY 1) also supported.
    struct Keyed {
      Row keys;
      Row row;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(result.rows.size());
    for (auto& row : result.rows) {
      Row keys;
      for (const auto& o : stmt.order_by) {
        if (o.expr->kind == ExprKind::kLiteral) {
          const Value& v = static_cast<const sql::LiteralExpr&>(*o.expr).value;
          if (v.is_int() && v.int_value() >= 1 &&
              v.int_value() <= static_cast<int64_t>(row.size())) {
            keys.push_back(row[static_cast<size_t>(v.int_value() - 1)]);
            continue;
          }
        }
        if (o.expr->kind == ExprKind::kColumnRef) {
          const auto& col = static_cast<const sql::ColumnRefExpr&>(*o.expr);
          int idx = result.schema.FieldIndex(col.column);
          if (idx >= 0) {
            keys.push_back(row[static_cast<size_t>(idx)]);
            continue;
          }
        }
        return Status::NotImplemented(
            "ORDER BY expression must be an output column or position");
      }
      keyed.push_back(Keyed{std::move(keys), std::move(row)});
    }
    std::stable_sort(keyed.begin(), keyed.end(), [&](const Keyed& a, const Keyed& b) {
      for (size_t i = 0; i < stmt.order_by.size(); ++i) {
        int c = a.keys[i].Compare(b.keys[i]);
        if (c != 0) return stmt.order_by[i].descending ? c > 0 : c < 0;
      }
      return false;
    });
    result.rows.clear();
    for (auto& k : keyed) result.rows.push_back(std::move(k.row));
  }

  if (stmt.top >= 0 && result.rows.size() > static_cast<size_t>(stmt.top)) {
    result.rows.resize(static_cast<size_t>(stmt.top));
  }
  return Status::OK();
}

// --- INSERT -----------------------------------------------------------------

Result<ExecResult> Executor::ExecuteInsert(const sql::InsertStmt& stmt,
                                           const ExecOptions& options) {
  HQ_ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(stmt.table));
  std::vector<Row> staged;

  if (stmt.select) {
    HQ_ASSIGN_OR_RETURN(ExecResult select_result, ExecuteSelect(*stmt.select));
    staged.reserve(select_result.rows.size());
    for (auto& row : select_result.rows) {
      HQ_ASSIGN_OR_RETURN(Row positioned, ApplyColumnList(*table, stmt.columns, std::move(row)));
      HQ_ASSIGN_OR_RETURN(Row coerced, CoerceRowToTable(*table, positioned));
      staged.push_back(std::move(coerced));
    }
  } else {
    EvalContext empty;
    for (const auto& exprs : stmt.rows) {
      Row values;
      values.reserve(exprs.size());
      for (const auto& e : exprs) {
        HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e, empty));
        values.push_back(std::move(v));
      }
      HQ_ASSIGN_OR_RETURN(Row positioned, ApplyColumnList(*table, stmt.columns, std::move(values)));
      HQ_ASSIGN_OR_RETURN(Row coerced, CoerceRowToTable(*table, positioned));
      staged.push_back(std::move(coerced));
    }
  }

  if (options.enforce_unique_primary) {
    HQ_RETURN_NOT_OK(CheckUniqueness(*table, staged));
  }
  size_t count = staged.size();
  HQ_RETURN_NOT_OK(table->AppendRows(std::move(staged)));
  ExecResult result;
  result.rows_inserted = count;
  return result;
}

// --- UPDATE -----------------------------------------------------------------

Result<ExecResult> Executor::ExecuteUpdate(const sql::UpdateStmt& stmt,
                                           const ExecOptions& options) {
  if (stmt.has_else_insert) {
    return Status::NotImplemented(
        "UPDATE ... ELSE INSERT is a legacy-EDW construct the CDW does not support (requires "
        "Hyper-Q transpilation into MERGE)");
  }
  HQ_ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(stmt.table.name));
  std::string target_alias = stmt.table.alias.empty() ? stmt.table.name : stmt.table.alias;

  TablePtr from_table;
  std::string from_alias;
  if (stmt.has_from) {
    HQ_ASSIGN_OR_RETURN(from_table, catalog_->GetTable(stmt.from.name));
    from_alias = stmt.from.alias.empty() ? stmt.from.name : stmt.from.alias;
  }

  // Resolve assignment targets.
  std::vector<size_t> assign_cols;
  for (const auto& a : stmt.assignments) {
    HQ_ASSIGN_OR_RETURN(size_t idx, table->schema().RequireFieldIndex(a.column));
    assign_cols.push_back(idx);
  }

  // Stage: row index -> new full row.
  std::vector<std::pair<size_t, Row>> staged;
  std::vector<size_t> touched_rows;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    Row target_row = table->GetRow(r);
    bool matched = false;
    Row new_row;
    auto try_source = [&](const Row* source_row) -> Status {
      EvalContext ctx;
      ctx.AddBinding(target_alias, &table->schema(), &target_row);
      if (source_row != nullptr) {
        ctx.AddBinding(from_alias, &from_table->schema(), source_row);
      }
      HQ_ASSIGN_OR_RETURN(bool ok, PredicateTrue(stmt.where.get(), ctx));
      if (!ok) return Status::OK();
      matched = true;
      new_row = target_row;
      for (size_t i = 0; i < stmt.assignments.size(); ++i) {
        HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*stmt.assignments[i].value, ctx));
        const types::Field& field = table->schema().field(assign_cols[i]);
        HQ_ASSIGN_OR_RETURN(Value coerced, types::CastValue(v, field.type));
        if (coerced.is_null() && !field.nullable) {
          return Status::ConversionError("NULL value in NOT NULL column " + field.name);
        }
        new_row[assign_cols[i]] = std::move(coerced);
      }
      return Status::OK();
    };
    if (from_table) {
      for (size_t s = 0; s < from_table->num_rows() && !matched; ++s) {
        Row source_row = from_table->GetRow(s);
        HQ_RETURN_NOT_OK(try_source(&source_row));
      }
    } else {
      HQ_RETURN_NOT_OK(try_source(nullptr));
    }
    if (matched) {
      staged.emplace_back(r, std::move(new_row));
      touched_rows.push_back(r);
    }
  }

  if (options.enforce_unique_primary && table->unique_primary()) {
    std::vector<Row> new_rows;
    new_rows.reserve(staged.size());
    for (const auto& [r, row] : staged) new_rows.push_back(row);
    HQ_RETURN_NOT_OK(CheckUniqueness(*table, new_rows, &touched_rows));
  }

  for (auto& [r, row] : staged) {
    HQ_RETURN_NOT_OK(table->ReplaceRow(r, std::move(row)));
  }
  ExecResult result;
  result.rows_updated = staged.size();
  return result;
}

// --- DELETE -----------------------------------------------------------------

Result<ExecResult> Executor::ExecuteDelete(const sql::DeleteStmt& stmt) {
  HQ_ASSIGN_OR_RETURN(TablePtr table, catalog_->GetTable(stmt.table.name));
  std::string target_alias = stmt.table.alias.empty() ? stmt.table.name : stmt.table.alias;

  TablePtr using_table;
  std::string using_alias;
  if (stmt.has_using) {
    HQ_ASSIGN_OR_RETURN(using_table, catalog_->GetTable(stmt.using_table.name));
    using_alias = stmt.using_table.alias.empty() ? stmt.using_table.name : stmt.using_table.alias;
  }

  std::vector<size_t> doomed;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    Row target_row = table->GetRow(r);
    bool matched = false;
    if (using_table) {
      for (size_t s = 0; s < using_table->num_rows() && !matched; ++s) {
        Row source_row = using_table->GetRow(s);
        EvalContext ctx;
        ctx.AddBinding(target_alias, &table->schema(), &target_row);
        ctx.AddBinding(using_alias, &using_table->schema(), &source_row);
        HQ_ASSIGN_OR_RETURN(matched, PredicateTrue(stmt.where.get(), ctx));
      }
    } else {
      EvalContext ctx;
      ctx.AddBinding(target_alias, &table->schema(), &target_row);
      HQ_ASSIGN_OR_RETURN(matched, PredicateTrue(stmt.where.get(), ctx));
    }
    if (matched) doomed.push_back(r);
  }
  HQ_RETURN_NOT_OK(table->RemoveRows(doomed));
  ExecResult result;
  result.rows_deleted = doomed.size();
  return result;
}

// --- MERGE ------------------------------------------------------------------

Result<ExecResult> Executor::ExecuteMerge(const sql::MergeStmt& stmt, const ExecOptions& options) {
  HQ_ASSIGN_OR_RETURN(TablePtr target, catalog_->GetTable(stmt.target.name));
  HQ_ASSIGN_OR_RETURN(TablePtr source, catalog_->GetTable(stmt.source.name));
  std::string target_alias = stmt.target.alias.empty() ? stmt.target.name : stmt.target.alias;
  std::string source_alias = stmt.source.alias.empty() ? stmt.source.name : stmt.source.alias;

  // Snapshot of target rows for matching (MERGE matches pre-statement state).
  const size_t target_rows_before = target->num_rows();

  std::vector<size_t> update_cols;
  for (const auto& a : stmt.matched_update) {
    HQ_ASSIGN_OR_RETURN(size_t idx, target->schema().RequireFieldIndex(a.column));
    update_cols.push_back(idx);
  }

  std::vector<std::pair<size_t, Row>> staged_updates;
  std::vector<size_t> touched_rows;
  std::vector<Row> staged_inserts;

  for (size_t s = 0; s < source->num_rows(); ++s) {
    Row source_row = source->GetRow(s);
    if (stmt.source_filter) {
      EvalContext filter_ctx;
      filter_ctx.AddBinding(source_alias, &source->schema(), &source_row);
      HQ_ASSIGN_OR_RETURN(bool pass, PredicateTrue(stmt.source_filter.get(), filter_ctx));
      if (!pass) continue;
    }
    int matched_target = -1;
    for (size_t t = 0; t < target_rows_before; ++t) {
      Row target_row = target->GetRow(t);
      EvalContext ctx;
      ctx.AddBinding(target_alias, &target->schema(), &target_row);
      ctx.AddBinding(source_alias, &source->schema(), &source_row);
      HQ_ASSIGN_OR_RETURN(bool on, PredicateTrue(stmt.on.get(), ctx));
      if (on) {
        if (matched_target >= 0) {
          return Status::Invalid("MERGE source row matches multiple target rows");
        }
        matched_target = static_cast<int>(t);
      }
    }
    if (matched_target >= 0) {
      if (stmt.matched_update.empty()) continue;
      Row target_row = target->GetRow(static_cast<size_t>(matched_target));
      EvalContext ctx;
      ctx.AddBinding(target_alias, &target->schema(), &target_row);
      ctx.AddBinding(source_alias, &source->schema(), &source_row);
      Row new_row = target_row;
      for (size_t i = 0; i < stmt.matched_update.size(); ++i) {
        HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*stmt.matched_update[i].value, ctx));
        const types::Field& field = target->schema().field(update_cols[i]);
        HQ_ASSIGN_OR_RETURN(Value coerced, types::CastValue(v, field.type));
        if (coerced.is_null() && !field.nullable) {
          return Status::ConversionError("NULL value in NOT NULL column " + field.name);
        }
        new_row[update_cols[i]] = std::move(coerced);
      }
      staged_updates.emplace_back(static_cast<size_t>(matched_target), std::move(new_row));
      touched_rows.push_back(static_cast<size_t>(matched_target));
    } else {
      if (stmt.insert_values.empty()) continue;
      EvalContext ctx;
      ctx.AddBinding(source_alias, &source->schema(), &source_row);
      Row values;
      values.reserve(stmt.insert_values.size());
      for (const auto& e : stmt.insert_values) {
        HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e, ctx));
        values.push_back(std::move(v));
      }
      HQ_ASSIGN_OR_RETURN(Row positioned,
                          ApplyColumnList(*target, stmt.insert_columns, std::move(values)));
      HQ_ASSIGN_OR_RETURN(Row coerced, CoerceRowToTable(*target, positioned));
      staged_inserts.push_back(std::move(coerced));
    }
  }

  if (options.enforce_unique_primary && target->unique_primary()) {
    std::vector<Row> all_new;
    for (const auto& [r, row] : staged_updates) all_new.push_back(row);
    for (const auto& row : staged_inserts) all_new.push_back(row);
    std::sort(touched_rows.begin(), touched_rows.end());
    HQ_RETURN_NOT_OK(CheckUniqueness(*target, all_new, &touched_rows));
  }

  for (auto& [r, row] : staged_updates) {
    HQ_RETURN_NOT_OK(target->ReplaceRow(r, std::move(row)));
  }
  size_t inserted = staged_inserts.size();
  HQ_RETURN_NOT_OK(target->AppendRows(std::move(staged_inserts)));

  ExecResult result;
  result.rows_updated = staged_updates.size();
  result.rows_inserted = inserted;
  return result;
}

// --- DDL --------------------------------------------------------------------

Result<ExecResult> Executor::ExecuteCreateTable(const sql::CreateTableStmt& stmt) {
  HQ_RETURN_NOT_OK(catalog_
                       ->CreateTable(stmt.table, stmt.schema, stmt.primary_key,
                                     stmt.unique_primary, stmt.if_not_exists)
                       .status());
  return ExecResult{};
}

Result<ExecResult> Executor::ExecuteDropTable(const sql::DropTableStmt& stmt) {
  HQ_RETURN_NOT_OK(catalog_->DropTable(stmt.table, stmt.if_exists));
  return ExecResult{};
}

}  // namespace hyperq::cdw
