#include "cdw/staging_format.h"

#include <cstring>

namespace hyperq::cdw {

using common::ByteBuffer;
using common::Result;
using common::Slice;
using common::Status;

namespace {

// SWAR byte search: a lane of (w ^ broadcast(b)) is zero exactly where w has
// byte b, and the zero-lane trick ((x - kOnes) & ~x & kHighs) raises that
// lane's high bit.
constexpr uint64_t kOnes = 0x0101010101010101ull;
constexpr uint64_t kHighs = 0x8080808080808080ull;

inline uint64_t MatchByte(uint64_t w, uint64_t broadcast) {
  const uint64_t x = w ^ broadcast;
  return (x - kOnes) & ~x & kHighs;
}

/// Lane index (0-7) of the lowest-ADDRESSED match in `mask`, for a word
/// memcpy'd straight from memory.
inline size_t FirstLane(uint64_t mask) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return (63u - static_cast<size_t>(__builtin_clzll(mask))) >> 3;
#else
  return static_cast<size_t>(__builtin_ctzll(mask)) >> 3;
#endif
}

}  // namespace

std::string_view StagingFormatName(StagingFormat format) {
  return format == StagingFormat::kBinary ? "binary" : "csv";
}

std::string_view StagingFileExtension(StagingFormat format) {
  return format == StagingFormat::kBinary ? ".hqb" : ".csv";
}

void EncodeCsvRecord(const CsvRecord& record, const CsvOptions& options, ByteBuffer* out) {
  for (size_t i = 0; i < record.size(); ++i) {
    if (i != 0) out->AppendByte(static_cast<uint8_t>(options.delimiter));
    const CsvField& field = record[i];
    if (!field.has_value()) continue;  // NULL: empty unquoted
    const std::string& text = *field;
    bool needs_quotes = text.empty();  // empty string must differ from NULL
    for (char c : text) {
      if (c == options.delimiter || c == '"' || c == '\n' || c == '\r') {
        needs_quotes = true;
        break;
      }
    }
    if (!needs_quotes) {
      out->AppendString(text);
    } else {
      out->AppendByte('"');
      for (char c : text) {
        if (c == '"') out->AppendByte('"');
        out->AppendByte(static_cast<uint8_t>(c));
      }
      out->AppendByte('"');
    }
  }
  out->AppendByte('\n');
}

void CsvStreamReader::AppendChar(size_t i) {
  if (!field_dirty_) {
    if (clean_len_ == 0) {
      clean_begin_ = i;
      clean_len_ = 1;
      return;
    }
    if (clean_begin_ + clean_len_ == i) {  // still one contiguous input run
      ++clean_len_;
      return;
    }
    // The field's bytes stopped being contiguous in the input (an escape or
    // skipped character intervened): fall back to the scratch buffer.
    field_dirty_ = true;
    scratch_start_ = scratch_.size();
    scratch_.append(reinterpret_cast<const char*>(data_.data()) + clean_begin_, clean_len_);
  }
  scratch_ += static_cast<char>(data_[i]);
}

void CsvStreamReader::AppendRun(size_t begin, size_t len) {
  if (len == 0) return;
  if (!field_dirty_) {
    if (clean_len_ == 0) {
      clean_begin_ = begin;
      clean_len_ = len;
      return;
    }
    if (clean_begin_ + clean_len_ == begin) {  // still one contiguous input run
      clean_len_ += len;
      return;
    }
    field_dirty_ = true;
    scratch_start_ = scratch_.size();
    scratch_.append(reinterpret_cast<const char*>(data_.data()) + clean_begin_, clean_len_);
  }
  scratch_.append(reinterpret_cast<const char*>(data_.data()) + begin, len);
}

size_t CsvStreamReader::ScanUnquoted(size_t from) const {
  const uint8_t* p = data_.data();
  const size_t n = data_.size();
  const uint64_t delim = kOnes * static_cast<uint8_t>(delimiter_);
  size_t i = from;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    const uint64_t m = MatchByte(w, delim) | MatchByte(w, kOnes * uint64_t{'\n'}) |
                       MatchByte(w, kOnes * uint64_t{'\r'}) |
                       MatchByte(w, kOnes * uint64_t{'"'});
    if (m != 0) return i + FirstLane(m);
  }
  for (; i < n; ++i) {
    const char c = static_cast<char>(p[i]);
    if (c == delimiter_ || c == '\n' || c == '\r' || c == '"') break;
  }
  return i;
}

size_t CsvStreamReader::ScanQuoted(size_t from) const {
  const uint8_t* p = data_.data();
  const size_t n = data_.size();
  size_t i = from;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    const uint64_t m = MatchByte(w, kOnes * uint64_t{'"'});
    if (m != 0) return i + FirstLane(m);
  }
  for (; i < n && p[i] != '"'; ++i) {
  }
  return i;
}

size_t CsvStreamReader::FieldLen() const {
  return field_dirty_ ? scratch_.size() - scratch_start_ : clean_len_;
}

void CsvStreamReader::EndField() {
  FieldSpan span;
  span.dirty = field_dirty_;
  span.quoted = field_quoted_;
  span.begin = field_dirty_ ? scratch_start_ : clean_begin_;
  span.len = FieldLen();
  fields_.push_back(span);
  field_quoted_ = false;
  field_dirty_ = false;
  clean_len_ = 0;
}

CsvFieldView CsvStreamReader::field(size_t i) const {
  const FieldSpan& span = fields_[i];
  CsvFieldView view;
  view.null = !span.quoted && span.len == 0;
  view.text = span.dirty
                  ? std::string_view(scratch_.data() + span.begin, span.len)
                  : std::string_view(reinterpret_cast<const char*>(data_.data()) + span.begin,
                                     span.len);
  return view;
}

Result<bool> CsvStreamReader::Next() {
  fields_.clear();
  scratch_.clear();
  bool in_quotes = false;
  bool any_field_ended = false;
  const size_t n = data_.size();

  while (pos_ < n) {
    if (swar_) {
      // Bulk-skip the run of ordinary bytes up to the next structural byte
      // (inside quotes only '"' is structural) eight bytes per probe, and
      // append the whole run at once; the per-byte dispatch below then only
      // ever sees structural bytes (or a literal mid-field '"').
      const size_t next = in_quotes ? ScanQuoted(pos_) : ScanUnquoted(pos_);
      if (next != pos_) {
        AppendRun(pos_, next - pos_);
        pos_ = next;
        if (pos_ >= n) break;
      }
    }
    char c = static_cast<char>(data_[pos_]);
    if (in_quotes) {
      if (c == '"') {
        if (pos_ + 1 < n && data_[pos_ + 1] == '"') {
          AppendChar(pos_);  // one literal '"' from the doubled pair
          pos_ += 2;
          continue;
        }
        in_quotes = false;
        ++pos_;
        continue;
      }
      AppendChar(pos_);
      ++pos_;
      continue;
    }
    if (c == '"' && FieldLen() == 0 && !field_quoted_) {
      in_quotes = true;
      field_quoted_ = true;
      ++pos_;
      continue;
    }
    if (c == delimiter_) {
      EndField();
      any_field_ended = true;
      ++pos_;
      continue;
    }
    if (c == '\n') {
      EndField();
      ++pos_;
      return true;
    }
    if (c == '\r') {  // tolerate CRLF
      ++pos_;
      continue;
    }
    AppendChar(pos_);
    ++pos_;
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  if (FieldLen() > 0 || field_quoted_ || any_field_ended) {
    EndField();  // final record without trailing newline
    return true;
  }
  return false;
}

Result<std::vector<CsvRecord>> ParseCsv(Slice data, const CsvOptions& options) {
  std::vector<CsvRecord> records;
  CsvStreamReader reader(data, options);
  while (true) {
    HQ_ASSIGN_OR_RETURN(bool more, reader.Next());
    if (!more) break;
    CsvRecord record;
    record.reserve(reader.num_fields());
    for (size_t i = 0; i < reader.num_fields(); ++i) {
      CsvFieldView f = reader.field(i);
      if (f.null) {
        record.push_back(std::nullopt);
      } else {
        record.push_back(std::string(f.text));
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace hyperq::cdw
