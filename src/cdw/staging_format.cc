#include "cdw/staging_format.h"

namespace hyperq::cdw {

using common::ByteBuffer;
using common::Result;
using common::Slice;
using common::Status;

void EncodeCsvRecord(const CsvRecord& record, const CsvOptions& options, ByteBuffer* out) {
  for (size_t i = 0; i < record.size(); ++i) {
    if (i != 0) out->AppendByte(static_cast<uint8_t>(options.delimiter));
    const CsvField& field = record[i];
    if (!field.has_value()) continue;  // NULL: empty unquoted
    const std::string& text = *field;
    bool needs_quotes = text.empty();  // empty string must differ from NULL
    for (char c : text) {
      if (c == options.delimiter || c == '"' || c == '\n' || c == '\r') {
        needs_quotes = true;
        break;
      }
    }
    if (!needs_quotes) {
      out->AppendString(text);
    } else {
      out->AppendByte('"');
      for (char c : text) {
        if (c == '"') out->AppendByte('"');
        out->AppendByte(static_cast<uint8_t>(c));
      }
      out->AppendByte('"');
    }
  }
  out->AppendByte('\n');
}

Result<std::vector<CsvRecord>> ParseCsv(Slice data, const CsvOptions& options) {
  std::vector<CsvRecord> records;
  CsvRecord current;
  std::string field;
  bool field_quoted = false;
  bool in_quotes = false;
  size_t i = 0;
  const size_t n = data.size();

  auto end_field = [&] {
    if (!field_quoted && field.empty()) {
      current.push_back(std::nullopt);  // NULL
    } else {
      current.push_back(std::move(field));
    }
    field.clear();
    field_quoted = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(current));
    current.clear();
  };

  while (i < n) {
    char c = static_cast<char>(data[i]);
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && data[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && field.empty() && !field_quoted) {
      in_quotes = true;
      field_quoted = true;
      ++i;
      continue;
    }
    if (c == options.delimiter) {
      end_field();
      ++i;
      continue;
    }
    if (c == '\n') {
      end_record();
      ++i;
      continue;
    }
    if (c == '\r') {  // tolerate CRLF
      ++i;
      continue;
    }
    field += c;
    ++i;
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  if (!field.empty() || field_quoted || !current.empty()) {
    end_record();  // final record without trailing newline
  }
  return records;
}

}  // namespace hyperq::cdw
