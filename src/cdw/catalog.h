#pragma once

#include <map>
#include <string>
#include <vector>

#include "cdw/table.h"
#include "common/result.h"
#include "common/sync.h"

/// \file catalog.h
/// Case-insensitive table catalog of the simulated CDW. Names may be
/// schema-qualified ("PROD.CUSTOMER"); lookups match the full dotted name.

namespace hyperq::cdw {

class Catalog {
 public:
  /// Creates a table; AlreadyExists unless `or_ignore`.
  common::Result<TablePtr> CreateTable(const std::string& name, types::Schema schema,
                                       std::vector<std::string> primary_key = {},
                                       bool unique_primary = false, bool or_ignore = false)
      HQ_EXCLUDES(mu_);

  common::Result<TablePtr> GetTable(const std::string& name) const HQ_EXCLUDES(mu_);
  bool HasTable(const std::string& name) const HQ_EXCLUDES(mu_);

  common::Status DropTable(const std::string& name, bool if_exists = false) HQ_EXCLUDES(mu_);

  std::vector<std::string> ListTables() const HQ_EXCLUDES(mu_);

 private:
  static std::string NormalizeName(const std::string& name);

  mutable common::Mutex mu_{common::LockRank::kCatalog, "cdw_catalog"};
  std::map<std::string, TablePtr> tables_ HQ_GUARDED_BY(mu_);
};

}  // namespace hyperq::cdw
