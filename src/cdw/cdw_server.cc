#include "cdw/cdw_server.h"

#include <chrono>
#include <thread>

namespace hyperq::cdw {

using common::Result;
using common::Status;

void CdwServer::PayStartupCost(int64_t micros) const {
  if (micros > 0) std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

Result<ExecResult> CdwServer::ExecuteSql(std::string_view sql, const ExecOptions& options) {
  PayStartupCost(options_.statement_startup_micros);
  std::lock_guard<std::mutex> lock(mu_);
  ++statements_executed_;
  return executor_.ExecuteSql(sql, options);
}

Result<ExecResult> CdwServer::Execute(const sql::Statement& stmt, const ExecOptions& options) {
  PayStartupCost(options_.statement_startup_micros);
  std::lock_guard<std::mutex> lock(mu_);
  ++statements_executed_;
  return executor_.Execute(stmt, options);
}

Result<uint64_t> CdwServer::CopyInto(const std::string& table_name, const std::string& prefix,
                                     const CopyOptions& options) {
  PayStartupCost(options_.copy_startup_micros);
  std::lock_guard<std::mutex> lock(mu_);
  HQ_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(table_name));
  return CopyFromStore(table.get(), *store_, prefix, options);
}

}  // namespace hyperq::cdw
