#include "cdw/cdw_server.h"

#include <chrono>
#include <thread>

#include "common/fault.h"

namespace hyperq::cdw {

using common::Result;
using common::Status;

CdwServer::CdwServer(cloud::ObjectStore* store, CdwServerOptions options)
    : store_(store), options_(options), executor_(&catalog_) {
  if (options_.metrics != nullptr) {
    statement_latency_ = options_.metrics->GetHistogram("cdw_statement_seconds");
    copy_latency_ = options_.metrics->GetHistogram("cdw_copy_seconds");
    statements_total_ = options_.metrics->GetCounter("cdw_statements_total");
    copies_total_ = options_.metrics->GetCounter("cdw_copies_total");
    copy_rows_total_ = options_.metrics->GetCounter("cdw_copy_rows_total");
    copy_binary_files_total_ = options_.metrics->GetCounter("hyperq_copy_binary_files_total");
    copy_binary_rows_total_ = options_.metrics->GetCounter("hyperq_copy_binary_rows_total");
    copy_binary_bytes_total_ = options_.metrics->GetCounter("hyperq_copy_binary_bytes_total");
    copy_csv_files_total_ = options_.metrics->GetCounter("hyperq_copy_csv_files_total");
    copy_csv_rows_total_ = options_.metrics->GetCounter("hyperq_copy_csv_rows_total");
    copy_csv_bytes_total_ = options_.metrics->GetCounter("hyperq_copy_csv_bytes_total");
  }
}

void CdwServer::PayStartupCost(int64_t micros) const {
  if (micros > 0) std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

Result<ExecResult> CdwServer::ExecuteSql(std::string_view sql, const ExecOptions& options) {
  // Injected exec faults always fire BEFORE execution, so retrying a failed
  // (possibly non-idempotent) DML statement is safe: a failed statement
  // never half-ran.
  HQ_RETURN_NOT_OK(common::FaultInjector::Global().Inject("cdw.exec"));
  obs::ScopedTimer timer(statement_latency_);
  if (statements_total_ != nullptr) statements_total_->Increment();
  PayStartupCost(options_.statement_startup_micros);
  common::MutexLock lock(&mu_);
  ++statements_executed_;
  return executor_.ExecuteSql(sql, options);
}

Result<ExecResult> CdwServer::Execute(const sql::Statement& stmt, const ExecOptions& options) {
  HQ_RETURN_NOT_OK(common::FaultInjector::Global().Inject("cdw.exec"));
  obs::ScopedTimer timer(statement_latency_);
  if (statements_total_ != nullptr) statements_total_->Increment();
  PayStartupCost(options_.statement_startup_micros);
  common::MutexLock lock(&mu_);
  ++statements_executed_;
  return executor_.Execute(stmt, options);
}

Result<uint64_t> CdwServer::CopyInto(const std::string& table_name, const std::string& prefix,
                                     const CopyOptions& options) {
  // error/torn fire before any work (the service rejected the COPY); drop
  // fires AFTER the COPY ran — the ack is lost, which is exactly the case
  // the idempotence ledger exists for.
  common::FaultDecision fault = common::FaultInjector::Global().Check("cdw.copy");
  if (fault.fired && fault.kind != common::FaultKind::kDrop && !fault.status.ok()) {
    return fault.status;
  }
  obs::ScopedTimer timer(copy_latency_);
  if (copies_total_ != nullptr) copies_total_->Increment();
  PayStartupCost(options_.copy_startup_micros);
  common::MutexLock lock(&mu_);
  HQ_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(table_name));
  std::map<std::string, uint64_t>& ledger = copied_objects_[table_name];
  CopyStats stats;
  Result<uint64_t> copied =
      CopyFromStore(table.get(), *store_, prefix, options, &ledger, &stats);
  if (copied.ok() && copy_binary_files_total_ != nullptr) {
    copy_binary_files_total_->Increment(stats.binary_files);
    copy_binary_rows_total_->Increment(stats.binary_rows);
    copy_binary_bytes_total_->Increment(stats.binary_bytes);
    copy_csv_files_total_->Increment(stats.csv_files);
    copy_csv_rows_total_->Increment(stats.csv_rows);
    copy_csv_bytes_total_->Increment(stats.csv_bytes);
  }
  if (copied.ok() && options_.copy_ledger_max_entries > 0) {
    // Oldest-key-first eviction; see CdwServerOptions::copy_ledger_max_entries
    // for why key order is commit order for the callers that set a cap.
    while (ledger.size() > options_.copy_ledger_max_entries) {
      ledger.erase(ledger.begin());
    }
  }
  if (copied.ok() && copy_rows_total_ != nullptr) copy_rows_total_->Increment(*copied);
  if (copied.ok() && fault.fired && fault.kind == common::FaultKind::kDrop) {
    return fault.status;
  }
  return copied;
}

void CdwServer::ForgetCopies(const std::string& table_name) {
  common::MutexLock lock(&mu_);
  copied_objects_.erase(table_name);
}

void CdwServer::ForgetCopiesWithPrefix(const std::string& table_name,
                                       const std::string& key_prefix) {
  common::MutexLock lock(&mu_);
  auto it = copied_objects_.find(table_name);
  if (it == copied_objects_.end()) return;
  std::map<std::string, uint64_t>& ledger = it->second;
  auto entry = ledger.lower_bound(key_prefix);
  while (entry != ledger.end() && entry->first.compare(0, key_prefix.size(), key_prefix) == 0) {
    entry = ledger.erase(entry);
  }
  if (ledger.empty()) copied_objects_.erase(it);
}

size_t CdwServer::CopyLedgerSize(const std::string& table_name) const {
  common::MutexLock lock(&mu_);
  auto it = copied_objects_.find(table_name);
  return it == copied_objects_.end() ? 0 : it->second.size();
}

uint64_t CdwServer::statements_executed() const {
  common::MutexLock lock(&mu_);
  return statements_executed_;
}

}  // namespace hyperq::cdw
