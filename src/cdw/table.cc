#include "cdw/table.h"

#include <algorithm>

namespace hyperq::cdw {

using common::Status;
using types::Row;
using types::Value;

Table::Table(std::string name, types::Schema schema, std::vector<std::string> primary_key,
             bool unique_primary)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      primary_key_(std::move(primary_key)),
      unique_primary_(unique_primary) {
  columns_.resize(schema_.num_fields());
  for (const auto& col : primary_key_) {
    int idx = schema_.FieldIndex(col);
    if (idx >= 0) pk_indexes_.push_back(static_cast<size_t>(idx));
  }
}

bool Table::KeyLess::operator()(const Row& a, const Row& b) const {
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

Row Table::KeyOfStored(size_t row) const {
  Row key;
  key.reserve(pk_indexes_.size());
  for (size_t idx : pk_indexes_) key.push_back(columns_[idx][row]);
  return key;
}

void Table::IndexInsert(Row key) { ++pk_index_[std::move(key)]; }

void Table::IndexErase(const Row& key) {
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return;
  if (--it->second == 0) pk_index_.erase(it);
}

size_t Table::PrimaryKeyCount(const Row& key) const {
  auto it = pk_index_.find(key);
  return it == pk_index_.end() ? 0 : it->second;
}

Row Table::GetRow(size_t row) const {
  Row out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col[row]);
  return out;
}

Status Table::AppendRow(Row row) {
  if (row.size() != columns_.size()) {
    return Status::Invalid("row arity " + std::to_string(row.size()) + " != table arity " +
                           std::to_string(columns_.size()));
  }
  if (IndexedKeys()) {
    Row key;
    key.reserve(pk_indexes_.size());
    for (size_t idx : pk_indexes_) key.push_back(row[idx]);
    IndexInsert(std::move(key));
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::AppendRows(std::vector<Row> rows) {
  for (auto& row : rows) {
    HQ_RETURN_NOT_OK(AppendRow(std::move(row)));
  }
  return Status::OK();
}

Status Table::AppendColumns(std::vector<std::vector<Value>> values) {
  if (values.size() != columns_.size()) {
    return Status::Invalid("column arity " + std::to_string(values.size()) + " != table arity " +
                           std::to_string(columns_.size()));
  }
  const size_t added = values.empty() ? 0 : values[0].size();
  for (const auto& col : values) {
    if (col.size() != added) {
      return Status::Invalid("AppendColumns requires uniform column lengths");
    }
  }
  if (added == 0) return Status::OK();
  if (IndexedKeys()) {
    for (size_t r = 0; r < added; ++r) {
      Row key;
      key.reserve(pk_indexes_.size());
      for (size_t idx : pk_indexes_) key.push_back(values[idx][r]);
      IndexInsert(std::move(key));
    }
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    auto& dst = columns_[c];
    dst.insert(dst.end(), std::make_move_iterator(values[c].begin()),
               std::make_move_iterator(values[c].end()));
  }
  num_rows_ += added;
  return Status::OK();
}

Status Table::ReplaceRow(size_t row, Row values) {
  if (row >= num_rows_) return Status::Invalid("row index out of range");
  if (values.size() != columns_.size()) return Status::Invalid("row arity mismatch");
  if (IndexedKeys()) {
    IndexErase(KeyOfStored(row));
    Row key;
    key.reserve(pk_indexes_.size());
    for (size_t idx : pk_indexes_) key.push_back(values[idx]);
    IndexInsert(std::move(key));
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c][row] = std::move(values[c]);
  }
  return Status::OK();
}

Status Table::RemoveRows(const std::vector<size_t>& sorted_rows) {
  if (sorted_rows.empty()) return Status::OK();
  for (size_t i = 1; i < sorted_rows.size(); ++i) {
    if (sorted_rows[i] <= sorted_rows[i - 1]) {
      return Status::Invalid("RemoveRows requires strictly ascending indexes");
    }
  }
  if (sorted_rows.back() >= num_rows_) return Status::Invalid("row index out of range");
  if (IndexedKeys()) {
    for (size_t r : sorted_rows) IndexErase(KeyOfStored(r));
  }
  for (auto& col : columns_) {
    std::vector<Value> kept;
    kept.reserve(col.size() - sorted_rows.size());
    size_t next_removed = 0;
    for (size_t r = 0; r < col.size(); ++r) {
      if (next_removed < sorted_rows.size() && sorted_rows[next_removed] == r) {
        ++next_removed;
        continue;
      }
      kept.push_back(std::move(col[r]));
    }
    col = std::move(kept);
  }
  num_rows_ -= sorted_rows.size();
  return Status::OK();
}

void Table::Truncate() {
  for (auto& col : columns_) col.clear();
  num_rows_ = 0;
  pk_index_.clear();
}

size_t Table::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& col : columns_) {
    bytes += col.size() * sizeof(Value);
    for (const auto& v : col) {
      if (v.is_string()) bytes += v.string_value().size();
    }
  }
  return bytes;
}

}  // namespace hyperq::cdw
