#include "cdw/table.h"

namespace hyperq::cdw {

using common::Status;
using types::Row;
using types::Value;

Table::Table(std::string name, types::Schema schema, std::vector<std::string> primary_key,
             bool unique_primary)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      primary_key_(std::move(primary_key)),
      unique_primary_(unique_primary) {
  columns_.resize(schema_.num_fields());
  for (const auto& col : primary_key_) {
    int idx = schema_.FieldIndex(col);
    if (idx >= 0) pk_indexes_.push_back(static_cast<size_t>(idx));
  }
}

Row Table::GetRow(size_t row) const {
  Row out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col[row]);
  return out;
}

Status Table::AppendRow(Row row) {
  if (row.size() != columns_.size()) {
    return Status::Invalid("row arity " + std::to_string(row.size()) + " != table arity " +
                           std::to_string(columns_.size()));
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::AppendRows(std::vector<Row> rows) {
  for (auto& row : rows) {
    HQ_RETURN_NOT_OK(AppendRow(std::move(row)));
  }
  return Status::OK();
}

Status Table::ReplaceRow(size_t row, Row values) {
  if (row >= num_rows_) return Status::Invalid("row index out of range");
  if (values.size() != columns_.size()) return Status::Invalid("row arity mismatch");
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c][row] = std::move(values[c]);
  }
  return Status::OK();
}

Status Table::RemoveRows(const std::vector<size_t>& sorted_rows) {
  if (sorted_rows.empty()) return Status::OK();
  for (size_t i = 1; i < sorted_rows.size(); ++i) {
    if (sorted_rows[i] <= sorted_rows[i - 1]) {
      return Status::Invalid("RemoveRows requires strictly ascending indexes");
    }
  }
  if (sorted_rows.back() >= num_rows_) return Status::Invalid("row index out of range");
  for (auto& col : columns_) {
    std::vector<Value> kept;
    kept.reserve(col.size() - sorted_rows.size());
    size_t next_removed = 0;
    for (size_t r = 0; r < col.size(); ++r) {
      if (next_removed < sorted_rows.size() && sorted_rows[next_removed] == r) {
        ++next_removed;
        continue;
      }
      kept.push_back(std::move(col[r]));
    }
    col = std::move(kept);
  }
  num_rows_ -= sorted_rows.size();
  return Status::OK();
}

void Table::Truncate() {
  for (auto& col : columns_) col.clear();
  num_rows_ = 0;
}

size_t Table::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& col : columns_) {
    bytes += col.size() * sizeof(Value);
    for (const auto& v : col) {
      if (v.is_string()) bytes += v.string_value().size();
    }
  }
  return bytes;
}

}  // namespace hyperq::cdw
