#pragma once

#include <string>

#include "cdw/staging_format.h"
#include "cdw/table.h"
#include "cloudstore/object_store.h"
#include "common/result.h"

/// \file copy.h
/// The in-the-cloud COPY operation (paper Section 3: "Hyper-Q initiates an
/// in-the-cloud COPY operation to move data to a staging table in the CDW").
/// Reads every staged object under a prefix, auto-decompresses, parses the
/// CSV staging format and appends typed rows to the target table.

namespace hyperq::cdw {

struct CopyOptions {
  CsvOptions csv;
  /// Transparently decompress HQZ1 objects.
  bool auto_decompress = true;
};

/// Returns the number of rows loaded. Set-oriented: any malformed record or
/// type mismatch aborts the COPY with the table unchanged.
common::Result<uint64_t> CopyFromStore(Table* table, const cloud::ObjectStore& store,
                                       const std::string& prefix,
                                       const CopyOptions& options = {});

}  // namespace hyperq::cdw
