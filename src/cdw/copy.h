#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cdw/staging_format.h"
#include "cdw/table.h"
#include "cloudstore/object_store.h"
#include "common/result.h"

/// \file copy.h
/// The in-the-cloud COPY operation (paper Section 3: "Hyper-Q initiates an
/// in-the-cloud COPY operation to move data to a staging table in the CDW").
/// Reads every staged object under a prefix, auto-decompresses, parses the
/// CSV staging format and appends typed rows to the target table.

namespace hyperq::cdw {

struct CopyOptions {
  CsvOptions csv;
  /// Transparently decompress HQZ1 objects.
  bool auto_decompress = true;
};

/// Returns the number of rows loaded. Set-oriented: any malformed record or
/// type mismatch aborts the COPY with the table unchanged.
///
/// `ledger` (optional) makes a retried COPY idempotent: it maps staged
/// object key -> rows previously ingested from that key into this table.
/// Keys already in the ledger are skipped (their recorded rows count toward
/// the returned total); newly ingested keys are added after the append
/// commits. So when a COPY's ack is lost and the whole statement is retried,
/// rows cannot be double-ingested, and the return value is the cumulative
/// row count for the prefix either way.
common::Result<uint64_t> CopyFromStore(Table* table, const cloud::ObjectStore& store,
                                       const std::string& prefix,
                                       const CopyOptions& options = {},
                                       std::map<std::string, uint64_t>* ledger = nullptr);

}  // namespace hyperq::cdw
