#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cdw/staging_format.h"
#include "cdw/table.h"
#include "cloudstore/object_store.h"
#include "common/result.h"

/// \file copy.h
/// The in-the-cloud COPY operation (paper Section 3: "Hyper-Q initiates an
/// in-the-cloud COPY operation to move data to a staging table in the CDW").
/// Reads every staged object under a prefix, auto-decompresses, decodes the
/// staging format and appends typed rows to the target table. Two decode
/// paths share identical set-oriented semantics:
///   - CSV: streamed per-record text parse + CastValue per cell
///   - HQB1 (FORMAT BINARY, staging_binary.h): header validated against the
///     table layout, then typed values appended straight into column storage
///     with no per-cell text parsing — the direct pipe.

namespace hyperq::cdw {

/// The format COPY expects for the objects under the prefix.
///   kAuto   - per-object sniff (HQB1 magic after decompression, else CSV);
///             what jobs use, so a prefix mixing formats (e.g. a drift
///             fallback to CSV mid-stream) still loads correctly.
///   kCsv    - every object is parsed as CSV (HQB1 bytes would be rejected
///             cell-by-cell like any malformed text).
///   kBinary - FORMAT BINARY: every object must be HQB1; validation failures
///             (bad magic/version/layout) abort the COPY.
enum class CopyFormat : uint8_t {
  kAuto = 0,
  kCsv = 1,
  kBinary = 2,
};

struct CopyOptions {
  CsvOptions csv;
  CopyFormat format = CopyFormat::kAuto;
  /// Transparently decompress HQZ1 objects.
  bool auto_decompress = true;
};

/// Per-COPY ingest accounting (only objects decoded by THIS call; ledger
/// skips are not re-counted). Bytes are decompressed staging bytes.
struct CopyStats {
  uint64_t binary_files = 0;
  uint64_t binary_rows = 0;
  uint64_t binary_bytes = 0;
  uint64_t csv_files = 0;
  uint64_t csv_rows = 0;
  uint64_t csv_bytes = 0;
};

/// Returns the number of rows loaded. Set-oriented: any malformed record or
/// type mismatch aborts the COPY with the table unchanged.
///
/// `ledger` (optional) makes a retried COPY idempotent: it maps staged
/// object key -> rows previously ingested from that key into this table.
/// Keys already in the ledger are skipped (their recorded rows count toward
/// the returned total); newly ingested keys are added after the append
/// commits. So when a COPY's ack is lost and the whole statement is retried,
/// rows cannot be double-ingested, and the return value is the cumulative
/// row count for the prefix either way.
///
/// Ledger keys are format-tagged with a SUFFIX — `<object key>#bin` /
/// `<object key>#csv` — recording the format the object's bytes decoded as.
/// The suffix keeps prefix-scoped operations (ForgetCopiesWithPrefix,
/// lexicographic FIFO eviction over zero-padded batch prefixes) working
/// unchanged while letting retries of mixed-format uploads dedup correctly.
common::Result<uint64_t> CopyFromStore(Table* table, const cloud::ObjectStore& store,
                                       const std::string& prefix,
                                       const CopyOptions& options = {},
                                       std::map<std::string, uint64_t>* ledger = nullptr,
                                       CopyStats* stats = nullptr);

}  // namespace hyperq::cdw
