#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "types/schema.h"

/// \file staging_binary.h
/// HQB1 — the typed columnar binary staging format (the "direct pipe" of the
/// PipeGen line of work): converted chunks are staged as self-describing
/// columnar blocks that CDW COPY appends straight into column storage with no
/// per-cell text parsing. A staging file is a concatenation of blocks, one
/// per converted chunk (the FileWriter only rotates between Appends, so a
/// block never splits across files).
///
/// Block wire layout (all integers little-endian):
///
///   +0   u32  magic "HQB1" (0x31425148)
///   +4   u16  version (1)
///   +6   u16  flags (0, reserved)
///   +8   u64  layout fingerprint (SchemaFingerprint of the staging schema)
///   +16  u32  column count
///   +20  u32  row count            <- patched per block, kHqb1RowCountOffset
///   +24  column descriptors, 12 bytes each:
///          u8  type id (types::TypeId)
///          u8  flags (bit 0: nullable)
///          u16 reserved (0)
///          u32 declared length (CHAR/VARCHAR)
///          u16 precision, u16 scale (DECIMAL)
///   then one section per column, in declaration order:
///          null bitmap   (row_count+7)/8 bytes; bit (row & 7) of byte
///                        (row >> 3) set <=> the cell is SQL NULL
///          fixed-width:  row_count * width value bytes (NULL cells are
///                        zero-filled so the section stays positional)
///          varlen:       u32 data bytes, row_count u32 END offsets
///                        (monotone, last == data bytes), data bytes
///
/// Cell encodings per staging type: BOOLEAN u8 0/1, SMALLINT i16, INTEGER
/// i32, BIGINT i64, FLOAT f64 raw bits, DECIMAL i64 unscaled (scale in the
/// descriptor), DATE i32 epoch days, TIMESTAMP i64 epoch micros, CHAR(n)
/// exactly n bytes, VARCHAR varlen bytes. The header always describes the
/// *staging* (CDW-mapped) schema — BYTEINT widened to SMALLINT, oversize
/// CHAR mapped to VARCHAR — including the trailing HQ_ROWNUM BIGINT column.

namespace hyperq::cdw {

inline constexpr uint32_t kHqb1Magic = 0x31425148u;  // "HQB1" read little-endian
inline constexpr uint16_t kHqb1Version = 1;
inline constexpr size_t kHqb1RowCountOffset = 20;
inline constexpr size_t kHqb1ColumnDescBytes = 12;

/// Fixed cell width in bytes for a staging type; 0 means varlen (VARCHAR).
size_t BinaryFixedWidth(types::TypeId id, int32_t declared_length);

/// True when `data` starts with an HQB1 block (format sniffing for COPY).
bool IsHqb1(common::Slice data);

/// FNV-1a over field names, types and nullability: the negotiation handle
/// COPY uses to reject blocks whose layout does not match the target table.
uint64_t SchemaFingerprint(const types::Schema& schema);

/// Serializes the block prefix (magic .. column descriptors) for `schema`
/// with row count 0. Encoders copy this once per block and patch the row
/// count at kHqb1RowCountOffset.
void BuildBlockHeader(const types::Schema& schema, common::ByteBuffer* out);

/// One parsed column section: descriptor plus views into the block bytes.
struct BinaryColumnView {
  types::TypeId type = types::TypeId::kVarchar;
  bool nullable = true;
  uint32_t length = 0;
  uint32_t precision = 0;
  uint32_t scale = 0;
  size_t fixed_width = 0;  ///< 0 = varlen

  common::Slice nulls;    ///< (rows+7)/8 bitmap bytes
  common::Slice fixed;    ///< rows * fixed_width value bytes (fixed only)
  common::Slice offsets;  ///< rows * u32 end offsets (varlen only)
  common::Slice varlen;   ///< varlen data bytes (varlen only)

  bool IsNull(size_t row) const { return (nulls[row >> 3] & (1u << (row & 7))) != 0; }
  /// Bounds of varlen cell `row`; valid after a successful Parse.
  void VarlenCell(size_t row, size_t* begin, size_t* len) const {
    uint32_t end = ReadOffset(row);
    uint32_t start = row == 0 ? 0 : ReadOffset(row - 1);
    *begin = start;
    *len = end - start;
  }

 private:
  uint32_t ReadOffset(size_t row) const {
    uint32_t v;
    std::memcpy(&v, offsets.data() + row * 4, 4);
    return v;
  }
};

/// Parses and validates one block, leaving the reader positioned at the next
/// block. Structural validation only (magic, version, counts, section
/// bounds, offset monotonicity) — no per-cell work and no allocation beyond
/// the reused column vector, so Parse is an hqcheck --hotpath root.
class BinaryBlockReader {
 public:
  common::Status Parse(common::ByteReader* reader);

  uint64_t fingerprint() const { return fingerprint_; }
  uint32_t row_count() const { return row_count_; }
  const std::vector<BinaryColumnView>& columns() const { return columns_; }

 private:
  uint64_t fingerprint_ = 0;
  uint32_t row_count_ = 0;
  std::vector<BinaryColumnView> columns_;
};

}  // namespace hyperq::cdw
