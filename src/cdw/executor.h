#pragma once

#include "cdw/catalog.h"
#include "cdw/expr_eval.h"
#include "common/result.h"
#include "sql/ast.h"

/// \file executor.h
/// Set-oriented SQL execution over the catalog. Statement semantics mirror a
/// cloud warehouse:
///   - a statement either fully applies or fully aborts: one bad tuple
///     (conversion failure, constraint violation) rolls back the whole
///     statement and the error does NOT identify the offending tuple —
///     exactly the behaviour that motivates adaptive error handling
///     (paper Section 7);
///   - declared unique primary keys are NOT enforced natively; enforcement
///     happens only when the caller (Hyper-Q's Beta process) requests the
///     emulation via ExecOptions::enforce_unique_primary.

namespace hyperq::cdw {

struct ExecResult {
  uint64_t rows_inserted = 0;
  uint64_t rows_updated = 0;
  uint64_t rows_deleted = 0;
  types::Schema schema;          ///< non-empty for SELECT
  std::vector<types::Row> rows;  ///< SELECT result rows

  uint64_t activity_count() const {
    if (schema.num_fields() > 0) return rows.size();
    return rows_inserted + rows_updated + rows_deleted;
  }
};

struct ExecOptions {
  /// Hyper-Q's uniqueness emulation: validate declared unique primary keys
  /// during INSERT/MERGE/UPDATE; violations abort the statement.
  bool enforce_unique_primary = false;
};

class Executor {
 public:
  explicit Executor(Catalog* catalog) : catalog_(catalog) {}

  common::Result<ExecResult> Execute(const sql::Statement& stmt, const ExecOptions& options = {});

  /// Parses and executes one statement of SQL text (CDW dialect).
  common::Result<ExecResult> ExecuteSql(std::string_view sql, const ExecOptions& options = {});

 private:
  common::Result<ExecResult> ExecuteSelect(const sql::SelectStmt& stmt);
  common::Status FinishSelect(const sql::SelectStmt& stmt, ExecResult* result);
  common::Result<ExecResult> ExecuteInsert(const sql::InsertStmt& stmt,
                                           const ExecOptions& options);
  common::Result<ExecResult> ExecuteUpdate(const sql::UpdateStmt& stmt,
                                           const ExecOptions& options);
  common::Result<ExecResult> ExecuteDelete(const sql::DeleteStmt& stmt);
  common::Result<ExecResult> ExecuteMerge(const sql::MergeStmt& stmt, const ExecOptions& options);
  common::Result<ExecResult> ExecuteCreateTable(const sql::CreateTableStmt& stmt);
  common::Result<ExecResult> ExecuteDropTable(const sql::DropTableStmt& stmt);

  Catalog* catalog_;
};

}  // namespace hyperq::cdw
