#include "cdw/catalog.h"

#include "common/string_util.h"

namespace hyperq::cdw {

using common::Result;
using common::Status;

std::string Catalog::NormalizeName(const std::string& name) { return common::ToUpper(name); }

Result<TablePtr> Catalog::CreateTable(const std::string& name, types::Schema schema,
                                      std::vector<std::string> primary_key, bool unique_primary,
                                      bool or_ignore) {
  common::MutexLock lock(&mu_);
  std::string key = NormalizeName(name);
  auto it = tables_.find(key);
  if (it != tables_.end()) {
    if (or_ignore) return it->second;
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table = std::make_shared<Table>(name, std::move(schema), std::move(primary_key),
                                       unique_primary);
  tables_[key] = table;
  return table;
}

Result<TablePtr> Catalog::GetTable(const std::string& name) const {
  common::MutexLock lock(&mu_);
  auto it = tables_.find(NormalizeName(name));
  if (it == tables_.end()) return Status::NotFound("table not found: " + name);
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  common::MutexLock lock(&mu_);
  return tables_.count(NormalizeName(name)) != 0;
}

Status Catalog::DropTable(const std::string& name, bool if_exists) {
  common::MutexLock lock(&mu_);
  if (tables_.erase(NormalizeName(name)) == 0 && !if_exists) {
    return Status::NotFound("table not found: " + name);
  }
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables() const {
  common::MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace hyperq::cdw
