#include "cdw/copy.h"

#include "cloudstore/compression.h"

namespace hyperq::cdw {

using common::Result;
using common::Slice;
using common::Status;
using types::Row;
using types::Value;

Result<uint64_t> CopyFromStore(Table* table, const cloud::ObjectStore& store,
                               const std::string& prefix, const CopyOptions& options,
                               std::map<std::string, uint64_t>* ledger) {
  std::vector<std::string> keys = store.List(prefix);
  std::vector<Row> staged;
  std::vector<std::pair<std::string, uint64_t>> ingested;  // key -> rows, this COPY
  uint64_t already_ingested = 0;
  for (const auto& key : keys) {
    if (ledger != nullptr) {
      auto it = ledger->find(key);
      if (it != ledger->end()) {
        already_ingested += it->second;
        continue;
      }
    }
    const uint64_t rows_before = staged.size();
    HQ_ASSIGN_OR_RETURN(auto blob, store.Get(key));
    Slice raw(*blob);
    common::ByteBuffer decompressed;
    if (options.auto_decompress && cloud::IsCompressed(raw)) {
      HQ_ASSIGN_OR_RETURN(decompressed, cloud::Decompress(raw));
      raw = decompressed.AsSlice();
    }
    // Stream one record view at a time instead of materializing the whole
    // staging file as std::vector<CsvRecord>; field text is borrowed from
    // the object bytes (or the reader's scratch) until the typed Value copy.
    CsvStreamReader reader(raw, options.csv);
    while (true) {
      HQ_ASSIGN_OR_RETURN(bool more, reader.Next());
      if (!more) break;
      if (reader.num_fields() != table->schema().num_fields()) {
        return Status::ConversionError(
            "COPY: record in " + key + " has " + std::to_string(reader.num_fields()) +
            " fields, table " + table->name() + " has " +
            std::to_string(table->schema().num_fields()));
      }
      Row row;
      row.reserve(reader.num_fields());
      for (size_t c = 0; c < reader.num_fields(); ++c) {
        const types::Field& field = table->schema().field(c);
        CsvFieldView cell = reader.field(c);
        if (cell.null) {
          if (!field.nullable) {
            return Status::ConversionError("COPY: NULL in NOT NULL column " + field.name);
          }
          row.push_back(Value::Null());
          continue;
        }
        HQ_ASSIGN_OR_RETURN(
            Value v, types::CastValue(Value::String(std::string(cell.text)), field.type));
        row.push_back(std::move(v));
      }
      staged.push_back(std::move(row));
    }
    ingested.emplace_back(key, staged.size() - rows_before);
  }
  uint64_t count = staged.size();
  HQ_RETURN_NOT_OK(table->AppendRows(std::move(staged)));
  // The append committed; only now do the new keys enter the ledger.
  if (ledger != nullptr) {
    for (auto& [key, rows] : ingested) (*ledger)[key] = rows;
  }
  return count + already_ingested;
}

}  // namespace hyperq::cdw
