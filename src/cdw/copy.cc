#include "cdw/copy.h"

#include "cloudstore/compression.h"

namespace hyperq::cdw {

using common::Result;
using common::Slice;
using common::Status;
using types::Row;
using types::Value;

Result<uint64_t> CopyFromStore(Table* table, const cloud::ObjectStore& store,
                               const std::string& prefix, const CopyOptions& options) {
  std::vector<std::string> keys = store.List(prefix);
  std::vector<Row> staged;
  for (const auto& key : keys) {
    HQ_ASSIGN_OR_RETURN(auto blob, store.Get(key));
    Slice raw(*blob);
    common::ByteBuffer decompressed;
    if (options.auto_decompress && cloud::IsCompressed(raw)) {
      HQ_ASSIGN_OR_RETURN(decompressed, cloud::Decompress(raw));
      raw = decompressed.AsSlice();
    }
    HQ_ASSIGN_OR_RETURN(std::vector<CsvRecord> records, ParseCsv(raw, options.csv));
    for (const auto& record : records) {
      if (record.size() != table->schema().num_fields()) {
        return Status::ConversionError(
            "COPY: record in " + key + " has " + std::to_string(record.size()) +
            " fields, table " + table->name() + " has " +
            std::to_string(table->schema().num_fields()));
      }
      Row row;
      row.reserve(record.size());
      for (size_t c = 0; c < record.size(); ++c) {
        const types::Field& field = table->schema().field(c);
        if (!record[c].has_value()) {
          if (!field.nullable) {
            return Status::ConversionError("COPY: NULL in NOT NULL column " + field.name);
          }
          row.push_back(Value::Null());
          continue;
        }
        HQ_ASSIGN_OR_RETURN(Value v,
                            types::CastValue(Value::String(*record[c]), field.type));
        row.push_back(std::move(v));
      }
      staged.push_back(std::move(row));
    }
  }
  uint64_t count = staged.size();
  HQ_RETURN_NOT_OK(table->AppendRows(std::move(staged)));
  return count;
}

}  // namespace hyperq::cdw
