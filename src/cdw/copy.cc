#include "cdw/copy.h"

#include <algorithm>
#include <cstring>

#include "cdw/staging_binary.h"
#include "cloudstore/compression.h"

namespace hyperq::cdw {

using common::ByteReader;
using common::Result;
using common::Slice;
using common::Status;
using types::Row;
using types::Value;

namespace {

/// Format-tag suffixes for COPY-ledger idempotence keys (see copy.h).
constexpr std::string_view kLedgerTagBinary = "#bin";
constexpr std::string_view kLedgerTagCsv = "#csv";

/// Validates one parsed HQB1 block against the target table layout and
/// materializes its cells into `staged` (one vector per column). The
/// fingerprint is a fast negotiation handle, but it is carried IN the
/// header, so the descriptors are re-checked field by field — a corrupt
/// block cannot buy its way in with a copied fingerprint.
Status AppendBinaryBlock(const BinaryBlockReader& block, const Table& table,
                         const std::string& key, std::vector<std::vector<Value>>* staged) {
  const types::Schema& schema = table.schema();
  if (block.fingerprint() != SchemaFingerprint(schema)) {
    return Status::ConversionError("COPY: HQB1 block in " + key +
                                   " has a layout fingerprint that does not match table " +
                                   table.name());
  }
  if (block.columns().size() != schema.num_fields()) {
    return Status::ConversionError(
        "COPY: HQB1 block in " + key + " has " + std::to_string(block.columns().size()) +
        " columns, table " + table.name() + " has " + std::to_string(schema.num_fields()));
  }
  const size_t rows = block.row_count();
  for (size_t c = 0; c < block.columns().size(); ++c) {
    const BinaryColumnView& col = block.columns()[c];
    const types::Field& field = schema.field(c);
    if (col.type != field.type.id ||
        (field.type.id == types::TypeId::kChar &&
         col.length != static_cast<uint32_t>(field.type.length)) ||
        (field.type.id == types::TypeId::kDecimal &&
         col.scale != static_cast<uint32_t>(field.type.scale))) {
      return Status::ConversionError("COPY: HQB1 column descriptor in " + key +
                                     " does not match table column " + field.name);
    }
    std::vector<Value>& out = (*staged)[c];
    // Grow geometrically across blocks: an exact-size reserve per block
    // would reallocate (and copy every staged Value) once per block per
    // column — quadratic in the number of blocks under a prefix.
    if (out.capacity() < out.size() + rows) {
      out.reserve(std::max(out.size() + rows, out.capacity() * 2));
    }
    for (size_t r = 0; r < rows; ++r) {
      if (col.IsNull(r)) {
        if (!field.nullable) {
          return Status::ConversionError("COPY: NULL in NOT NULL column " + field.name);
        }
        out.push_back(Value::Null());
        continue;
      }
      const uint8_t* cell = col.fixed.data() + r * col.fixed_width;
      switch (field.type.id) {
        case types::TypeId::kBoolean:
          out.push_back(Value::Boolean(*cell != 0));
          break;
        case types::TypeId::kInt8: {
          int8_t v;
          std::memcpy(&v, cell, 1);
          out.push_back(Value::Int(v));
          break;
        }
        case types::TypeId::kInt16: {
          int16_t v;
          std::memcpy(&v, cell, 2);
          out.push_back(Value::Int(v));
          break;
        }
        case types::TypeId::kInt32: {
          int32_t v;
          std::memcpy(&v, cell, 4);
          out.push_back(Value::Int(v));
          break;
        }
        case types::TypeId::kInt64: {
          int64_t v;
          std::memcpy(&v, cell, 8);
          out.push_back(Value::Int(v));
          break;
        }
        case types::TypeId::kFloat64: {
          double v;
          std::memcpy(&v, cell, 8);
          out.push_back(Value::Float(v));
          break;
        }
        case types::TypeId::kDecimal: {
          int64_t unscaled;
          std::memcpy(&unscaled, cell, 8);
          out.push_back(Value::Dec(types::Decimal(unscaled, field.type.scale)));
          break;
        }
        case types::TypeId::kDate: {
          int32_t days;
          std::memcpy(&days, cell, 4);
          out.push_back(Value::Date(days));
          break;
        }
        case types::TypeId::kTimestamp: {
          int64_t micros;
          std::memcpy(&micros, cell, 8);
          out.push_back(Value::Timestamp(micros));
          break;
        }
        case types::TypeId::kChar:
          // Wire cells are exactly the declared width (the converter pads),
          // which is the canonical CHAR(n) value representation already.
          out.push_back(Value::String(
              std::string(reinterpret_cast<const char*>(cell), col.fixed_width)));
          break;
        case types::TypeId::kVarchar: {
          size_t begin = 0;
          size_t len = 0;
          col.VarlenCell(r, &begin, &len);
          std::string text(reinterpret_cast<const char*>(col.varlen.data()) + begin, len);
          if (field.type.length <= 0 || len <= static_cast<size_t>(field.type.length)) {
            out.push_back(Value::String(std::move(text)));
            break;
          }
          // Oversize cell: delegate to CastValue so overflow trimming and
          // the error text are identical to the CSV path's FitString.
          HQ_ASSIGN_OR_RETURN(Value v,
                              types::CastValue(Value::String(std::move(text)), field.type));
          out.push_back(std::move(v));
          break;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<uint64_t> CopyFromStore(Table* table, const cloud::ObjectStore& store,
                               const std::string& prefix, const CopyOptions& options,
                               std::map<std::string, uint64_t>* ledger, CopyStats* stats) {
  std::vector<std::string> keys = store.List(prefix);
  const size_t ncols = table->schema().num_fields();
  std::vector<std::vector<Value>> staged(ncols);
  std::vector<std::pair<std::string, uint64_t>> ingested;  // tagged key -> rows, this COPY
  uint64_t already_ingested = 0;
  uint64_t staged_rows = 0;
  CopyStats local;
  for (const auto& key : keys) {
    if (ledger != nullptr) {
      // An object key only ever decodes as one format (its bytes don't
      // change across retries), so looking up both tags preserves the
      // skip-before-Get fast path.
      auto it = ledger->find(key + std::string(kLedgerTagBinary));
      if (it == ledger->end()) it = ledger->find(key + std::string(kLedgerTagCsv));
      if (it != ledger->end()) {
        already_ingested += it->second;
        continue;
      }
    }
    const uint64_t rows_before = staged_rows;
    HQ_ASSIGN_OR_RETURN(auto blob, store.Get(key));
    Slice raw(*blob);
    common::ByteBuffer decompressed;
    if (options.auto_decompress && cloud::IsCompressed(raw)) {
      HQ_ASSIGN_OR_RETURN(decompressed, cloud::Decompress(raw));
      raw = decompressed.AsSlice();
    }
    const bool binary = options.format == CopyFormat::kBinary ||
                        (options.format == CopyFormat::kAuto && IsHqb1(raw));
    if (binary) {
      ByteReader reader(raw);
      BinaryBlockReader block;
      while (!reader.AtEnd()) {
        Status parsed = block.Parse(&reader);
        if (!parsed.ok()) return parsed.WithContext("COPY: object " + key);
        HQ_RETURN_NOT_OK(AppendBinaryBlock(block, *table, key, &staged));
        staged_rows += block.row_count();
      }
    } else {
      // Stream one record view at a time instead of materializing the whole
      // staging file as std::vector<CsvRecord>; field text is borrowed from
      // the object bytes (or the reader's scratch) until the typed Value copy.
      CsvStreamReader reader(raw, options.csv);
      while (true) {
        HQ_ASSIGN_OR_RETURN(bool more, reader.Next());
        if (!more) break;
        if (reader.num_fields() != ncols) {
          return Status::ConversionError(
              "COPY: record in " + key + " has " + std::to_string(reader.num_fields()) +
              " fields, table " + table->name() + " has " + std::to_string(ncols));
        }
        for (size_t c = 0; c < ncols; ++c) {
          const types::Field& field = table->schema().field(c);
          CsvFieldView cell = reader.field(c);
          if (cell.null) {
            if (!field.nullable) {
              return Status::ConversionError("COPY: NULL in NOT NULL column " + field.name);
            }
            staged[c].push_back(Value::Null());
            continue;
          }
          HQ_ASSIGN_OR_RETURN(
              Value v, types::CastValue(Value::String(std::string(cell.text)), field.type));
          staged[c].push_back(std::move(v));
        }
        ++staged_rows;
      }
    }
    const uint64_t rows_this_key = staged_rows - rows_before;
    const std::string_view tag = binary ? kLedgerTagBinary : kLedgerTagCsv;
    ingested.emplace_back(key + std::string(tag), rows_this_key);
    if (binary) {
      ++local.binary_files;
      local.binary_rows += rows_this_key;
      local.binary_bytes += raw.size();
    } else {
      ++local.csv_files;
      local.csv_rows += rows_this_key;
      local.csv_bytes += raw.size();
    }
  }
  HQ_RETURN_NOT_OK(table->AppendColumns(std::move(staged)));
  // The append committed; only now do the new keys enter the ledger.
  if (ledger != nullptr) {
    for (auto& [key, rows] : ingested) (*ledger)[key] = rows;
  }
  if (stats != nullptr) {
    stats->binary_files += local.binary_files;
    stats->binary_rows += local.binary_rows;
    stats->binary_bytes += local.binary_bytes;
    stats->csv_files += local.csv_files;
    stats->csv_rows += local.csv_rows;
    stats->csv_bytes += local.csv_bytes;
  }
  return staged_rows + already_ingested;
}

}  // namespace hyperq::cdw
