// hqlint:hotpath
#include "cdw/staging_binary.h"

namespace hyperq::cdw {

using common::ByteBuffer;
using common::ByteReader;
using common::Slice;
using common::Status;
using types::TypeId;

size_t BinaryFixedWidth(TypeId id, int32_t declared_length) {
  switch (id) {
    case TypeId::kBoolean:
      return 1;
    case TypeId::kInt8:
      return 1;
    case TypeId::kInt16:
      return 2;
    case TypeId::kInt32:
      return 4;
    case TypeId::kInt64:
      return 8;
    case TypeId::kFloat64:
      return 8;
    case TypeId::kDecimal:
      return 8;
    case TypeId::kDate:
      return 4;
    case TypeId::kTimestamp:
      return 8;
    case TypeId::kChar:
      return static_cast<size_t>(declared_length);
    case TypeId::kVarchar:
      return 0;
  }
  return 0;  // unreachable: TypeId is exhaustive
}

bool IsHqb1(Slice data) {
  if (data.size() < 4) return false;
  uint32_t magic;
  std::memcpy(&magic, data.data(), 4);
  return magic == kHqb1Magic;
}

uint64_t SchemaFingerprint(const types::Schema& schema) {
  // FNV-1a 64: stable, trivially reimplementable by an external reader.
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (const auto& field : schema.fields()) {
    for (char c : field.name) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xffu;  // name terminator (names cannot contain 0xff)
    h *= 1099511628211ull;
    mix(static_cast<uint64_t>(field.type.id));
    mix(static_cast<uint64_t>(field.nullable ? 1 : 0));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(field.type.length)));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(field.type.precision)));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(field.type.scale)));
  }
  return h;
}

void BuildBlockHeader(const types::Schema& schema, ByteBuffer* out) {
  out->AppendU32(kHqb1Magic);
  out->AppendU16(kHqb1Version);
  out->AppendU16(0);  // flags
  out->AppendU64(SchemaFingerprint(schema));
  out->AppendU32(static_cast<uint32_t>(schema.num_fields()));
  out->AppendU32(0);  // row count, patched per block
  for (const auto& field : schema.fields()) {
    out->AppendByte(static_cast<uint8_t>(field.type.id));
    out->AppendByte(field.nullable ? 1 : 0);
    out->AppendU16(0);  // reserved
    out->AppendU32(static_cast<uint32_t>(field.type.length));
    out->AppendU16(static_cast<uint16_t>(field.type.precision));
    out->AppendU16(static_cast<uint16_t>(field.type.scale));
  }
}

Status BinaryBlockReader::Parse(ByteReader* reader) {
  HQ_ASSIGN_OR_RETURN(uint32_t magic, reader->ReadU32());
  if (magic != kHqb1Magic) {
    return Status::ConversionError("staging block has bad magic (not HQB1)");
  }
  HQ_ASSIGN_OR_RETURN(uint16_t version, reader->ReadU16());
  if (version != kHqb1Version) {
    return Status::ConversionError("unsupported HQB1 version " + std::to_string(version));  // hqlint:allow(per-row-alloc)
  }
  HQ_RETURN_NOT_OK(reader->ReadU16().status());  // flags (reserved)
  HQ_ASSIGN_OR_RETURN(fingerprint_, reader->ReadU64());
  HQ_ASSIGN_OR_RETURN(uint32_t ncols, reader->ReadU32());
  HQ_ASSIGN_OR_RETURN(row_count_, reader->ReadU32());
  if (ncols == 0) return Status::ConversionError("HQB1 block declares zero columns");
  // 4096 columns is far beyond any layout the legacy dialect can declare;
  // the cap keeps a corrupt count from driving a huge resize below.
  if (ncols > 4096) {
    return Status::ConversionError("HQB1 block declares implausible column count " +  // hqlint:allow(per-row-alloc)
                                   std::to_string(ncols));
  }
  columns_.clear();
  columns_.resize(ncols);
  for (auto& col : columns_) {
    HQ_ASSIGN_OR_RETURN(uint8_t type_id, reader->ReadByte());
    if (type_id > static_cast<uint8_t>(TypeId::kTimestamp)) {
      return Status::ConversionError("HQB1 column descriptor has unknown type id " +  // hqlint:allow(per-row-alloc)
                                     std::to_string(type_id));
    }
    col.type = static_cast<TypeId>(type_id);
    HQ_ASSIGN_OR_RETURN(uint8_t flags, reader->ReadByte());
    col.nullable = (flags & 1u) != 0;
    HQ_RETURN_NOT_OK(reader->ReadU16().status());  // reserved
    HQ_ASSIGN_OR_RETURN(col.length, reader->ReadU32());
    HQ_ASSIGN_OR_RETURN(uint16_t precision, reader->ReadU16());
    HQ_ASSIGN_OR_RETURN(uint16_t scale, reader->ReadU16());
    col.precision = precision;
    col.scale = scale;
    if (col.type == TypeId::kChar && col.length == 0) {
      return Status::ConversionError("HQB1 CHAR column descriptor has zero length");
    }
    if (col.type == TypeId::kDecimal && col.scale > 18) {
      return Status::ConversionError("HQB1 DECIMAL column descriptor has scale " +  // hqlint:allow(per-row-alloc)
                                     std::to_string(col.scale) + " > 18");
    }
    col.fixed_width = BinaryFixedWidth(col.type, static_cast<int32_t>(col.length));
  }
  const size_t bitmap_bytes = (static_cast<size_t>(row_count_) + 7) / 8;
  for (auto& col : columns_) {
    HQ_ASSIGN_OR_RETURN(col.nulls, reader->ReadSlice(bitmap_bytes));
    if (col.fixed_width != 0) {
      HQ_ASSIGN_OR_RETURN(col.fixed,
                          reader->ReadSlice(col.fixed_width * static_cast<size_t>(row_count_)));
      continue;
    }
    HQ_ASSIGN_OR_RETURN(uint32_t data_bytes, reader->ReadU32());
    HQ_ASSIGN_OR_RETURN(col.offsets, reader->ReadSlice(4 * static_cast<size_t>(row_count_)));
    HQ_ASSIGN_OR_RETURN(col.varlen, reader->ReadSlice(data_bytes));
    uint32_t prev = 0;
    for (size_t r = 0; r < row_count_; ++r) {
      uint32_t end;
      std::memcpy(&end, col.offsets.data() + r * 4, 4);
      if (end < prev || end > data_bytes) {
        return Status::ConversionError("HQB1 varlen offsets are not monotone within bounds");
      }
      prev = end;
    }
    if (row_count_ != 0 && prev != data_bytes) {
      return Status::ConversionError("HQB1 varlen section has trailing bytes past last offset");
    }
    if (row_count_ == 0 && data_bytes != 0) {
      return Status::ConversionError("HQB1 varlen section non-empty for zero rows");
    }
  }
  return Status::OK();
}

}  // namespace hyperq::cdw
