#include "cdw/expr_eval.h"

#include <cmath>

#include "common/string_util.h"
#include "types/date.h"

namespace hyperq::cdw {

using common::EqualsIgnoreCase;
using common::Result;
using common::Status;
using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using types::Decimal;
using types::TypeDesc;
using types::TypeId;
using types::Value;

Result<Value> EvalContext::ResolveColumn(const std::string& qualifier,
                                         const std::string& name) const {
  const RowBinding* found = nullptr;
  for (const auto& binding : bindings_) {
    if (!qualifier.empty() && !EqualsIgnoreCase(binding.alias, qualifier)) continue;
    int idx = binding.schema->FieldIndex(name);
    if (idx < 0) continue;
    if (found != nullptr) {
      return Status::Invalid("ambiguous column reference: " + name);
    }
    found = &binding;
  }
  if (found == nullptr) {
    std::string full = qualifier.empty() ? name : qualifier + "." + name;
    return Status::NotFound("column not found: " + full);
  }
  return (*found->row)[static_cast<size_t>(found->schema->FieldIndex(name))];
}

bool IsAggregateFunction(std::string_view name) {
  return EqualsIgnoreCase(name, "COUNT") || EqualsIgnoreCase(name, "SUM") ||
         EqualsIgnoreCase(name, "MIN") || EqualsIgnoreCase(name, "MAX") ||
         EqualsIgnoreCase(name, "AVG");
}

bool ContainsAggregate(const Expr& expr) {
  // Recurses through the composite kinds only; leaf kinds (literals,
  // column refs, ...) cannot contain an aggregate, hence default false.
  switch (expr.kind) {  // hqcheck:allow(enum-switch)
    case ExprKind::kFunction: {
      const auto& fn = static_cast<const sql::FunctionExpr&>(expr);
      if (IsAggregateFunction(fn.name)) return true;
      for (const auto& a : fn.args) {
        if (ContainsAggregate(*a)) return true;
      }
      return false;
    }
    case ExprKind::kUnary:
      return ContainsAggregate(*static_cast<const sql::UnaryExpr&>(expr).operand);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      return ContainsAggregate(*b.left) || ContainsAggregate(*b.right);
    }
    case ExprKind::kCast:
      return ContainsAggregate(*static_cast<const sql::CastExpr&>(expr).operand);
    case ExprKind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      if (c.operand && ContainsAggregate(*c.operand)) return true;
      for (const auto& [w, t] : c.whens) {
        if (ContainsAggregate(*w) || ContainsAggregate(*t)) return true;
      }
      return c.else_expr && ContainsAggregate(*c.else_expr);
    }
    case ExprKind::kIsNull:
      return ContainsAggregate(*static_cast<const sql::IsNullExpr&>(expr).operand);
    case ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      if (ContainsAggregate(*in.operand)) return true;
      for (const auto& e : in.list) {
        if (ContainsAggregate(*e)) return true;
      }
      return false;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const sql::BetweenExpr&>(expr);
      return ContainsAggregate(*bt.operand) || ContainsAggregate(*bt.low) ||
             ContainsAggregate(*bt.high);
    }
    default:
      return false;
  }
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard match: % = any run, _ = single char.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

bool IsNumericValue(const Value& v) { return v.is_int() || v.is_float() || v.is_decimal(); }

double AsDouble(const Value& v) {
  if (v.is_int()) return static_cast<double>(v.int_value());
  if (v.is_float()) return v.float_value();
  return v.decimal_value().ToDouble();
}

/// Implicit coercion for comparisons: strings parse toward the other side's
/// family (legacy-compatible behaviour preserved by the CDW).
Result<int> CompareValues(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Status::Internal("null in CompareValues");
  if (a.is_string() && IsNumericValue(b)) {
    HQ_ASSIGN_OR_RETURN(Value parsed, types::CastValue(a, TypeDesc::Float64()));
    return CompareValues(parsed, b);
  }
  if (IsNumericValue(a) && b.is_string()) {
    HQ_ASSIGN_OR_RETURN(Value parsed, types::CastValue(b, TypeDesc::Float64()));
    return CompareValues(a, parsed);
  }
  if (a.is_string() && b.is_date()) {
    HQ_ASSIGN_OR_RETURN(Value parsed, types::CastValue(a, TypeDesc::Date()));
    return CompareValues(parsed, b);
  }
  if (a.is_date() && b.is_string()) {
    HQ_ASSIGN_OR_RETURN(Value parsed, types::CastValue(b, TypeDesc::Date()));
    return CompareValues(a, parsed);
  }
  return a.Compare(b);
}

Result<Value> EvalComparison(BinaryOp op, const Value& left, const Value& right) {
  if (left.is_null() || right.is_null()) return Value::Null();
  if (op == BinaryOp::kLike) {
    if (!left.is_string() || !right.is_string()) {
      return Status::TypeError("LIKE requires string operands");
    }
    return Value::Boolean(LikeMatch(left.string_value(), right.string_value()));
  }
  HQ_ASSIGN_OR_RETURN(int cmp, CompareValues(left, right));
  // Comparison subset of BinaryOp; arithmetic never reaches this helper.
  switch (op) {  // hqcheck:allow(enum-switch)
    case BinaryOp::kEq:
      return Value::Boolean(cmp == 0);
    case BinaryOp::kNe:
      return Value::Boolean(cmp != 0);
    case BinaryOp::kLt:
      return Value::Boolean(cmp < 0);
    case BinaryOp::kLe:
      return Value::Boolean(cmp <= 0);
    case BinaryOp::kGt:
      return Value::Boolean(cmp > 0);
    case BinaryOp::kGe:
      return Value::Boolean(cmp >= 0);
    default:
      return Status::Internal("not a comparison op");
  }
}

Result<Value> EvalArithmetic(BinaryOp op, const Value& left, const Value& right) {
  if (left.is_null() || right.is_null()) return Value::Null();
  if (!IsNumericValue(left) || !IsNumericValue(right)) {
    // Strings that look numeric coerce (legacy implicit cast the CDW keeps).
    if (left.is_string() || right.is_string()) {
      HQ_ASSIGN_OR_RETURN(Value l2, left.is_string()
                                        ? types::CastValue(left, TypeDesc::Float64())
                                        : Result<Value>(left));
      HQ_ASSIGN_OR_RETURN(Value r2, right.is_string()
                                        ? types::CastValue(right, TypeDesc::Float64())
                                        : Result<Value>(right));
      return EvalArithmetic(op, l2, r2);
    }
    return Status::TypeError("arithmetic on non-numeric values");
  }
  // Decimal path when both sides are int/decimal and the op is exact.
  const bool exact = !left.is_float() && !right.is_float();
  if (exact && (left.is_decimal() || right.is_decimal()) &&
      (op == BinaryOp::kAdd || op == BinaryOp::kSub || op == BinaryOp::kMul)) {
    Decimal l = left.is_decimal() ? left.decimal_value() : Decimal::FromInt64(left.int_value(), 0);
    Decimal r =
        right.is_decimal() ? right.decimal_value() : Decimal::FromInt64(right.int_value(), 0);
    Result<Decimal> out = op == BinaryOp::kAdd   ? l.Add(r)
                          : op == BinaryOp::kSub ? l.Subtract(r)
                                                 : l.Multiply(r);
    HQ_RETURN_NOT_OK(out.status());
    return Value::Dec(out.ValueOrDie());
  }
  if (left.is_int() && right.is_int()) {
    int64_t a = left.int_value();
    int64_t b = right.int_value();
    int64_t out;
    // Integer-arithmetic subset; anything else falls to the float path or
    // the unsupported-operator error below.
    switch (op) {  // hqcheck:allow(enum-switch)
      case BinaryOp::kAdd:
        if (__builtin_add_overflow(a, b, &out)) return Status::ConversionError("integer overflow");
        return Value::Int(out);
      case BinaryOp::kSub:
        if (__builtin_sub_overflow(a, b, &out)) return Status::ConversionError("integer overflow");
        return Value::Int(out);
      case BinaryOp::kMul:
        if (__builtin_mul_overflow(a, b, &out)) return Status::ConversionError("integer overflow");
        return Value::Int(out);
      case BinaryOp::kDiv:
        if (b == 0) return Status::ConversionError("division by zero");
        return Value::Int(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::ConversionError("division by zero");
        return Value::Int(a % b);
      default:
        return Status::Internal("not an arithmetic op");
    }
  }
  double a = AsDouble(left);
  double b = AsDouble(right);
  // Float-arithmetic subset; comparisons were dispatched above and unknown
  // operators fall through to the unsupported-operator error.
  switch (op) {  // hqcheck:allow(enum-switch)
    case BinaryOp::kAdd:
      return Value::Float(a + b);
    case BinaryOp::kSub:
      return Value::Float(a - b);
    case BinaryOp::kMul:
      return Value::Float(a * b);
    case BinaryOp::kDiv:
      if (b == 0) return Status::ConversionError("division by zero");
      return Value::Float(a / b);
    case BinaryOp::kMod:
      if (b == 0) return Status::ConversionError("division by zero");
      return Value::Float(std::fmod(a, b));
    default:
      return Status::Internal("not an arithmetic op");
  }
}

std::string ToText(const Value& v) {
  if (v.is_string()) return v.string_value();
  return types::ValueToCdwText(v);
}

Result<Value> EvalFunction(const sql::FunctionExpr& fn, const EvalContext& ctx) {
  if (IsAggregateFunction(fn.name)) {
    return Status::Invalid("aggregate function " + fn.name +
                           " is not allowed in this context");
  }
  // Legacy-only functions must have been transpiled away.
  if (EqualsIgnoreCase(fn.name, "ZEROIFNULL") || EqualsIgnoreCase(fn.name, "NULLIFZERO") ||
      EqualsIgnoreCase(fn.name, "INDEX") || EqualsIgnoreCase(fn.name, "CHARACTERS")) {
    return Status::NotImplemented("function " + fn.name +
                                  " is a legacy-EDW construct the CDW does not support "
                                  "(requires Hyper-Q transpilation)");
  }

  std::vector<Value> args;
  args.reserve(fn.args.size());
  for (const auto& a : fn.args) {
    HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*a, ctx));
    args.push_back(std::move(v));
  }
  auto need_args = [&](size_t lo, size_t hi) -> Status {
    if (args.size() < lo || args.size() > hi) {
      return Status::Invalid(fn.name + ": wrong argument count");
    }
    return Status::OK();
  };

  if (EqualsIgnoreCase(fn.name, "TRIM") || EqualsIgnoreCase(fn.name, "LTRIM") ||
      EqualsIgnoreCase(fn.name, "RTRIM")) {
    HQ_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].is_null()) return Value::Null();
    std::string s = ToText(args[0]);
    size_t b = 0;
    size_t e = s.size();
    if (!EqualsIgnoreCase(fn.name, "RTRIM")) {
      while (b < e && s[b] == ' ') ++b;
    }
    if (!EqualsIgnoreCase(fn.name, "LTRIM")) {
      while (e > b && s[e - 1] == ' ') --e;
    }
    return Value::String(s.substr(b, e - b));
  }
  if (EqualsIgnoreCase(fn.name, "UPPER")) {
    HQ_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].is_null()) return Value::Null();
    return Value::String(common::ToUpper(ToText(args[0])));
  }
  if (EqualsIgnoreCase(fn.name, "LOWER")) {
    HQ_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].is_null()) return Value::Null();
    return Value::String(common::ToLower(ToText(args[0])));
  }
  if (EqualsIgnoreCase(fn.name, "LENGTH")) {
    HQ_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].is_null()) return Value::Null();
    return Value::Int(static_cast<int64_t>(ToText(args[0]).size()));
  }
  if (EqualsIgnoreCase(fn.name, "SUBSTR")) {
    HQ_RETURN_NOT_OK(need_args(2, 3));
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    std::string s = ToText(args[0]);
    HQ_ASSIGN_OR_RETURN(Value start_v, types::CastValue(args[1], TypeDesc::Int64()));
    int64_t start = start_v.int_value();
    int64_t len = static_cast<int64_t>(s.size());
    if (args.size() == 3) {
      if (args[2].is_null()) return Value::Null();
      HQ_ASSIGN_OR_RETURN(Value len_v, types::CastValue(args[2], TypeDesc::Int64()));
      len = len_v.int_value();
    }
    if (len < 0) return Status::Invalid("SUBSTR: negative length");
    // 1-based; positions before 1 shrink the window (SQL semantics).
    int64_t begin = start - 1;
    if (begin < 0) {
      len += begin;
      begin = 0;
    }
    if (begin >= static_cast<int64_t>(s.size()) || len <= 0) return Value::String("");
    len = std::min<int64_t>(len, static_cast<int64_t>(s.size()) - begin);
    return Value::String(s.substr(static_cast<size_t>(begin), static_cast<size_t>(len)));
  }
  if (EqualsIgnoreCase(fn.name, "POSITION")) {
    HQ_RETURN_NOT_OK(need_args(2, 2));
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    std::string needle = ToText(args[0]);
    std::string hay = ToText(args[1]);
    size_t pos = hay.find(needle);
    return Value::Int(pos == std::string::npos ? 0 : static_cast<int64_t>(pos) + 1);
  }
  if (EqualsIgnoreCase(fn.name, "COALESCE")) {
    if (args.empty()) return Status::Invalid("COALESCE needs arguments");
    for (const auto& a : args) {
      if (!a.is_null()) return a;
    }
    return Value::Null();
  }
  if (EqualsIgnoreCase(fn.name, "NULLIF")) {
    HQ_RETURN_NOT_OK(need_args(2, 2));
    if (args[0].is_null()) return Value::Null();
    if (args[1].is_null()) return args[0];
    HQ_ASSIGN_OR_RETURN(int cmp, CompareValues(args[0], args[1]));
    return cmp == 0 ? Value::Null() : args[0];
  }
  if (EqualsIgnoreCase(fn.name, "ABS")) {
    HQ_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].is_int()) return Value::Int(std::llabs(args[0].int_value()));
    if (args[0].is_decimal()) {
      const Decimal& d = args[0].decimal_value();
      return Value::Dec(Decimal(std::llabs(d.unscaled()), d.scale()));
    }
    if (args[0].is_float()) return Value::Float(std::fabs(args[0].float_value()));
    return Status::TypeError("ABS on non-numeric value");
  }
  if (EqualsIgnoreCase(fn.name, "ROUND")) {
    HQ_RETURN_NOT_OK(need_args(1, 2));
    if (args[0].is_null()) return Value::Null();
    int64_t digits = 0;
    if (args.size() == 2) {
      if (args[1].is_null()) return Value::Null();
      HQ_ASSIGN_OR_RETURN(Value d, types::CastValue(args[1], TypeDesc::Int64()));
      digits = d.int_value();
    }
    if (args[0].is_decimal()) {
      HQ_ASSIGN_OR_RETURN(Decimal r, args[0].decimal_value().Rescale(
                                          static_cast<int32_t>(std::max<int64_t>(0, digits))));
      return Value::Dec(r);
    }
    double scale = std::pow(10.0, static_cast<double>(digits));
    HQ_ASSIGN_OR_RETURN(Value x, types::CastValue(args[0], TypeDesc::Float64()));
    return Value::Float(std::round(x.float_value() * scale) / scale);
  }
  if (EqualsIgnoreCase(fn.name, "FLOOR") || EqualsIgnoreCase(fn.name, "CEIL") ||
      EqualsIgnoreCase(fn.name, "CEILING")) {
    HQ_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].is_null()) return Value::Null();
    HQ_ASSIGN_OR_RETURN(Value x, types::CastValue(args[0], TypeDesc::Float64()));
    double v = x.float_value();
    return Value::Float(EqualsIgnoreCase(fn.name, "FLOOR") ? std::floor(v) : std::ceil(v));
  }
  if (EqualsIgnoreCase(fn.name, "POWER")) {
    HQ_RETURN_NOT_OK(need_args(2, 2));
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    HQ_ASSIGN_OR_RETURN(Value a, types::CastValue(args[0], TypeDesc::Float64()));
    HQ_ASSIGN_OR_RETURN(Value b, types::CastValue(args[1], TypeDesc::Float64()));
    return Value::Float(std::pow(a.float_value(), b.float_value()));
  }
  if (EqualsIgnoreCase(fn.name, "MOD")) {
    HQ_RETURN_NOT_OK(need_args(2, 2));
    return EvalArithmetic(BinaryOp::kMod, args[0], args[1]);
  }
  if (EqualsIgnoreCase(fn.name, "TO_DATE")) {
    HQ_RETURN_NOT_OK(need_args(2, 2));
    if (args[0].is_null()) return Value::Null();
    if (!args[1].is_string()) return Status::TypeError("TO_DATE format must be a string");
    HQ_ASSIGN_OR_RETURN(types::DateDays days,
                        types::ParseDate(ToText(args[0]), args[1].string_value()));
    return Value::Date(days);
  }
  if (EqualsIgnoreCase(fn.name, "TO_TIMESTAMP")) {
    HQ_RETURN_NOT_OK(need_args(1, 2));
    if (args[0].is_null()) return Value::Null();
    HQ_ASSIGN_OR_RETURN(types::TimestampMicros ts, types::ParseTimestampIso(ToText(args[0])));
    return Value::Timestamp(ts);
  }
  if (EqualsIgnoreCase(fn.name, "EXTRACT")) {
    HQ_RETURN_NOT_OK(need_args(2, 2));
    if (!args[0].is_string()) return Status::TypeError("EXTRACT unit must be a string");
    if (args[1].is_null()) return Value::Null();
    HQ_ASSIGN_OR_RETURN(Value d, types::CastValue(args[1], TypeDesc::Date()));
    types::YearMonthDay ymd = types::YmdFromDays(d.date_days());
    const std::string& unit = args[0].string_value();
    if (EqualsIgnoreCase(unit, "YEAR")) return Value::Int(ymd.year);
    if (EqualsIgnoreCase(unit, "MONTH")) return Value::Int(ymd.month);
    if (EqualsIgnoreCase(unit, "DAY")) return Value::Int(ymd.day);
    return Status::Invalid("unsupported EXTRACT unit: " + unit);
  }
  if (EqualsIgnoreCase(fn.name, "ADD_MONTHS")) {
    HQ_RETURN_NOT_OK(need_args(2, 2));
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    HQ_ASSIGN_OR_RETURN(Value d, types::CastValue(args[0], TypeDesc::Date()));
    HQ_ASSIGN_OR_RETURN(Value n, types::CastValue(args[1], TypeDesc::Int64()));
    types::YearMonthDay ymd = types::YmdFromDays(d.date_days());
    int64_t months = (ymd.year * 12 + ymd.month - 1) + n.int_value();
    int32_t year = static_cast<int32_t>(months / 12);
    int32_t month = static_cast<int32_t>(months % 12) + 1;
    // Clamp to the target month's last day (Oracle/Teradata semantics).
    int32_t day = ymd.day;
    while (day > 28 && !types::IsValidDate(year, month, day)) --day;
    HQ_ASSIGN_OR_RETURN(types::DateDays out, types::DaysFromYmd(year, month, day));
    return Value::Date(out);
  }
  if (EqualsIgnoreCase(fn.name, "LAST_DAY")) {
    HQ_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].is_null()) return Value::Null();
    HQ_ASSIGN_OR_RETURN(Value d, types::CastValue(args[0], TypeDesc::Date()));
    types::YearMonthDay ymd = types::YmdFromDays(d.date_days());
    int32_t day = 31;
    while (!types::IsValidDate(ymd.year, ymd.month, day)) --day;
    HQ_ASSIGN_OR_RETURN(types::DateDays out, types::DaysFromYmd(ymd.year, ymd.month, day));
    return Value::Date(out);
  }
  if (EqualsIgnoreCase(fn.name, "TO_CHAR")) {
    HQ_RETURN_NOT_OK(need_args(1, 2));
    if (args[0].is_null()) return Value::Null();
    if (args.size() == 1) return Value::String(ToText(args[0]));
    if (!args[1].is_string()) return Status::TypeError("TO_CHAR format must be a string");
    if (args[0].is_date()) {
      HQ_ASSIGN_OR_RETURN(std::string out,
                          types::FormatDate(args[0].date_days(), args[1].string_value()));
      return Value::String(out);
    }
    return Value::String(ToText(args[0]));
  }
  return Status::NotImplemented("unknown function: " + fn.name);
}

}  // namespace

Result<Value> EvaluateExpr(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return static_cast<const sql::LiteralExpr&>(expr).value;
    case ExprKind::kColumnRef: {
      const auto& col = static_cast<const sql::ColumnRefExpr&>(expr);
      return ctx.ResolveColumn(col.table, col.column);
    }
    case ExprKind::kPlaceholder:
      return Status::Invalid(
          ":placeholders cannot execute in the CDW; Hyper-Q must bind them to staging columns");
    case ExprKind::kStar:
      return Status::Invalid("'*' is not a scalar expression");
    case ExprKind::kUnary: {
      const auto& u = static_cast<const sql::UnaryExpr&>(expr);
      HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*u.operand, ctx));
      if (v.is_null()) return Value::Null();
      if (u.op == sql::UnaryOp::kNot) {
        if (!v.is_boolean()) return Status::TypeError("NOT on non-boolean");
        return Value::Boolean(!v.boolean());
      }
      // Negation.
      if (v.is_int()) return Value::Int(-v.int_value());
      if (v.is_float()) return Value::Float(-v.float_value());
      if (v.is_decimal()) {
        return Value::Dec(Decimal(-v.decimal_value().unscaled(), v.decimal_value().scale()));
      }
      return Status::TypeError("negation of non-numeric value");
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      if (b.op == BinaryOp::kPow) {
        return Status::NotImplemented(
            "'**' is a legacy-EDW operator the CDW does not support (requires Hyper-Q "
            "transpilation)");
      }
      if (b.op == BinaryOp::kAnd || b.op == BinaryOp::kOr) {
        HQ_ASSIGN_OR_RETURN(Value l, EvaluateExpr(*b.left, ctx));
        HQ_ASSIGN_OR_RETURN(Value r, EvaluateExpr(*b.right, ctx));
        // Three-valued logic.
        auto truth = [](const Value& v) -> Result<int> {
          if (v.is_null()) return -1;
          if (!v.is_boolean()) return Status::TypeError("boolean operand expected");
          return v.boolean() ? 1 : 0;
        };
        HQ_ASSIGN_OR_RETURN(int lt, truth(l));
        HQ_ASSIGN_OR_RETURN(int rt, truth(r));
        if (b.op == BinaryOp::kAnd) {
          if (lt == 0 || rt == 0) return Value::Boolean(false);
          if (lt == -1 || rt == -1) return Value::Null();
          return Value::Boolean(true);
        }
        if (lt == 1 || rt == 1) return Value::Boolean(true);
        if (lt == -1 || rt == -1) return Value::Null();
        return Value::Boolean(false);
      }
      HQ_ASSIGN_OR_RETURN(Value left, EvaluateExpr(*b.left, ctx));
      HQ_ASSIGN_OR_RETURN(Value right, EvaluateExpr(*b.right, ctx));
      // Routing switch: arithmetic vs comparison vs logical groups; the
      // grouped helpers own full coverage of their subsets.
      switch (b.op) {  // hqcheck:allow(enum-switch)
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return EvalArithmetic(b.op, left, right);
        case BinaryOp::kConcat: {
          if (left.is_null() || right.is_null()) return Value::Null();
          return Value::String(ToText(left) + ToText(right));
        }
        default:
          return EvalComparison(b.op, left, right);
      }
    }
    case ExprKind::kFunction:
      return EvalFunction(static_cast<const sql::FunctionExpr&>(expr), ctx);
    case ExprKind::kCast: {
      const auto& cast = static_cast<const sql::CastExpr&>(expr);
      if (!cast.format.empty()) {
        return Status::NotImplemented(
            "CAST ... FORMAT is a legacy-EDW construct the CDW does not support (requires "
            "Hyper-Q transpilation)");
      }
      HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*cast.operand, ctx));
      return types::CastValue(v, cast.target);
    }
    case ExprKind::kCase: {
      const auto& c = static_cast<const sql::CaseExpr&>(expr);
      Value operand;
      bool has_operand = static_cast<bool>(c.operand);
      if (has_operand) {
        HQ_ASSIGN_OR_RETURN(operand, EvaluateExpr(*c.operand, ctx));
      }
      for (const auto& [when, then] : c.whens) {
        HQ_ASSIGN_OR_RETURN(Value w, EvaluateExpr(*when, ctx));
        bool matched = false;
        if (has_operand) {
          if (!operand.is_null() && !w.is_null()) {
            HQ_ASSIGN_OR_RETURN(int cmp, CompareValues(operand, w));
            matched = cmp == 0;
          }
        } else {
          matched = w.is_boolean() && w.boolean();
        }
        if (matched) return EvaluateExpr(*then, ctx);
      }
      if (c.else_expr) return EvaluateExpr(*c.else_expr, ctx);
      return Value::Null();
    }
    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const sql::IsNullExpr&>(expr);
      HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*isn.operand, ctx));
      return Value::Boolean(isn.negated ? !v.is_null() : v.is_null());
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*in.operand, ctx));
      if (v.is_null()) return Value::Null();
      bool any_null = false;
      for (const auto& e : in.list) {
        HQ_ASSIGN_OR_RETURN(Value item, EvaluateExpr(*e, ctx));
        if (item.is_null()) {
          any_null = true;
          continue;
        }
        HQ_ASSIGN_OR_RETURN(int cmp, CompareValues(v, item));
        if (cmp == 0) return Value::Boolean(!in.negated);
      }
      if (any_null) return Value::Null();
      return Value::Boolean(in.negated);
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const sql::BetweenExpr&>(expr);
      HQ_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*bt.operand, ctx));
      HQ_ASSIGN_OR_RETURN(Value lo, EvaluateExpr(*bt.low, ctx));
      HQ_ASSIGN_OR_RETURN(Value hi, EvaluateExpr(*bt.high, ctx));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      HQ_ASSIGN_OR_RETURN(int cl, CompareValues(v, lo));
      HQ_ASSIGN_OR_RETURN(int ch, CompareValues(v, hi));
      bool inside = cl >= 0 && ch <= 0;
      return Value::Boolean(bt.negated ? !inside : inside);
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace hyperq::cdw
