# Empty compiler generated dependencies file for bench_fig8_row_width.
# This may be replaced when dependencies are built.
