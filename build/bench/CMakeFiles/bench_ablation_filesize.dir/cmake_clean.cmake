file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_filesize.dir/bench_ablation_filesize.cc.o"
  "CMakeFiles/bench_ablation_filesize.dir/bench_ablation_filesize.cc.o.d"
  "bench_ablation_filesize"
  "bench_ablation_filesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_filesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
