# Empty compiler generated dependencies file for bench_ablation_filesize.
# This may be replaced when dependencies are built.
