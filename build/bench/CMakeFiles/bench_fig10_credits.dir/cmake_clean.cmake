file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_credits.dir/bench_fig10_credits.cc.o"
  "CMakeFiles/bench_fig10_credits.dir/bench_fig10_credits.cc.o.d"
  "bench_fig10_credits"
  "bench_fig10_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
