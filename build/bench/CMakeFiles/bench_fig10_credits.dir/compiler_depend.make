# Empty compiler generated dependencies file for bench_fig10_credits.
# This may be replaced when dependencies are built.
