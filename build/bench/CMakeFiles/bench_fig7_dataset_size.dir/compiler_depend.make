# Empty compiler generated dependencies file for bench_fig7_dataset_size.
# This may be replaced when dependencies are built.
