file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_errors.dir/bench_fig11_errors.cc.o"
  "CMakeFiles/bench_fig11_errors.dir/bench_fig11_errors.cc.o.d"
  "bench_fig11_errors"
  "bench_fig11_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
