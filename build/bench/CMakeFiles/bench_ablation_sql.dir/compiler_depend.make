# Empty compiler generated dependencies file for bench_ablation_sql.
# This may be replaced when dependencies are built.
