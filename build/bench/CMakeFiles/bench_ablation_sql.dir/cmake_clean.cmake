file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sql.dir/bench_ablation_sql.cc.o"
  "CMakeFiles/bench_ablation_sql.dir/bench_ablation_sql.cc.o.d"
  "bench_ablation_sql"
  "bench_ablation_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
