file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cores.dir/bench_fig9_cores.cc.o"
  "CMakeFiles/bench_fig9_cores.dir/bench_fig9_cores.cc.o.d"
  "bench_fig9_cores"
  "bench_fig9_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
