# Empty dependencies file for bench_fig9_cores.
# This may be replaced when dependencies are built.
