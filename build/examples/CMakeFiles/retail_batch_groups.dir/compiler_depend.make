# Empty compiler generated dependencies file for retail_batch_groups.
# This may be replaced when dependencies are built.
