file(REMOVE_RECURSE
  "CMakeFiles/retail_batch_groups.dir/retail_batch_groups.cpp.o"
  "CMakeFiles/retail_batch_groups.dir/retail_batch_groups.cpp.o.d"
  "retail_batch_groups"
  "retail_batch_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_batch_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
