# Empty compiler generated dependencies file for workload_analysis.
# This may be replaced when dependencies are built.
