file(REMOVE_RECURSE
  "CMakeFiles/workload_analysis.dir/workload_analysis.cpp.o"
  "CMakeFiles/workload_analysis.dir/workload_analysis.cpp.o.d"
  "workload_analysis"
  "workload_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
