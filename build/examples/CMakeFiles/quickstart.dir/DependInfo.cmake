
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hyperq/CMakeFiles/hq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/etlscript/CMakeFiles/hq_etlscript.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tdf/CMakeFiles/hq_tdf.dir/DependInfo.cmake"
  "/root/repo/build/src/cdw/CMakeFiles/hq_cdw.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/hq_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/legacy/CMakeFiles/hq_legacy.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/hq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudstore/CMakeFiles/hq_cloudstore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
