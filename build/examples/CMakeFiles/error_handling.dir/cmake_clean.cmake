file(REMOVE_RECURSE
  "CMakeFiles/error_handling.dir/error_handling.cpp.o"
  "CMakeFiles/error_handling.dir/error_handling.cpp.o.d"
  "error_handling"
  "error_handling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
