# Empty compiler generated dependencies file for error_handling.
# This may be replaced when dependencies are built.
