file(REMOVE_RECURSE
  "CMakeFiles/export_job.dir/export_job.cpp.o"
  "CMakeFiles/export_job.dir/export_job.cpp.o.d"
  "export_job"
  "export_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
