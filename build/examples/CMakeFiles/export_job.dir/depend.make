# Empty dependencies file for export_job.
# This may be replaced when dependencies are built.
