file(REMOVE_RECURSE
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/backpressure_test.cc.o"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/backpressure_test.cc.o.d"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/concurrent_jobs_test.cc.o"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/concurrent_jobs_test.cc.o.d"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/dml_variants_e2e_test.cc.o"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/dml_variants_e2e_test.cc.o.d"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/export_e2e_test.cc.o"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/export_e2e_test.cc.o.d"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/import_e2e_test.cc.o"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/import_e2e_test.cc.o.d"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/pipeline_property_test.cc.o"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/pipeline_property_test.cc.o.d"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/protocol_test.cc.o"
  "CMakeFiles/hyperq_e2e_test.dir/hyperq/protocol_test.cc.o.d"
  "hyperq_e2e_test"
  "hyperq_e2e_test.pdb"
  "hyperq_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperq_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
