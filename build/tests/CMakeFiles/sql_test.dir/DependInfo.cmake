
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sql/binder_test.cc" "tests/CMakeFiles/sql_test.dir/sql/binder_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql/binder_test.cc.o.d"
  "/root/repo/tests/sql/fuzz_roundtrip_test.cc" "tests/CMakeFiles/sql_test.dir/sql/fuzz_roundtrip_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql/fuzz_roundtrip_test.cc.o.d"
  "/root/repo/tests/sql/lexer_test.cc" "tests/CMakeFiles/sql_test.dir/sql/lexer_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql/lexer_test.cc.o.d"
  "/root/repo/tests/sql/parser_test.cc" "tests/CMakeFiles/sql_test.dir/sql/parser_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql/parser_test.cc.o.d"
  "/root/repo/tests/sql/printer_roundtrip_test.cc" "tests/CMakeFiles/sql_test.dir/sql/printer_roundtrip_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql/printer_roundtrip_test.cc.o.d"
  "/root/repo/tests/sql/transpiler_test.cc" "tests/CMakeFiles/sql_test.dir/sql/transpiler_test.cc.o" "gcc" "tests/CMakeFiles/sql_test.dir/sql/transpiler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hyperq/CMakeFiles/hq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/etlscript/CMakeFiles/hq_etlscript.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pipesim/CMakeFiles/hq_pipesim.dir/DependInfo.cmake"
  "/root/repo/build/src/qinsight/CMakeFiles/hq_qinsight.dir/DependInfo.cmake"
  "/root/repo/build/src/tdf/CMakeFiles/hq_tdf.dir/DependInfo.cmake"
  "/root/repo/build/src/cdw/CMakeFiles/hq_cdw.dir/DependInfo.cmake"
  "/root/repo/build/src/legacy/CMakeFiles/hq_legacy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudstore/CMakeFiles/hq_cloudstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/hq_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/hq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
