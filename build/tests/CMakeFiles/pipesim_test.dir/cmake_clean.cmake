file(REMOVE_RECURSE
  "CMakeFiles/pipesim_test.dir/pipesim/pipesim_test.cc.o"
  "CMakeFiles/pipesim_test.dir/pipesim/pipesim_test.cc.o.d"
  "pipesim_test"
  "pipesim_test.pdb"
  "pipesim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipesim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
