# Empty dependencies file for pipesim_test.
# This may be replaced when dependencies are built.
