file(REMOVE_RECURSE
  "CMakeFiles/hyperq_test.dir/hyperq/baseline_loader_test.cc.o"
  "CMakeFiles/hyperq_test.dir/hyperq/baseline_loader_test.cc.o.d"
  "CMakeFiles/hyperq_test.dir/hyperq/credit_manager_test.cc.o"
  "CMakeFiles/hyperq_test.dir/hyperq/credit_manager_test.cc.o.d"
  "CMakeFiles/hyperq_test.dir/hyperq/data_converter_test.cc.o"
  "CMakeFiles/hyperq_test.dir/hyperq/data_converter_test.cc.o.d"
  "CMakeFiles/hyperq_test.dir/hyperq/error_handler_test.cc.o"
  "CMakeFiles/hyperq_test.dir/hyperq/error_handler_test.cc.o.d"
  "CMakeFiles/hyperq_test.dir/hyperq/file_writer_test.cc.o"
  "CMakeFiles/hyperq_test.dir/hyperq/file_writer_test.cc.o.d"
  "CMakeFiles/hyperq_test.dir/hyperq/tdf_cursor_test.cc.o"
  "CMakeFiles/hyperq_test.dir/hyperq/tdf_cursor_test.cc.o.d"
  "hyperq_test"
  "hyperq_test.pdb"
  "hyperq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
