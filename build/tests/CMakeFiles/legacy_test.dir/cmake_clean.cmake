file(REMOVE_RECURSE
  "CMakeFiles/legacy_test.dir/legacy/message_stream_test.cc.o"
  "CMakeFiles/legacy_test.dir/legacy/message_stream_test.cc.o.d"
  "CMakeFiles/legacy_test.dir/legacy/parcel_test.cc.o"
  "CMakeFiles/legacy_test.dir/legacy/parcel_test.cc.o.d"
  "CMakeFiles/legacy_test.dir/legacy/row_format_test.cc.o"
  "CMakeFiles/legacy_test.dir/legacy/row_format_test.cc.o.d"
  "legacy_test"
  "legacy_test.pdb"
  "legacy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
