# Empty dependencies file for cloudstore_test.
# This may be replaced when dependencies are built.
