file(REMOVE_RECURSE
  "CMakeFiles/cloudstore_test.dir/cloudstore/bulk_loader_test.cc.o"
  "CMakeFiles/cloudstore_test.dir/cloudstore/bulk_loader_test.cc.o.d"
  "CMakeFiles/cloudstore_test.dir/cloudstore/compression_test.cc.o"
  "CMakeFiles/cloudstore_test.dir/cloudstore/compression_test.cc.o.d"
  "CMakeFiles/cloudstore_test.dir/cloudstore/object_store_test.cc.o"
  "CMakeFiles/cloudstore_test.dir/cloudstore/object_store_test.cc.o.d"
  "cloudstore_test"
  "cloudstore_test.pdb"
  "cloudstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
