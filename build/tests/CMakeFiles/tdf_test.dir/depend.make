# Empty dependencies file for tdf_test.
# This may be replaced when dependencies are built.
