file(REMOVE_RECURSE
  "CMakeFiles/tdf_test.dir/tdf/tdf_test.cc.o"
  "CMakeFiles/tdf_test.dir/tdf/tdf_test.cc.o.d"
  "tdf_test"
  "tdf_test.pdb"
  "tdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
