file(REMOVE_RECURSE
  "CMakeFiles/qinsight_test.dir/qinsight/analyzer_test.cc.o"
  "CMakeFiles/qinsight_test.dir/qinsight/analyzer_test.cc.o.d"
  "qinsight_test"
  "qinsight_test.pdb"
  "qinsight_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qinsight_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
