# Empty dependencies file for qinsight_test.
# This may be replaced when dependencies are built.
