# Empty dependencies file for cdw_test.
# This may be replaced when dependencies are built.
