file(REMOVE_RECURSE
  "CMakeFiles/cdw_test.dir/cdw/catalog_test.cc.o"
  "CMakeFiles/cdw_test.dir/cdw/catalog_test.cc.o.d"
  "CMakeFiles/cdw_test.dir/cdw/copy_test.cc.o"
  "CMakeFiles/cdw_test.dir/cdw/copy_test.cc.o.d"
  "CMakeFiles/cdw_test.dir/cdw/executor_test.cc.o"
  "CMakeFiles/cdw_test.dir/cdw/executor_test.cc.o.d"
  "CMakeFiles/cdw_test.dir/cdw/expr_eval_test.cc.o"
  "CMakeFiles/cdw_test.dir/cdw/expr_eval_test.cc.o.d"
  "CMakeFiles/cdw_test.dir/cdw/staging_format_test.cc.o"
  "CMakeFiles/cdw_test.dir/cdw/staging_format_test.cc.o.d"
  "CMakeFiles/cdw_test.dir/cdw/table_test.cc.o"
  "CMakeFiles/cdw_test.dir/cdw/table_test.cc.o.d"
  "cdw_test"
  "cdw_test.pdb"
  "cdw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
