# Empty dependencies file for etlscript_test.
# This may be replaced when dependencies are built.
