file(REMOVE_RECURSE
  "CMakeFiles/etlscript_test.dir/etlscript/etl_client_e2e_test.cc.o"
  "CMakeFiles/etlscript_test.dir/etlscript/etl_client_e2e_test.cc.o.d"
  "CMakeFiles/etlscript_test.dir/etlscript/script_parser_test.cc.o"
  "CMakeFiles/etlscript_test.dir/etlscript/script_parser_test.cc.o.d"
  "etlscript_test"
  "etlscript_test.pdb"
  "etlscript_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etlscript_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
