# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/legacy_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/tdf_test[1]_include.cmake")
include("/root/repo/build/tests/cloudstore_test[1]_include.cmake")
include("/root/repo/build/tests/cdw_test[1]_include.cmake")
include("/root/repo/build/tests/hyperq_test[1]_include.cmake")
include("/root/repo/build/tests/hyperq_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/etlscript_test[1]_include.cmake")
include("/root/repo/build/tests/pipesim_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/qinsight_test[1]_include.cmake")
