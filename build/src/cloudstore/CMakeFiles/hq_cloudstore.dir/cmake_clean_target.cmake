file(REMOVE_RECURSE
  "libhq_cloudstore.a"
)
