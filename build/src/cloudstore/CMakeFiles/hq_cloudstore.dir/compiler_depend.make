# Empty compiler generated dependencies file for hq_cloudstore.
# This may be replaced when dependencies are built.
