file(REMOVE_RECURSE
  "CMakeFiles/hq_cloudstore.dir/bulk_loader.cc.o"
  "CMakeFiles/hq_cloudstore.dir/bulk_loader.cc.o.d"
  "CMakeFiles/hq_cloudstore.dir/compression.cc.o"
  "CMakeFiles/hq_cloudstore.dir/compression.cc.o.d"
  "CMakeFiles/hq_cloudstore.dir/object_store.cc.o"
  "CMakeFiles/hq_cloudstore.dir/object_store.cc.o.d"
  "libhq_cloudstore.a"
  "libhq_cloudstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_cloudstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
