
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloudstore/bulk_loader.cc" "src/cloudstore/CMakeFiles/hq_cloudstore.dir/bulk_loader.cc.o" "gcc" "src/cloudstore/CMakeFiles/hq_cloudstore.dir/bulk_loader.cc.o.d"
  "/root/repo/src/cloudstore/compression.cc" "src/cloudstore/CMakeFiles/hq_cloudstore.dir/compression.cc.o" "gcc" "src/cloudstore/CMakeFiles/hq_cloudstore.dir/compression.cc.o.d"
  "/root/repo/src/cloudstore/object_store.cc" "src/cloudstore/CMakeFiles/hq_cloudstore.dir/object_store.cc.o" "gcc" "src/cloudstore/CMakeFiles/hq_cloudstore.dir/object_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
