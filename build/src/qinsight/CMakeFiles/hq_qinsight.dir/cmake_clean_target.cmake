file(REMOVE_RECURSE
  "libhq_qinsight.a"
)
