# Empty dependencies file for hq_qinsight.
# This may be replaced when dependencies are built.
