file(REMOVE_RECURSE
  "CMakeFiles/hq_qinsight.dir/analyzer.cc.o"
  "CMakeFiles/hq_qinsight.dir/analyzer.cc.o.d"
  "libhq_qinsight.a"
  "libhq_qinsight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_qinsight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
