file(REMOVE_RECURSE
  "libhq_legacy.a"
)
