
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/legacy/message_stream.cc" "src/legacy/CMakeFiles/hq_legacy.dir/message_stream.cc.o" "gcc" "src/legacy/CMakeFiles/hq_legacy.dir/message_stream.cc.o.d"
  "/root/repo/src/legacy/parcel.cc" "src/legacy/CMakeFiles/hq_legacy.dir/parcel.cc.o" "gcc" "src/legacy/CMakeFiles/hq_legacy.dir/parcel.cc.o.d"
  "/root/repo/src/legacy/row_format.cc" "src/legacy/CMakeFiles/hq_legacy.dir/row_format.cc.o" "gcc" "src/legacy/CMakeFiles/hq_legacy.dir/row_format.cc.o.d"
  "/root/repo/src/legacy/session.cc" "src/legacy/CMakeFiles/hq_legacy.dir/session.cc.o" "gcc" "src/legacy/CMakeFiles/hq_legacy.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/hq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hq_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
