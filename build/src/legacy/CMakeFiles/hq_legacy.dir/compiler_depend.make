# Empty compiler generated dependencies file for hq_legacy.
# This may be replaced when dependencies are built.
