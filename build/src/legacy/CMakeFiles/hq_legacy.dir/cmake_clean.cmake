file(REMOVE_RECURSE
  "CMakeFiles/hq_legacy.dir/message_stream.cc.o"
  "CMakeFiles/hq_legacy.dir/message_stream.cc.o.d"
  "CMakeFiles/hq_legacy.dir/parcel.cc.o"
  "CMakeFiles/hq_legacy.dir/parcel.cc.o.d"
  "CMakeFiles/hq_legacy.dir/row_format.cc.o"
  "CMakeFiles/hq_legacy.dir/row_format.cc.o.d"
  "CMakeFiles/hq_legacy.dir/session.cc.o"
  "CMakeFiles/hq_legacy.dir/session.cc.o.d"
  "libhq_legacy.a"
  "libhq_legacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
