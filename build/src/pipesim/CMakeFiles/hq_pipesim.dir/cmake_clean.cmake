file(REMOVE_RECURSE
  "CMakeFiles/hq_pipesim.dir/pipesim.cc.o"
  "CMakeFiles/hq_pipesim.dir/pipesim.cc.o.d"
  "libhq_pipesim.a"
  "libhq_pipesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_pipesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
