file(REMOVE_RECURSE
  "libhq_pipesim.a"
)
