# Empty compiler generated dependencies file for hq_pipesim.
# This may be replaced when dependencies are built.
