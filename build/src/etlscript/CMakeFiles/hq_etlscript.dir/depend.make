# Empty dependencies file for hq_etlscript.
# This may be replaced when dependencies are built.
