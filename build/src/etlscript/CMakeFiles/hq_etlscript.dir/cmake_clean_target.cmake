file(REMOVE_RECURSE
  "libhq_etlscript.a"
)
