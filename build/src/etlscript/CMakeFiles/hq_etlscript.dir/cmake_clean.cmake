file(REMOVE_RECURSE
  "CMakeFiles/hq_etlscript.dir/etl_client.cc.o"
  "CMakeFiles/hq_etlscript.dir/etl_client.cc.o.d"
  "CMakeFiles/hq_etlscript.dir/script_parser.cc.o"
  "CMakeFiles/hq_etlscript.dir/script_parser.cc.o.d"
  "libhq_etlscript.a"
  "libhq_etlscript.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_etlscript.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
