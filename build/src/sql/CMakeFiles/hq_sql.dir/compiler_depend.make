# Empty compiler generated dependencies file for hq_sql.
# This may be replaced when dependencies are built.
