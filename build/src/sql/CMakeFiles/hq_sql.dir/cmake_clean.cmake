file(REMOVE_RECURSE
  "CMakeFiles/hq_sql.dir/binder.cc.o"
  "CMakeFiles/hq_sql.dir/binder.cc.o.d"
  "CMakeFiles/hq_sql.dir/lexer.cc.o"
  "CMakeFiles/hq_sql.dir/lexer.cc.o.d"
  "CMakeFiles/hq_sql.dir/parser.cc.o"
  "CMakeFiles/hq_sql.dir/parser.cc.o.d"
  "CMakeFiles/hq_sql.dir/printer.cc.o"
  "CMakeFiles/hq_sql.dir/printer.cc.o.d"
  "CMakeFiles/hq_sql.dir/transpiler.cc.o"
  "CMakeFiles/hq_sql.dir/transpiler.cc.o.d"
  "libhq_sql.a"
  "libhq_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
