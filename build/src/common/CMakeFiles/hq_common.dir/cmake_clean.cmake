file(REMOVE_RECURSE
  "CMakeFiles/hq_common.dir/bytes.cc.o"
  "CMakeFiles/hq_common.dir/bytes.cc.o.d"
  "CMakeFiles/hq_common.dir/logging.cc.o"
  "CMakeFiles/hq_common.dir/logging.cc.o.d"
  "CMakeFiles/hq_common.dir/random.cc.o"
  "CMakeFiles/hq_common.dir/random.cc.o.d"
  "CMakeFiles/hq_common.dir/status.cc.o"
  "CMakeFiles/hq_common.dir/status.cc.o.d"
  "CMakeFiles/hq_common.dir/string_util.cc.o"
  "CMakeFiles/hq_common.dir/string_util.cc.o.d"
  "CMakeFiles/hq_common.dir/thread_pool.cc.o"
  "CMakeFiles/hq_common.dir/thread_pool.cc.o.d"
  "libhq_common.a"
  "libhq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
