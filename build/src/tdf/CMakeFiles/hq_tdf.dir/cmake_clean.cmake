file(REMOVE_RECURSE
  "CMakeFiles/hq_tdf.dir/tdf.cc.o"
  "CMakeFiles/hq_tdf.dir/tdf.cc.o.d"
  "libhq_tdf.a"
  "libhq_tdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_tdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
