# Empty compiler generated dependencies file for hq_tdf.
# This may be replaced when dependencies are built.
