file(REMOVE_RECURSE
  "libhq_tdf.a"
)
