file(REMOVE_RECURSE
  "libhq_net.a"
)
