# Empty dependencies file for hq_net.
# This may be replaced when dependencies are built.
