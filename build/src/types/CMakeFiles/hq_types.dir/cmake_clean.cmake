file(REMOVE_RECURSE
  "CMakeFiles/hq_types.dir/date.cc.o"
  "CMakeFiles/hq_types.dir/date.cc.o.d"
  "CMakeFiles/hq_types.dir/decimal.cc.o"
  "CMakeFiles/hq_types.dir/decimal.cc.o.d"
  "CMakeFiles/hq_types.dir/schema.cc.o"
  "CMakeFiles/hq_types.dir/schema.cc.o.d"
  "CMakeFiles/hq_types.dir/type.cc.o"
  "CMakeFiles/hq_types.dir/type.cc.o.d"
  "CMakeFiles/hq_types.dir/type_mapping.cc.o"
  "CMakeFiles/hq_types.dir/type_mapping.cc.o.d"
  "CMakeFiles/hq_types.dir/value.cc.o"
  "CMakeFiles/hq_types.dir/value.cc.o.d"
  "libhq_types.a"
  "libhq_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
