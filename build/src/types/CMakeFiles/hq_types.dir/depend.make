# Empty dependencies file for hq_types.
# This may be replaced when dependencies are built.
