file(REMOVE_RECURSE
  "libhq_types.a"
)
