
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdw/catalog.cc" "src/cdw/CMakeFiles/hq_cdw.dir/catalog.cc.o" "gcc" "src/cdw/CMakeFiles/hq_cdw.dir/catalog.cc.o.d"
  "/root/repo/src/cdw/cdw_server.cc" "src/cdw/CMakeFiles/hq_cdw.dir/cdw_server.cc.o" "gcc" "src/cdw/CMakeFiles/hq_cdw.dir/cdw_server.cc.o.d"
  "/root/repo/src/cdw/copy.cc" "src/cdw/CMakeFiles/hq_cdw.dir/copy.cc.o" "gcc" "src/cdw/CMakeFiles/hq_cdw.dir/copy.cc.o.d"
  "/root/repo/src/cdw/executor.cc" "src/cdw/CMakeFiles/hq_cdw.dir/executor.cc.o" "gcc" "src/cdw/CMakeFiles/hq_cdw.dir/executor.cc.o.d"
  "/root/repo/src/cdw/expr_eval.cc" "src/cdw/CMakeFiles/hq_cdw.dir/expr_eval.cc.o" "gcc" "src/cdw/CMakeFiles/hq_cdw.dir/expr_eval.cc.o.d"
  "/root/repo/src/cdw/staging_format.cc" "src/cdw/CMakeFiles/hq_cdw.dir/staging_format.cc.o" "gcc" "src/cdw/CMakeFiles/hq_cdw.dir/staging_format.cc.o.d"
  "/root/repo/src/cdw/table.cc" "src/cdw/CMakeFiles/hq_cdw.dir/table.cc.o" "gcc" "src/cdw/CMakeFiles/hq_cdw.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/hq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/hq_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudstore/CMakeFiles/hq_cloudstore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
