# Empty dependencies file for hq_cdw.
# This may be replaced when dependencies are built.
