file(REMOVE_RECURSE
  "CMakeFiles/hq_cdw.dir/catalog.cc.o"
  "CMakeFiles/hq_cdw.dir/catalog.cc.o.d"
  "CMakeFiles/hq_cdw.dir/cdw_server.cc.o"
  "CMakeFiles/hq_cdw.dir/cdw_server.cc.o.d"
  "CMakeFiles/hq_cdw.dir/copy.cc.o"
  "CMakeFiles/hq_cdw.dir/copy.cc.o.d"
  "CMakeFiles/hq_cdw.dir/executor.cc.o"
  "CMakeFiles/hq_cdw.dir/executor.cc.o.d"
  "CMakeFiles/hq_cdw.dir/expr_eval.cc.o"
  "CMakeFiles/hq_cdw.dir/expr_eval.cc.o.d"
  "CMakeFiles/hq_cdw.dir/staging_format.cc.o"
  "CMakeFiles/hq_cdw.dir/staging_format.cc.o.d"
  "CMakeFiles/hq_cdw.dir/table.cc.o"
  "CMakeFiles/hq_cdw.dir/table.cc.o.d"
  "libhq_cdw.a"
  "libhq_cdw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_cdw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
