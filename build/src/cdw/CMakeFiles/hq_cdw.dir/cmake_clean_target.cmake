file(REMOVE_RECURSE
  "libhq_cdw.a"
)
