file(REMOVE_RECURSE
  "libhq_workload.a"
)
