file(REMOVE_RECURSE
  "libhq_core.a"
)
