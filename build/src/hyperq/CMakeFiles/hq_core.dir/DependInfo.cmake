
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hyperq/baseline_loader.cc" "src/hyperq/CMakeFiles/hq_core.dir/baseline_loader.cc.o" "gcc" "src/hyperq/CMakeFiles/hq_core.dir/baseline_loader.cc.o.d"
  "/root/repo/src/hyperq/coalescer.cc" "src/hyperq/CMakeFiles/hq_core.dir/coalescer.cc.o" "gcc" "src/hyperq/CMakeFiles/hq_core.dir/coalescer.cc.o.d"
  "/root/repo/src/hyperq/credit_manager.cc" "src/hyperq/CMakeFiles/hq_core.dir/credit_manager.cc.o" "gcc" "src/hyperq/CMakeFiles/hq_core.dir/credit_manager.cc.o.d"
  "/root/repo/src/hyperq/data_converter.cc" "src/hyperq/CMakeFiles/hq_core.dir/data_converter.cc.o" "gcc" "src/hyperq/CMakeFiles/hq_core.dir/data_converter.cc.o.d"
  "/root/repo/src/hyperq/error_handler.cc" "src/hyperq/CMakeFiles/hq_core.dir/error_handler.cc.o" "gcc" "src/hyperq/CMakeFiles/hq_core.dir/error_handler.cc.o.d"
  "/root/repo/src/hyperq/export_job.cc" "src/hyperq/CMakeFiles/hq_core.dir/export_job.cc.o" "gcc" "src/hyperq/CMakeFiles/hq_core.dir/export_job.cc.o.d"
  "/root/repo/src/hyperq/file_writer.cc" "src/hyperq/CMakeFiles/hq_core.dir/file_writer.cc.o" "gcc" "src/hyperq/CMakeFiles/hq_core.dir/file_writer.cc.o.d"
  "/root/repo/src/hyperq/import_job.cc" "src/hyperq/CMakeFiles/hq_core.dir/import_job.cc.o" "gcc" "src/hyperq/CMakeFiles/hq_core.dir/import_job.cc.o.d"
  "/root/repo/src/hyperq/server.cc" "src/hyperq/CMakeFiles/hq_core.dir/server.cc.o" "gcc" "src/hyperq/CMakeFiles/hq_core.dir/server.cc.o.d"
  "/root/repo/src/hyperq/tdf_cursor.cc" "src/hyperq/CMakeFiles/hq_core.dir/tdf_cursor.cc.o" "gcc" "src/hyperq/CMakeFiles/hq_core.dir/tdf_cursor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/hq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/legacy/CMakeFiles/hq_legacy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/hq_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/tdf/CMakeFiles/hq_tdf.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudstore/CMakeFiles/hq_cloudstore.dir/DependInfo.cmake"
  "/root/repo/build/src/cdw/CMakeFiles/hq_cdw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
