file(REMOVE_RECURSE
  "CMakeFiles/hq_core.dir/baseline_loader.cc.o"
  "CMakeFiles/hq_core.dir/baseline_loader.cc.o.d"
  "CMakeFiles/hq_core.dir/coalescer.cc.o"
  "CMakeFiles/hq_core.dir/coalescer.cc.o.d"
  "CMakeFiles/hq_core.dir/credit_manager.cc.o"
  "CMakeFiles/hq_core.dir/credit_manager.cc.o.d"
  "CMakeFiles/hq_core.dir/data_converter.cc.o"
  "CMakeFiles/hq_core.dir/data_converter.cc.o.d"
  "CMakeFiles/hq_core.dir/error_handler.cc.o"
  "CMakeFiles/hq_core.dir/error_handler.cc.o.d"
  "CMakeFiles/hq_core.dir/export_job.cc.o"
  "CMakeFiles/hq_core.dir/export_job.cc.o.d"
  "CMakeFiles/hq_core.dir/file_writer.cc.o"
  "CMakeFiles/hq_core.dir/file_writer.cc.o.d"
  "CMakeFiles/hq_core.dir/import_job.cc.o"
  "CMakeFiles/hq_core.dir/import_job.cc.o.d"
  "CMakeFiles/hq_core.dir/server.cc.o"
  "CMakeFiles/hq_core.dir/server.cc.o.d"
  "CMakeFiles/hq_core.dir/tdf_cursor.cc.o"
  "CMakeFiles/hq_core.dir/tdf_cursor.cc.o.d"
  "libhq_core.a"
  "libhq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
