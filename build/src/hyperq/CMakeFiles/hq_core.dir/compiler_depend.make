# Empty compiler generated dependencies file for hq_core.
# This may be replaced when dependencies are built.
