#include "hqlint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace hqlint {

namespace {

bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

/// True when `token` appears in `line` with identifier boundaries on both
/// sides ("Get" does not match "GetCounter").
bool ContainsToken(const std::string& line, const std::string& token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return true;
    pos += token.size();
  }
  return false;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Per-file preprocessed view: code with comments and string/char literals
/// blanked to spaces (so tokens inside them never match), plus the set of
/// rules each line's `// hqlint:allow(rule)` comments suppress.
struct Stripped {
  std::vector<std::string> lines;                 // 0-based; literals blanked
  std::vector<std::string> raw;                   // original text (for markers in comments)
  std::vector<std::set<std::string>> allows;      // per-line suppressions
  // Which suppressions actually fired: Allowed() records the marker line it
  // matched so the stale-allow audit can flag the markers nothing consults.
  // Mutable because recording usage is bookkeeping, not rule state.
  mutable std::vector<std::set<std::string>> used;
};

Stripped Strip(const std::string& content) {
  Stripped out;
  std::string cur;
  std::string cur_raw;
  bool in_block_comment = false;
  bool in_string = false;
  bool in_char = false;
  bool in_line_comment = false;

  auto flush = [&] {
    // Harvest hqlint:allow(...) from the raw line (it lives in a comment,
    // which the stripped view blanks out).
    std::set<std::string> allowed;
    size_t pos = 0;
    while ((pos = cur_raw.find("hqlint:allow(", pos)) != std::string::npos) {
      size_t open = pos + std::string("hqlint:allow(").size();
      size_t close = cur_raw.find(')', open);
      if (close != std::string::npos) allowed.insert(cur_raw.substr(open, close - open));
      pos = open;
    }
    out.lines.push_back(cur);
    out.raw.push_back(cur_raw);
    out.allows.push_back(std::move(allowed));
    out.used.emplace_back();
    cur.clear();
    cur_raw.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      in_line_comment = false;
      in_string = false;  // unterminated literal: fail open, not cascade
      in_char = false;
      flush();
      continue;
    }
    cur_raw.push_back(c);
    if (in_line_comment) {
      cur.push_back(' ');
    } else if (in_block_comment) {
      if (c == '*' && next == '/') {
        in_block_comment = false;
        cur.append("  ");
        cur_raw.push_back(next);
        ++i;
      } else {
        cur.push_back(' ');
      }
    } else if (in_string) {
      if (c == '\\' && next != '\0') {
        cur.append("  ");
        cur_raw.push_back(next);
        ++i;
      } else {
        if (c == '"') in_string = false;
        cur.push_back(c == '"' ? '"' : ' ');
      }
    } else if (in_char) {
      if (c == '\\' && next != '\0') {
        cur.append("  ");
        cur_raw.push_back(next);
        ++i;
      } else {
        if (c == '\'') in_char = false;
        cur.push_back(c == '\'' ? '\'' : ' ');
      }
    } else if (c == '/' && next == '/') {
      in_line_comment = true;
      cur.append("  ");
      cur_raw.push_back(next);
      ++i;
    } else if (c == '/' && next == '*') {
      in_block_comment = true;
      cur.append("  ");
      cur_raw.push_back(next);
      ++i;
    } else if (c == '"') {
      in_string = true;
      cur.push_back('"');
    } else if (c == '\'' && (i == 0 || !IsIdentChar(content[i - 1]))) {
      // Identifier-adjacent ' is a digit separator (1'000'000), not a char.
      in_char = true;
      cur.push_back('\'');
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty() || !cur_raw.empty()) flush();
  return out;
}

bool Allowed(const Stripped& s, size_t line_idx, const std::string& rule) {
  if (s.allows[line_idx].count(rule) != 0) {
    s.used[line_idx].insert(rule);
    return true;
  }
  if (line_idx > 0 && s.allows[line_idx - 1].count(rule) != 0) {
    s.used[line_idx - 1].insert(rule);
    return true;
  }
  return false;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Rule: naked-mutex
// ---------------------------------------------------------------------------

const char* const kStdSyncTypes[] = {
    "mutex",        "recursive_mutex",    "timed_mutex",
    "shared_mutex", "shared_timed_mutex", "lock_guard",
    "unique_lock",  "scoped_lock",        "condition_variable",
    "condition_variable_any",
};

void CheckNakedMutex(const Linter* /*unused*/, const std::string& path, const Stripped& s,
                     std::vector<Diagnostic>* diags) {
  if (EndsWith(path, "common/sync.h")) return;  // the one sanctioned user
  for (size_t i = 0; i < s.lines.size(); ++i) {
    for (const char* type : kStdSyncTypes) {
      if (ContainsToken(s.lines[i], std::string("std::") + type)) {
        if (Allowed(s, i, "naked-mutex")) continue;
        diags->push_back({path, static_cast<int>(i) + 1, "naked-mutex",
                          std::string("use common::Mutex/MutexLock/CondVar from common/sync.h "
                                      "instead of std::") +
                              type});
        break;  // one diagnostic per line
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: new-delete
// ---------------------------------------------------------------------------

void CheckNewDelete(const std::string& path, const Stripped& s, std::vector<Diagnostic>* diags) {
  for (size_t i = 0; i < s.lines.size(); ++i) {
    const std::string& line = s.lines[i];
    const std::string* prev = i > 0 ? &s.lines[i - 1] : nullptr;
    // Preprocessor lines (`#include <new>`) and `operator new`/`operator
    // delete` definitions (the bench allocation observatory) are not
    // allocation sites.
    std::string trimmed = line;
    trimmed.erase(0, trimmed.find_first_not_of(' '));
    if (!trimmed.empty() && trimmed[0] == '#') continue;
    if (ContainsToken(line, "operator")) continue;
    auto factory_context = [&](const std::string& l) {
      return l.find("shared_ptr<") != std::string::npos ||
             l.find("unique_ptr<") != std::string::npos ||
             l.find("make_shared") != std::string::npos ||
             l.find("make_unique") != std::string::npos;
    };
    if (ContainsToken(line, "new") && !Allowed(s, i, "new-delete")) {
      // A `new` wrapped straight into a smart pointer (possibly split across
      // a line break by the formatter) is the factory idiom; anything else
      // is an owning raw pointer.
      if (!factory_context(line) && !(prev != nullptr && factory_context(*prev))) {
        diags->push_back({path, static_cast<int>(i) + 1, "new-delete",
                          "raw `new` outside a smart-pointer factory; wrap the result in "
                          "unique_ptr/shared_ptr at the allocation site"});
      }
    }
    if (ContainsToken(line, "delete") && !Allowed(s, i, "new-delete")) {
      if (line.find("= delete") == std::string::npos) {
        diags->push_back({path, static_cast<int>(i) + 1, "new-delete",
                          "raw `delete`; ownership must live in unique_ptr/shared_ptr"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: include-hygiene
// ---------------------------------------------------------------------------

void CheckIncludeHygiene(const std::string& path, const Stripped& s, bool is_header,
                         std::vector<Diagnostic>* diags) {
  if (!is_header) return;
  for (size_t i = 0; i < s.lines.size(); ++i) {
    std::string t = Trim(s.lines[i]);
    if (t.empty()) continue;
    if (t != "#pragma once" && !Allowed(s, i, "include-hygiene")) {
      diags->push_back({path, static_cast<int>(i) + 1, "include-hygiene",
                        "header must open with #pragma once before any other code"});
    }
    break;  // only the first non-blank, non-comment line matters
  }
  for (size_t i = 0; i < s.lines.size(); ++i) {
    if (s.lines[i].find("using namespace") != std::string::npos &&
        !Allowed(s, i, "include-hygiene")) {
      diags->push_back({path, static_cast<int>(i) + 1, "include-hygiene",
                        "`using namespace` in a header leaks into every includer"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: discarded-status
// ---------------------------------------------------------------------------

/// Pass 1: names of functions declared (anywhere in the linted set) to
/// return common::Status or common::Result<T>. Names that are *also*
/// declared somewhere with a different return type (Gauge::Add vs
/// Schema::Add) go into `ambiguous` — a lexical matcher cannot resolve the
/// overload, so those names are left to the compiler's [[nodiscard]].
void CollectStatusFunctions(const Stripped& s, std::set<std::string>* names,
                            std::set<std::string>* ambiguous) {
  for (const std::string& line : s.lines) {
    std::string t = Trim(line);
    // Strip leading qualifiers that precede the return type.
    for (const char* prefix : {"static ", "virtual ", "inline ", "constexpr ", "[[nodiscard]] "}) {
      if (t.rfind(prefix, 0) == 0) t = t.substr(std::string(prefix).size());
    }
    for (const char* ret : {"void ", "bool ", "int ", "int64_t ", "uint64_t ", "size_t ",
                            "double ", "auto ", "std::string "}) {
      if (t.rfind(ret, 0) != 0) continue;
      size_t pos = std::string(ret).size();
      size_t name_begin = pos;
      while (pos < t.size() && IsIdentChar(t[pos])) ++pos;
      if (pos > name_begin && pos < t.size() && t[pos] == '(') {
        ambiguous->insert(t.substr(name_begin, pos - name_begin));
      }
    }
    for (const char* ret : {"Status ", "common::Status ", "Result<", "common::Result<"}) {
      if (t.rfind(ret, 0) != 0) continue;
      size_t pos = std::string(ret).size();
      if (t[pos - 1] == '<') {  // Result<...>: skip balanced angle brackets
        int depth = 1;
        while (pos < t.size() && depth > 0) {
          if (t[pos] == '<') ++depth;
          if (t[pos] == '>') --depth;
          ++pos;
        }
        while (pos < t.size() && t[pos] == ' ') ++pos;
      }
      size_t name_begin = pos;
      while (pos < t.size() && IsIdentChar(t[pos])) ++pos;
      if (pos == name_begin || pos >= t.size() || t[pos] != '(') continue;
      std::string name = t.substr(name_begin, pos - name_begin);
      if (name == "operator") continue;
      names->insert(std::move(name));
    }
  }
}

/// Pass 2: a statement that is nothing but a call (or member-call chain) to
/// one of those functions discards the Status/Result.
void CheckDiscardedStatus(const std::string& path, const Stripped& s,
                          const std::set<std::string>& names, std::vector<Diagnostic>* diags) {
  std::string prev_tail;  // last char of the previous non-blank stripped line
  for (size_t i = 0; i < s.lines.size(); ++i) {
    std::string t = Trim(s.lines[i]);
    if (t.empty()) continue;
    // A statement starts here only if the previous line finished one (or
    // opened/closed a scope); otherwise this line continues a multi-line
    // call such as HQ_ASSIGN_OR_RETURN(x,\n Foo(...));
    bool statement_start =
        prev_tail.empty() || prev_tail == ";" || prev_tail == "{" || prev_tail == "}" ||
        prev_tail == ")" || prev_tail == ":";
    prev_tail = t.substr(t.size() - 1);
    if (!statement_start) continue;
    if (t.back() != ';') continue;
    if (t.find('=') != std::string::npos) continue;           // assigned somewhere
    if (t.find("(void)") != std::string::npos) continue;      // explicit discard
    if (t.rfind("return", 0) == 0 || t.rfind("co_return", 0) == 0) continue;
    // Match  [receiver(.|->|::)]*Name(  anchored at the statement start.
    size_t pos = 0;
    std::string last_ident;
    while (pos < t.size()) {
      size_t begin = pos;
      while (pos < t.size() && IsIdentChar(t[pos])) ++pos;
      if (pos == begin) break;
      last_ident = t.substr(begin, pos - begin);
      if (pos < t.size() && t[pos] == '(') break;  // call found
      if (pos + 1 < t.size() && t[pos] == ':' && t[pos + 1] == ':') {
        pos += 2;
      } else if (pos + 1 < t.size() && t[pos] == '-' && t[pos + 1] == '>') {
        pos += 2;
      } else if (pos < t.size() && t[pos] == '.') {
        pos += 1;
      } else {
        last_ident.clear();
        break;
      }
    }
    if (last_ident.empty() || pos >= t.size() || t[pos] != '(') continue;
    if (names.count(last_ident) == 0) continue;
    // The whole statement must be this one call: scan the balanced argument
    // list and require that only `;` follows. A trailing member call such as
    // `.ok()` means the author consumed the result (the repo's deliberate
    // "checked and ignored" idiom — mirrors the compiler's [[nodiscard]]).
    int paren_depth = 0;
    size_t after = pos;
    while (after < t.size()) {
      if (t[after] == '(') ++paren_depth;
      if (t[after] == ')' && --paren_depth == 0) {
        ++after;
        break;
      }
      ++after;
    }
    if (paren_depth != 0) continue;  // call spans lines; not analysed
    if (Trim(t.substr(after)) != ";") continue;
    if (Allowed(s, i, "discarded-status")) continue;
    diags->push_back({path, static_cast<int>(i) + 1, "discarded-status",
                      "result of `" + last_ident +
                          "` (returns Status/Result) is discarded; check it, "
                          "HQ_RETURN_NOT_OK it, or cast to (void) with a reason"});
  }
}

// ---------------------------------------------------------------------------
// Rule: blocking-under-lock
// ---------------------------------------------------------------------------

const char* const kBlockingMembers[] = {"Put", "PutBatch", "Get", "Push", "Pop", "PopNext",
                                        "Acquire"};
/// CondVar waits release only their own lock: legitimate at depth 1 (the
/// predicate-loop idiom), deadlock-prone at depth >= 2 where the outer lock
/// stays held for the whole wait.
const char* const kWaitMembers[] = {"WaitFor", "WaitUntil"};
const char* const kBlockingFree[] = {"sleep_for", "sleep_until", "usleep", "nanosleep"};

/// True when `name` appears as a member call: receiver '.' or '->' on the
/// left and '(' on the right, with spaces tolerated on both sides so calls
/// joined across a line break still match.
bool MemberCallLike(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    size_t end = pos + name.size();
    bool right_ident_ok = end >= text.size() || !IsIdentChar(text[end]);
    size_t l = pos;
    while (l > 0 && text[l - 1] == ' ') --l;
    bool member =
        l > 0 && (text[l - 1] == '.' || (l > 1 && text[l - 2] == '-' && text[l - 1] == '>'));
    size_t r = end;
    while (r < text.size() && text[r] == ' ') ++r;
    bool call = r < text.size() && text[r] == '(';
    if (member && right_ident_ok && call) return true;
    pos = end;
  }
  return false;
}

/// A line whose trimmed tail is ';', '{' or '}' finishes a logical
/// statement; anything else continues onto the next line.
bool EndsStatement(const std::string& line) {
  std::string t = Trim(line);
  if (t.empty()) return true;
  char tail = t.back();
  return tail == ';' || tail == '{' || tail == '}';
}

/// Tracks the brace depth of every live MutexLock/MutexLock2 declaration so
/// rules can ask "is this line inside a locked scope". Feed lines in order.
struct LockScopeTracker {
  int depth = 0;
  std::vector<int> scopes;  // brace depth at each live lock declaration

  bool locked() const { return !scopes.empty(); }
  int nesting() const { return static_cast<int>(scopes.size()); }

  /// Call AFTER a rule has looked at the line: a lock declared on this line
  /// guards subsequent lines, and `}` closes scopes for the next one.
  void Advance(const std::string& line) {
    for (char c : line) {
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        while (!scopes.empty() && depth < scopes.back()) scopes.pop_back();
      }
    }
    if ((ContainsToken(line, "MutexLock") || ContainsToken(line, "MutexLock2")) &&
        line.find('(') != std::string::npos && line.find("class") == std::string::npos) {
      scopes.push_back(depth);
    }
  }
};

void CheckBlockingUnderLock(const std::string& path, const Stripped& s,
                            std::vector<Diagnostic>* diags) {
  if (EndsWith(path, "common/sync.h")) return;
  LockScopeTracker tracker;
  size_t i = 0;
  while (i < s.lines.size()) {
    // Join the logical statement starting here (a call split across lines
    // must match the same as its single-line spelling). Bounded lookahead;
    // scope state advances over every joined line below.
    size_t stmt_end = i;
    std::string joined = s.lines[i];
    if (tracker.locked()) {
      while (stmt_end + 1 < s.lines.size() && stmt_end - i < 4 && !EndsStatement(joined)) {
        ++stmt_end;
        joined += " ";
        joined += s.lines[stmt_end];
      }
    }
    if (tracker.locked() && !Allowed(s, i, "blocking-under-lock")) {
      bool blocking = false;
      std::string what;
      for (const char* name : kBlockingMembers) {
        // Member calls only (receiver '.' or '->'): a free function named
        // Get() is someone else's problem.
        if (MemberCallLike(joined, name)) {
          blocking = true;
          what = name;
          break;
        }
      }
      if (!blocking && tracker.nesting() >= 2) {
        for (const char* name : kWaitMembers) {
          if (MemberCallLike(joined, name)) {
            blocking = true;
            what = name;
            break;
          }
        }
      }
      if (!blocking) {
        for (const char* name : kBlockingFree) {
          if (ContainsToken(joined, name)) {
            blocking = true;
            what = name;
            break;
          }
        }
      }
      if (blocking) {
        diags->push_back({path, static_cast<int>(i) + 1, "blocking-under-lock",
                          "potential deadlock: `" + what +
                              "` can block while a MutexLock is held in this scope"});
      }
    }
    for (size_t j = i; j <= stmt_end; ++j) tracker.Advance(s.lines[j]);
    i = stmt_end + 1;
  }
}

// ---------------------------------------------------------------------------
// Rule: unranked-mutex
// ---------------------------------------------------------------------------

/// Every `Mutex` declaration must name a LockRank (sync.h's constructor
/// makes this a compile error too; the lint catches it at review speed and
/// in files that only build in some configurations).
void CheckUnrankedMutex(const std::string& path, const Stripped& s,
                        std::vector<Diagnostic>* diags) {
  if (EndsWith(path, "common/sync.h")) return;  // defines the type itself
  for (size_t i = 0; i < s.lines.size(); ++i) {
    const std::string& line = s.lines[i];
    size_t pos = 0;
    while ((pos = line.find("Mutex", pos)) != std::string::npos) {
      size_t end = pos + 5;
      bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
      bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
      if (!left_ok || !right_ok) {
        pos = end;
        continue;
      }
      // A declaration is the token followed by an identifier ("Mutex mu_").
      // Anything else — `Mutex*`, `Mutex&`, `Mutex(`, `Mutex{` — is a use.
      size_t j = end;
      while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
      if (j >= line.size() || !IsIdentChar(line[j]) ||
          std::isdigit(static_cast<unsigned char>(line[j])) != 0) {
        pos = end;
        continue;
      }
      // A rank on the next line only counts while the declaration is still
      // open (a wrapped initializer, trailing `{` or `(`); `Mutex a;` is not
      // exonerated by an unrelated ranked declaration below it.
      size_t tail = line.find_last_not_of(" \t");
      bool decl_closed = tail != std::string::npos && line[tail] == ';';
      bool ranked = ContainsToken(line, "LockRank") ||
                    (!decl_closed && i + 1 < s.lines.size() &&
                     ContainsToken(s.lines[i + 1], "LockRank"));
      if (!ranked && !Allowed(s, i, "unranked-mutex")) {
        diags->push_back({path, static_cast<int>(i) + 1, "unranked-mutex",
                          "Mutex declared without a LockRank; every mutex names its level in "
                          "the lock hierarchy (see common::LockRank)"});
      }
      break;  // one diagnostic per line
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: nested-lock-without-order
// ---------------------------------------------------------------------------

const char* const kLockRankNames[] = {"kLogging", "kObs",  "kQueue", "kPool",   "kStore",
                                      "kCatalog", "kJob",  "kCdw",   "kServer", "kLifecycle"};

int LockRankIndex(const std::string& name) {
  for (size_t i = 0; i < sizeof(kLockRankNames) / sizeof(kLockRankNames[0]); ++i) {
    if (name == kLockRankNames[i]) return static_cast<int>(i);
  }
  return -1;
}

/// Parses a `lock-order: kA > kB [> kC...]` marker out of a raw source line
/// (the marker lives in a comment). Returns false when the line carries no
/// marker; `*valid` reports whether the named ranks exist in the hierarchy
/// and strictly descend.
bool ParseLockOrderMarker(const std::string& raw, bool* valid) {
  size_t pos = raw.find("lock-order:");
  if (pos == std::string::npos) return false;
  pos += std::string("lock-order:").size();
  *valid = false;
  int prev = -1;
  int count = 0;
  while (true) {
    while (pos < raw.size() && raw[pos] == ' ') ++pos;
    size_t begin = pos;
    while (pos < raw.size() && IsIdentChar(raw[pos])) ++pos;
    if (pos == begin) return true;  // marker present but truncated -> invalid
    int rank = LockRankIndex(raw.substr(begin, pos - begin));
    if (rank < 0) return true;                    // unknown rank name
    if (prev >= 0 && rank >= prev) return true;   // not strictly descending
    prev = rank;
    ++count;
    while (pos < raw.size() && raw[pos] == ' ') ++pos;
    if (pos >= raw.size() || raw[pos] != '>') break;
    ++pos;
  }
  *valid = count >= 2;
  return true;
}

/// A MutexLock lexically inside another locked scope is where deadlocks are
/// born: require either the MutexLock2 ordered-pair API or an explicit
/// `// lock-order: kOuter > kInner` marker naming hierarchy-ordered ranks on
/// the acquisition (or the line above it).
void CheckNestedLockOrder(const std::string& path, const Stripped& s,
                          std::vector<Diagnostic>* diags) {
  if (EndsWith(path, "common/sync.h")) return;
  LockScopeTracker tracker;
  for (size_t i = 0; i < s.lines.size(); ++i) {
    const std::string& line = s.lines[i];
    bool is_lock = ContainsToken(line, "MutexLock") && line.find('(') != std::string::npos &&
                   line.find("class") == std::string::npos;
    if (is_lock && tracker.locked() && !Allowed(s, i, "nested-lock-without-order")) {
      bool valid = false;
      bool found = ParseLockOrderMarker(s.raw[i], &valid);
      if (!found && i > 0) found = ParseLockOrderMarker(s.raw[i - 1], &valid);
      if (!found) {
        diags->push_back({path, static_cast<int>(i) + 1, "nested-lock-without-order",
                          "MutexLock nested inside a locked scope without a declared order; "
                          "add `// lock-order: kOuter > kInner` (hierarchy-ordered LockRank "
                          "names) or use MutexLock2"});
      } else if (!valid) {
        diags->push_back({path, static_cast<int>(i) + 1, "nested-lock-without-order",
                          "lock-order marker must name known LockRank levels in strictly "
                          "descending hierarchy order (e.g. `kLifecycle > kServer`)"});
      }
    }
    tracker.Advance(line);
  }
}

// ---------------------------------------------------------------------------
// Rule: per-row-alloc
// ---------------------------------------------------------------------------

/// True when `token` appears with identifier boundaries and is followed
/// (after optional spaces) by '(' — i.e. used as a call/temporary.
bool TokenCallLike(const std::string& line, const std::string& token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    size_t j = end;
    while (j < line.size() && line[j] == ' ') ++j;
    if (left_ok && right_ok && j < line.size() && line[j] == '(') return true;
    pos = end;
  }
  return false;
}

/// Heuristic allocation lint for files opted in with a `// hqlint:hotpath`
/// marker anywhere in the file: per-row conversion code must not pay a heap
/// allocation per value. Flags std::to_string calls and std::string
/// temporaries; cold paths (error construction) suppress with
/// `hqlint:allow(per-row-alloc)`.
void CheckPerRowAlloc(const std::string& path, const Stripped& s, bool hotpath,
                      std::vector<Diagnostic>* diags) {
  if (!hotpath) return;
  for (size_t i = 0; i < s.lines.size(); ++i) {
    const std::string& line = s.lines[i];
    // Detect first, consult the suppression second: Allowed() records marker
    // usage, and a marker only counts as used when it silenced a real hit
    // (otherwise the stale-allow audit could never retire it).
    if (TokenCallLike(line, "std::to_string")) {
      if (Allowed(s, i, "per-row-alloc")) continue;
      diags->push_back({path, static_cast<int>(i) + 1, "per-row-alloc",
                        "`std::to_string` allocates per call in a hotpath file; format into "
                        "stack scratch with std::to_chars"});
      continue;  // one diagnostic per line
    }
    if (TokenCallLike(line, "std::string")) {
      if (Allowed(s, i, "per-row-alloc")) continue;
      diags->push_back({path, static_cast<int>(i) + 1, "per-row-alloc",
                        "`std::string` temporary in a hotpath file; use std::string_view or "
                        "stack scratch"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: stale-allow
// ---------------------------------------------------------------------------

/// Audits the suppressions themselves: a `// hqlint:allow(<rule>)` marker
/// that silenced nothing this run is dead weight — the violation it was
/// written for has been fixed (or the marker was typoed), and leaving it in
/// place would silently swallow the next real finding on that line. Must run
/// AFTER every other rule so Stripped::used is fully populated.
void CheckStaleAllow(const std::string& path, const Stripped& s,
                     std::vector<Diagnostic>* diags) {
  for (size_t i = 0; i < s.allows.size(); ++i) {
    for (const std::string& rule : s.allows[i]) {
      if (rule == "stale-allow") continue;  // the meta-marker audits itself out
      if (s.used[i].count(rule) != 0) continue;
      if (Allowed(s, i, "stale-allow")) continue;
      diags->push_back({path, static_cast<int>(i) + 1, "stale-allow",
                        "suppression `hqlint:allow(" + rule +
                            ")` matches no diagnostic on this or the next line; remove the "
                            "dead marker (or fix the rule name)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unbounded-retry
// ---------------------------------------------------------------------------

const char* const kRetrySleeps[] = {"sleep_for", "sleep_until", "usleep", "nanosleep"};
/// I/O-shaped member calls a retry loop would wrap (mirrors the load-path
/// hops RetryPolicy covers: store puts/gets, CDW statements, staged writes).
const char* const kRetryIoMembers[] = {"Put",        "PutBatch", "Get",    "Execute",
                                       "ExecuteSql", "CopyInto", "Append", "Write",
                                       "Read"};

/// A `for`/`while` loop whose body both sleeps and performs an I/O-shaped
/// member call is a hand-rolled retry loop: without RetryPolicy it has no
/// attempt bound, no jitter, no breaker and no stats. Flag the loop header;
/// loops that mention RetryPolicy/BackoffMicros anywhere in the body are
/// the sanctioned implementation pattern and pass.
void CheckUnboundedRetry(const std::string& path, const Stripped& s,
                         std::vector<Diagnostic>* diags) {
  // retry.{h,cc} implement the backoff loop itself.
  if (EndsWith(path, "common/retry.h") || EndsWith(path, "common/retry.cc")) return;
  for (size_t i = 0; i < s.lines.size(); ++i) {
    const std::string& header = s.lines[i];
    bool loop = (ContainsToken(header, "for") || ContainsToken(header, "while")) &&
                header.find('(') != std::string::npos;
    if (!loop) continue;
    // Find the body's opening brace (header may wrap a few lines).
    size_t open_line = i;
    size_t open_col = std::string::npos;
    while (open_line < s.lines.size() && open_line - i < 4) {
      open_col = s.lines[open_line].find('{');
      if (open_col != std::string::npos) break;
      ++open_line;
    }
    if (open_col == std::string::npos) continue;  // single-statement loop
    bool sleeps = false;
    bool io = false;
    bool uses_policy = false;
    int depth = 0;
    bool done = false;
    for (size_t k = open_line; k < s.lines.size() && !done; ++k) {
      const std::string& body = s.lines[k];
      for (size_t c = (k == open_line ? open_col : 0); c < body.size(); ++c) {
        if (body[c] == '{') ++depth;
        if (body[c] == '}' && --depth == 0) {
          done = true;
          break;
        }
      }
      for (const char* name : kRetrySleeps) {
        if (ContainsToken(body, name)) sleeps = true;
      }
      for (const char* name : kRetryIoMembers) {
        if (MemberCallLike(body, name)) io = true;
      }
      if (body.find("RetryPolicy") != std::string::npos ||
          body.find("RetryAttempt") != std::string::npos ||
          body.find("BackoffMicros") != std::string::npos) {
        uses_policy = true;
      }
    }
    if (sleeps && io && !uses_policy && !Allowed(s, i, "unbounded-retry")) {
      diags->push_back({path, static_cast<int>(i) + 1, "unbounded-retry",
                        "hand-rolled retry loop (sleep + I/O call) with no attempt bound; use "
                        "common::RetryPolicy (common/retry.h) for bounded backoff with jitter "
                        "and stats"});
    }
  }
}

}  // namespace

std::string Format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.path << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

void Linter::AddFile(std::string path, std::string content) {
  bool is_header = EndsWith(path, ".h") || EndsWith(path, ".hpp");
  files_.push_back({std::move(path), std::move(content), is_header});
}

std::vector<Diagnostic> Linter::Run() const {
  std::vector<Diagnostic> diags;
  std::vector<Stripped> stripped;
  stripped.reserve(files_.size());
  std::set<std::string> status_functions;
  std::set<std::string> ambiguous;
  for (const SourceFile& f : files_) {
    stripped.push_back(Strip(f.content));
    CollectStatusFunctions(stripped.back(), &status_functions, &ambiguous);
  }
  for (const std::string& name : ambiguous) status_functions.erase(name);
  for (size_t i = 0; i < files_.size(); ++i) {
    const SourceFile& f = files_[i];
    const Stripped& s = stripped[i];
    CheckNakedMutex(this, f.path, s, &diags);
    CheckNewDelete(f.path, s, &diags);
    CheckIncludeHygiene(f.path, s, f.is_header, &diags);
    CheckDiscardedStatus(f.path, s, status_functions, &diags);
    CheckBlockingUnderLock(f.path, s, &diags);
    CheckUnrankedMutex(f.path, s, &diags);
    CheckNestedLockOrder(f.path, s, &diags);
    CheckUnboundedRetry(f.path, s, &diags);
    // The hotpath marker lives in a comment, so look at the raw content.
    // The analyzers' own sources and golden tests (hqlint and hqcheck)
    // necessarily spell the marker (to search for / document / assert on it)
    // without being hotpath code, so they are exempt — the same precedent as
    // common/sync.h for naked-mutex.
    const bool self_lint = f.path.find("tools/hqlint") != std::string::npos ||
                           f.path.find("tools/hqcheck") != std::string::npos ||
                           f.path.find("tests/hqlint") != std::string::npos ||
                           f.path.find("tests/hqcheck") != std::string::npos;
    CheckPerRowAlloc(f.path, s,
                     !self_lint && f.content.find("hqlint:hotpath") != std::string::npos, &diags);
    // Last, once every rule has recorded which suppressions it consumed.
    // The analyzers' own sources spell marker text in string literals, which
    // the harvester cannot tell from a real suppression — exempt them.
    if (!self_lint) CheckStaleAllow(f.path, s, &diags);
  }
  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return diags;
}

namespace {

bool SkippedComponent(const std::filesystem::path& p) {
  for (const auto& part : p) {
    if (part == "testdata" || part == "build" || part == "build-asan" || part == "build-tsan" ||
        part == "build-lint" || part == "build-ubsan" || part == "build-ts") {
      return true;
    }
  }
  return false;
}

bool LintableExtension(const std::filesystem::path& p) {
  auto ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

int RunHqlint(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  namespace fs = std::filesystem;
  fs::path root;
  std::vector<fs::path> inputs;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--root") {
      if (i + 1 >= args.size()) {
        err << "hqlint: --root requires a directory argument\n";
        return 2;
      }
      root = args[++i];
    } else if (args[i].rfind("--", 0) == 0) {
      err << "hqlint: unknown flag " << args[i] << "\n";
      return 2;
    } else {
      inputs.emplace_back(args[i]);
    }
  }
  if (inputs.empty()) {
    err << "usage: hqlint [--root <dir>] <file-or-dir>...\n";
    return 2;
  }

  std::vector<fs::path> files;
  std::error_code ec;
  for (const fs::path& input : inputs) {
    if (fs::is_directory(input, ec)) {
      for (auto it = fs::recursive_directory_iterator(input, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && SkippedComponent(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && LintableExtension(it->path()) &&
            !SkippedComponent(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      err << "hqlint: cannot read " << input.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  Linter linter;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      err << "hqlint: cannot open " << file.string() << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string display = file.string();
    if (!root.empty()) {
      auto rel = fs::relative(file, root, ec);
      if (!ec && !rel.empty()) display = rel.string();
    }
    linter.AddFile(std::move(display), buf.str());
  }

  std::vector<Diagnostic> diags = linter.Run();
  for (const Diagnostic& d : diags) out << Format(d) << "\n";
  if (!diags.empty()) {
    out << diags.size() << " violation" << (diags.size() == 1 ? "" : "s") << " in "
        << files.size() << " files\n";
    return 1;
  }
  return 0;
}

}  // namespace hqlint
