#include "hqlint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace hqlint {

namespace {

bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

/// True when `token` appears in `line` with identifier boundaries on both
/// sides ("Get" does not match "GetCounter").
bool ContainsToken(const std::string& line, const std::string& token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return true;
    pos += token.size();
  }
  return false;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Per-file preprocessed view: code with comments and string/char literals
/// blanked to spaces (so tokens inside them never match), plus the set of
/// rules each line's `// hqlint:allow(rule)` comments suppress.
struct Stripped {
  std::vector<std::string> lines;                 // 0-based; literals blanked
  std::vector<std::set<std::string>> allows;      // per-line suppressions
};

Stripped Strip(const std::string& content) {
  Stripped out;
  std::string cur;
  std::string cur_raw;
  bool in_block_comment = false;
  bool in_string = false;
  bool in_char = false;
  bool in_line_comment = false;

  auto flush = [&] {
    // Harvest hqlint:allow(...) from the raw line (it lives in a comment,
    // which the stripped view blanks out).
    std::set<std::string> allowed;
    size_t pos = 0;
    while ((pos = cur_raw.find("hqlint:allow(", pos)) != std::string::npos) {
      size_t open = pos + std::string("hqlint:allow(").size();
      size_t close = cur_raw.find(')', open);
      if (close != std::string::npos) allowed.insert(cur_raw.substr(open, close - open));
      pos = open;
    }
    out.lines.push_back(cur);
    out.allows.push_back(std::move(allowed));
    cur.clear();
    cur_raw.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      in_line_comment = false;
      in_string = false;  // unterminated literal: fail open, not cascade
      in_char = false;
      flush();
      continue;
    }
    cur_raw.push_back(c);
    if (in_line_comment) {
      cur.push_back(' ');
    } else if (in_block_comment) {
      if (c == '*' && next == '/') {
        in_block_comment = false;
        cur.append("  ");
        cur_raw.push_back(next);
        ++i;
      } else {
        cur.push_back(' ');
      }
    } else if (in_string) {
      if (c == '\\' && next != '\0') {
        cur.append("  ");
        cur_raw.push_back(next);
        ++i;
      } else {
        if (c == '"') in_string = false;
        cur.push_back(c == '"' ? '"' : ' ');
      }
    } else if (in_char) {
      if (c == '\\' && next != '\0') {
        cur.append("  ");
        cur_raw.push_back(next);
        ++i;
      } else {
        if (c == '\'') in_char = false;
        cur.push_back(c == '\'' ? '\'' : ' ');
      }
    } else if (c == '/' && next == '/') {
      in_line_comment = true;
      cur.append("  ");
      cur_raw.push_back(next);
      ++i;
    } else if (c == '/' && next == '*') {
      in_block_comment = true;
      cur.append("  ");
      cur_raw.push_back(next);
      ++i;
    } else if (c == '"') {
      in_string = true;
      cur.push_back('"');
    } else if (c == '\'' && (i == 0 || !IsIdentChar(content[i - 1]))) {
      // Identifier-adjacent ' is a digit separator (1'000'000), not a char.
      in_char = true;
      cur.push_back('\'');
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty() || !cur_raw.empty()) flush();
  return out;
}

bool Allowed(const Stripped& s, size_t line_idx, const std::string& rule) {
  if (s.allows[line_idx].count(rule) != 0) return true;
  if (line_idx > 0 && s.allows[line_idx - 1].count(rule) != 0) return true;
  return false;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Rule: naked-mutex
// ---------------------------------------------------------------------------

const char* const kStdSyncTypes[] = {
    "mutex",        "recursive_mutex",    "timed_mutex",
    "shared_mutex", "shared_timed_mutex", "lock_guard",
    "unique_lock",  "scoped_lock",        "condition_variable",
    "condition_variable_any",
};

void CheckNakedMutex(const Linter* /*unused*/, const std::string& path, const Stripped& s,
                     std::vector<Diagnostic>* diags) {
  if (EndsWith(path, "common/sync.h")) return;  // the one sanctioned user
  for (size_t i = 0; i < s.lines.size(); ++i) {
    for (const char* type : kStdSyncTypes) {
      if (ContainsToken(s.lines[i], std::string("std::") + type)) {
        if (Allowed(s, i, "naked-mutex")) continue;
        diags->push_back({path, static_cast<int>(i) + 1, "naked-mutex",
                          std::string("use common::Mutex/MutexLock/CondVar from common/sync.h "
                                      "instead of std::") +
                              type});
        break;  // one diagnostic per line
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: new-delete
// ---------------------------------------------------------------------------

void CheckNewDelete(const std::string& path, const Stripped& s, std::vector<Diagnostic>* diags) {
  for (size_t i = 0; i < s.lines.size(); ++i) {
    const std::string& line = s.lines[i];
    const std::string* prev = i > 0 ? &s.lines[i - 1] : nullptr;
    auto factory_context = [&](const std::string& l) {
      return l.find("shared_ptr<") != std::string::npos ||
             l.find("unique_ptr<") != std::string::npos ||
             l.find("make_shared") != std::string::npos ||
             l.find("make_unique") != std::string::npos;
    };
    if (ContainsToken(line, "new") && !Allowed(s, i, "new-delete")) {
      // A `new` wrapped straight into a smart pointer (possibly split across
      // a line break by the formatter) is the factory idiom; anything else
      // is an owning raw pointer.
      if (!factory_context(line) && !(prev != nullptr && factory_context(*prev))) {
        diags->push_back({path, static_cast<int>(i) + 1, "new-delete",
                          "raw `new` outside a smart-pointer factory; wrap the result in "
                          "unique_ptr/shared_ptr at the allocation site"});
      }
    }
    if (ContainsToken(line, "delete") && !Allowed(s, i, "new-delete")) {
      if (line.find("= delete") == std::string::npos) {
        diags->push_back({path, static_cast<int>(i) + 1, "new-delete",
                          "raw `delete`; ownership must live in unique_ptr/shared_ptr"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: include-hygiene
// ---------------------------------------------------------------------------

void CheckIncludeHygiene(const std::string& path, const Stripped& s, bool is_header,
                         std::vector<Diagnostic>* diags) {
  if (!is_header) return;
  for (size_t i = 0; i < s.lines.size(); ++i) {
    std::string t = Trim(s.lines[i]);
    if (t.empty()) continue;
    if (t != "#pragma once" && !Allowed(s, i, "include-hygiene")) {
      diags->push_back({path, static_cast<int>(i) + 1, "include-hygiene",
                        "header must open with #pragma once before any other code"});
    }
    break;  // only the first non-blank, non-comment line matters
  }
  for (size_t i = 0; i < s.lines.size(); ++i) {
    if (s.lines[i].find("using namespace") != std::string::npos &&
        !Allowed(s, i, "include-hygiene")) {
      diags->push_back({path, static_cast<int>(i) + 1, "include-hygiene",
                        "`using namespace` in a header leaks into every includer"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: discarded-status
// ---------------------------------------------------------------------------

/// Pass 1: names of functions declared (anywhere in the linted set) to
/// return common::Status or common::Result<T>. Names that are *also*
/// declared somewhere with a different return type (Gauge::Add vs
/// Schema::Add) go into `ambiguous` — a lexical matcher cannot resolve the
/// overload, so those names are left to the compiler's [[nodiscard]].
void CollectStatusFunctions(const Stripped& s, std::set<std::string>* names,
                            std::set<std::string>* ambiguous) {
  for (const std::string& line : s.lines) {
    std::string t = Trim(line);
    // Strip leading qualifiers that precede the return type.
    for (const char* prefix : {"static ", "virtual ", "inline ", "constexpr ", "[[nodiscard]] "}) {
      if (t.rfind(prefix, 0) == 0) t = t.substr(std::string(prefix).size());
    }
    for (const char* ret : {"void ", "bool ", "int ", "int64_t ", "uint64_t ", "size_t ",
                            "double ", "auto ", "std::string "}) {
      if (t.rfind(ret, 0) != 0) continue;
      size_t pos = std::string(ret).size();
      size_t name_begin = pos;
      while (pos < t.size() && IsIdentChar(t[pos])) ++pos;
      if (pos > name_begin && pos < t.size() && t[pos] == '(') {
        ambiguous->insert(t.substr(name_begin, pos - name_begin));
      }
    }
    for (const char* ret : {"Status ", "common::Status ", "Result<", "common::Result<"}) {
      if (t.rfind(ret, 0) != 0) continue;
      size_t pos = std::string(ret).size();
      if (t[pos - 1] == '<') {  // Result<...>: skip balanced angle brackets
        int depth = 1;
        while (pos < t.size() && depth > 0) {
          if (t[pos] == '<') ++depth;
          if (t[pos] == '>') --depth;
          ++pos;
        }
        while (pos < t.size() && t[pos] == ' ') ++pos;
      }
      size_t name_begin = pos;
      while (pos < t.size() && IsIdentChar(t[pos])) ++pos;
      if (pos == name_begin || pos >= t.size() || t[pos] != '(') continue;
      std::string name = t.substr(name_begin, pos - name_begin);
      if (name == "operator") continue;
      names->insert(std::move(name));
    }
  }
}

/// Pass 2: a statement that is nothing but a call (or member-call chain) to
/// one of those functions discards the Status/Result.
void CheckDiscardedStatus(const std::string& path, const Stripped& s,
                          const std::set<std::string>& names, std::vector<Diagnostic>* diags) {
  std::string prev_tail;  // last char of the previous non-blank stripped line
  for (size_t i = 0; i < s.lines.size(); ++i) {
    std::string t = Trim(s.lines[i]);
    if (t.empty()) continue;
    // A statement starts here only if the previous line finished one (or
    // opened/closed a scope); otherwise this line continues a multi-line
    // call such as HQ_ASSIGN_OR_RETURN(x,\n Foo(...));
    bool statement_start =
        prev_tail.empty() || prev_tail == ";" || prev_tail == "{" || prev_tail == "}" ||
        prev_tail == ")" || prev_tail == ":";
    prev_tail = t.substr(t.size() - 1);
    if (!statement_start) continue;
    if (t.back() != ';') continue;
    if (t.find('=') != std::string::npos) continue;           // assigned somewhere
    if (t.find("(void)") != std::string::npos) continue;      // explicit discard
    if (t.rfind("return", 0) == 0 || t.rfind("co_return", 0) == 0) continue;
    // Match  [receiver(.|->|::)]*Name(  anchored at the statement start.
    size_t pos = 0;
    std::string last_ident;
    while (pos < t.size()) {
      size_t begin = pos;
      while (pos < t.size() && IsIdentChar(t[pos])) ++pos;
      if (pos == begin) break;
      last_ident = t.substr(begin, pos - begin);
      if (pos < t.size() && t[pos] == '(') break;  // call found
      if (pos + 1 < t.size() && t[pos] == ':' && t[pos + 1] == ':') {
        pos += 2;
      } else if (pos + 1 < t.size() && t[pos] == '-' && t[pos + 1] == '>') {
        pos += 2;
      } else if (pos < t.size() && t[pos] == '.') {
        pos += 1;
      } else {
        last_ident.clear();
        break;
      }
    }
    if (last_ident.empty() || pos >= t.size() || t[pos] != '(') continue;
    if (names.count(last_ident) == 0) continue;
    // The whole statement must be this one call: scan the balanced argument
    // list and require that only `;` follows. A trailing member call such as
    // `.ok()` means the author consumed the result (the repo's deliberate
    // "checked and ignored" idiom — mirrors the compiler's [[nodiscard]]).
    int paren_depth = 0;
    size_t after = pos;
    while (after < t.size()) {
      if (t[after] == '(') ++paren_depth;
      if (t[after] == ')' && --paren_depth == 0) {
        ++after;
        break;
      }
      ++after;
    }
    if (paren_depth != 0) continue;  // call spans lines; not analysed
    if (Trim(t.substr(after)) != ";") continue;
    if (Allowed(s, i, "discarded-status")) continue;
    diags->push_back({path, static_cast<int>(i) + 1, "discarded-status",
                      "result of `" + last_ident +
                          "` (returns Status/Result) is discarded; check it, "
                          "HQ_RETURN_NOT_OK it, or cast to (void) with a reason"});
  }
}

// ---------------------------------------------------------------------------
// Rule: blocking-under-lock
// ---------------------------------------------------------------------------

const char* const kBlockingMembers[] = {"Put", "PutBatch", "Get", "Push", "Pop", "PopNext",
                                        "Acquire"};
const char* const kBlockingFree[] = {"sleep_for", "sleep_until", "usleep", "nanosleep"};

void CheckBlockingUnderLock(const std::string& path, const Stripped& s,
                            std::vector<Diagnostic>* diags) {
  if (EndsWith(path, "common/sync.h")) return;
  int depth = 0;
  std::vector<int> lock_scopes;  // brace depth at each live MutexLock decl
  for (size_t i = 0; i < s.lines.size(); ++i) {
    const std::string& line = s.lines[i];
    bool locked_here = !lock_scopes.empty();
    if (locked_here && !Allowed(s, i, "blocking-under-lock")) {
      bool blocking = false;
      std::string what;
      for (const char* name : kBlockingMembers) {
        // Member calls only (receiver '.' or '->'): a free function named
        // Get() is someone else's problem.
        std::string dot = std::string(".") + name + "(";
        std::string arrow = std::string("->") + name + "(";
        if (line.find(dot) != std::string::npos || line.find(arrow) != std::string::npos) {
          blocking = true;
          what = name;
          break;
        }
      }
      if (!blocking) {
        for (const char* name : kBlockingFree) {
          if (ContainsToken(line, name)) {
            blocking = true;
            what = name;
            break;
          }
        }
      }
      if (blocking) {
        diags->push_back({path, static_cast<int>(i) + 1, "blocking-under-lock",
                          "potential deadlock: `" + what +
                              "` can block while a MutexLock is held in this scope"});
      }
    }
    // Update scope state after checking the line: a lock declared on this
    // line guards subsequent lines, and `}` on this line closes scopes for
    // the next one.
    for (char c : line) {
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        while (!lock_scopes.empty() && depth < lock_scopes.back()) lock_scopes.pop_back();
      }
    }
    if (ContainsToken(line, "MutexLock") && line.find('(') != std::string::npos &&
        line.find("class") == std::string::npos) {
      lock_scopes.push_back(depth);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: per-row-alloc
// ---------------------------------------------------------------------------

/// True when `token` appears with identifier boundaries and is followed
/// (after optional spaces) by '(' — i.e. used as a call/temporary.
bool TokenCallLike(const std::string& line, const std::string& token) {
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    size_t j = end;
    while (j < line.size() && line[j] == ' ') ++j;
    if (left_ok && right_ok && j < line.size() && line[j] == '(') return true;
    pos = end;
  }
  return false;
}

/// Heuristic allocation lint for files opted in with a `// hqlint:hotpath`
/// marker anywhere in the file: per-row conversion code must not pay a heap
/// allocation per value. Flags std::to_string calls and std::string
/// temporaries; cold paths (error construction) suppress with
/// `hqlint:allow(per-row-alloc)`.
void CheckPerRowAlloc(const std::string& path, const Stripped& s, bool hotpath,
                      std::vector<Diagnostic>* diags) {
  if (!hotpath) return;
  for (size_t i = 0; i < s.lines.size(); ++i) {
    if (Allowed(s, i, "per-row-alloc")) continue;
    const std::string& line = s.lines[i];
    if (TokenCallLike(line, "std::to_string")) {
      diags->push_back({path, static_cast<int>(i) + 1, "per-row-alloc",
                        "`std::to_string` allocates per call in a hotpath file; format into "
                        "stack scratch with std::to_chars"});
      continue;  // one diagnostic per line
    }
    if (TokenCallLike(line, "std::string")) {
      diags->push_back({path, static_cast<int>(i) + 1, "per-row-alloc",
                        "`std::string` temporary in a hotpath file; use std::string_view or "
                        "stack scratch"});
    }
  }
}

}  // namespace

std::string Format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.path << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

void Linter::AddFile(std::string path, std::string content) {
  bool is_header = EndsWith(path, ".h") || EndsWith(path, ".hpp");
  files_.push_back({std::move(path), std::move(content), is_header});
}

std::vector<Diagnostic> Linter::Run() const {
  std::vector<Diagnostic> diags;
  std::vector<Stripped> stripped;
  stripped.reserve(files_.size());
  std::set<std::string> status_functions;
  std::set<std::string> ambiguous;
  for (const SourceFile& f : files_) {
    stripped.push_back(Strip(f.content));
    CollectStatusFunctions(stripped.back(), &status_functions, &ambiguous);
  }
  for (const std::string& name : ambiguous) status_functions.erase(name);
  for (size_t i = 0; i < files_.size(); ++i) {
    const SourceFile& f = files_[i];
    const Stripped& s = stripped[i];
    CheckNakedMutex(this, f.path, s, &diags);
    CheckNewDelete(f.path, s, &diags);
    CheckIncludeHygiene(f.path, s, f.is_header, &diags);
    CheckDiscardedStatus(f.path, s, status_functions, &diags);
    CheckBlockingUnderLock(f.path, s, &diags);
    // The hotpath marker lives in a comment, so look at the raw content.
    CheckPerRowAlloc(f.path, s, f.content.find("hqlint:hotpath") != std::string::npos, &diags);
  }
  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return diags;
}

namespace {

bool SkippedComponent(const std::filesystem::path& p) {
  for (const auto& part : p) {
    if (part == "testdata" || part == "build" || part == "build-asan" || part == "build-tsan") {
      return true;
    }
  }
  return false;
}

bool LintableExtension(const std::filesystem::path& p) {
  auto ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

int RunHqlint(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  namespace fs = std::filesystem;
  fs::path root;
  std::vector<fs::path> inputs;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--root") {
      if (i + 1 >= args.size()) {
        err << "hqlint: --root requires a directory argument\n";
        return 2;
      }
      root = args[++i];
    } else if (args[i].rfind("--", 0) == 0) {
      err << "hqlint: unknown flag " << args[i] << "\n";
      return 2;
    } else {
      inputs.emplace_back(args[i]);
    }
  }
  if (inputs.empty()) {
    err << "usage: hqlint [--root <dir>] <file-or-dir>...\n";
    return 2;
  }

  std::vector<fs::path> files;
  std::error_code ec;
  for (const fs::path& input : inputs) {
    if (fs::is_directory(input, ec)) {
      for (auto it = fs::recursive_directory_iterator(input, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && SkippedComponent(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && LintableExtension(it->path()) &&
            !SkippedComponent(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      err << "hqlint: cannot read " << input.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  Linter linter;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      err << "hqlint: cannot open " << file.string() << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string display = file.string();
    if (!root.empty()) {
      auto rel = fs::relative(file, root, ec);
      if (!ec && !rel.empty()) display = rel.string();
    }
    linter.AddFile(std::move(display), buf.str());
  }

  std::vector<Diagnostic> diags = linter.Run();
  for (const Diagnostic& d : diags) out << Format(d) << "\n";
  if (!diags.empty()) {
    out << diags.size() << " violation" << (diags.size() == 1 ? "" : "s") << " in "
        << files.size() << " files\n";
    return 1;
  }
  return 0;
}

}  // namespace hqlint
