#include <iostream>
#include <string>
#include <vector>

#include "hqlint.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return hqlint::RunHqlint(args, std::cout, std::cerr);
}
