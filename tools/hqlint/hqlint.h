#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file hqlint.h
/// Token-level repository lint for the HyperQ codebase. Self-contained on
/// purpose (no dependency on src/) so the lint binary builds even when the
/// tree it is checking does not.
///
/// Rules (see DESIGN.md "Static analysis & concurrency contracts"):
///   naked-mutex         std::mutex family outside common/sync.h
///   new-delete          raw new/delete outside smart-pointer factories
///   include-hygiene     headers start with #pragma once; no using namespace
///   discarded-status    Status/Result-returning call used as a statement
///   blocking-under-lock Put/Get/Push/Acquire/sleep while a MutexLock lives
///                       (statements joined across line breaks; CondVar
///                       WaitFor/WaitUntil flagged when a *second* lock is
///                       held above the waiting one)
///   unranked-mutex      Mutex declared without a common::LockRank level
///   nested-lock-without-order
///                       MutexLock lexically inside another locked scope
///                       without a `// lock-order: kOuter > kInner` marker
///                       naming hierarchy-ordered ranks (MutexLock2 exempt)
///   per-row-alloc       std::to_string / std::string temporaries in files
///                       marked `// hqlint:hotpath` (per-row heap traffic)
///   unbounded-retry     for/while loop that both sleeps and issues an
///                       I/O-shaped member call (Put/Execute/CopyInto/...)
///                       without common::RetryPolicy — a hand-rolled retry
///                       loop with no attempt bound (common/retry.* exempt)
///
/// Any rule is suppressed for a line by `// hqlint:allow(<rule>)` on the same
/// line or the line directly above it.

namespace hqlint {

struct Diagnostic {
  std::string path;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;

  bool operator==(const Diagnostic& other) const {
    return path == other.path && line == other.line && rule == other.rule &&
           message == other.message;
  }
};

/// "path:line: [rule] message" — the one true diagnostic shape; the golden
/// tests compare against it verbatim.
std::string Format(const Diagnostic& d);

class Linter {
 public:
  /// Registers one file for the next Run(). `path` is echoed verbatim in
  /// diagnostics; headers are recognised by extension (.h / .hpp).
  void AddFile(std::string path, std::string content);

  /// Runs every rule over every added file. Deterministic: diagnostics are
  /// sorted by (path, line, rule). Safe to call repeatedly.
  std::vector<Diagnostic> Run() const;

 private:
  struct SourceFile {
    std::string path;
    std::string content;
    bool is_header = false;
  };
  std::vector<SourceFile> files_;
};

/// CLI driver shared by main() and the golden tests (so exit codes are
/// testable in-process). Args are everything after argv[0]:
///   hqlint [--root <dir>] <file-or-dir>...
/// Directories are walked recursively for .h/.hpp/.cc/.cpp files, skipping
/// any path containing a "testdata" or "build" component. With --root,
/// reported paths are relative to it.
/// Returns 0 (clean), 1 (violations printed to `out`), 2 (usage/IO error
/// printed to `err`).
int RunHqlint(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace hqlint
