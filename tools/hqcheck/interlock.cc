#include <algorithm>
#include <cctype>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "hqcheck.h"
#include "internal.h"

/// \file interlock.cc
/// The may-acquire rule: an interprocedural lock-order proof. The lexical
/// lock-nesting rule (hqcheck.cc) sees one function body at a time, so
/// `A() { MutexLock l(&hi_); B(); }` where B acquires an equal-or-higher
/// rank is invisible to it — exactly the inversion class the PR-4 runtime
/// validator only catches when the right schedule happens to run. This pass
/// closes that gap statically:
///
///   1. Build a repo-wide call graph. Intra-TU edges come from the scope
///      parser (every `name(` in a function body, resolved through class
///      qualifiers, `this`, and declared receiver types). Cross-TU edges the
///      source walk cannot attribute (template instantiations, calls through
///      headers) are fused in from the `objdump -dr` relocation graph the
///      hotpath proof already parses.
///   2. Compute per-function *may-acquire* summaries — the set of lock ranks
///      a call to the function may acquire, directly or transitively — as a
///      fixpoint over that graph.
///   3. Flag every call made while holding rank R to a function whose
///      summary contains a rank >= R: the runtime validator would abort on
///      that path, so lint time is where it must die.
///
/// Lambdas are capability barriers, mirroring the guarded-field rule: a
/// lambda body usually runs on another thread (thread pool, std::thread), so
/// its acquisitions do not count toward the enclosing function's summary and
/// locks held at the definition site are not held inside it. Lambda bodies
/// are still analysed as their own anonymous nodes — their internal nesting
/// edges and under-lock calls are checked and contribute to the edge set.
/// (The cost: a lambda invoked inline in the defining scope is analysed as
/// if it ran detached — an under-approximation we accept and document.)
///
/// Beyond diagnostics, the pass emits the *proven static edge set* — every
/// rank pair (held -> acquired) any path can produce — and diffs it against
/// the runtime `LockOrderGraph` DOT dump: a runtime edge that is not
/// statically derivable means the call graph has a hole (a diagnostic); a
/// static edge never traveled at runtime is reported so e2e coverage gaps
/// are visible. With the lock-rank manifest loaded, the diff also maps the
/// runtime dump's per-instance mutex-name edges back to ranks, so the
/// comparison is name-accurate, not just rank-accurate.

namespace hqcheck {

namespace {

using internal::CollectDeclarations;
using internal::CollectVarTypes;
using internal::ControlKeywords;
using internal::Declarations;
using internal::EndsWith;
using internal::LastIdent;
using internal::LockRankIndex;
using internal::LockRankNameAt;
using internal::MatchingClose;
using internal::ResolveRank;

/// Where a summary bit came from: a direct acquisition site, or a callee
/// whose summary contains it (chained for witness messages).
struct Origin {
  std::string via;  // callee node key; "" for a direct acquisition
  std::string guard;
  std::string path;
  int line = 0;
  bool binary = false;  // propagated over an objdump relocation edge
};

struct CallSite {
  std::string name;
  std::string qualifier;  // `X::name(` -> "X"
  std::string receiver;   // `recv.name(` / `recv->name(` -> "recv"
  bool this_recv = false;
  std::string ctx_cls;  // class of the enclosing (non-lambda) function
  std::string path;
  int line = 0;
  int inner_rank = -1;  // rank of the innermost lock held across the call
  std::string inner_guard;
  std::vector<size_t> callees;  // resolved node indices
};

struct FnNode {
  std::string key;  // "Class::Method", "FreeFn", or "...::{lambda:N}"
  std::string cls;
  std::string method;
  std::string path;
  bool is_lambda = false;
  uint16_t mask = 0;  // may-acquire rank bits
  std::map<int, Origin> origin;
  std::vector<CallSite> calls;
  std::vector<size_t> bin_callees;  // fused objdump edges (summary-only)
};

struct EdgeInfo {
  std::string provenance;  // first site that proved the edge
};

/// node key for the demangled symbol `hyperq::cdw::Class::Method(...)`.
/// Returns "" when the demangled shape has no usable name.
std::string KeyForDemangled(const std::string& demangled) {
  std::string s = demangled;
  size_t clone = s.find(" [clone");
  if (clone != std::string::npos) s = s.substr(0, clone);
  // Strip the parameter list: first '(' at angle depth 0.
  int angle = 0;
  size_t paren = std::string::npos;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '<') ++angle;
    if (s[i] == '>' && angle > 0) --angle;
    if (s[i] == '(' && angle == 0) {
      paren = i;
      break;
    }
  }
  if (paren != std::string::npos) s = s.substr(0, paren);
  // Drop template args from the tail components.
  std::vector<std::string> parts;
  size_t start = 0;
  angle = 0;
  for (size_t i = 0; i + 1 <= s.size(); ++i) {
    if (i < s.size() && s[i] == '<') ++angle;
    if (i < s.size() && s[i] == '>' && angle > 0) --angle;
    bool split = i + 1 < s.size() && angle == 0 && s[i] == ':' && s[i + 1] == ':';
    if (split || i == s.size()) {
      parts.push_back(s.substr(start, i - start));
      if (split) {
        ++i;
        start = i + 1;
      }
    }
  }
  if (parts.empty()) return "";
  auto strip = [](std::string x) {
    size_t lt = x.find('<');
    return lt == std::string::npos ? x : x.substr(0, lt);
  };
  std::string method = strip(parts.back());
  if (method.empty() || !(std::isalpha(static_cast<unsigned char>(method[0])) != 0 ||
                          method[0] == '_' || method[0] == '~')) {
    return "";
  }
  std::string cls = parts.size() >= 2 ? strip(parts[parts.size() - 2]) : "";
  return cls.empty() ? method : cls + "::" + method;
}

}  // namespace

std::vector<Diagnostic> Analyzer::RunInterlock(const InterlockOptions& options,
                                               std::ostream* report) const {
  std::vector<Diagnostic> diags;

  std::vector<LexedFile> lexed;
  lexed.reserve(files_.size());
  Declarations decls;
  for (const SourceFile& f : files_) {
    lexed.push_back(Lex(f.path, f.content));
    CollectDeclarations(lexed.back(), &decls);
  }
  std::map<std::string, std::set<std::string>> var_types;
  for (const LexedFile& f : lexed) CollectVarTypes(f, decls.class_names, &var_types);

  // -------------------------------------------------------------------------
  // Node construction: one per function body (+ one per lambda body).
  // -------------------------------------------------------------------------
  std::vector<FnNode> nodes;
  std::map<std::string, size_t> index;
  auto node_at = [&](const std::string& key, const std::string& cls, const std::string& method,
                     const std::string& path, bool is_lambda) -> size_t {
    auto it = index.find(key);
    if (it != index.end()) return it->second;
    FnNode n;
    n.key = key;
    n.cls = cls;
    n.method = method;
    n.path = path;
    n.is_lambda = is_lambda;
    nodes.push_back(std::move(n));
    index[key] = nodes.size() - 1;
    return nodes.size() - 1;
  };

  std::map<std::pair<int, int>, EdgeInfo> static_edges;
  auto add_edge = [&](int holder, int acquired, const std::string& prov) {
    if (holder < 0 || acquired < 0) return;
    auto [it, fresh] = static_edges.insert({{holder, acquired}, EdgeInfo{prov}});
    (void)it;
    (void)fresh;
  };

  for (const LexedFile& f : lexed) {
    // sync.h implements the primitives themselves; same exclusion as Run().
    if (EndsWith(f.path, "common/sync.h")) continue;
    internal::ForEachFunctionBody(f, [&](const std::string& cls, const std::string& method,
                                         bool /*ctor_dtor*/, size_t open, size_t close) {
      const std::vector<Token>& t = f.tokens;
      std::string fn_key = cls.empty() ? method : cls + "::" + method;
      size_t fn_node = node_at(fn_key, cls, method, f.path, false);

      struct Live {
        std::string guard;
        int rank = -1;
        int depth = 0;
        int line = 0;
      };
      std::vector<Live> locks;
      struct LambdaCtx {
        int barrier = 0;
        size_t node = 0;
      };
      std::vector<LambdaCtx> lambdas;
      int depth = 0;

      auto cur_node = [&]() { return lambdas.empty() ? fn_node : lambdas.back().node; };
      auto barrier = [&]() { return lambdas.empty() ? 0 : lambdas.back().barrier; };
      auto visible_inner = [&]() -> const Live* {
        if (locks.empty()) return nullptr;
        const Live& l = locks.back();
        return l.depth >= barrier() ? &l : nullptr;
      };

      for (size_t i = open; i <= close && i < t.size(); ++i) {
        const Token& tok = t[i];
        if (tok.kind == TokKind::kPunct) {
          if (tok.text == "{") ++depth;
          if (tok.text == "}") {
            --depth;
            while (!locks.empty() && depth < locks.back().depth) locks.pop_back();
            while (!lambdas.empty() && depth < lambdas.back().barrier) lambdas.pop_back();
          }
          if (tok.text == "[" && i > open) {
            const Token& prev = t[i - 1];
            bool subscript = prev.kind == TokKind::kIdent
                                 ? ControlKeywords().count(prev.text) == 0
                                 : prev.text == ")" || prev.text == "]";
            if (prev.kind == TokKind::kNumber || prev.kind == TokKind::kString) subscript = true;
            if (!subscript) {
              size_t intro_close = MatchingClose(t, i);
              size_t j = intro_close + 1;
              if (t[j].text == "(") j = MatchingClose(t, j) + 1;
              while (j < close && t[j].text != "{" && t[j].text != ";" && t[j].text != ")" &&
                     t[j].text != ",") {
                ++j;
              }
              if (j < close && t[j].text == "{") {
                std::string lkey =
                    fn_key + "::{lambda:" + std::to_string(tok.line) + "}";
                size_t lnode = node_at(lkey, cls, method, f.path, true);
                lambdas.push_back({depth + 1, lnode});
              }
              i = intro_close;  // captures are not calls
            }
          }
          continue;
        }
        if (tok.kind != TokKind::kIdent) continue;

        if ((tok.text == "MutexLock" || tok.text == "MutexLock2") &&
            t[i + 1].kind == TokKind::kIdent && t[i + 2].text == "(") {
          size_t args_close = MatchingClose(t, i + 2);
          bool pair = tok.text == "MutexLock2";
          size_t begin = i + 3;
          int adepth = 0;
          std::vector<std::pair<std::string, int>> acquired;  // guard, rank
          for (size_t k = i + 3; k <= args_close; ++k) {
            const std::string& x = t[k].text;
            if (x == "(" || x == "<") ++adepth;
            if (x == ")" || x == ">") --adepth;
            if (k == args_close || (adepth == 0 && x == ",")) {
              std::string guard = LastIdent(t, begin, k);
              if (!guard.empty()) {
                acquired.push_back({guard, LockRankIndex(ResolveRank(decls, cls, guard))});
              }
              begin = k + 1;
            }
          }
          if (pair && acquired.size() == 2 && acquired[0].second < acquired[1].second) {
            // MutexLock2 acquires the higher-ranked mutex first; mirror it so
            // the recorded edges match what the runtime graph will contain.
            std::swap(acquired[0], acquired[1]);
          }
          const Live* outer = visible_inner();
          int prev_rank = outer != nullptr ? outer->rank : -1;
          size_t node = cur_node();
          for (size_t k = 0; k < acquired.size(); ++k) {
            const auto& [guard, rank] = acquired[k];
            if (rank >= 0) {
              uint16_t bit = static_cast<uint16_t>(1u << rank);
              if ((nodes[node].mask & bit) == 0) {
                nodes[node].mask |= bit;
                nodes[node].origin[rank] = Origin{"", guard, f.path, tok.line, false};
              }
              // The runtime records (top-of-stack -> acquired) on every
              // acquisition except MutexLock2's equal-rank second leg.
              if (prev_rank >= 0 && !(pair && k > 0 && rank == prev_rank)) {
                add_edge(prev_rank, rank,
                         f.path + ":" + std::to_string(tok.line) + " `" + guard + "` in " +
                             nodes[node].key);
              }
            }
            locks.push_back({guard, rank, depth, tok.line});
            prev_rank = rank;
          }
          i = args_close;
          continue;
        }

        if (ControlKeywords().count(tok.text) != 0) continue;
        if (t[i + 1].text != "(") continue;
        if (tok.text.rfind("HQ_", 0) == 0) continue;  // macro, not a callee
        CallSite cs;
        cs.name = tok.text;
        cs.ctx_cls = cls;
        cs.path = f.path;
        cs.line = tok.line;
        if (i >= 2 && t[i - 1].text == "::" && t[i - 2].kind == TokKind::kIdent) {
          cs.qualifier = t[i - 2].text;
        } else if (i >= 2 && (t[i - 1].text == "." || t[i - 1].text == "->")) {
          if (t[i - 2].kind == TokKind::kIdent) {
            if (t[i - 2].text == "this") {
              cs.this_recv = true;
            } else {
              cs.receiver = t[i - 2].text;
            }
          } else {
            cs.receiver = "<expr>";  // chained call: receiver type unknown
          }
        }
        const Live* inner = visible_inner();
        if (inner != nullptr && inner->rank >= 0) {
          cs.inner_rank = inner->rank;
          cs.inner_guard = inner->guard;
        }
        nodes[cur_node()].calls.push_back(std::move(cs));
        continue;
      }
    });
  }

  // -------------------------------------------------------------------------
  // Call resolution.
  // -------------------------------------------------------------------------
  std::map<std::string, std::vector<size_t>> by_method;  // method -> member nodes
  for (size_t n = 0; n < nodes.size(); ++n) {
    if (nodes[n].is_lambda) continue;
    if (!nodes[n].cls.empty()) by_method[nodes[n].method].push_back(n);
  }
  auto resolve = [&](CallSite& cs) {
    auto add = [&](const std::string& key) {
      auto it = index.find(key);
      if (it != index.end()) cs.callees.push_back(it->second);
    };
    // `cls::name` plus every transitive override: a call through a base
    // pointer/reference dispatches to any derived class's method, so the
    // may-acquire union must cover them all (net::Transport::Close resolving
    // to the pipe-backed endpoint's Close is how kServer -> kQueue happens).
    auto add_virtual = [&](const std::string& cls, const std::string& name) {
      std::vector<std::string> work = {cls};
      std::set<std::string> seen;
      while (!work.empty()) {
        std::string c = std::move(work.back());
        work.pop_back();
        if (!seen.insert(c).second) continue;
        add(c + "::" + name);
        auto dit = decls.derived.find(c);
        if (dit != decls.derived.end()) {
          work.insert(work.end(), dit->second.begin(), dit->second.end());
        }
      }
    };
    if (!cs.qualifier.empty()) {
      if (decls.class_names.count(cs.qualifier) != 0) {
        add(cs.qualifier + "::" + cs.name);
      } else {
        add(cs.name);  // namespace-qualified free function
      }
      return;
    }
    if (cs.this_recv) {
      add_virtual(cs.ctx_cls, cs.name);
      return;
    }
    if (!cs.receiver.empty() && cs.receiver != "<expr>") {
      auto vt = var_types.find(cs.receiver);
      if (vt != var_types.end()) {
        for (const std::string& c : vt->second) add_virtual(c, cs.name);
        return;  // typed receiver: a miss means a non-repo type's method
      }
    }
    if (!cs.receiver.empty()) {
      // Untyped or chained receiver. Two dampeners keep the union fallback
      // from drowning the rule in noise: (1) ubiquitous container /
      // smart-pointer method names are never unioned — `items_.size()` on a
      // std::deque member would otherwise resolve to BoundedQueue::size
      // (which locks) at every call site in the tree; (2) the context class
      // is excluded — recursing into your own class through an untyped
      // receiver is spelled `this->`, so a same-name match on the enclosing
      // class is almost always a different class's method.
      static const std::set<std::string> kCommonMethods = {
          "size",    "empty",   "begin",   "end",     "clear",   "front",
          "back",    "data",    "at",      "find",    "count",   "contains",
          "insert",  "erase",   "emplace", "emplace_back", "push_back",
          "pop_back", "push_front", "pop_front", "resize", "reserve",
          "c_str",   "str",     "substr",  "append",  "length",  "get",
          "reset",   "release", "swap",    "load",    "store",   "exchange",
          "fetch_add", "fetch_sub", "value", "value_or", "has_value",
          "first",   "second"};
      if (kCommonMethods.count(cs.name) != 0) return;
      auto bm = by_method.find(cs.name);
      if (bm != by_method.end()) {
        for (size_t n : bm->second) {
          if (!cs.ctx_cls.empty() && nodes[n].cls == cs.ctx_cls) continue;
          cs.callees.push_back(n);
        }
      }
      return;
    }
    // Unqualified plain call: own class's method, else a free function,
    // else a constructor of a repo class (`Foo tmp(...)` / `return Foo(...)`).
    if (!cs.ctx_cls.empty() && index.count(cs.ctx_cls + "::" + cs.name) != 0) {
      add(cs.ctx_cls + "::" + cs.name);
      return;
    }
    if (index.count(cs.name) != 0) {
      add(cs.name);
      return;
    }
    if (decls.class_names.count(cs.name) != 0) add(cs.name + "::" + cs.name);
  };
  size_t call_edges = 0;
  for (FnNode& n : nodes) {
    for (CallSite& cs : n.calls) {
      resolve(cs);
      call_edges += cs.callees.size();
    }
  }

  // -------------------------------------------------------------------------
  // Objdump fusion: relocation edges between symbols that map onto source
  // nodes become summary-propagation edges (no held-lock context at the
  // binary level, so they widen summaries but never judge call sites).
  // -------------------------------------------------------------------------
  size_t fused_edges = 0;
  if (!options.disasm.empty()) {
    internal::BinCallGraph bg = internal::ParseDisasmCallGraph(options.disasm);
    std::map<std::string, std::string> sym_key;  // mangled -> node key
    auto key_of = [&](const std::string& sym) -> const std::string& {
      auto it = sym_key.find(sym);
      if (it == sym_key.end()) {
        it = sym_key.emplace(sym, KeyForDemangled(internal::DemangleSymbol(sym))).first;
      }
      return it->second;
    };
    for (const auto& [sym, callees] : bg.edges) {
      const std::string& from_key = key_of(sym);
      auto fit = index.find(from_key);
      if (fit == index.end()) continue;
      for (const std::string& callee : callees) {
        auto cit = index.find(key_of(callee));
        if (cit == index.end() || cit->second == fit->second) continue;
        nodes[fit->second].bin_callees.push_back(cit->second);
        ++fused_edges;
      }
    }
  }

  // -------------------------------------------------------------------------
  // Fixpoint: summary(f) = direct(f) | union summary(callees).
  // -------------------------------------------------------------------------
  bool changed = true;
  while (changed) {
    changed = false;
    for (FnNode& n : nodes) {
      auto absorb = [&](size_t callee, int line, bool binary) {
        uint16_t add = static_cast<uint16_t>(nodes[callee].mask & ~n.mask);
        if (add == 0) return;
        n.mask |= add;
        for (int r = 0; r < internal::kNumLockRanks; ++r) {
          if ((add & (1u << r)) != 0) {
            n.origin[r] = Origin{nodes[callee].key, "", n.path, line, binary};
          }
        }
        changed = true;
      };
      for (const CallSite& cs : n.calls) {
        for (size_t callee : cs.callees) absorb(callee, cs.line, false);
      }
      for (size_t callee : n.bin_callees) absorb(callee, 0, true);
    }
  }

  // Witness chain for node/rank: "A -> B -> acquires `g` (path:line)".
  auto witness = [&](size_t node, int rank) -> std::string {
    std::string chain;
    std::set<size_t> seen;
    size_t cur = node;
    while (seen.insert(cur).second) {
      const FnNode& n = nodes[cur];
      auto oit = n.origin.find(rank);
      if (oit == n.origin.end()) break;
      const Origin& o = oit->second;
      if (o.via.empty()) {
        chain += n.key + " acquires `" + o.guard + "` at " + o.path + ":" +
                 std::to_string(o.line);
        return chain;
      }
      chain += n.key + (o.binary ? " =[objdump]=> " : " -> ");
      auto nit = index.find(o.via);
      if (nit == index.end()) break;
      cur = nit->second;
    }
    return chain + "...";
  };

  // -------------------------------------------------------------------------
  // Violations + call-site contribution to the static edge set.
  // -------------------------------------------------------------------------
  std::map<std::string, const LexedFile*> file_of;
  for (const LexedFile& f : lexed) file_of[f.path] = &f;
  std::set<std::pair<std::string, int>> consumed_allows;
  auto suppressed = [&](const std::string& path, int line) {
    auto it = file_of.find(path);
    if (it == file_of.end() || !it->second->Allowed(line, "may-acquire")) return false;
    consumed_allows.insert({path, line});
    consumed_allows.insert({path, line - 1});
    return true;
  };

  size_t under_lock_calls = 0;
  for (const FnNode& n : nodes) {
    for (const CallSite& cs : n.calls) {
      if (cs.inner_rank < 0 || cs.callees.empty()) continue;
      ++under_lock_calls;
      uint16_t seen_mask = 0;
      for (size_t callee : cs.callees) {
        uint16_t mask = nodes[callee].mask;
        for (int r = 0; r < internal::kNumLockRanks; ++r) {
          if ((mask & (1u << r)) == 0) continue;
          add_edge(cs.inner_rank, r,
                   cs.path + ":" + std::to_string(cs.line) + " " + n.key + " calls " +
                       nodes[callee].key);
          if (r < cs.inner_rank) continue;  // strictly descending: fine
          if ((seen_mask & (1u << r)) != 0) continue;
          seen_mask |= static_cast<uint16_t>(1u << r);
          if (suppressed(cs.path, cs.line)) continue;
          diags.push_back(
              {cs.path, cs.line, "may-acquire",
               n.key + " calls " + nodes[callee].key + " while holding `" + cs.inner_guard +
                   "` (" + LockRankNameAt(cs.inner_rank) + "), but its summary may acquire " +
                   LockRankNameAt(r) + " (not strictly lower) — the runtime validator "
                   "aborts on this path; witness: " + witness(callee, r)});
        }
      }
    }
  }

  // Stale-allow audit for the may-acquire family: a marker that suppressed
  // nothing is debt that hides the next real finding.
  for (const LexedFile& f : lexed) {
    for (size_t l = 0; l < f.allows.size(); ++l) {
      if (f.allows[l].count("may-acquire") == 0) continue;
      int line = static_cast<int>(l) + 1;
      if (consumed_allows.count({f.path, line}) != 0) continue;
      diags.push_back({f.path, line, "may-acquire",
                       "stale hqcheck:allow(may-acquire) marker: no finding is suppressed "
                       "here any more — remove it"});
    }
  }

  // -------------------------------------------------------------------------
  // Cycle check over the static rank edges.
  // -------------------------------------------------------------------------
  auto find_cycle = [&](const std::set<std::pair<int, int>>& edges) -> std::vector<int> {
    std::vector<std::vector<int>> adj(internal::kNumLockRanks);
    for (const auto& [a, b] : edges) adj[static_cast<size_t>(a)].push_back(b);
    std::vector<int> state(internal::kNumLockRanks, 0);  // 0 new, 1 on stack, 2 done
    std::vector<int> stack;
    std::vector<int> cycle;
    std::function<bool(int)> dfs = [&](int v) -> bool {
      state[static_cast<size_t>(v)] = 1;
      stack.push_back(v);
      for (int w : adj[static_cast<size_t>(v)]) {
        if (state[static_cast<size_t>(w)] == 1) {
          auto it = std::find(stack.begin(), stack.end(), w);
          cycle.assign(it, stack.end());
          cycle.push_back(w);
          return true;
        }
        if (state[static_cast<size_t>(w)] == 0 && dfs(w)) return true;
      }
      stack.pop_back();
      state[static_cast<size_t>(v)] = 2;
      return false;
    };
    for (int v = 0; v < internal::kNumLockRanks; ++v) {
      if (state[static_cast<size_t>(v)] == 0 && dfs(v)) return cycle;
    }
    return {};
  };
  std::set<std::pair<int, int>> static_pairs;
  for (const auto& [e, info] : static_edges) {
    (void)info;
    if (e.first != e.second) static_pairs.insert(e);  // same-rank pairs are MutexLock2-ordered
  }
  std::vector<int> cyc = find_cycle(static_pairs);
  if (!cyc.empty()) {
    std::string path_text;
    for (size_t k = 0; k < cyc.size(); ++k) {
      if (k != 0) path_text += " -> ";
      path_text += LockRankNameAt(cyc[static_cast<size_t>(k)]);
    }
    diags.push_back({"<static-edges>", 0, "may-acquire",
                     "the proven static lock-order edge set contains a cycle: " + path_text});
  }

  // -------------------------------------------------------------------------
  // Runtime diff (optional): every runtime edge must be statically
  // derivable; untraveled static edges go to the report.
  // -------------------------------------------------------------------------
  std::set<std::pair<int, int>> runtime_pairs;
  std::vector<std::pair<std::string, std::string>> runtime_name_edges;
  size_t unmapped_names = 0;
  if (!options.lockgraph_dot.empty()) {
    // Mutex label -> rank, from the lock-rank manifest.
    std::map<std::string, int> label_rank;
    if (has_manifest_) {
      std::vector<Diagnostic> scratch;
      for (const ManifestEntry& e : ParseManifest(manifest_path_, manifest_, &scratch)) {
        label_rank[e.label] = LockRankIndex(e.rank);
      }
    }
    std::istringstream in(options.lockgraph_dot);
    std::string line;
    auto trim = [](std::string s) {
      size_t b = s.find_first_not_of(" \t");
      size_t e = s.find_last_not_of(" \t\r;");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    while (std::getline(in, line)) {
      std::string s = trim(line);
      size_t arrow = s.find(" -> ");
      if (arrow == std::string::npos || s.rfind("//", 0) == 0) continue;
      std::string lhs = s.substr(0, arrow);
      std::string rhs = s.substr(arrow + 4);
      size_t attr = rhs.find(" [");
      if (attr != std::string::npos) rhs = rhs.substr(0, attr);
      lhs = trim(lhs);
      rhs = trim(rhs);
      auto unquote = [](const std::string& x) {
        return x.size() >= 2 && x.front() == '"' && x.back() == '"'
                   ? x.substr(1, x.size() - 2)
                   : x;
      };
      if (!lhs.empty() && lhs.front() == '"') {
        runtime_name_edges.push_back({unquote(lhs), unquote(rhs)});
        continue;
      }
      int a = LockRankIndex(lhs);
      int b = LockRankIndex(rhs);
      if (a >= 0 && b >= 0) runtime_pairs.insert({a, b});
    }
    std::string dot_path =
        options.lockgraph_path.empty() ? "<lockgraph>" : options.lockgraph_path;
    for (const auto& e : runtime_pairs) {
      if (static_edges.count(e) != 0) continue;
      diags.push_back(
          {dot_path, 0, "may-acquire",
           "runtime lock-order edge " + std::string(LockRankNameAt(e.first)) + " -> " +
               LockRankNameAt(e.second) +
               " was observed by the LockOrderGraph but is not derivable from the static "
               "call graph — interlock is blind to the code path that produced it (likely "
               "an indirect call); close the hole before trusting the proof"});
    }
    // Name-accurate pass over the per-instance edges the runtime graph
    // records since PR 9: map labels back to ranks through the manifest.
    for (const auto& [ha, hb] : runtime_name_edges) {
      int a = label_rank.count(ha) != 0 ? label_rank[ha] : LockRankIndex(ha);
      int b = label_rank.count(hb) != 0 ? label_rank[hb] : LockRankIndex(hb);
      if (a < 0 || b < 0) {
        ++unmapped_names;
        continue;
      }
      if (a == b) continue;  // same-rank instance pair: MutexLock2 territory
      if (static_edges.count({a, b}) != 0) continue;
      std::string dp = options.lockgraph_path.empty() ? "<lockgraph>" : options.lockgraph_path;
      diags.push_back(
          {dp, 0, "may-acquire",
           "runtime mutex-name edge \"" + ha + "\" -> \"" + hb + "\" (" + LockRankNameAt(a) +
               " -> " + LockRankNameAt(b) +
               ") has no statically derivable rank edge — the static call graph is missing "
               "the path between these instances"});
    }
    std::vector<int> rcyc = find_cycle(runtime_pairs);
    if (!rcyc.empty()) {
      std::string path_text;
      for (size_t k = 0; k < rcyc.size(); ++k) {
        if (k != 0) path_text += " -> ";
        path_text += LockRankNameAt(rcyc[static_cast<size_t>(k)]);
      }
      diags.push_back({options.lockgraph_path.empty() ? "<lockgraph>" : options.lockgraph_path,
                       0, "may-acquire", "the runtime lock-order graph contains a cycle: " +
                           path_text});
    }
  }

  // -------------------------------------------------------------------------
  // Report.
  // -------------------------------------------------------------------------
  if (report != nullptr) {
    size_t lambda_nodes = 0;
    size_t locking_nodes = 0;
    for (const FnNode& n : nodes) {
      if (n.is_lambda) ++lambda_nodes;
      if (n.mask != 0) ++locking_nodes;
    }
    *report << "interlock: " << nodes.size() << " nodes (" << lambda_nodes << " lambda), "
            << call_edges << " resolved call edges, " << fused_edges << " objdump-fused edges, "
            << locking_nodes << " nodes with non-empty may-acquire summaries, "
            << under_lock_calls << " resolved calls made under a lock\n";
    *report << "static lock-order edges (" << static_edges.size() << "):\n";
    for (const auto& [e, info] : static_edges) {
      bool traveled = runtime_pairs.count(e) != 0;
      *report << "  " << LockRankNameAt(e.first) << " -> " << LockRankNameAt(e.second);
      if (!options.lockgraph_dot.empty()) {
        *report << (traveled ? "  [traveled at runtime]" : "  [not traveled at runtime]");
      }
      *report << "  via " << info.provenance << "\n";
    }
    if (!options.lockgraph_dot.empty()) {
      size_t traveled = 0;
      for (const auto& e : runtime_pairs) {
        if (static_edges.count(e) != 0) ++traveled;
      }
      *report << "runtime diff: " << runtime_pairs.size() << " runtime rank edges ("
              << traveled << " derivable statically), " << runtime_name_edges.size()
              << " runtime mutex-name edges";
      if (unmapped_names != 0) {
        *report << " (" << unmapped_names << " not mapped to a rank — label missing from the "
                << "lock-rank manifest)";
      }
      *report << "\n";
    }
    if (options.verbose) {
      for (const FnNode& n : nodes) {
        if (n.mask == 0) continue;
        *report << "  summary " << n.key << ":";
        for (int r = internal::kNumLockRanks - 1; r >= 0; --r) {
          if ((n.mask & (1u << r)) != 0) *report << " " << LockRankNameAt(r);
        }
        *report << "\n";
      }
    }
    for (const Diagnostic& d : diags) *report << "  VIOLATION " << Format(d) << "\n";
  }

  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  diags.erase(std::unique(diags.begin(), diags.end()), diags.end());
  return diags;
}

}  // namespace hqcheck
