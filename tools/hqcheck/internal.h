#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "hqcheck.h"

/// \file internal.h
/// Shared plumbing between hqcheck's analysis passes. The v2 rules
/// (hqcheck.cc), the interprocedural lock pass (interlock.cc) and the taint
/// pass (taint.cc) all walk the same lexed token streams and share the same
/// declaration model; this header is the seam between them. Nothing here is
/// part of the tool's public contract (that is hqcheck.h) — tests may reach
/// in, production code must not.

namespace hqcheck::internal {

// ---------------------------------------------------------------------------
// Lock ranks (mirror of common/sync.h LockRank; hqcheck is standalone)
// ---------------------------------------------------------------------------

inline constexpr int kNumLockRanks = 10;

/// Index of `name` ("kLogging".."kLifecycle") in the hierarchy; -1 unknown.
int LockRankIndex(const std::string& name);
/// Rank name for index 0..9; "k?" out of range.
const char* LockRankNameAt(int index);

// ---------------------------------------------------------------------------
// Declarations (pass 1 model, merged across files)
// ---------------------------------------------------------------------------

struct EnumInfo {
  std::string name;
  std::vector<std::string> enumerators;
  std::string path;
  int line = 0;
};

struct MutexSite {
  std::string scope;  // owning class, or "" at namespace/function scope
  std::string var;
  std::string rank;   // "" when the construction names no LockRank
  std::string label;  // "" when the construction names no string
  std::string path;
  int line = 0;
};

/// Everything pass 1 learns about the linted set, merged across files.
struct Declarations {
  // class -> field -> guard mutex (last identifier of the annotation arg).
  std::map<std::string, std::map<std::string, std::string>> guarded;
  // class -> method -> set of mutexes the method requires.
  std::map<std::string, std::map<std::string, std::set<std::string>>> requires_;
  // class -> mutex member -> rank name; "" class for namespace-scope mutexes.
  std::map<std::string, std::map<std::string, std::string>> mutex_ranks;
  // mutex variable name -> rank, when every declaration of that name agrees
  // (used to resolve lock-nesting when the owning class is not in view).
  std::map<std::string, std::string> var_ranks;
  std::set<std::string> var_rank_conflicts;
  std::map<std::string, EnumInfo> enums;
  std::set<std::string> ambiguous_enums;  // same name, different enumerators
  // enumerator -> enum names it appears in (for unqualified case labels).
  std::map<std::string, std::set<std::string>> enumerator_owners;
  std::vector<MutexSite> mutex_sites;
  // every class/struct name with a definition in the analysed set.
  std::set<std::string> class_names;
  // base class -> directly derived classes (from inheritance clauses).
  // Virtual calls through a base pointer resolve to every override.
  std::map<std::string, std::set<std::string>> derived;
};

// ---------------------------------------------------------------------------
// Token-walk helpers
// ---------------------------------------------------------------------------

const std::set<std::string>& ControlKeywords();

/// Token index of the matching closer for the opener at `i` ("(", "{", "[",
/// all tracked together), or the kEnd index when unbalanced.
size_t MatchingClose(const std::vector<Token>& t, size_t i);

/// Last identifier token text in [begin, end) — the resolved name of a
/// guard expression like `&job->mu_` or `this->mu_`.
std::string LastIdent(const std::vector<Token>& t, size_t begin, size_t end);

void CollectDeclarations(const LexedFile& f, Declarations* decls);

/// Second declaration sweep, run once class_names is complete: maps variable
/// (member, local, parameter) names to the repo class they are declared as,
/// resolving `Foo f`, `Foo* f`, `const Foo& f`, and `smart_ptr<Foo> f`
/// spellings. A name declared as several classes maps to the union.
void CollectVarTypes(const LexedFile& f, const std::set<std::string>& class_names,
                     std::map<std::string, std::set<std::string>>* var_types);

/// Declared rank of `guard` as seen from class `cls` ("" when unknown).
std::string ResolveRank(const Declarations& d, const std::string& cls,
                        const std::string& guard);

bool EndsWith(const std::string& s, const std::string& suffix);

/// Invokes `fn(cls, method, ctor_dtor, open, close)` for every function body
/// in the file; `open`/`close` are token indexes of the body braces. `cls`
/// resolves `X::Name` qualifiers over the enclosing scope.
using BodyCallback = std::function<void(const std::string& cls, const std::string& method,
                                        bool ctor_dtor, size_t open, size_t close)>;
void ForEachFunctionBody(const LexedFile& f, const BodyCallback& fn);

// ---------------------------------------------------------------------------
// Binary call graph (objdump -dr relocation edges; defined in symbol_proof.cc)
// ---------------------------------------------------------------------------

struct BinCallGraph {
  // mangled symbol -> callees (first-seen order, deduplicated).
  std::map<std::string, std::vector<std::string>> edges;
  // symbol -> object file it is defined in.
  std::map<std::string, std::string> object_of;
  std::vector<std::string> definition_order;
};

/// Parses concatenated `objdump -dr` output into the relocation call graph.
BinCallGraph ParseDisasmCallGraph(const std::string& disasm);

/// Demangles a (possibly clone-suffixed) symbol; returns the input when the
/// demangler declines.
std::string DemangleSymbol(const std::string& sym);

// ---------------------------------------------------------------------------
// Source digests (hotpath stamp guard; defined in cli.cc helpers)
// ---------------------------------------------------------------------------

/// FNV-1a 64 over the bytes, rendered as 16 lowercase hex digits.
std::string Fnv64Hex(const std::string& bytes);

}  // namespace hqcheck::internal
