#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "hqcheck.h"
#include "internal.h"

/// \file taint.cc
/// The taint rule: an untrusted-input proof over the wire decoders. Bytes
/// arriving from net::Transport, ObjectStore gets, and TDF reads are
/// attacker-controlled; `ByteReader` makes the *reads* safe (every Read*
/// checks remaining()), but the integer *values* read — lengths, counts,
/// offsets — flow onward into indexes, allocation sizes, and memcpy bounds.
/// This pass tracks those values lexically inside every decoder function
/// named by the surfaces manifest (tools/hqcheck/taint_surfaces.txt):
///
///   sources   the integer-returning ByteReader reads (ReadByte..ReadF64)
///             plus manifest `source` functions (varint decoders); memcpy
///             into `&var` inside a decoder also taints var (that is what
///             "decode" means);
///   taint     propagates through assignments and arithmetic; a value
///             computed from a tainted value is tainted;
///   checks    a comparison operator dominates (lexically precedes) a use —
///             the approximation of a bounds check; values produced by the
///             bounds-checked consumers (ReadSlice / Skip /
///             ReadLengthPrefixed*) are born clean;
///   sinks     subscripts, memcpy/memmove/memset/strncpy arguments,
///             .resize()/.reserve()/SubSlice() arguments, and
///             `.data() + expr` pointer arithmetic.
///
/// A tainted, unchecked value reaching a sink is a finding. The only escape
/// is an audited `// hqcheck:trusted(taint): <justification>` marker on the
/// sink line (or the line above) — mirroring the hotpath allow frontier:
/// justification text is mandatory, and a marker that suppresses nothing is
/// itself a finding, as is a `decoder` manifest entry that matches no
/// function. `hqcheck:allow(taint)` is rejected outright so the audited
/// frontier stays the single escape hatch.

namespace hqcheck {

namespace {

using internal::ControlKeywords;
using internal::EndsWith;
using internal::LastIdent;
using internal::MatchingClose;

/// Glob-lite matcher: `*` spans any sequence; everything else is literal.
bool PatternMatch(const std::string& pat, const std::string& s) {
  size_t p = 0, i = 0, star = std::string::npos, mark = 0;
  while (i < s.size()) {
    if (p < pat.size() && (pat[p] == s[i])) {
      ++p;
      ++i;
    } else if (p < pat.size() && pat[p] == '*') {
      star = p++;
      mark = i;
    } else if (star != std::string::npos) {
      p = star + 1;
      i = ++mark;
    } else {
      return false;
    }
  }
  while (p < pat.size() && pat[p] == '*') ++p;
  return p == pat.size();
}

struct Surfaces {
  std::vector<std::pair<std::string, int>> decoders;  // pattern, manifest line
  std::set<std::string> sources;                      // extra source functions
};

Surfaces ParseSurfaces(const std::string& path, const std::string& content,
                       std::vector<Diagnostic>* diags) {
  Surfaces out;
  std::istringstream in(content);
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    std::string text = raw.substr(0, raw.find('#'));
    std::istringstream fields(text);
    std::string kind, name, extra;
    if (!(fields >> kind)) continue;
    if (!(fields >> name) || (fields >> extra)) {
      diags->push_back({path, line, "taint",
                        "surfaces line must be `decoder <Class::Method>` or `source <fn>`"});
      continue;
    }
    if (kind == "decoder") {
      out.decoders.push_back({name, line});
    } else if (kind == "source") {
      out.sources.insert(name);
    } else {
      diags->push_back({path, line, "taint",
                        "unknown surfaces directive `" + kind + "` (decoder|source)"});
    }
  }
  return out;
}

/// Integer-returning ByteReader reads: their results are wire-controlled.
const std::set<std::string>& IntReadFns() {
  static const std::set<std::string> fns = {"ReadByte", "ReadU16", "ReadU32", "ReadU64",
                                            "ReadI8",   "ReadI16", "ReadI32", "ReadI64",
                                            "ReadF64"};
  return fns;
}

/// Bounds-checked consumers: they validate against remaining() internally,
/// so their results are born clean and their arguments are not sinks.
const std::set<std::string>& SafeConsumers() {
  static const std::set<std::string> fns = {"ReadSlice", "Skip", "ReadLengthPrefixed16",
                                            "ReadLengthPrefixed32"};
  return fns;
}

const std::set<std::string>& MemFns() {
  static const std::set<std::string> fns = {"memcpy", "memmove", "memset", "strncpy", "strcpy"};
  return fns;
}

const std::set<std::string>& SizeSinkMethods() {
  static const std::set<std::string> fns = {"resize", "reserve", "SubSlice"};
  return fns;
}

enum TaintState { kClean = 0, kTainted = 1, kChecked = 2 };

struct VarTaint {
  TaintState state = kClean;
  int line = 0;
  std::string origin;  // the source function, for messages
};

struct DecoderStats {
  std::string key;
  std::string path;
  int line = 0;
  int tainted_vars = 0;
  int sinks = 0;
  int findings = 0;
};

}  // namespace

std::vector<Diagnostic> Analyzer::RunTaint(const TaintOptions& options,
                                           std::ostream* report) const {
  std::vector<Diagnostic> diags;
  Surfaces surfaces = ParseSurfaces(options.surfaces_path, options.surfaces, &diags);

  std::vector<LexedFile> lexed;
  lexed.reserve(files_.size());
  for (const SourceFile& f : files_) lexed.push_back(Lex(f.path, f.content));

  std::set<std::string> matched_patterns;
  std::set<const TrustedMarker*> consumed_markers;
  std::vector<DecoderStats> stats;

  for (const LexedFile& f : lexed) {
    internal::ForEachFunctionBody(f, [&](const std::string& cls, const std::string& method,
                                         bool /*ctor_dtor*/, size_t open, size_t close) {
      std::string key = cls.empty() ? method : cls + "::" + method;
      bool is_decoder = false;
      for (const auto& [pat, mline] : surfaces.decoders) {
        (void)mline;
        if (PatternMatch(pat, key) || (cls.empty() && PatternMatch(pat, "::" + method))) {
          is_decoder = true;
          matched_patterns.insert(pat);
        }
      }
      if (!is_decoder) return;

      const std::vector<Token>& t = f.tokens;
      DecoderStats st;
      st.key = key;
      st.path = f.path;
      st.line = t[open].line;

      std::map<std::string, VarTaint> vars;
      std::set<size_t> template_closers;  // `>` tokens proven to close template args

      auto is_source_ident = [&](const std::string& name) {
        return IntReadFns().count(name) != 0 || surfaces.sources.count(name) != 0;
      };
      // Taint verdict of an expression token range: source call > safe
      // consumer > tainted var > checked var > clean.
      auto expr_taint = [&](size_t begin, size_t end, std::string* origin) -> TaintState {
        bool tainted = false, checked = false;
        for (size_t k = begin; k < end && k < t.size(); ++k) {
          if (t[k].kind != TokKind::kIdent) continue;
          if (SafeConsumers().count(t[k].text) != 0) return kClean;
          if (is_source_ident(t[k].text)) {
            if (origin != nullptr) *origin = t[k].text;
            return kTainted;
          }
          auto it = vars.find(t[k].text);
          if (it != vars.end()) {
            if (it->second.state == kTainted) {
              tainted = true;
              if (origin != nullptr && origin->empty()) *origin = it->second.origin;
            }
            if (it->second.state == kChecked) checked = true;
          }
        }
        return tainted ? kTainted : (checked ? kChecked : kClean);
      };
      auto set_var = [&](const std::string& name, TaintState s, int line,
                        const std::string& origin) {
        if (name.empty()) return;
        if (s == kClean) {
          vars.erase(name);
          return;
        }
        if (s == kTainted) ++st.tainted_vars;
        vars[name] = {s, line, origin};
      };
      // A finding at `line` about `var` flowing into `sink`; the audited
      // trusted frontier is the only suppression.
      auto finding = [&](int line, const std::string& var, const std::string& origin,
                         const std::string& sink) {
        ++st.sinks;
        const TrustedMarker* m = f.Trusted(line, "taint");
        if (m != nullptr) {
          consumed_markers.insert(m);
          if (m->justification.empty()) {
            diags.push_back({f.path, m->line, "taint",
                             "hqcheck:trusted(taint) marker has no justification text; the "
                             "frontier is audited — say why this use is bounded"});
          }
          return;
        }
        ++st.findings;
        diags.push_back(
            {f.path, line, "taint",
             "`" + var + "` (wire-derived" + (origin.empty() ? "" : " via " + origin) +
                 ") reaches " + sink + " in " + key +
                 " without a dominating bounds check; validate it first or add "
                 "`// hqcheck:trusted(taint): <why this is bounded>`"});
      };
      // Any tainted ident inside [begin, end) triggers a finding against
      // `sink`; checked and clean idents pass.
      auto check_args = [&](size_t begin, size_t end, const std::string& sink, int line) {
        for (size_t k = begin; k < end && k < t.size(); ++k) {
          if (t[k].kind != TokKind::kIdent) continue;
          auto it = vars.find(t[k].text);
          if (it != vars.end() && it->second.state == kTainted) {
            finding(line, t[k].text, it->second.origin, sink);
          }
        }
      };
      // Forward scan from a `<` for matching template-arg brackets: only
      // type-ish tokens allowed inside. Returns the closer index or npos.
      auto template_close = [&](size_t i) -> size_t {
        int angle = 0;
        for (size_t k = i; k < close && k < i + 24; ++k) {
          const std::string& x = t[k].text;
          if (x == "<") ++angle;
          else if (x == ">") {
            if (--angle == 0) return k;
          } else if (!(t[k].kind == TokKind::kIdent || t[k].kind == TokKind::kNumber ||
                       x == "::" || x == "," || x == "*" || x == "&")) {
            return std::string::npos;
          }
        }
        return std::string::npos;
      };

      for (size_t i = open; i <= close && i < t.size(); ++i) {
        const Token& tok = t[i];

        if (tok.kind == TokKind::kIdent && tok.text == "HQ_ASSIGN_OR_RETURN" &&
            t[i + 1].text == "(") {
          size_t args_close = MatchingClose(t, i + 1);
          // Split the two top-level macro arguments.
          size_t comma = args_close;
          int depth = 0;
          for (size_t k = i + 2; k < args_close; ++k) {
            const std::string& x = t[k].text;
            if (x == "(" || x == "[" || x == "{" || x == "<") ++depth;
            if (x == ")" || x == "]" || x == "}" || x == ">") --depth;
            if (depth == 0 && x == ",") {
              comma = k;
              break;
            }
          }
          std::string target = LastIdent(t, i + 2, comma);
          std::string origin;
          TaintState s = expr_taint(comma + 1, args_close, &origin);
          set_var(target, s, tok.line, origin);
          continue;  // keep scanning inside the macro for sinks below
        }

        if (tok.kind != TokKind::kPunct) {
          // Sink: mem-family call. Also the decode idiom `memcpy(&var, src,
          // n)`: var now holds wire bytes, so it becomes tainted.
          if (tok.kind == TokKind::kIdent && MemFns().count(tok.text) != 0 &&
              t[i + 1].text == "(") {
            size_t args_close = MatchingClose(t, i + 1);
            check_args(i + 2, args_close, "a " + tok.text + " argument", tok.line);
            if (t[i + 2].text == "&" && t[i + 3].kind == TokKind::kIdent) {
              set_var(t[i + 3].text, kTainted, tok.line, tok.text);
            }
            i = args_close;
            continue;
          }
          // Sink: size-sink method call `x.resize(n)` / `slice.SubSlice(a, b)`.
          if (tok.kind == TokKind::kIdent && SizeSinkMethods().count(tok.text) != 0 &&
              t[i + 1].text == "(" && i > open &&
              (t[i - 1].text == "." || t[i - 1].text == "->")) {
            size_t args_close = MatchingClose(t, i + 1);
            check_args(i + 2, args_close, "." + tok.text + "()", tok.line);
            i = args_close;
            continue;
          }
          // Sink: pointer arithmetic off a raw buffer: `.data() + expr`.
          if (tok.kind == TokKind::kIdent && tok.text == "data" && t[i + 1].text == "(" &&
              t[i + 2].text == ")" && t[i + 3].text == "+") {
            size_t k = i + 4;
            int depth = 0;
            while (k < close) {
              const std::string& x = t[k].text;
              if (x == "(" || x == "[") ++depth;
              if (x == ")" || x == "]") {
                if (depth == 0) break;
                --depth;
              }
              if (depth == 0 && (x == "," || x == ";")) break;
              ++k;
            }
            check_args(i + 4, k, ".data() + offset arithmetic", tok.line);
            i = k - 1;
            continue;
          }
          continue;
        }

        // --- punctuation from here on ---

        // Subscript sink: `expr[...]` (same expression-position test as the
        // lambda detection elsewhere, inverted).
        if (tok.text == "[" && i > open) {
          const Token& prev = t[i - 1];
          bool subscript = prev.kind == TokKind::kIdent
                               ? ControlKeywords().count(prev.text) == 0
                               : prev.text == ")" || prev.text == "]";
          if (prev.kind == TokKind::kNumber || prev.kind == TokKind::kString) subscript = true;
          if (subscript) {
            size_t sub_close = MatchingClose(t, i);
            check_args(i + 1, sub_close, "a subscript", tok.line);
          }
          continue;
        }

        // Assignment: `lhs = expr ;` / `lhs |= expr ;` — propagate taint.
        static const std::set<std::string> kAssignOps = {"=",  "+=", "-=", "*=", "/=",
                                                         "%=", "&=", "|=", "^=", "<<=",
                                                         ">>="};
        if (kAssignOps.count(tok.text) != 0 && i > open &&
            t[i - 1].kind == TokKind::kIdent) {
          const std::string& lhs = t[i - 1].text;
          size_t end = i + 1;
          int depth = 0;
          while (end < close) {
            const std::string& x = t[end].text;
            if (x == "(" || x == "[" || x == "{") ++depth;
            if (x == ")" || x == "]" || x == "}") {
              if (depth == 0) break;
              --depth;
            }
            if (depth == 0 && (x == ";" || x == ",")) break;
            ++end;
          }
          std::string origin;
          TaintState s = expr_taint(i + 1, end, &origin);
          if (tok.text == "=") {
            set_var(lhs, s, tok.line, origin);
          } else if (s == kTainted) {
            set_var(lhs, kTainted, tok.line, origin);  // compound: absorb taint
          }
          continue;  // the RHS is re-scanned for sinks as the walk proceeds
        }

        // Comparison: marks every tainted identifier in the surrounding
        // condition window as checked — the lexical-dominance approximation
        // of "a bounds check precedes the use".
        static const std::set<std::string> kCompareOps = {"<", "<=", ">", ">=", "==", "!="};
        if (kCompareOps.count(tok.text) != 0) {
          if (tok.text == "<") {
            size_t closer = template_close(i);
            if (closer != std::string::npos) {
              template_closers.insert(closer);
              continue;  // template args, not a comparison
            }
          }
          if (tok.text == ">" && template_closers.count(i) != 0) continue;
          static const std::set<std::string> kBoundary = {"(", ")", ";",  ",",  "{",
                                                          "}", "&&", "||", "?", ":"};
          auto mark = [&](size_t k) {
            if (t[k].kind != TokKind::kIdent) return;
            auto it = vars.find(t[k].text);
            if (it != vars.end() && it->second.state == kTainted) it->second.state = kChecked;
          };
          for (size_t k = i; k-- > open;) {
            if (t[k].kind == TokKind::kPunct && kBoundary.count(t[k].text) != 0) break;
            mark(k);
          }
          for (size_t k = i + 1; k < close; ++k) {
            if (t[k].kind == TokKind::kPunct && kBoundary.count(t[k].text) != 0) break;
            mark(k);
          }
          continue;
        }
      }

      stats.push_back(st);
    });
  }

  // Audit: every trusted marker must have suppressed something, and plain
  // allow(taint) markers are not a thing — the frontier stays audited.
  for (const LexedFile& f : lexed) {
    for (const TrustedMarker& m : f.trusted) {
      if (m.rule != "taint") continue;
      if (consumed_markers.count(&m) != 0) continue;
      diags.push_back({f.path, m.line, "taint",
                       "unused hqcheck:trusted(taint) marker: it suppresses no finding — "
                       "remove it (stale frontier entries hide the next real one)"});
    }
    for (size_t l = 0; l < f.allows.size(); ++l) {
      if (f.allows[l].count("taint") == 0) continue;
      diags.push_back({f.path, static_cast<int>(l) + 1, "taint",
                       "hqcheck:allow(taint) is not honoured; the taint rule only accepts "
                       "audited `hqcheck:trusted(taint): <justification>` markers"});
    }
  }

  // Audit: decoder patterns that match nothing are stale manifest debt.
  for (const auto& [pat, mline] : surfaces.decoders) {
    if (matched_patterns.count(pat) != 0) continue;
    diags.push_back({options.surfaces_path, mline, "taint",
                     "decoder pattern `" + pat +
                         "` matches no function in the analysed sources; fix the spelling "
                         "or remove the stale entry"});
  }

  if (report != nullptr) {
    size_t total_findings = 0;
    for (const DecoderStats& st : stats) total_findings += static_cast<size_t>(st.findings);
    *report << "taint: " << stats.size() << " decoder functions analysed, "
            << surfaces.sources.size() << " extra source fns, " << total_findings
            << " unaudited findings\n";
    for (const DecoderStats& st : stats) {
      *report << "  decoder " << st.key << " (" << st.path << ":" << st.line << "): "
              << st.tainted_vars << " tainted values, " << st.sinks << " guarded sinks, "
              << st.findings << " findings\n";
    }
    for (const Diagnostic& d : diags) *report << "  VIOLATION " << Format(d) << "\n";
  }

  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  diags.erase(std::unique(diags.begin(), diags.end()), diags.end());
  return diags;
}

}  // namespace hqcheck
