#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "hqcheck.h"
#include "internal.h"

namespace hqcheck {

namespace internal {

std::string Fnv64Hex(const std::string& data) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace internal

namespace {

bool SkippedComponent(const std::filesystem::path& p) {
  for (const auto& part : p) {
    const std::string s = part.string();
    if (s == "testdata" || s.rfind("build", 0) == 0) return true;
  }
  return false;
}

bool CheckableExtension(const std::filesystem::path& p) {
  auto ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool ObjectExtension(const std::string& arg) {
  return internal::EndsWith(arg, ".o") || internal::EndsWith(arg, ".obj");
}

bool ReadFile(const std::filesystem::path& path, std::string* out, std::ostream& err,
              const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "hqcheck: cannot open " << what << " " << path.string() << "\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// `objdump -dr --no-show-raw-insn <object>`, captured. Returns false when
/// objdump is missing or exits non-zero (a proof that cannot run must fail
/// loudly, not pass vacuously).
bool Disassemble(const std::string& object, std::string* out, std::ostream& err) {
  std::string cmd = "objdump -dr --no-show-raw-insn '" + object + "' 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    err << "hqcheck: cannot spawn objdump\n";
    return false;
  }
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) out->append(buf, n);
  int status = pclose(pipe);
  if (status != 0) {
    err << "hqcheck: objdump failed on " << object << "\n";
    return false;
  }
  return true;
}

/// Expands file-or-directory inputs into the sorted list of checkable
/// sources (recursing into directories, skipping testdata/build trees).
bool CollectSourceFiles(const std::vector<std::filesystem::path>& inputs,
                        std::vector<std::filesystem::path>* files, std::ostream& err) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const fs::path& input : inputs) {
    if (fs::is_directory(input, ec)) {
      for (auto it = fs::recursive_directory_iterator(input, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && SkippedComponent(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && CheckableExtension(it->path()) &&
            !SkippedComponent(it->path())) {
          files->push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(input, ec)) {
      files->push_back(input);
    } else {
      err << "hqcheck: cannot read " << input.string() << "\n";
      return false;
    }
  }
  std::sort(files->begin(), files->end());
  return true;
}

/// Loads every collected source into the analyzer, with paths rebased onto
/// --root for stable diagnostics.
bool LoadAnalyzer(const std::vector<std::filesystem::path>& files,
                  const std::filesystem::path& root, Analyzer* analyzer, std::ostream& err) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const fs::path& file : files) {
    std::string content;
    if (!ReadFile(file, &content, err, "source")) return false;
    std::string display = file.string();
    if (!root.empty()) {
      auto rel = fs::relative(file, root, ec);
      if (!ec && !rel.empty()) display = rel.string();
    }
    analyzer->AddFile(std::move(display), std::move(content));
  }
  return true;
}

bool LoadManifest(const std::filesystem::path& manifest_path, const std::filesystem::path& root,
                  Analyzer* analyzer, std::ostream& err) {
  namespace fs = std::filesystem;
  if (manifest_path.empty()) return true;
  std::string content;
  if (!ReadFile(manifest_path, &content, err, "manifest")) return false;
  std::string display = manifest_path.string();
  std::error_code ec;
  if (!root.empty()) {
    auto rel = fs::relative(manifest_path, root, ec);
    if (!ec && !rel.empty()) display = rel.string();
  }
  analyzer->SetManifest(std::move(display), std::move(content));
  return true;
}

/// Verifies a --make-stamp digest file against the current sources. Any
/// missing file or digest mismatch means the objects about to be proven were
/// built from different sources — the proof would be vacuous.
bool VerifyStamp(const std::string& stamp_path, std::ostream& err) {
  std::string stamp;
  if (!ReadFile(stamp_path, &stamp, err, "stamp file")) return false;
  std::istringstream in(stamp);
  std::string line;
  int entries = 0;
  bool ok = true;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string digest, path;
    if (!(fields >> digest >> path) || digest.size() != 16) {
      err << "hqcheck: malformed stamp line " << stamp_path << ":" << lineno << "\n";
      ok = false;
      continue;
    }
    ++entries;
    std::string content;
    if (!ReadFile(path, &content, err, "stamped source")) {
      ok = false;
      continue;
    }
    std::string now = internal::Fnv64Hex(content);
    if (now != digest) {
      err << "hqcheck: stale proof inputs: " << path << " digest " << now
          << " != stamped " << digest << " — rebuild the objects before proving\n";
      ok = false;
    }
  }
  if (entries == 0) {
    err << "hqcheck: stamp file " << stamp_path << " lists no sources\n";
    ok = false;
  }
  return ok;
}

int RunMakeStampMode(const std::vector<std::string>& args, std::ostream& err) {
  std::vector<std::string> positional;
  for (const std::string& a : args) {
    if (a == "--make-stamp") continue;
    if (a.rfind("--", 0) == 0) {
      err << "hqcheck: unknown flag " << a << "\n";
      return 2;
    }
    positional.push_back(a);
  }
  if (positional.size() < 2) {
    err << "usage: hqcheck --make-stamp <out-file> <source-file>...\n";
    return 2;
  }
  std::ostringstream out_text;
  out_text << "# hqcheck source-digest stamp: <fnv1a-64> <path>\n";
  for (size_t i = 1; i < positional.size(); ++i) {
    std::string content;
    if (!ReadFile(positional[i], &content, err, "source")) return 2;
    out_text << internal::Fnv64Hex(content) << " " << positional[i] << "\n";
  }
  std::ofstream out_file(positional[0], std::ios::binary);
  if (!out_file) {
    err << "hqcheck: cannot write stamp file " << positional[0] << "\n";
    return 2;
  }
  out_file << out_text.str();
  return 0;
}

int RunHotpathMode(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  HotpathProofOptions options;
  std::string allow_path;
  std::string report_path;
  std::string disasm_path;
  std::string stamp_path;
  std::vector<std::string> objects;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        err << "hqcheck: " << flag << " requires an argument\n";
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "--hotpath") continue;
    if (a == "--roots") {
      const std::string* v = value("--roots");
      if (v == nullptr) return 2;
      options.roots_regex = *v;
    } else if (a == "--allow") {
      const std::string* v = value("--allow");
      if (v == nullptr) return 2;
      allow_path = *v;
    } else if (a == "--report") {
      const std::string* v = value("--report");
      if (v == nullptr) return 2;
      report_path = *v;
    } else if (a == "--disasm") {
      const std::string* v = value("--disasm");
      if (v == nullptr) return 2;
      disasm_path = *v;
    } else if (a == "--stamp") {
      const std::string* v = value("--stamp");
      if (v == nullptr) return 2;
      stamp_path = *v;
    } else if (a == "--verbose") {
      options.verbose = true;
    } else if (a.rfind("--", 0) == 0) {
      err << "hqcheck: unknown flag " << a << "\n";
      return 2;
    } else {
      objects.push_back(a);
    }
  }
  if (options.roots_regex.empty()) {
    err << "hqcheck: --hotpath requires --roots <regex>\n";
    return 2;
  }
  if (objects.empty() == disasm_path.empty()) {
    err << "hqcheck: --hotpath takes either object files or --disasm <file>\n";
    return 2;
  }
  if (!stamp_path.empty() && !VerifyStamp(stamp_path, err)) return 2;

  std::vector<Diagnostic> diags;
  if (!allow_path.empty()) {
    std::string allow_text;
    if (!ReadFile(allow_path, &allow_text, err, "allow file")) return 2;
    options.allow = ParseAllowFile(allow_path, allow_text, &diags);
  }

  std::string disasm;
  if (!disasm_path.empty()) {
    if (!ReadFile(disasm_path, &disasm, err, "disassembly")) return 2;
  } else {
    for (const std::string& object : objects) {
      if (!Disassemble(object, &disasm, err)) return 2;
    }
  }

  std::ostringstream report;
  std::vector<Diagnostic> proof = RunHotpathProof(disasm, options, &report);
  diags.insert(diags.end(), proof.begin(), proof.end());
  if (!report_path.empty()) {
    std::ofstream rf(report_path, std::ios::binary);
    rf << report.str();
  }
  for (const Diagnostic& d : diags) out << Format(d) << "\n";
  if (diags.empty()) {
    out << report.str();
    return 0;
  }
  out << diags.size() << " violation" << (diags.size() == 1 ? "" : "s") << "\n";
  return 1;
}

int RunInterlockMode(const std::vector<std::string>& args, std::ostream& out,
                     std::ostream& err) {
  namespace fs = std::filesystem;
  fs::path root;
  fs::path manifest_path;
  std::string lockgraph_path;
  std::string report_path;
  std::vector<std::string> disasm_paths;
  std::vector<std::string> objects;
  std::vector<fs::path> inputs;
  InterlockOptions options;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        err << "hqcheck: " << flag << " requires an argument\n";
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "--interlock") continue;
    if (a == "--root") {
      const std::string* v = value("--root");
      if (v == nullptr) return 2;
      root = *v;
    } else if (a == "--manifest") {
      const std::string* v = value("--manifest");
      if (v == nullptr) return 2;
      manifest_path = *v;
    } else if (a == "--lockgraph") {
      const std::string* v = value("--lockgraph");
      if (v == nullptr) return 2;
      lockgraph_path = *v;
    } else if (a == "--report") {
      const std::string* v = value("--report");
      if (v == nullptr) return 2;
      report_path = *v;
    } else if (a == "--disasm") {
      const std::string* v = value("--disasm");
      if (v == nullptr) return 2;
      disasm_paths.push_back(*v);
    } else if (a == "--verbose") {
      options.verbose = true;
    } else if (a.rfind("--", 0) == 0) {
      err << "hqcheck: unknown flag " << a << "\n";
      return 2;
    } else if (ObjectExtension(a)) {
      objects.push_back(a);
    } else {
      inputs.emplace_back(a);
    }
  }
  if (inputs.empty()) {
    err << "hqcheck: --interlock requires at least one source file or directory\n";
    return 2;
  }

  std::vector<fs::path> files;
  if (!CollectSourceFiles(inputs, &files, err)) return 2;
  Analyzer analyzer;
  if (!LoadAnalyzer(files, root, &analyzer, err)) return 2;
  if (!LoadManifest(manifest_path, root, &analyzer, err)) return 2;

  for (const std::string& d : disasm_paths) {
    std::string text;
    if (!ReadFile(d, &text, err, "disassembly")) return 2;
    options.disasm += text;
  }
  for (const std::string& object : objects) {
    if (!Disassemble(object, &options.disasm, err)) return 2;
  }
  if (!lockgraph_path.empty()) {
    if (!ReadFile(lockgraph_path, &options.lockgraph_dot, err, "lock graph dot")) return 2;
    options.lockgraph_path = lockgraph_path;
  }

  std::ostringstream report;
  std::vector<Diagnostic> diags = analyzer.RunInterlock(options, &report);
  if (!report_path.empty()) {
    std::ofstream rf(report_path, std::ios::binary);
    rf << report.str();
  }
  for (const Diagnostic& d : diags) out << Format(d) << "\n";
  if (diags.empty()) {
    out << report.str();
    return 0;
  }
  out << diags.size() << " violation" << (diags.size() == 1 ? "" : "s") << " in "
      << files.size() << " files\n";
  return 1;
}

int RunTaintMode(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  namespace fs = std::filesystem;
  fs::path root;
  std::string surfaces_path;
  std::string report_path;
  std::vector<fs::path> inputs;
  TaintOptions options;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        err << "hqcheck: " << flag << " requires an argument\n";
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "--taint") continue;
    if (a == "--root") {
      const std::string* v = value("--root");
      if (v == nullptr) return 2;
      root = *v;
    } else if (a == "--surfaces") {
      const std::string* v = value("--surfaces");
      if (v == nullptr) return 2;
      surfaces_path = *v;
    } else if (a == "--report") {
      const std::string* v = value("--report");
      if (v == nullptr) return 2;
      report_path = *v;
    } else if (a == "--verbose") {
      options.verbose = true;
    } else if (a.rfind("--", 0) == 0) {
      err << "hqcheck: unknown flag " << a << "\n";
      return 2;
    } else {
      inputs.emplace_back(a);
    }
  }
  if (surfaces_path.empty()) {
    err << "hqcheck: --taint requires --surfaces <file>\n";
    return 2;
  }
  if (inputs.empty()) {
    err << "hqcheck: --taint requires at least one source file or directory\n";
    return 2;
  }
  if (!ReadFile(surfaces_path, &options.surfaces, err, "surfaces manifest")) return 2;
  options.surfaces_path = surfaces_path;
  {
    std::error_code ec;
    if (!root.empty()) {
      auto rel = fs::relative(surfaces_path, root, ec);
      if (!ec && !rel.empty()) options.surfaces_path = rel.string();
    }
  }

  std::vector<fs::path> files;
  if (!CollectSourceFiles(inputs, &files, err)) return 2;
  Analyzer analyzer;
  if (!LoadAnalyzer(files, root, &analyzer, err)) return 2;

  std::ostringstream report;
  std::vector<Diagnostic> diags = analyzer.RunTaint(options, &report);
  if (!report_path.empty()) {
    std::ofstream rf(report_path, std::ios::binary);
    rf << report.str();
  }
  for (const Diagnostic& d : diags) out << Format(d) << "\n";
  if (diags.empty()) {
    out << report.str();
    return 0;
  }
  out << diags.size() << " violation" << (diags.size() == 1 ? "" : "s") << " in "
      << files.size() << " files\n";
  return 1;
}

}  // namespace

int RunHqcheck(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  namespace fs = std::filesystem;
  for (const std::string& a : args) {
    if (a == "--hotpath") return RunHotpathMode(args, out, err);
    if (a == "--interlock") return RunInterlockMode(args, out, err);
    if (a == "--taint") return RunTaintMode(args, out, err);
    if (a == "--make-stamp") return RunMakeStampMode(args, err);
  }

  fs::path root;
  fs::path manifest_path;
  std::vector<fs::path> inputs;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--root") {
      if (i + 1 >= args.size()) {
        err << "hqcheck: --root requires a directory argument\n";
        return 2;
      }
      root = args[++i];
    } else if (args[i] == "--manifest") {
      if (i + 1 >= args.size()) {
        err << "hqcheck: --manifest requires a file argument\n";
        return 2;
      }
      manifest_path = args[++i];
    } else if (args[i].rfind("--", 0) == 0) {
      err << "hqcheck: unknown flag " << args[i] << "\n";
      return 2;
    } else {
      inputs.emplace_back(args[i]);
    }
  }
  if (inputs.empty()) {
    err << "usage: hqcheck [--root <dir>] [--manifest <file>] <file-or-dir>...\n"
           "       hqcheck --interlock [--root <dir>] [--manifest <file>] [--lockgraph <dot>]\n"
           "               [--report <file>] (<file-or-dir> | --disasm <txt> | <object.o>)...\n"
           "       hqcheck --taint --surfaces <file> [--root <dir>] [--report <file>]\n"
           "               <file-or-dir>...\n"
           "       hqcheck --hotpath --roots <regex> [--allow <file>] [--report <file>]\n"
           "               [--stamp <file>] (--disasm <txt> | <object.o>...)\n"
           "       hqcheck --make-stamp <out-file> <source-file>...\n";
    return 2;
  }

  std::vector<fs::path> files;
  if (!CollectSourceFiles(inputs, &files, err)) return 2;
  Analyzer analyzer;
  if (!LoadAnalyzer(files, root, &analyzer, err)) return 2;
  if (!LoadManifest(manifest_path, root, &analyzer, err)) return 2;

  std::vector<Diagnostic> diags = analyzer.Run();
  for (const Diagnostic& d : diags) out << Format(d) << "\n";
  if (!diags.empty()) {
    out << diags.size() << " violation" << (diags.size() == 1 ? "" : "s") << " in "
        << files.size() << " files\n";
    return 1;
  }
  return 0;
}

}  // namespace hqcheck
