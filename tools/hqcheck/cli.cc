#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "hqcheck.h"

namespace hqcheck {

namespace {

bool SkippedComponent(const std::filesystem::path& p) {
  for (const auto& part : p) {
    const std::string s = part.string();
    if (s == "testdata" || s.rfind("build", 0) == 0) return true;
  }
  return false;
}

bool CheckableExtension(const std::filesystem::path& p) {
  auto ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool ReadFile(const std::filesystem::path& path, std::string* out, std::ostream& err,
              const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "hqcheck: cannot open " << what << " " << path.string() << "\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// `objdump -dr --no-show-raw-insn <object>`, captured. Returns false when
/// objdump is missing or exits non-zero (a proof that cannot run must fail
/// loudly, not pass vacuously).
bool Disassemble(const std::string& object, std::string* out, std::ostream& err) {
  std::string cmd = "objdump -dr --no-show-raw-insn '" + object + "' 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    err << "hqcheck: cannot spawn objdump\n";
    return false;
  }
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) out->append(buf, n);
  int status = pclose(pipe);
  if (status != 0) {
    err << "hqcheck: objdump failed on " << object << "\n";
    return false;
  }
  return true;
}

int RunHotpathMode(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  HotpathProofOptions options;
  std::string allow_path;
  std::string report_path;
  std::string disasm_path;
  std::vector<std::string> objects;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        err << "hqcheck: " << flag << " requires an argument\n";
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "--hotpath") continue;
    if (a == "--roots") {
      const std::string* v = value("--roots");
      if (v == nullptr) return 2;
      options.roots_regex = *v;
    } else if (a == "--allow") {
      const std::string* v = value("--allow");
      if (v == nullptr) return 2;
      allow_path = *v;
    } else if (a == "--report") {
      const std::string* v = value("--report");
      if (v == nullptr) return 2;
      report_path = *v;
    } else if (a == "--disasm") {
      const std::string* v = value("--disasm");
      if (v == nullptr) return 2;
      disasm_path = *v;
    } else if (a == "--verbose") {
      options.verbose = true;
    } else if (a.rfind("--", 0) == 0) {
      err << "hqcheck: unknown flag " << a << "\n";
      return 2;
    } else {
      objects.push_back(a);
    }
  }
  if (options.roots_regex.empty()) {
    err << "hqcheck: --hotpath requires --roots <regex>\n";
    return 2;
  }
  if (objects.empty() == disasm_path.empty()) {
    err << "hqcheck: --hotpath takes either object files or --disasm <file>\n";
    return 2;
  }

  std::vector<Diagnostic> diags;
  if (!allow_path.empty()) {
    std::string allow_text;
    if (!ReadFile(allow_path, &allow_text, err, "allow file")) return 2;
    options.allow = ParseAllowFile(allow_path, allow_text, &diags);
  }

  std::string disasm;
  if (!disasm_path.empty()) {
    if (!ReadFile(disasm_path, &disasm, err, "disassembly")) return 2;
  } else {
    for (const std::string& object : objects) {
      if (!Disassemble(object, &disasm, err)) return 2;
    }
  }

  std::ostringstream report;
  std::vector<Diagnostic> proof = RunHotpathProof(disasm, options, &report);
  diags.insert(diags.end(), proof.begin(), proof.end());
  if (!report_path.empty()) {
    std::ofstream rf(report_path, std::ios::binary);
    rf << report.str();
  }
  for (const Diagnostic& d : diags) out << Format(d) << "\n";
  if (diags.empty()) {
    out << report.str();
    return 0;
  }
  out << diags.size() << " violation" << (diags.size() == 1 ? "" : "s") << "\n";
  return 1;
}

}  // namespace

int RunHqcheck(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  namespace fs = std::filesystem;
  for (const std::string& a : args) {
    if (a == "--hotpath") return RunHotpathMode(args, out, err);
  }

  fs::path root;
  fs::path manifest_path;
  std::vector<fs::path> inputs;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--root") {
      if (i + 1 >= args.size()) {
        err << "hqcheck: --root requires a directory argument\n";
        return 2;
      }
      root = args[++i];
    } else if (args[i] == "--manifest") {
      if (i + 1 >= args.size()) {
        err << "hqcheck: --manifest requires a file argument\n";
        return 2;
      }
      manifest_path = args[++i];
    } else if (args[i].rfind("--", 0) == 0) {
      err << "hqcheck: unknown flag " << args[i] << "\n";
      return 2;
    } else {
      inputs.emplace_back(args[i]);
    }
  }
  if (inputs.empty()) {
    err << "usage: hqcheck [--root <dir>] [--manifest <file>] <file-or-dir>...\n"
           "       hqcheck --hotpath --roots <regex> [--allow <file>] [--report <file>]\n"
           "               (--disasm <txt> | <object.o>...)\n";
    return 2;
  }

  std::vector<fs::path> files;
  std::error_code ec;
  for (const fs::path& input : inputs) {
    if (fs::is_directory(input, ec)) {
      for (auto it = fs::recursive_directory_iterator(input, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && SkippedComponent(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && CheckableExtension(it->path()) &&
            !SkippedComponent(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      err << "hqcheck: cannot read " << input.string() << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  Analyzer analyzer;
  for (const fs::path& file : files) {
    std::string content;
    if (!ReadFile(file, &content, err, "source")) return 2;
    std::string display = file.string();
    if (!root.empty()) {
      auto rel = fs::relative(file, root, ec);
      if (!ec && !rel.empty()) display = rel.string();
    }
    analyzer.AddFile(std::move(display), std::move(content));
  }
  if (!manifest_path.empty()) {
    std::string content;
    if (!ReadFile(manifest_path, &content, err, "manifest")) return 2;
    std::string display = manifest_path.string();
    if (!root.empty()) {
      auto rel = fs::relative(manifest_path, root, ec);
      if (!ec && !rel.empty()) display = rel.string();
    }
    analyzer.SetManifest(std::move(display), std::move(content));
  }

  std::vector<Diagnostic> diags = analyzer.Run();
  for (const Diagnostic& d : diags) out << Format(d) << "\n";
  if (!diags.empty()) {
    out << diags.size() << " violation" << (diags.size() == 1 ? "" : "s") << " in "
        << files.size() << " files\n";
    return 1;
  }
  return 0;
}

}  // namespace hqcheck
