#include "hqcheck.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "internal.h"

namespace hqcheck {

namespace {

bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_'; }

}  // namespace

namespace internal {

namespace {
const char* const kLockRankNames[] = {"kLogging", "kObs",  "kQueue", "kPool",   "kStore",
                                      "kCatalog", "kJob",  "kCdw",   "kServer", "kLifecycle"};
}  // namespace

int LockRankIndex(const std::string& name) {
  for (size_t i = 0; i < sizeof(kLockRankNames) / sizeof(kLockRankNames[0]); ++i) {
    if (name == kLockRankNames[i]) return static_cast<int>(i);
  }
  return -1;
}

const char* LockRankNameAt(int index) {
  return index >= 0 && index < kNumLockRanks ? kLockRankNames[index] : "k?";
}

}  // namespace internal

using internal::LockRankIndex;

std::string Format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.path << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

bool LexedFile::Allowed(int line, const std::string& rule) const {
  auto has = [&](int l) {
    return l >= 1 && l <= static_cast<int>(allows.size()) &&
           allows[static_cast<size_t>(l - 1)].count(rule) != 0;
  };
  return has(line) || has(line - 1);
}

const TrustedMarker* LexedFile::Trusted(int line, const std::string& rule) const {
  auto find = [&](int l) -> const TrustedMarker* {
    for (const TrustedMarker& m : trusted) {
      if (m.line == l && m.rule == rule) return &m;
    }
    return nullptr;
  };
  const TrustedMarker* m = find(line);
  return m != nullptr ? m : find(line - 1);
}

LexedFile Lex(std::string path, const std::string& content) {
  LexedFile out;
  out.path = std::move(path);
  int line = 1;
  size_t i = 0;
  const size_t n = content.size();
  auto allow_at = [&](int l, std::string rule) {
    out.allows.resize(std::max(out.allows.size(), static_cast<size_t>(l)));
    out.allows[static_cast<size_t>(l - 1)].insert(std::move(rule));
  };
  // Harvests hqcheck:allow(rule) and hqcheck:trusted(rule): justification
  // markers out of comment text spanning [begin, end); `at_line` is the line
  // the comment starts on (markers in a multi-line block comment land on
  // their own line).
  auto harvest = [&](size_t begin, size_t end, int at_line) {
    int l = at_line;
    for (size_t p = begin; p < end;) {
      if (content[p] == '\n') {
        ++l;
        ++p;
        continue;
      }
      const std::string kMarker = "hqcheck:allow(";
      const std::string kTrusted = "hqcheck:trusted(";
      if (content.compare(p, kMarker.size(), kMarker) == 0) {
        size_t open = p + kMarker.size();
        size_t close = content.find(')', open);
        if (close != std::string::npos && close < end) {
          allow_at(l, content.substr(open, close - open));
        }
        p = open;
      } else if (content.compare(p, kTrusted.size(), kTrusted) == 0) {
        size_t open = p + kTrusted.size();
        size_t close = content.find(')', open);
        if (close != std::string::npos && close < end) {
          TrustedMarker m;
          m.line = l;
          m.rule = content.substr(open, close - open);
          // Justification: everything after an optional `:` up to the end of
          // the comment line, trimmed. An empty justification is the taint
          // pass's problem to reject, not the lexer's.
          size_t j = close + 1;
          if (j < end && content[j] == ':') ++j;
          size_t stop = j;
          while (stop < end && content[stop] != '\n') ++stop;
          std::string just = content.substr(j, stop - j);
          size_t b = just.find_first_not_of(" \t");
          size_t e = just.find_last_not_of(" \t");
          m.justification =
              b == std::string::npos ? "" : just.substr(b, e == std::string::npos ? 0 : e - b + 1);
          out.trusted.push_back(std::move(m));
        }
        p = open;
      } else {
        ++p;
      }
    }
  };

  bool at_line_start = true;  // only whitespace seen on this line so far
  while (i < n) {
    char c = content[i];
    char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: skip to end of line, honouring backslash
      // continuations. Macro bodies are not analysed (HQ_GUARDED_BY's own
      // #define must not register as a declaration).
      while (i < n) {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (content[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && next == '/') {
      size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      harvest(i, end, line);
      i = end;
      continue;
    }
    if (c == '/' && next == '*') {
      size_t end = content.find("*/", i + 2);
      size_t stop = end == std::string::npos ? n : end;
      harvest(i, stop, line);
      for (size_t p = i; p < stop; ++p) {
        if (content[p] == '\n') ++line;
      }
      i = end == std::string::npos ? n : end + 2;
      continue;
    }
    if (c == '"') {
      // Raw string?  An immediately preceding R / u8R / LR / uR / UR ident
      // token was already emitted; merge it into this literal.
      bool raw = false;
      if (!out.tokens.empty() && out.tokens.back().kind == TokKind::kIdent) {
        const std::string& prev = out.tokens.back().text;
        if (prev == "R" || prev == "u8R" || prev == "LR" || prev == "uR" || prev == "UR") {
          raw = true;
          out.tokens.pop_back();
        }
      }
      if (raw) {
        size_t open = content.find('(', i + 1);
        std::string delim =
            open == std::string::npos ? "" : content.substr(i + 1, open - i - 1);
        std::string closer = ")" + delim + "\"";
        size_t end = open == std::string::npos ? std::string::npos
                                               : content.find(closer, open + 1);
        int start_line = line;
        size_t stop = end == std::string::npos ? n : end;
        std::string text =
            open == std::string::npos ? "" : content.substr(open + 1, stop - open - 1);
        for (size_t p = i; p < stop; ++p) {
          if (content[p] == '\n') ++line;
        }
        out.tokens.push_back({TokKind::kString, std::move(text), start_line});
        i = end == std::string::npos ? n : end + closer.size();
        continue;
      }
      std::string text;
      size_t p = i + 1;
      while (p < n && content[p] != '"' && content[p] != '\n') {
        if (content[p] == '\\' && p + 1 < n) {
          text.push_back(content[p + 1]);
          p += 2;
        } else {
          text.push_back(content[p]);
          ++p;
        }
      }
      out.tokens.push_back({TokKind::kString, std::move(text), line});
      i = p < n && content[p] == '"' ? p + 1 : p;
      continue;
    }
    if (c == '\'' && !(!out.tokens.empty() && out.tokens.back().kind == TokKind::kNumber &&
                       i > 0 && IsIdentChar(content[i - 1]))) {
      std::string text;
      size_t p = i + 1;
      while (p < n && content[p] != '\'' && content[p] != '\n') {
        if (content[p] == '\\' && p + 1 < n) {
          text.push_back(content[p + 1]);
          p += 2;
        } else {
          text.push_back(content[p]);
          ++p;
        }
      }
      out.tokens.push_back({TokKind::kChar, std::move(text), line});
      i = p < n && content[p] == '\'' ? p + 1 : p;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t p = i;
      while (p < n && IsIdentChar(content[p])) ++p;
      out.tokens.push_back({TokKind::kIdent, content.substr(i, p - i), line});
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t p = i;
      while (p < n && (IsIdentChar(content[p]) || content[p] == '\'' ||
                       (content[p] == '.' && p + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(content[p + 1])) != 0))) {
        ++p;
      }
      out.tokens.push_back({TokKind::kNumber, content.substr(i, p - i), line});
      i = p;
      continue;
    }
    // Punctuators. Multi-char ones the parser cares about; everything else
    // single-char. `>>` stays split so template brackets balance.
    static const char* const kMulti[] = {"::", "->", "<=>", "<<=", ">>=", "...", "<<",
                                         "<=", ">=", "==",  "!=",  "&&",  "||",  "+=",
                                         "-=", "*=", "/=",  "%=",  "&=",  "|=",  "^=",
                                         "++", "--", ".*",  "->*"};
    std::string punct(1, c);
    for (const char* m : kMulti) {
      size_t len = std::char_traits<char>::length(m);
      if (content.compare(i, len, m) == 0 && len > punct.size()) punct = m;
    }
    out.tokens.push_back({TokKind::kPunct, punct, line});
    i += punct.size();
  }
  out.line_count = line;
  out.allows.resize(static_cast<size_t>(line));
  out.tokens.push_back({TokKind::kEnd, "", line});
  return out;
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

std::vector<ManifestEntry> ParseManifest(const std::string& path, const std::string& content,
                                         std::vector<Diagnostic>* diags) {
  std::vector<ManifestEntry> entries;
  std::istringstream in(content);
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    std::string text = raw.substr(0, raw.find('#'));
    std::istringstream fields(text);
    std::string rank, label, extra;
    if (!(fields >> rank)) continue;  // blank / comment-only line
    if (!(fields >> label) || (fields >> extra)) {
      diags->push_back({path, line, "lock-rank",
                        "manifest line must be `<rank-name> <mutex-label>`"});
      continue;
    }
    if (LockRankIndex(rank) < 0) {
      diags->push_back({path, line, "lock-rank",
                        "unknown LockRank `" + rank + "` in manifest (see common/sync.h)"});
      continue;
    }
    entries.push_back({rank, label, line});
  }
  return entries;
}

// ---------------------------------------------------------------------------
// Declaration collection (pass 1)
// ---------------------------------------------------------------------------

namespace {

/// One entry of the scope stack a token walk maintains.
struct Scope {
  enum Kind { kNamespace, kClass, kBlock } kind = kBlock;
  std::string name;  // class/namespace name; "" for blocks
};

}  // namespace

// The declaration model and token-walk helpers are shared with the
// interprocedural (interlock.cc) and taint (taint.cc) passes via internal.h.
namespace internal {

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",   "catch",  "return", "do",
      "else",   "sizeof", "new",    "delete",   "throw",  "case",   "default",
      "static_assert", "alignas",  "alignof",  "decltype", "noexcept"};
  return kw;
}

/// Token index of the matching closer for the opener at `i` ("(", "{", "[",
/// all tracked together), or the kEnd index when unbalanced.
size_t MatchingClose(const std::vector<Token>& t, size_t i) {
  int depth = 0;
  for (size_t j = i; j + 1 < t.size(); ++j) {
    const std::string& x = t[j].text;
    if (t[j].kind == TokKind::kPunct) {
      if (x == "(" || x == "{" || x == "[") ++depth;
      if (x == ")" || x == "}" || x == "]") {
        --depth;
        if (depth == 0) return j;
      }
    }
  }
  return t.size() - 1;
}

/// Last identifier token text in [begin, end) — the resolved name of a
/// guard expression like `&job->mu_` or `this->mu_`.
std::string LastIdent(const std::vector<Token>& t, size_t begin, size_t end) {
  std::string last;
  for (size_t j = begin; j < end; ++j) {
    if (t[j].kind == TokKind::kIdent) last = t[j].text;
  }
  return last;
}

void CollectDeclarations(const LexedFile& f, Declarations* decls) {
  const std::vector<Token>& t = f.tokens;
  std::vector<Scope> scopes;
  auto current_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  };
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") scopes.push_back({Scope::kBlock, ""});
      if (tok.text == "}" && !scopes.empty()) scopes.pop_back();
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;

    if (tok.text == "namespace") {
      // namespace a::b {  |  namespace {
      size_t j = i + 1;
      std::string name;
      while (t[j].kind == TokKind::kIdent || t[j].text == "::") {
        name += t[j].text;
        ++j;
      }
      if (t[j].text == "{") {
        scopes.push_back({Scope::kNamespace, name});
        i = j;
      }
      continue;
    }

    if (tok.text == "enum") {
      size_t j = i + 1;
      if (t[j].kind == TokKind::kIdent && (t[j].text == "class" || t[j].text == "struct")) ++j;
      std::string name;
      int name_line = t[j].line;
      if (t[j].kind == TokKind::kIdent) {
        name = t[j].text;
        ++j;
      }
      while (j + 1 < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
      if (t[j].text != "{" || name.empty()) {
        // Anonymous enum or forward declaration: depth bookkeeping for the
        // `{` happens on the next loop iteration; nothing to record.
        i = j > i ? j - 1 : i;
        continue;
      }
      size_t close = MatchingClose(t, j);
      EnumInfo info;
      info.name = name;
      info.path = f.path;
      info.line = name_line;
      size_t k = j + 1;
      while (k < close) {
        if (t[k].kind == TokKind::kIdent) {
          info.enumerators.push_back(t[k].text);
          // Skip the initializer (if any) to the next comma at this level.
          int depth = 0;
          while (k < close) {
            const std::string& x = t[k].text;
            if (x == "(" || x == "{" || x == "[") ++depth;
            if (x == ")" || x == "}" || x == "]") --depth;
            if (depth == 0 && x == ",") break;
            ++k;
          }
        }
        ++k;
      }
      auto it = decls->enums.find(name);
      if (it != decls->enums.end() && it->second.enumerators != info.enumerators) {
        decls->ambiguous_enums.insert(name);
      } else {
        decls->enums[name] = info;
        for (const std::string& e : info.enumerators) decls->enumerator_owners[e].insert(name);
      }
      i = close;  // enum bodies contain no other declarations
      continue;
    }

    if (tok.text == "class" || tok.text == "struct") {
      // Distinguish a definition (`{` before `;`) from forward declarations
      // and elaborated uses (`struct Foo* p`).
      size_t j = i + 1;
      std::string name;
      if (t[j].kind == TokKind::kIdent && ControlKeywords().count(t[j].text) == 0) {
        name = t[j].text;
        ++j;
      }
      size_t k = j;
      int angle = 0;
      bool definition = false;
      while (k + 1 < t.size()) {
        const std::string& x = t[k].text;
        if (x == "<") ++angle;
        if (x == ">") --angle;
        if (angle == 0 && (x == ";" || x == "=" || x == ")" || x == ",")) break;
        if (angle == 0 && x == "{") {
          definition = true;
          break;
        }
        ++k;
      }
      if (definition) {
        if (!name.empty()) {
          decls->class_names.insert(name);
          // Inheritance clause `class D : public B1, private ns::B2<T> {`:
          // record B -> D so virtual calls through a base resolve to every
          // override. The base is the last identifier of each segment at
          // angle depth 0 (drops namespace qualifiers and template args).
          if (t[j].text == ":") {
            int angle = 0;
            std::string base;
            for (size_t b = j + 1; b <= k; ++b) {
              const std::string& x = t[b].text;
              if (x == "<") ++angle;
              if (x == ">") --angle;
              if (angle > 0) continue;
              if (t[b].kind == TokKind::kIdent && x != "public" && x != "protected" &&
                  x != "private" && x != "virtual") {
                base = x;
              }
              if (x == "," || x == "{") {
                if (!base.empty()) decls->derived[base].insert(name);
                base.clear();
              }
            }
          }
        }
        scopes.push_back({Scope::kClass, name});
        i = k;  // consume through the `{`
      }
      continue;
    }

    if (tok.text == "HQ_GUARDED_BY" && t[i + 1].text == "(") {
      size_t close = MatchingClose(t, i + 1);
      std::string guard = LastIdent(t, i + 2, close);
      if (i > 0 && t[i - 1].kind == TokKind::kIdent && !guard.empty()) {
        std::string cls = current_class();
        if (!cls.empty()) decls->guarded[cls][t[i - 1].text] = guard;
      }
      i = close;
      continue;
    }

    if (tok.text == "HQ_REQUIRES" && t[i + 1].text == "(") {
      size_t close = MatchingClose(t, i + 1);
      // Backtrack over the parameter list to the method name:
      //   void Name(args) [const] HQ_REQUIRES(mu);
      size_t j = i;
      while (j > 0 && t[j - 1].kind == TokKind::kIdent &&
             (t[j - 1].text == "const" || t[j - 1].text == "noexcept" ||
              t[j - 1].text == "override" || t[j - 1].text == "final")) {
        --j;
      }
      if (j > 0 && t[j - 1].text == ")") {
        int depth = 0;
        while (j > 0) {
          --j;
          if (t[j].text == ")") ++depth;
          if (t[j].text == "(" && --depth == 0) break;
        }
        if (j > 0 && t[j - 1].kind == TokKind::kIdent) {
          std::string method = t[j - 1].text;
          std::string cls = current_class();
          // Each top-level comma-separated annotation argument names one
          // mutex (HQ_REQUIRES(a, b) demands both).
          size_t begin = i + 2;
          int depth2 = 0;
          for (size_t k = i + 2; k <= close; ++k) {
            const std::string& x = t[k].text;
            if (x == "(" || x == "<") ++depth2;
            if (x == ")" || x == ">") --depth2;
            if ((k == close) || (depth2 == 0 && x == ",")) {
              std::string guard = LastIdent(t, begin, k);
              if (!guard.empty()) decls->requires_[cls][method].insert(guard);
              begin = k + 1;
            }
          }
        }
      }
      i = close;
      continue;
    }

    if (tok.text == "Mutex" && t[i + 1].kind == TokKind::kIdent &&
        ControlKeywords().count(t[i + 1].text) == 0) {
      // `Mutex name{LockRank::kX, "label"}` / `Mutex name;` — a declaration
      // only when the token after the name opens an initializer or ends the
      // declaration (rules out `Mutex* p`, `MutexLock`, casts). Annotations
      // like HQ_ACQUIRED_AFTER(x) may sit between the name and the
      // initializer.
      size_t init = i + 2;
      while (t[init].kind == TokKind::kIdent && t[init].text.rfind("HQ_", 0) == 0 &&
             t[init + 1].text == "(") {
        init = MatchingClose(t, init + 1) + 1;
      }
      const std::string& after = t[init].text;
      if (after != "{" && after != "(" && after != ";") continue;
      MutexSite site;
      site.scope = current_class();
      site.var = t[i + 1].text;
      site.path = f.path;
      site.line = t[i + 1].line;
      if (after == "{" || after == "(") {
        size_t close = MatchingClose(t, init);
        for (size_t k = init + 1; k < close; ++k) {
          if (t[k].text == "LockRank" && t[k + 1].text == "::" &&
              t[k + 2].kind == TokKind::kIdent) {
            site.rank = t[k + 2].text;
          }
          if (t[k].kind == TokKind::kString && site.label.empty()) site.label = t[k].text;
        }
        i = close;
      }
      decls->mutex_sites.push_back(site);
      if (!site.rank.empty()) {
        decls->mutex_ranks[site.scope][site.var] = site.rank;
        auto it = decls->var_ranks.find(site.var);
        if (it != decls->var_ranks.end() && it->second != site.rank) {
          decls->var_rank_conflicts.insert(site.var);
        } else {
          decls->var_ranks[site.var] = site.rank;
        }
      }
      continue;
    }
  }
}

void CollectVarTypes(const LexedFile& f, const std::set<std::string>& class_names,
                     std::map<std::string, std::set<std::string>>* var_types) {
  const std::vector<Token>& t = f.tokens;
  // Skips balanced template args starting at the `<` at index i; returns the
  // index after the matching `>`, or i when the brackets do not balance
  // locally (comparison operator, not template args).
  auto skip_angles = [&](size_t i) -> size_t {
    int depth = 0;
    for (size_t j = i; j + 1 < t.size() && j < i + 64; ++j) {
      const std::string& x = t[j].text;
      if (x == ";" || x == "{") return i;
      if (x == "<") ++depth;
      if (x == ">") {
        if (--depth == 0) return j + 1;
      }
    }
    return i;
  };
  auto record = [&](size_t j, const std::string& cls) {
    // j points at the would-be variable name; the token after it must end a
    // declarator (rules out `Foo Bar::` qualified definitions and casts).
    if (t[j].kind != TokKind::kIdent || ControlKeywords().count(t[j].text) != 0) return;
    const std::string& after = t[j + 1].text;
    if (after == ";" || after == "=" || after == "{" || after == "(" || after == "," ||
        after == ")" || after == "[" ||
        // `Type name_ HQ_GUARDED_BY(mu_);` — attribute macros end a
        // declarator too, and member fields are receivers like any local.
        (t[j + 1].kind == TokKind::kIdent && after.rfind("HQ_", 0) == 0)) {
      (*var_types)[t[j].text].insert(cls);
    }
  };
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    // `unique_ptr<Foo> p` / `shared_ptr<Foo> p`: the pointee class is the
    // receiver type for `p->Method()` resolution. Containers are deliberately
    // not handled — `vector<Foo> v` makes `v.size()` a Foo method otherwise.
    if ((t[i].text == "unique_ptr" || t[i].text == "shared_ptr") && t[i + 1].text == "<") {
      size_t end = skip_angles(i + 1);
      if (end == i + 1) continue;
      std::string cls;
      for (size_t k = i + 2; k + 1 < end; ++k) {
        if (t[k].kind == TokKind::kIdent && class_names.count(t[k].text) != 0) cls = t[k].text;
      }
      if (cls.empty()) continue;
      size_t j = end;
      while (t[j].text == "*" || t[j].text == "&" || t[j].text == "const") ++j;
      record(j, cls);
      continue;
    }
    if (class_names.count(t[i].text) == 0) continue;
    size_t j = i + 1;
    if (t[j].text == "<") {
      size_t end = skip_angles(j);
      if (end == j) continue;
      j = end;
    }
    while (t[j].text == "*" || t[j].text == "&" || t[j].text == "const") ++j;
    record(j, t[i].text);
  }
}

std::string ResolveRank(const Declarations& d, const std::string& cls,
                        const std::string& guard) {
  auto cit = d.mutex_ranks.find(cls);
  if (cit != d.mutex_ranks.end()) {
    auto vit = cit->second.find(guard);
    if (vit != cit->second.end()) return vit->second;
  }
  if (d.var_rank_conflicts.count(guard) == 0) {
    auto vit = d.var_ranks.find(guard);
    if (vit != d.var_ranks.end()) return vit->second;
  }
  return "";
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Finds every function body in the file and hands it to `fn`. Maintains the
/// same scope stack as CollectDeclarations so inline methods know their
/// class; `X::Name(` qualifiers win over the enclosing scope.
void ForEachFunctionBody(const LexedFile& f, const BodyCallback& fn) {
  const std::vector<Token>& t = f.tokens;
  std::vector<Scope> scopes;
  auto current_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  };
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") scopes.push_back({Scope::kBlock, ""});
      if (tok.text == "}" && !scopes.empty()) scopes.pop_back();
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;
    if (tok.text == "namespace") {
      size_t j = i + 1;
      while (t[j].kind == TokKind::kIdent || t[j].text == "::") ++j;
      if (t[j].text == "{") {
        scopes.push_back({Scope::kNamespace, ""});
        i = j;
      }
      continue;
    }
    if (tok.text == "enum") {
      size_t j = i + 1;
      while (j + 1 < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
      if (t[j].text == "{") j = MatchingClose(t, j);
      i = j;
      continue;
    }
    if (tok.text == "class" || tok.text == "struct") {
      size_t j = i + 1;
      std::string name;
      if (t[j].kind == TokKind::kIdent && ControlKeywords().count(t[j].text) == 0) {
        name = t[j].text;
        ++j;
      }
      size_t k = j;
      int angle = 0;
      while (k + 1 < t.size()) {
        const std::string& x = t[k].text;
        if (x == "<") ++angle;
        if (x == ">") --angle;
        if (angle == 0 && (x == ";" || x == "=" || x == ")" || x == ",")) break;
        if (angle == 0 && x == "{") {
          scopes.push_back({Scope::kClass, name});
          i = k;
          break;
        }
        ++k;
      }
      continue;
    }
    if (ControlKeywords().count(tok.text) != 0) continue;
    if (t[i + 1].text != "(") continue;
    // Candidate function name. Find the owning class: `X::Name(` wins over
    // the enclosing scope.
    std::string cls = current_class();
    std::string method = tok.text;
    bool qualified = false;
    if (i >= 2 && t[i - 1].text == "::" && t[i - 2].kind == TokKind::kIdent) {
      cls = t[i - 2].text;
      qualified = true;
    }
    bool dtor = i > 0 && t[i - 1].text == "~";
    size_t params_close = MatchingClose(t, i + 1);
    // Scan the trailing tokens for the body `{`; a `;` or `=` first means a
    // declaration (or `= default`).
    size_t j = params_close + 1;
    bool body = false;
    while (j + 1 < t.size()) {
      const std::string& x = t[j].text;
      if (x == "{") {
        body = true;
        break;
      }
      if (x == ";" || x == "=" || x == ",") break;
      if (x == ":") {
        // Constructor initializer list: `name(args) [,] ... {`.
        ++j;
        while (j + 1 < t.size()) {
          // Each initializer: qualified name then ( ... ) or { ... }.
          while (j + 1 < t.size() && t[j].text != "(" && t[j].text != "{" && t[j].text != ";") {
            ++j;
          }
          if (t[j].text == ";") break;
          size_t c = MatchingClose(t, j);
          j = c + 1;
          if (t[j].text == ",") {
            ++j;
            continue;
          }
          break;
        }
        if (t[j].text == "{") body = true;
        break;
      }
      if (t[j].text == "(") {
        j = MatchingClose(t, j) + 1;
        continue;
      }
      ++j;
    }
    if (!body) {
      i = params_close;
      continue;
    }
    size_t body_close = MatchingClose(t, j);
    bool ctor_dtor = dtor || (qualified ? method == cls : (!cls.empty() && method == cls));
    fn(cls, dtor ? "~" + method : method, ctor_dtor, j, body_close);
    i = body_close;
  }
}

}  // namespace internal

using internal::CollectDeclarations;
using internal::ControlKeywords;
using internal::Declarations;
using internal::EndsWith;
using internal::EnumInfo;
using internal::LastIdent;
using internal::MatchingClose;
using internal::MutexSite;
using internal::ResolveRank;

// ---------------------------------------------------------------------------
// Function-body analysis (pass 2)
// ---------------------------------------------------------------------------

namespace {

struct LiveLock {
  std::string guard;  // last identifier of the mutex expression
  std::string rank;   // resolved rank name, "" when unknown
  int depth = 0;      // brace depth the lock was declared at
  int line = 0;
  bool pair = false;  // MutexLock2
};

struct BodyContext {
  const LexedFile* file = nullptr;
  const Declarations* decls = nullptr;
  std::string cls;     // owning class ("" for free functions)
  std::string method;  // function name
  bool ctor_dtor = false;
  std::vector<Diagnostic>* diags = nullptr;
};

/// Walks one function body in [open, close] (token indexes of the braces)
/// and applies the guarded-field, lock-nesting and enum-switch rules.
void AnalyzeBody(const BodyContext& ctx, size_t open, size_t close) {
  const std::vector<Token>& t = ctx.file->tokens;
  const Declarations& d = *ctx.decls;
  const std::map<std::string, std::string>* guarded_fields = nullptr;
  auto git = d.guarded.find(ctx.cls);
  if (git != d.guarded.end()) guarded_fields = &git->second;
  const std::set<std::string>* required = nullptr;
  auto rit = d.requires_.find(ctx.cls);
  if (rit != d.requires_.end()) {
    auto mit = rit->second.find(ctx.method);
    if (mit != rit->second.end()) required = &mit->second;
  }

  std::vector<LiveLock> locks;
  std::vector<int> lambda_depths;  // brace depth of each open lambda body
  struct SwitchCtx {
    int depth = 0;
    int line = 0;
    std::map<std::string, std::set<std::string>> covered;  // enum -> labels
    std::set<std::string> unresolved;  // idents owned by several enums
  };
  std::vector<SwitchCtx> switches;
  int depth = 0;  // brace depth relative to the body (open counts as 1)

  auto close_switch = [&](const SwitchCtx& sw) {
    // Attribute the switch to an enum only when every resolved label agrees.
    if (sw.covered.size() != 1) return;
    const std::string& enum_name = sw.covered.begin()->first;
    const std::set<std::string>& seen = sw.covered.begin()->second;
    if (d.ambiguous_enums.count(enum_name) != 0) return;
    const EnumInfo& info = d.enums.at(enum_name);
    std::vector<std::string> missing;
    for (const std::string& e : info.enumerators) {
      if (seen.count(e) == 0 && sw.unresolved.count(e) == 0) missing.push_back(e);
    }
    if (missing.empty()) return;
    if (ctx.file->Allowed(sw.line, "enum-switch")) return;
    std::string list;
    for (size_t k = 0; k < missing.size() && k < 5; ++k) {
      if (k != 0) list += ", ";
      list += missing[k];
    }
    if (missing.size() > 5) list += ", ...";
    ctx.diags->push_back(
        {ctx.file->path, sw.line, "enum-switch",
         "switch over " + enum_name + " covers " +
             std::to_string(info.enumerators.size() - missing.size()) + " of " +
             std::to_string(info.enumerators.size()) + " enumerators (missing: " + list +
             "); a default: label hides the gap from -Wswitch, so every "
             "enumerator must be spelled out"});
  };

  for (size_t i = open; i <= close && i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") ++depth;
      if (tok.text == "}") {
        --depth;
        while (!locks.empty() && depth < locks.back().depth) locks.pop_back();
        while (!lambda_depths.empty() && depth < lambda_depths.back()) lambda_depths.pop_back();
        while (!switches.empty() && depth < switches.back().depth) {
          close_switch(switches.back());
          switches.pop_back();
        }
      }
      // Lambda introducer: `[` in expression position. Subscripts follow a
      // value (identifier, `)`, `]`); everything else starts a lambda.
      if (tok.text == "[" && i > open) {
        const Token& prev = t[i - 1];
        bool subscript = prev.kind == TokKind::kIdent ? ControlKeywords().count(prev.text) == 0
                                                      : prev.text == ")" || prev.text == "]";
        if (prev.kind == TokKind::kNumber || prev.kind == TokKind::kString) subscript = true;
        if (!subscript) {
          size_t intro_close = MatchingClose(t, i);
          size_t j = intro_close + 1;
          if (t[j].text == "(") j = MatchingClose(t, j) + 1;
          while (j < close && t[j].text != "{" && t[j].text != ";" && t[j].text != ")" &&
                 t[j].text != ",") {
            ++j;
          }
          if (j < close && t[j].text == "{") {
            // The body `{` is processed by this same loop when reached;
            // record where the lambda's scope will live.
            lambda_depths.push_back(depth + 1);
          }
          i = intro_close;  // captures are not accesses in this function
        }
      }
      continue;
    }
    if (tok.kind != TokKind::kIdent) continue;

    if ((tok.text == "MutexLock" || tok.text == "MutexLock2") && t[i + 1].kind == TokKind::kIdent &&
        t[i + 2].text == "(") {
      size_t args_close = MatchingClose(t, i + 2);
      bool pair = tok.text == "MutexLock2";
      size_t begin = i + 3;
      int adepth = 0;
      std::vector<std::pair<std::string, int>> acquired;  // guard, line
      for (size_t k = i + 3; k <= args_close; ++k) {
        const std::string& x = t[k].text;
        if (x == "(" || x == "<") ++adepth;
        if (x == ")" || x == ">") --adepth;
        if (k == args_close || (adepth == 0 && x == ",")) {
          std::string guard = LastIdent(t, begin, k);
          if (!guard.empty()) acquired.push_back({guard, t[begin].line});
          begin = k + 1;
        }
      }
      for (const auto& [guard, line] : acquired) {
        std::string rank = ResolveRank(d, ctx.cls, guard);
        if (!locks.empty() && !pair) {
          const LiveLock& outer = locks.back();
          if (!rank.empty() && !outer.rank.empty()) {
            int inner_idx = LockRankIndex(rank);
            int outer_idx = LockRankIndex(outer.rank);
            if (inner_idx >= outer_idx && !ctx.file->Allowed(tok.line, "lock-nesting")) {
              ctx.diags->push_back(
                  {ctx.file->path, tok.line, "lock-nesting",
                   "acquiring `" + guard + "` (" + rank + ") while holding `" + outer.guard +
                       "` (" + outer.rank +
                       ") is not strictly descending; the runtime validator will abort here "
                       "— reorder the acquisitions or use MutexLock2 for same-rank pairs"});
            }
          }
        }
        locks.push_back({guard, rank, depth, tok.line, pair});
      }
      i = args_close;
      continue;
    }

    if (tok.text == "switch" && t[i + 1].text == "(") {
      size_t cond_close = MatchingClose(t, i + 1);
      SwitchCtx sw;
      sw.depth = depth + 1;  // its `{` has not been consumed yet
      sw.line = tok.line;
      switches.push_back(sw);
      i = cond_close;
      continue;
    }

    if (tok.text == "case" && !switches.empty()) {
      // Parse the label expression up to the `:` (skipping `::`).
      size_t j = i + 1;
      std::vector<size_t> idents;
      while (j <= close && !(t[j].kind == TokKind::kPunct && t[j].text == ":")) {
        if (t[j].kind == TokKind::kIdent) idents.push_back(j);
        ++j;
      }
      SwitchCtx& sw = switches.back();
      if (!idents.empty()) {
        size_t last = idents.back();
        const std::string& label = t[last].text;
        std::string qualifier;
        if (last >= 2 && t[last - 1].text == "::" && t[last - 2].kind == TokKind::kIdent) {
          qualifier = t[last - 2].text;
        }
        if (!qualifier.empty() && d.enums.count(qualifier) != 0) {
          sw.covered[qualifier].insert(label);
        } else if (qualifier.empty()) {
          auto oit = d.enumerator_owners.find(label);
          if (oit != d.enumerator_owners.end()) {
            if (oit->second.size() == 1) {
              sw.covered[*oit->second.begin()].insert(label);
            } else {
              sw.unresolved.insert(label);
            }
          }
        }
      }
      i = j;
      continue;
    }

    if (guarded_fields != nullptr && !ctx.ctor_dtor) {
      auto fit = guarded_fields->find(tok.text);
      if (fit != guarded_fields->end()) {
        // Member access through another object (`other.stats_`) is that
        // object's contract; `this->stats_` is ours.
        if (i > 0 && t[i - 1].kind == TokKind::kPunct &&
            (t[i - 1].text == "." || t[i - 1].text == "->")) {
          if (!(i >= 2 && t[i - 2].kind == TokKind::kIdent && t[i - 2].text == "this")) continue;
        }
        if (t[i + 1].text == "::") continue;  // qualified name, not an access
        const std::string& guard = fit->second;
        bool in_lambda = !lambda_depths.empty();
        int barrier = in_lambda ? lambda_depths.back() : 0;
        bool satisfied = false;
        for (const LiveLock& l : locks) {
          if (l.guard == guard && l.depth >= barrier) {
            satisfied = true;
            break;
          }
        }
        if (!satisfied && !in_lambda && required != nullptr && required->count(guard) != 0) {
          satisfied = true;
        }
        if (!satisfied && !ctx.file->Allowed(tok.line, "guarded-field")) {
          std::string where = ctx.cls.empty() ? ctx.method : ctx.cls + "::" + ctx.method;
          ctx.diags->push_back(
              {ctx.file->path, tok.line, "guarded-field",
               "`" + tok.text + "` is HQ_GUARDED_BY(" + guard + ") but " + where +
                   " touches it without a live MutexLock on `" + guard +
                   "` (or an HQ_REQUIRES(" + guard + ") annotation)" +
                   (in_lambda ? " — locks held outside a lambda do not carry into its body"
                              : "")});
        }
      }
    }
  }
  while (!switches.empty()) {
    close_switch(switches.back());
    switches.pop_back();
  }
}

/// Finds function bodies (via the shared walker) and hands each to
/// AnalyzeBody.
void AnalyzeFile(const LexedFile& f, const Declarations& decls,
                 std::vector<Diagnostic>* diags) {
  internal::ForEachFunctionBody(
      f, [&](const std::string& cls, const std::string& method, bool ctor_dtor, size_t open,
             size_t close) {
        BodyContext ctx;
        ctx.file = &f;
        ctx.decls = &decls;
        ctx.cls = cls;
        ctx.method = method;
        ctx.ctor_dtor = ctor_dtor;
        ctx.diags = diags;
        AnalyzeBody(ctx, open, close);
      });
}

}  // namespace

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

void Analyzer::AddFile(std::string path, std::string content) {
  files_.push_back({std::move(path), std::move(content)});
}

void Analyzer::SetManifest(std::string path, std::string content) {
  manifest_path_ = std::move(path);
  manifest_ = std::move(content);
  has_manifest_ = true;
}

std::vector<Diagnostic> Analyzer::Run() const {
  std::vector<Diagnostic> diags;
  std::vector<LexedFile> lexed;
  lexed.reserve(files_.size());
  Declarations decls;
  for (const SourceFile& f : files_) {
    lexed.push_back(Lex(f.path, f.content));
    CollectDeclarations(lexed.back(), &decls);
  }
  for (const LexedFile& f : lexed) {
    // sync.h implements the lock primitives themselves; its internals are
    // the one place the source rules do not apply.
    if (EndsWith(f.path, "common/sync.h")) continue;
    AnalyzeFile(f, decls, &diags);
  }

  // Lock-rank manifest cross-check.
  if (has_manifest_) {
    std::vector<ManifestEntry> manifest = ParseManifest(manifest_path_, manifest_, &diags);
    std::map<std::string, std::string> manifest_ranks;  // label -> rank
    std::map<std::string, int> manifest_lines;
    for (const ManifestEntry& e : manifest) {
      auto it = manifest_ranks.find(e.label);
      if (it != manifest_ranks.end()) {
        diags.push_back({manifest_path_, e.line, "lock-rank",
                         "duplicate manifest entry for mutex `" + e.label + "`"});
        continue;
      }
      manifest_ranks[e.label] = e.rank;
      manifest_lines[e.label] = e.line;
    }
    std::set<std::string> seen_labels;
    for (const MutexSite& site : decls.mutex_sites) {
      if (site.rank.empty()) continue;  // unranked: hqlint's rule owns this
      auto lexed_it = std::find_if(lexed.begin(), lexed.end(), [&](const LexedFile& f) {
        return f.path == site.path;
      });
      auto allowed = [&](const char* rule) {
        return lexed_it != lexed.end() && lexed_it->Allowed(site.line, rule);
      };
      if (site.label.empty()) {
        if (!allowed("lock-rank")) {
          diags.push_back({site.path, site.line, "lock-rank",
                           "Mutex `" + site.var +
                               "` is constructed without a name; the lock-rank manifest "
                               "(tools/hqcheck/lock_ranks.txt) keys on names — pass one: "
                               "{LockRank::" + site.rank + ", \"<name>\"}"});
        }
        continue;
      }
      seen_labels.insert(site.label);
      auto it = manifest_ranks.find(site.label);
      if (it == manifest_ranks.end()) {
        if (!allowed("lock-rank")) {
          diags.push_back({site.path, site.line, "lock-rank",
                           "mutex `" + site.label + "` (" + site.rank +
                               ") is not in tools/hqcheck/lock_ranks.txt; the manifest is "
                               "the source of truth for the DESIGN.md rank table — add `" +
                               site.rank + " " + site.label + "`"});
        }
      } else if (it->second != site.rank) {
        if (!allowed("lock-rank")) {
          diags.push_back({site.path, site.line, "lock-rank",
                           "mutex `" + site.label + "` is constructed at " + site.rank +
                               " but the manifest declares " + it->second +
                               "; fix whichever is wrong"});
        }
      }
    }
    for (const auto& [label, rank] : manifest_ranks) {
      if (seen_labels.count(label) == 0) {
        diags.push_back({manifest_path_, manifest_lines[label], "lock-rank",
                         "manifest mutex `" + label + "` (" + rank +
                             ") has no construction site in the analysed sources; remove "
                             "the stale entry or check the spelling"});
      }
    }
  }

  // Note: var_rank_conflicts (same variable name ranked differently in
  // different classes — the conventional member name `mu_` does this by
  // design) is not a diagnostic. ResolveRank() answers those lookups from
  // the per-class map and refuses the ambiguous global fallback, so the
  // nesting check simply skips locks it cannot attribute.

  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  diags.erase(std::unique(diags.begin(), diags.end()), diags.end());
  return diags;
}

}  // namespace hqcheck
