#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

/// \file hqcheck.h
/// Second-generation semantic analyzer for the HyperQ tree. Where hqlint
/// (tools/hqlint) pattern-matches single lines, hqcheck lexes the sources
/// into tokens, parses declaration scopes, and runs an intraprocedural
/// dataflow pass per function body, so it can prove contracts hqlint can
/// only hint at. Self-contained on purpose (no dependency on src/) so the
/// checker builds even when the tree it is checking does not.
///
/// Source rules (see DESIGN.md "Static analysis v2"):
///   guarded-field   every read/write of a field declared
///                   HQ_GUARDED_BY(mu) happens under a live
///                   MutexLock/MutexLock2 on mu or inside a method
///                   annotated HQ_REQUIRES(mu). This is clang's
///                   thread-safety analysis re-derived lexically, so
///                   gcc-only builds get the same race protection.
///   lock-rank       every `Mutex name{LockRank::kX, "label"}` construction
///                   must appear in the machine-readable manifest
///                   (tools/hqcheck/lock_ranks.txt) with the same rank, and
///                   every manifest entry must correspond to a live
///                   construction site — the manifest is the single source
///                   of truth the DESIGN.md table is written from.
///   lock-nesting    a MutexLock acquired while another lock is live must
///                   name a mutex of strictly lower rank (resolved through
///                   the declared rank of the mutex variable); same-rank
///                   pairs must use MutexLock2. PR 4's runtime abort,
///                   moved to lint time.
///   enum-switch     a switch whose case labels name enumerators of a
///                   repo-declared enum must cover every enumerator of
///                   that enum; `default:` does not count as coverage
///                   (it swallows the -Wswitch signal that would otherwise
///                   flag the next enumerator someone adds).
///
/// Whole-program rules (v3; see DESIGN.md "Static analysis v3"):
///   may-acquire     interprocedural lock proof: per-function may-acquire
///                   rank summaries computed to a fixpoint over the repo
///                   call graph (scope-parser edges fused with objdump
///                   relocation edges), flagging calls made under a lock to
///                   functions that may acquire an equal-or-higher rank.
///                   Diffable against the runtime LockOrderGraph DOT.
///   taint           untrusted-input proof: wire integers inside decoder
///                   functions are tainted until a bounds comparison
///                   dominates them; indexes/lengths/memcpy-family sinks
///                   fed by unchecked taint are findings.
///
/// Any rule is suppressed for a line by `// hqcheck:allow(<rule>)` on the
/// same line or the line directly above it — except taint, whose only
/// escape is `// hqcheck:trusted(taint): <justification>`; the justification
/// is mandatory and unused markers are audited (stale ones fail).
///
/// The binary-level rule (hotpath-symbol) lives in symbol_proof.cc: a
/// reachability proof over `objdump -dr` call relocations asserting that no
/// lock, throw, or per-value allocation symbol is reachable from the
/// hqlint:hotpath-marked conversion kernels. See HotpathProofOptions.

namespace hqcheck {

struct Diagnostic {
  std::string path;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;

  bool operator==(const Diagnostic& other) const {
    return path == other.path && line == other.line && rule == other.rule &&
           message == other.message;
  }
};

/// "path:line: [rule] message" — same shape as hqlint, so editors and the
/// golden tests treat both tools identically.
std::string Format(const Diagnostic& d);

// ---------------------------------------------------------------------------
// Lexer (shared by the analyzer and its tests)
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;  // string tokens carry their unquoted content
  int line = 0;      // 1-based
};

/// One `// hqcheck:trusted(<rule>): <justification>` comment marker — the
/// source-level mirror of the hotpath allow frontier. Unlike plain allow
/// markers, a trusted marker must carry justification text and passes audit
/// both ways: a marker that suppresses nothing is itself a finding.
struct TrustedMarker {
  int line = 0;  // 1-based line the marker appears on
  std::string rule;
  std::string justification;
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;                  // kEnd-terminated
  std::vector<std::set<std::string>> allows;  // per line (0-based), from comments
  std::vector<TrustedMarker> trusted;         // in file order
  int line_count = 0;

  bool Allowed(int line, const std::string& rule) const;  // line is 1-based
  /// Marker for `rule` on `line` or the line above, or nullptr.
  const TrustedMarker* Trusted(int line, const std::string& rule) const;
};

/// Lexes C++ source: comments are consumed (harvesting hqcheck:allow
/// markers), string/char literals become single tokens, multi-char
/// punctuators (`::`, `->`, `>>` is split — template brackets matter more
/// than shifts here) are preserved.
LexedFile Lex(std::string path, const std::string& content);

// ---------------------------------------------------------------------------
// Lock-rank manifest
// ---------------------------------------------------------------------------

/// One line of tools/hqcheck/lock_ranks.txt: `<rank-name> <mutex-label>`.
struct ManifestEntry {
  std::string rank;   // e.g. "kJob"
  std::string label;  // the string name passed to the Mutex constructor
  int line = 0;       // 1-based line in the manifest file
};

/// Parses the manifest text. Unknown rank names and malformed lines are
/// reported as diagnostics against `path`.
std::vector<ManifestEntry> ParseManifest(const std::string& path, const std::string& content,
                                         std::vector<Diagnostic>* diags);

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

/// Options for the interprocedural may-acquire pass (rule `may-acquire`,
/// defined in interlock.cc; see DESIGN.md "Static analysis v3").
struct InterlockOptions {
  /// Pre-captured `objdump -dr` output. Its relocation edges are fused into
  /// the source call graph as extra summary-propagation edges, covering
  /// cross-TU calls through templates/inlined headers the scope parser
  /// cannot attribute. Optional.
  std::string disasm;
  /// Contents of a runtime LockOrderGraph DOT dump (obs::LockGraphToDot) to
  /// diff against the static edge set: every runtime edge must be statically
  /// derivable (a gap is a diagnostic — the static set is supposed to be a
  /// superset), and statically-proven edges never traveled at runtime are
  /// listed in the report. Optional.
  std::string lockgraph_dot;
  std::string lockgraph_path;  // echoed in diagnostics against the dot
  bool verbose = false;
};

/// Options for the untrusted-input taint pass (rule `taint`, defined in
/// taint.cc). `surfaces` is the contents of tools/hqcheck/taint_surfaces.txt
/// naming the decoder functions to analyse (`decoder Class::Method`, `*`
/// wildcards allowed) and extra taint-source functions (`source GetVarint`).
struct TaintOptions {
  std::string surfaces_path;
  std::string surfaces;
  bool verbose = false;
};

class Analyzer {
 public:
  /// Registers one file for the next Run(). `path` is echoed verbatim in
  /// diagnostics.
  void AddFile(std::string path, std::string content);

  /// Provides the lock-rank manifest (contents of lock_ranks.txt). Without
  /// it the lock-rank rule only checks construction-site consistency, not
  /// manifest membership, and the interlock runtime diff cannot map mutex
  /// names back to ranks.
  void SetManifest(std::string path, std::string content);

  /// Runs every rule over every added file. Deterministic: diagnostics are
  /// sorted by (path, line, rule). Safe to call repeatedly.
  std::vector<Diagnostic> Run() const;

  /// Interprocedural may-acquire lock proof over the added files: builds the
  /// repo-wide call graph (scope parser intra-TU, objdump relocations
  /// cross-TU), computes per-function may-acquire rank summaries to a
  /// fixpoint, and flags any call made while holding rank R to a function
  /// whose summary may acquire rank >= R. `report` (may be null) receives
  /// the proven static edge set and the runtime diff.
  std::vector<Diagnostic> RunInterlock(const InterlockOptions& options,
                                       std::ostream* report) const;

  /// Untrusted-input taint proof over the added files: inside every decoder
  /// named by the surfaces manifest, integers read from the wire are tainted
  /// and must be dominated by a bounds comparison before reaching an index,
  /// size, or memcpy-family sink. Suppression is only via audited
  /// `// hqcheck:trusted(taint): <justification>` markers, and stale markers
  /// are themselves findings.
  std::vector<Diagnostic> RunTaint(const TaintOptions& options, std::ostream* report) const;

 private:
  struct SourceFile {
    std::string path;
    std::string content;
  };
  std::vector<SourceFile> files_;
  std::string manifest_path_;
  std::string manifest_;
  bool has_manifest_ = false;
};

// ---------------------------------------------------------------------------
// Hot-path symbol proof
// ---------------------------------------------------------------------------

/// One audited frontier entry: reachability stops at (and absolves) any
/// symbol whose demangled or mangled name matches `pattern`.
struct AllowEntry {
  std::string pattern;        // POSIX ERE
  std::string justification;  // from the allow file; echoed in reports
};

/// Parses tools/hqcheck/hotpath_allow.txt: one `regex  # justification`
/// per line, '#'-led lines are comments.
std::vector<AllowEntry> ParseAllowFile(const std::string& path, const std::string& content,
                                       std::vector<Diagnostic>* diags);

struct HotpathProofOptions {
  /// ERE matched against demangled symbol names to pick the proof roots.
  std::string roots_regex;
  std::vector<AllowEntry> allow;
  /// When true, emit one `[hotpath-symbol] proved ...` info line per root
  /// to `report` (the ctest log artifact).
  bool verbose = false;
};

/// Runs the proof over pre-captured `objdump -dr --no-show-raw-insn`
/// output (one blob per object file, concatenated is fine). Returns the
/// violations; `report` (may be null) receives a human-readable summary
/// including the witness call chain for every violation and the roots
/// proven clean.
std::vector<Diagnostic> RunHotpathProof(const std::string& disasm,
                                        const HotpathProofOptions& options,
                                        std::ostream* report);

// ---------------------------------------------------------------------------
// CLI driver
// ---------------------------------------------------------------------------

/// Shared by main() and the tests (so exit codes are testable in-process).
/// Modes:
///   hqcheck [--root <dir>] [--manifest <file>] <file-or-dir>...
///   hqcheck --interlock [--root <dir>] [--manifest <file>]
///           [--lockgraph <dot>] [--report <file>]
///           (<file-or-dir> | --disasm <txt> | <object.o>)...
///   hqcheck --taint --surfaces <file> [--root <dir>] [--report <file>]
///           <file-or-dir>...
///   hqcheck --hotpath --roots <regex> [--allow <file>] [--report <file>]
///           [--stamp <file>] (--disasm <txt> | <object.o>...)
///   hqcheck --make-stamp <out-file> <source-file>...
/// Directories are walked recursively for .h/.hpp/.cc/.cpp files, skipping
/// "testdata" and build directories. With --root, reported paths are
/// relative to it. Object files are disassembled with `objdump -dr`;
/// --disasm feeds pre-captured output instead (tests). --make-stamp records
/// a digest per source file; --stamp makes --hotpath verify those digests
/// against the current sources first, so a proof over stale objects fails
/// loudly instead of passing vacuously. Returns 0 (clean), 1 (violations
/// printed to `out`), 2 (usage/IO error printed to `err`).
int RunHqcheck(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace hqcheck
