#pragma once

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

/// \file hqcheck.h
/// Second-generation semantic analyzer for the HyperQ tree. Where hqlint
/// (tools/hqlint) pattern-matches single lines, hqcheck lexes the sources
/// into tokens, parses declaration scopes, and runs an intraprocedural
/// dataflow pass per function body, so it can prove contracts hqlint can
/// only hint at. Self-contained on purpose (no dependency on src/) so the
/// checker builds even when the tree it is checking does not.
///
/// Source rules (see DESIGN.md "Static analysis v2"):
///   guarded-field   every read/write of a field declared
///                   HQ_GUARDED_BY(mu) happens under a live
///                   MutexLock/MutexLock2 on mu or inside a method
///                   annotated HQ_REQUIRES(mu). This is clang's
///                   thread-safety analysis re-derived lexically, so
///                   gcc-only builds get the same race protection.
///   lock-rank       every `Mutex name{LockRank::kX, "label"}` construction
///                   must appear in the machine-readable manifest
///                   (tools/hqcheck/lock_ranks.txt) with the same rank, and
///                   every manifest entry must correspond to a live
///                   construction site — the manifest is the single source
///                   of truth the DESIGN.md table is written from.
///   lock-nesting    a MutexLock acquired while another lock is live must
///                   name a mutex of strictly lower rank (resolved through
///                   the declared rank of the mutex variable); same-rank
///                   pairs must use MutexLock2. PR 4's runtime abort,
///                   moved to lint time.
///   enum-switch     a switch whose case labels name enumerators of a
///                   repo-declared enum must cover every enumerator of
///                   that enum; `default:` does not count as coverage
///                   (it swallows the -Wswitch signal that would otherwise
///                   flag the next enumerator someone adds).
///
/// Any rule is suppressed for a line by `// hqcheck:allow(<rule>)` on the
/// same line or the line directly above it.
///
/// The binary-level rule (hotpath-symbol) lives in symbol_proof.cc: a
/// reachability proof over `objdump -dr` call relocations asserting that no
/// lock, throw, or per-value allocation symbol is reachable from the
/// hqlint:hotpath-marked conversion kernels. See HotpathProofOptions.

namespace hqcheck {

struct Diagnostic {
  std::string path;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;

  bool operator==(const Diagnostic& other) const {
    return path == other.path && line == other.line && rule == other.rule &&
           message == other.message;
  }
};

/// "path:line: [rule] message" — same shape as hqlint, so editors and the
/// golden tests treat both tools identically.
std::string Format(const Diagnostic& d);

// ---------------------------------------------------------------------------
// Lexer (shared by the analyzer and its tests)
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;  // string tokens carry their unquoted content
  int line = 0;      // 1-based
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;                  // kEnd-terminated
  std::vector<std::set<std::string>> allows;  // per line (0-based), from comments
  int line_count = 0;

  bool Allowed(int line, const std::string& rule) const;  // line is 1-based
};

/// Lexes C++ source: comments are consumed (harvesting hqcheck:allow
/// markers), string/char literals become single tokens, multi-char
/// punctuators (`::`, `->`, `>>` is split — template brackets matter more
/// than shifts here) are preserved.
LexedFile Lex(std::string path, const std::string& content);

// ---------------------------------------------------------------------------
// Lock-rank manifest
// ---------------------------------------------------------------------------

/// One line of tools/hqcheck/lock_ranks.txt: `<rank-name> <mutex-label>`.
struct ManifestEntry {
  std::string rank;   // e.g. "kJob"
  std::string label;  // the string name passed to the Mutex constructor
  int line = 0;       // 1-based line in the manifest file
};

/// Parses the manifest text. Unknown rank names and malformed lines are
/// reported as diagnostics against `path`.
std::vector<ManifestEntry> ParseManifest(const std::string& path, const std::string& content,
                                         std::vector<Diagnostic>* diags);

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

class Analyzer {
 public:
  /// Registers one file for the next Run(). `path` is echoed verbatim in
  /// diagnostics.
  void AddFile(std::string path, std::string content);

  /// Provides the lock-rank manifest (contents of lock_ranks.txt). Without
  /// it the lock-rank rule only checks construction-site consistency, not
  /// manifest membership.
  void SetManifest(std::string path, std::string content);

  /// Runs every rule over every added file. Deterministic: diagnostics are
  /// sorted by (path, line, rule). Safe to call repeatedly.
  std::vector<Diagnostic> Run() const;

 private:
  struct SourceFile {
    std::string path;
    std::string content;
  };
  std::vector<SourceFile> files_;
  std::string manifest_path_;
  std::string manifest_;
  bool has_manifest_ = false;
};

// ---------------------------------------------------------------------------
// Hot-path symbol proof
// ---------------------------------------------------------------------------

/// One audited frontier entry: reachability stops at (and absolves) any
/// symbol whose demangled or mangled name matches `pattern`.
struct AllowEntry {
  std::string pattern;        // POSIX ERE
  std::string justification;  // from the allow file; echoed in reports
};

/// Parses tools/hqcheck/hotpath_allow.txt: one `regex  # justification`
/// per line, '#'-led lines are comments.
std::vector<AllowEntry> ParseAllowFile(const std::string& path, const std::string& content,
                                       std::vector<Diagnostic>* diags);

struct HotpathProofOptions {
  /// ERE matched against demangled symbol names to pick the proof roots.
  std::string roots_regex;
  std::vector<AllowEntry> allow;
  /// When true, emit one `[hotpath-symbol] proved ...` info line per root
  /// to `report` (the ctest log artifact).
  bool verbose = false;
};

/// Runs the proof over pre-captured `objdump -dr --no-show-raw-insn`
/// output (one blob per object file, concatenated is fine). Returns the
/// violations; `report` (may be null) receives a human-readable summary
/// including the witness call chain for every violation and the roots
/// proven clean.
std::vector<Diagnostic> RunHotpathProof(const std::string& disasm,
                                        const HotpathProofOptions& options,
                                        std::ostream* report);

// ---------------------------------------------------------------------------
// CLI driver
// ---------------------------------------------------------------------------

/// Shared by main() and the tests (so exit codes are testable in-process).
/// Two modes:
///   hqcheck [--root <dir>] [--manifest <file>] <file-or-dir>...
///   hqcheck --hotpath --roots <regex> [--allow <file>] [--report <file>]
///           (--disasm <txt> | <object.o>...)
/// Directories are walked recursively for .h/.hpp/.cc/.cpp files, skipping
/// "testdata" and build directories. With --root, reported paths are
/// relative to it. In --hotpath mode object files are disassembled with
/// `objdump -dr`; --disasm feeds pre-captured output instead (tests).
/// Returns 0 (clean), 1 (violations printed to `out`), 2 (usage/IO error
/// printed to `err`).
int RunHqcheck(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace hqcheck
