#include <cxxabi.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <ostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "hqcheck.h"
#include "internal.h"

/// \file symbol_proof.cc
/// The hotpath-symbol rule: a reachability proof over the *compiled*
/// conversion kernels. `objdump -dr` names every call's target through its
/// relocation, so the object files give an honest intra-TU call graph —
/// whatever the optimizer inlined is already flattened into the caller, and
/// whatever remains is a real out-of-line call. Starting from the
/// hqlint:hotpath kernel symbols we walk that graph and fail on any
/// reachable lock, throw, or per-value allocation symbol.
///
/// The frontier is an *audited allowlist* (tools/hqcheck/hotpath_allow.txt):
/// symbols the proof deliberately stops at, each with a committed
/// justification. The canonical entries are the vector<unsigned char>
/// growth machinery — gcc inlines the push_back slow path (operator new +
/// __throw_length_error guard) straight into the kernel bodies, and that
/// amortized growth is sanctioned because bench_smoke separately gates the
/// hyperq_convert_csv_realloc_total counter to 0 allocations/row. The
/// static proof and the runtime counter are complementary halves of the
/// same claim: the proof pins *what kinds* of runtime machinery the kernels
/// can touch, the counter pins *how often* the one allowed kind fires.

namespace hqcheck {

namespace {

struct ForbiddenRule {
  const char* category;
  const char* pattern;  // ERE over the demangled name (mangled as fallback)
};

/// What must never be reachable from a hot-path root. Matched against the
/// demangled symbol; the mangled alternatives cover symbols the demangler
/// leaves untouched (plain C names).
const ForbiddenRule kForbidden[] = {
    {"lock",
     "^(pthread_(mutex|cond|rwlock|spin)_|__gthrw_)|hyperq::common::(Mutex|MutexLock|CondVar)|"
     "^std::(recursive_)?mutex|^std::condition_variable"},
    {"throw",
     "^(__cxa_throw|__cxa_rethrow|__cxa_allocate_exception)$|^std::__throw_|"
     "^std::terminate"},
    {"per-value-string",
     "^std::__cxx11::to_string|basic_string<.*>::(_M_create|_M_construct|_M_mutate|"
     "_M_replace|_M_append|_M_assign|append|push_back|reserve|operator\\+|basic_string)"},
    {"alloc",
     "^operator new|^operator delete|^(malloc|calloc|realloc|free|aligned_alloc|posix_memalign)$"},
};

/// `sym.cold` / `sym.isra.0` / `sym.part.0` → {sym, ".cold"...}. The clone
/// suffix is kept for display but stripped for demangling and root
/// matching.
std::pair<std::string, std::string> SplitCloneSuffix(const std::string& sym) {
  static const char* const kSuffixes[] = {".cold", ".isra", ".part", ".constprop", ".lto_priv"};
  size_t best = std::string::npos;
  for (const char* s : kSuffixes) {
    size_t pos = sym.find(s);
    if (pos != std::string::npos && pos < best) best = pos;
  }
  if (best == std::string::npos) return {sym, ""};
  return {sym.substr(0, best), sym.substr(best)};
}

std::string Demangle(const std::string& sym) {
  auto [base, suffix] = SplitCloneSuffix(sym);
  int status = 0;
  char* out = abi::__cxa_demangle(base.c_str(), nullptr, nullptr, &status);
  std::string result = status == 0 && out != nullptr ? out : base;
  std::free(out);
  if (!suffix.empty()) result += " [clone " + suffix + "]";
  return result;
}

struct CallGraph {
  // symbol -> callees (in first-seen order, deduplicated).
  std::map<std::string, std::vector<std::string>> edges;
  // symbol -> object file it is defined in.
  std::map<std::string, std::string> object_of;
  std::vector<std::string> definition_order;
};

/// Parses concatenated `objdump -dr` output. Function bodies start with
/// `0000... <mangled>:`; call/jump targets appear as relocation lines
/// (`R_X86_64_PLT32  _Znwm-0x4`). Object boundaries come from objdump's
/// `path:  file format ...` banner.
CallGraph ParseDisassembly(const std::string& disasm) {
  CallGraph g;
  std::istringstream in(disasm);
  std::string line;
  std::string current_object = "<unknown object>";
  std::string current_fn;
  std::set<std::pair<std::string, std::string>> seen_edges;
  while (std::getline(in, line)) {
    size_t banner = line.find(":     file format ");
    if (banner != std::string::npos) {
      current_object = line.substr(0, banner);
      continue;
    }
    // `0000000000000f00 <_ZN6...>:`
    if (!line.empty() && std::isxdigit(static_cast<unsigned char>(line[0])) != 0) {
      size_t open = line.find(" <");
      if (open != std::string::npos && line.back() == ':' &&
          line.find('>') == line.size() - 2) {
        current_fn = line.substr(open + 2, line.size() - open - 4);
        if (g.edges.find(current_fn) == g.edges.end()) {
          g.edges[current_fn];
          g.object_of[current_fn] = current_object;
          g.definition_order.push_back(current_fn);
        }
        continue;
      }
    }
    size_t reloc = line.find("R_X86_64_");
    if (reloc == std::string::npos || current_fn.empty()) continue;
    size_t sym_begin = line.find_first_of(" \t", reloc);
    if (sym_begin == std::string::npos) continue;
    sym_begin = line.find_first_not_of(" \t", sym_begin);
    if (sym_begin == std::string::npos) continue;
    std::string target = line.substr(sym_begin);
    while (!target.empty() && (target.back() == '\r' || target.back() == ' ')) target.pop_back();
    // Strip the addend: `_Znwm-0x4`, `.text+0x40`.
    size_t addend = target.find_last_of("+-");
    if (addend != std::string::npos && target.compare(addend + 1, 2, "0x") == 0) {
      target = target.substr(0, addend);
    }
    if (target.empty() || target[0] == '.') continue;  // section-relative, not a symbol
    if (target == current_fn) continue;                // recursion is not an edge
    if (seen_edges.insert({current_fn, target}).second) {
      g.edges[current_fn].push_back(target);
    }
  }
  return g;
}

}  // namespace

namespace internal {

// The interlock pass fuses these relocation edges into its source call graph
// (cross-TU summary propagation); same parser, shared shape.
BinCallGraph ParseDisasmCallGraph(const std::string& disasm) {
  CallGraph g = ParseDisassembly(disasm);
  BinCallGraph out;
  out.edges = std::move(g.edges);
  out.object_of = std::move(g.object_of);
  out.definition_order = std::move(g.definition_order);
  return out;
}

std::string DemangleSymbol(const std::string& sym) { return Demangle(sym); }

}  // namespace internal

std::vector<AllowEntry> ParseAllowFile(const std::string& path, const std::string& content,
                                       std::vector<Diagnostic>* diags) {
  std::vector<AllowEntry> entries;
  std::istringstream in(content);
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    std::string text = raw;
    std::string justification;
    size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      text = raw.substr(0, hash);
      justification = raw.substr(hash + 1);
      size_t b = justification.find_first_not_of(" \t");
      justification = b == std::string::npos ? "" : justification.substr(b);
    }
    size_t b = text.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    size_t e = text.find_last_not_of(" \t");
    std::string pattern = text.substr(b, e - b + 1);
    if (justification.empty()) {
      diags->push_back({path, line, "hotpath-symbol",
                        "allowlist entry `" + pattern +
                            "` has no justification; every frontier cut must say why it is "
                            "sound (`<regex>  # <reason>`)"});
      continue;
    }
    try {
      std::regex probe(pattern, std::regex::extended);
    } catch (const std::regex_error&) {
      diags->push_back({path, line, "hotpath-symbol",
                        "allowlist entry `" + pattern + "` is not a valid POSIX ERE"});
      continue;
    }
    entries.push_back({pattern, justification});
  }
  return entries;
}

std::vector<Diagnostic> RunHotpathProof(const std::string& disasm,
                                        const HotpathProofOptions& options,
                                        std::ostream* report) {
  std::vector<Diagnostic> diags;
  CallGraph g = ParseDisassembly(disasm);

  std::regex roots_re;
  try {
    roots_re = std::regex(options.roots_regex, std::regex::extended);
  } catch (const std::regex_error&) {
    diags.push_back({"<args>", 0, "hotpath-symbol",
                     "--roots `" + options.roots_regex + "` is not a valid POSIX ERE"});
    return diags;
  }
  std::vector<std::regex> allow_res;
  allow_res.reserve(options.allow.size());
  for (const AllowEntry& e : options.allow) {
    allow_res.emplace_back(e.pattern, std::regex::extended);
  }
  std::vector<std::regex> forbidden_res;
  for (const ForbiddenRule& r : kForbidden) {
    forbidden_res.emplace_back(r.pattern, std::regex::extended);
  }

  // Demangled names are computed once per symbol (demangling is slow).
  std::map<std::string, std::string> demangled;
  auto name_of = [&](const std::string& sym) -> const std::string& {
    auto it = demangled.find(sym);
    if (it == demangled.end()) it = demangled.emplace(sym, Demangle(sym)).first;
    return it->second;
  };
  auto allow_index = [&](const std::string& sym) -> int {
    for (size_t k = 0; k < allow_res.size(); ++k) {
      if (std::regex_search(name_of(sym), allow_res[k]) ||
          std::regex_search(sym, allow_res[k])) {
        return static_cast<int>(k);
      }
    }
    return -1;
  };
  auto forbidden_category = [&](const std::string& sym) -> const char* {
    for (size_t k = 0; k < forbidden_res.size(); ++k) {
      if (std::regex_search(name_of(sym), forbidden_res[k]) ||
          std::regex_search(sym, forbidden_res[k])) {
        return kForbidden[k].category;
      }
    }
    return nullptr;
  };

  // Roots: defined, demangle-matching, and not compiler clones (the .cold
  // half of a kernel is reached through its hot half's edge).
  std::vector<std::string> roots;
  for (const std::string& sym : g.definition_order) {
    if (!SplitCloneSuffix(sym).second.empty()) continue;
    if (std::regex_search(name_of(sym), roots_re)) roots.push_back(sym);
  }
  if (roots.empty()) {
    diags.push_back({"<roots>", 0, "hotpath-symbol",
                     "no defined symbol matches roots regex `" + options.roots_regex +
                         "`; an empty proof proves nothing — fix the regex or the object "
                         "list"});
    return diags;
  }

  // BFS from all roots with parent links for witness chains.
  std::map<std::string, std::string> parent;  // discovered -> discoverer
  std::vector<std::string> queue = roots;
  std::set<std::string> visited(roots.begin(), roots.end());
  std::set<std::string> allow_used;
  size_t reached = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    std::string fn = queue[head];
    auto eit = g.edges.find(fn);
    if (eit == g.edges.end()) continue;
    for (const std::string& callee : eit->second) {
      if (visited.count(callee) != 0) continue;
      visited.insert(callee);
      parent[callee] = fn;
      ++reached;
      int ai = allow_index(callee);
      if (ai >= 0) {
        allow_used.insert(options.allow[static_cast<size_t>(ai)].pattern);
        continue;  // audited frontier: do not traverse, do not judge
      }
      const char* category = forbidden_category(callee);
      if (category != nullptr) {
        // Witness chain back to a root.
        std::vector<std::string> chain{callee};
        std::string cur = fn;
        while (true) {
          chain.push_back(cur);
          auto pit = parent.find(cur);
          if (pit == parent.end()) break;
          cur = pit->second;
        }
        std::reverse(chain.begin(), chain.end());
        std::string chain_text;
        for (size_t k = 0; k < chain.size(); ++k) {
          if (k != 0) chain_text += " -> ";
          chain_text += name_of(chain[k]);
        }
        std::string object = g.object_of.count(chain.front()) != 0
                                 ? g.object_of.at(chain.front())
                                 : "<unknown object>";
        diags.push_back({object, 0, "hotpath-symbol",
                         std::string(category) + " symbol `" + name_of(callee) +
                             "` is reachable from hot-path root `" + name_of(chain.front()) +
                             "`: " + chain_text});
        continue;
      }
      if (g.edges.count(callee) != 0) queue.push_back(callee);
    }
  }

  if (report != nullptr) {
    *report << "hotpath symbol proof: " << roots.size() << " roots, " << reached
            << " reachable symbols, " << diags.size() << " violations\n";
    if (options.verbose) {
      for (const std::string& r : roots) *report << "  root: " << name_of(r) << "\n";
    }
    for (const AllowEntry& e : options.allow) {
      bool used = allow_used.count(e.pattern) != 0;
      *report << "  frontier " << (used ? "[used]  " : "[unused]") << " " << e.pattern << "  # "
              << e.justification << "\n";
    }
    for (const Diagnostic& d : diags) *report << "  VIOLATION " << Format(d) << "\n";
  }
  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.path != b.path) return a.path < b.path;
    return a.message < b.message;
  });
  return diags;
}

}  // namespace hqcheck
