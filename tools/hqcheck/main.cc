#include <iostream>
#include <string>
#include <vector>

#include "hqcheck.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return hqcheck::RunHqcheck(args, std::cout, std::cerr);
}
