/// Quickstart: run an unmodified legacy ETL import script against a cloud
/// data warehouse through Hyper-Q.
///
/// The moving parts, all in-process:
///   - a simulated CDW (catalog + SQL executor + COPY) backed by a simulated
///     cloud object store;
///   - a Hyper-Q node virtualizing the legacy wire protocol;
///   - the legacy ETL client tool, interpreting the same dot-command script
///     it would run against the original EDW — only the connection target
///     is repointed to Hyper-Q.

#include <cstdio>
#include <filesystem>

#include "cdw/cdw_server.h"
#include "cloudstore/object_store.h"
#include "etlscript/etl_client.h"
#include "hyperq/server.h"
#include "workload/dataset.h"

using namespace hyperq;

namespace {
const char* kScript = R"script(
.logon hyperq/etl_user,etl_pass;
.sessions 4;

create multiset table PROD.CUSTOMER (
  CUST_ID   varchar(12) not null,
  CUST_NAME varchar(50),
  JOIN_DATE date
) unique primary index (CUST_ID);

.layout CustLayout;
.field CUST_ID varchar(12);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(14);

.begin import tables PROD.CUSTOMER
    errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;

.dml label InsApply;
insert into PROD.CUSTOMER values (
    trim(:CUST_ID), trim(:CUST_NAME),
    cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );

.import infile input.txt format vartext '|' layout CustLayout apply InsApply;
.end load;

select count(*) from PROD.CUSTOMER;
.logoff;
)script";
}  // namespace

int main() {
  std::string work_dir = "/tmp/hyperq_quickstart";
  std::filesystem::create_directories(work_dir);

  // 1. Write a small input file: 10,000 customer rows.
  {
    FILE* f = std::fopen((work_dir + "/input.txt").c_str(), "wb");
    for (int i = 1; i <= 10000; ++i) {
      std::fprintf(f, "%d|Customer %d|20%02d-%02d-%02d\n", i, i, i % 23, i % 12 + 1, i % 28 + 1);
    }
    std::fclose(f);
  }

  // 2. Stand up the cloud: object store + CDW.
  cloud::ObjectStore store;
  cdw::CdwServer cdw(&store);

  // 3. Stand up the Hyper-Q node in front of the CDW.
  core::HyperQOptions options;
  options.converter_workers = 2;
  options.file_writers = 2;
  options.local_staging_dir = work_dir + "/staging";
  core::HyperQServer hyperq_node(&cdw, &store, options);
  hyperq_node.Start();

  // 4. Run the legacy ETL script, repointed at Hyper-Q.
  etlscript::EtlClientOptions client_options;
  client_options.working_dir = work_dir;
  client_options.chunk_rows = 500;
  client_options.connector = [&](const std::string& host)
      -> common::Result<std::shared_ptr<net::Transport>> {
    if (host != "hyperq") return common::Status::NotFound("unknown host: " + host);
    auto transport = hyperq_node.Connect();
    if (!transport) return common::Status::IOError("Hyper-Q node is not accepting connections");
    return transport;
  };
  etlscript::EtlClient client(client_options);

  auto run = client.RunScript(kScript);
  if (!run.ok()) {
    std::fprintf(stderr, "ETL job failed: %s\n", run.status().ToString().c_str());
    return 1;
  }

  // 5. Report.
  for (const auto& import : run->imports) {
    std::printf("import job %s -> %s\n", import.job_id.c_str(), import.target_table.c_str());
    std::printf("  rows sent:        %llu (in %llu chunks over %llu sessions)\n",
                (unsigned long long)import.rows_sent, (unsigned long long)import.chunks_sent,
                (unsigned long long)import.sessions_used);
    std::printf("  rows inserted:    %llu\n", (unsigned long long)import.report.rows_inserted);
    std::printf("  errors (ET/UV):   %llu / %llu\n",
                (unsigned long long)import.report.et_errors,
                (unsigned long long)import.report.uv_errors);
    std::printf("  acquisition:      %.3f s\n", import.acquisition_seconds);
    std::printf("  application:      %.3f s\n", import.application_seconds);
  }
  for (const auto& [sql, qr] : run->queries) {
    if (qr.has_result_set() && !qr.rows.empty()) {
      std::printf("query: %s\n  -> %s\n", sql.c_str(), qr.rows[0][0].ToString().c_str());
    }
  }

  hyperq_node.Stop();
  std::printf("quickstart OK\n");
  return 0;
}
