/// Export job example (Figure 2b): a legacy export script pulls data out of
/// the CDW through Hyper-Q with parallel export sessions. The SELECT is
/// legacy SQL (SEL abbreviation, CAST ... FORMAT) — Hyper-Q transpiles it;
/// results flow CDW -> TDFCursor (TDF packets, prefetched) -> PXC (legacy
/// vartext encoding) -> client sessions -> output file.

#include <cstdio>
#include <filesystem>

#include "cdw/cdw_server.h"
#include "cloudstore/bulk_loader.h"
#include "cloudstore/object_store.h"
#include "etlscript/etl_client.h"
#include "hyperq/server.h"
#include "workload/dataset.h"

using namespace hyperq;

namespace {
const char* kImportExportScript = R"script(
.logon hyperq/etl_user,etl_pass;
.sessions 2;

create multiset table SALES.ORDERS (
  ORDER_ID   varchar(12) not null,
  CUST_NAME  varchar(24),
  ORDER_DATE date
) unique primary index (ORDER_ID);

.layout OrderLayout;
.field ORDER_ID varchar(12);
.field CUST_NAME varchar(24);
.field ORDER_DATE varchar(14);

.begin import tables SALES.ORDERS errortables SALES.ORDERS_ET SALES.ORDERS_UV;
.dml label Ins;
insert into SALES.ORDERS values (
    trim(:ORDER_ID), trim(:CUST_NAME),
    cast(:ORDER_DATE as DATE format 'YYYY-MM-DD') );
.import infile orders.txt format vartext '|' layout OrderLayout apply Ins;
.end load;

.begin export outfile recent_orders.txt format vartext '|' sessions 3;
sel ORDER_ID, CUST_NAME, cast(ORDER_DATE as varchar(10) format 'YYYY-MM-DD')
  from SALES.ORDERS
  where ORDER_DATE >= DATE '2015-01-01'
  order by ORDER_ID;
.end export;
.logoff;
)script";
}  // namespace

int main() {
  std::string work_dir = "/tmp/hyperq_export_example";
  std::filesystem::create_directories(work_dir);

  // Input: 50,000 orders spread over 2010-2022.
  {
    FILE* f = std::fopen((work_dir + "/orders.txt").c_str(), "wb");
    for (int i = 1; i <= 50000; ++i) {
      std::fprintf(f, "ORD%08d|Buyer %05d|20%02d-%02d-%02d\n", i, i % 1000, 10 + i % 13,
                   i % 12 + 1, i % 28 + 1);
    }
    std::fclose(f);
  }

  cloud::ObjectStore store;
  cdw::CdwServer cdw(&store);
  core::HyperQOptions options;
  options.local_staging_dir = work_dir + "/staging";
  options.export_chunk_rows = 2048;
  options.export_prefetch_chunks = 6;
  core::HyperQServer node(&cdw, &store, options);
  node.Start();

  etlscript::EtlClientOptions client_options;
  client_options.working_dir = work_dir;
  client_options.chunk_rows = 2000;
  client_options.connector = [&](const std::string&)
      -> common::Result<std::shared_ptr<net::Transport>> { return node.Connect(); };
  etlscript::EtlClient client(client_options);

  auto run = client.RunScript(kImportExportScript);
  if (!run.ok()) {
    std::fprintf(stderr, "job failed: %s\n", run.status().ToString().c_str());
    return 1;
  }

  const auto& import = run->imports.at(0);
  std::printf("import:  %llu rows into SALES.ORDERS (%llu ET errors)\n",
              (unsigned long long)import.report.rows_inserted,
              (unsigned long long)import.report.et_errors);

  const auto& exp = run->exports.at(0);
  std::printf("export:  %llu rows -> %s (%llu chunks over %llu sessions, %.3f s)\n",
              (unsigned long long)exp.rows_written, exp.outfile.c_str(),
              (unsigned long long)exp.chunks_fetched, (unsigned long long)exp.sessions_used,
              exp.elapsed_seconds);

  auto bytes = cloud::ReadFileBytes(exp.outfile);
  if (bytes.ok()) {
    std::string_view text(reinterpret_cast<const char*>(bytes->data()),
                          std::min<size_t>(bytes->size(), 200));
    std::printf("first lines of the exported file:\n%.*s...\n", static_cast<int>(text.size()),
                text.data());
  }

  node.Stop();
  return 0;
}
