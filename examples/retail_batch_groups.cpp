/// Case-study simulation (paper Section 8): a large retail organization runs
/// 127 nightly batch groups under a strict SLA (start after midnight, done
/// by 6 a.m.). Groups have dependencies that limit parallelism; all groups
/// share one Hyper-Q node — and therefore one CreditManager, one converter
/// pool and one memory budget — exactly the multi-job setting of Section 5.
///
/// This example builds a synthetic 127-group dependency DAG (fan-in layers
/// resembling file-prep -> bulk-load -> transform chains), runs every group
/// as a real ETL import job through Hyper-Q, and reports the critical path
/// and SLA headroom (scaled: 1 simulated minute = 1 real millisecond-ish
/// workload scale).

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include "cdw/cdw_server.h"
#include "cloudstore/object_store.h"
#include "common/stopwatch.h"
#include "etlscript/etl_client.h"
#include "hyperq/server.h"
#include "workload/dataset.h"

using namespace hyperq;

namespace {

struct BatchGroup {
  int id;
  std::vector<int> deps;
  uint64_t rows;
};

/// 127 groups in layers: 16 source feeds, then aggregation layers with
/// fan-in dependencies, ending in a handful of reporting marts.
std::vector<BatchGroup> BuildDag() {
  std::vector<BatchGroup> groups;
  int id = 0;
  std::vector<int> prev_layer;
  // Layer 0: 16 independent source feeds (larger loads).
  std::vector<int> layer;
  for (int i = 0; i < 16; ++i) {
    groups.push_back(BatchGroup{id, {}, 4000});
    layer.push_back(id++);
  }
  prev_layer = layer;
  // Middle layers: 5 layers x 20 groups, each depending on 2 groups above.
  for (int l = 0; l < 5; ++l) {
    layer.clear();
    for (int i = 0; i < 20; ++i) {
      BatchGroup g{id, {}, 1500};
      g.deps.push_back(prev_layer[i % prev_layer.size()]);
      g.deps.push_back(prev_layer[(i * 7 + 3) % prev_layer.size()]);
      groups.push_back(g);
      layer.push_back(id++);
    }
    prev_layer = layer;
  }
  // Final layer: 11 reporting marts depending on 4 groups each.
  for (int i = 0; i < 11; ++i) {
    BatchGroup g{id, {}, 800};
    for (int d = 0; d < 4; ++d) {
      g.deps.push_back(prev_layer[(i * 5 + d * 3) % prev_layer.size()]);
    }
    groups.push_back(g);
    ++id;
  }
  return groups;
}

}  // namespace

int main() {
  std::string work_dir = "/tmp/hyperq_retail_example";
  std::filesystem::create_directories(work_dir);

  cloud::ObjectStore store;
  cdw::CdwServer cdw(&store);
  core::HyperQOptions options;
  options.local_staging_dir = work_dir + "/staging";
  options.converter_workers = 2;
  options.file_writers = 2;
  options.credit_pool_size = 32;  // shared by ALL concurrent groups
  core::HyperQServer node(&cdw, &store, options);
  node.Start();

  std::vector<BatchGroup> groups = BuildDag();
  std::printf("retail nightly window: %zu batch groups, shared CreditManager pool of %llu\n",
              groups.size(), (unsigned long long)options.credit_pool_size);

  // Scheduler: run a group once its dependencies completed, with a cap on
  // concurrently running groups (the ETL orchestrator's worker limit).
  constexpr int kMaxConcurrent = 6;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<bool> done(groups.size(), false);
  std::vector<double> finished_at(groups.size(), 0);
  int running = 0;
  std::atomic<bool> failed{false};
  common::Stopwatch window_timer;

  auto runnable = [&](const BatchGroup& g) {
    for (int d : g.deps) {
      if (!done[d]) return false;
    }
    return true;
  };

  auto run_group = [&](const BatchGroup& g) {
    workload::DatasetSpec spec;
    spec.rows = g.rows;
    spec.row_bytes = 200;
    spec.seed = 1000 + g.id;
    spec.bad_date_fraction = 0.001;
    workload::CustomerDataset dataset(spec);
    std::string table = "RETAIL.GROUP_" + std::to_string(g.id);
    std::string data_file = work_dir + "/group_" + std::to_string(g.id) + ".txt";
    if (!dataset.WriteDataFile(data_file).ok()) {
      failed = true;
      return;
    }
    etlscript::EtlClientOptions client_options;
    client_options.working_dir = work_dir;
    client_options.chunk_rows = 500;
    client_options.connector = [&](const std::string&)
        -> common::Result<std::shared_ptr<net::Transport>> { return node.Connect(); };
    etlscript::EtlClient client(client_options);
    // Same script the group ran against the legacy EDW, repointed at Hyper-Q.
    std::string import_script =
        dataset.MakeImportScript("hyperq", table, data_file, /*sessions=*/2);
    const std::string logon_line = ".logon hyperq/etl_user,etl_pass;\n";
    std::string script =
        logon_line + dataset.MakeTargetDdl(table) + ";\n" +
        import_script.substr(import_script.find('\n') + 1);  // drop its .logon line
    auto run = client.RunScript(script);
    if (!run.ok()) {
      std::fprintf(stderr, "group %d failed: %s\n", g.id, run.status().ToString().c_str());
      failed = true;
    }
  };

  std::vector<std::thread> workers;
  size_t launched = 0;
  std::vector<bool> started(groups.size(), false);
  while (launched < groups.size() && !failed) {
    std::unique_lock<std::mutex> lock(mu);
    int next = -1;
    for (size_t i = 0; i < groups.size(); ++i) {
      if (!started[i] && runnable(groups[i]) && running < kMaxConcurrent) {
        next = static_cast<int>(i);
        break;
      }
    }
    if (next < 0) {
      cv.wait(lock);
      continue;
    }
    started[next] = true;
    ++running;
    ++launched;
    lock.unlock();
    workers.emplace_back([&, next] {
      run_group(groups[next]);
      std::lock_guard<std::mutex> inner(mu);
      done[next] = true;
      finished_at[next] = window_timer.ElapsedSeconds();
      --running;
      cv.notify_all();
    });
  }
  for (auto& t : workers) t.join();
  node.Stop();
  if (failed) return 1;

  double window = window_timer.ElapsedSeconds();
  double last_finish = 0;
  for (double f : finished_at) last_finish = std::max(last_finish, f);

  // SLA check: with the midnight-to-6am window scaled to wall time.
  uint64_t total_rows = 0;
  for (const auto& g : groups) total_rows += g.rows;
  std::printf("all %zu groups complete: %llu rows total\n", groups.size(),
              (unsigned long long)total_rows);
  std::printf("window elapsed: %.2f s, last group finished at %.2f s\n", window, last_finish);
  auto stats = node.credit_manager()->stats();
  std::printf("credit pool: %llu acquisitions, %llu back-pressure blocks, peak in-flight %llu\n",
              (unsigned long long)stats.acquisitions,
              (unsigned long long)stats.blocked_acquisitions,
              (unsigned long long)stats.max_outstanding);
  std::printf("retail batch groups OK\n");
  return 0;
}
