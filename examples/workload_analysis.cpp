/// Workload analysis example (paper Section 8): before a replatforming
/// project, the ETL scripts are scanned to inventory legacy constructs and
/// flag the (small) share of statements needing a manual rewrite — the paper
/// reports "less than 1% of the queries in ETL jobs had to be rewritten
/// manually" and credits qInsight with identifying them upfront.
///
/// This example builds a synthetic workload of 400 statements resembling a
/// retail ETL estate (loads, upserts, purges, report extracts, a couple of
/// statements using constructs outside the transpiler's reach) and prints
/// the analyzer's inventory.

#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "qinsight/analyzer.h"

using namespace hyperq;

namespace {

std::vector<std::string> SynthesizeWorkload() {
  common::Random rng(2023);
  std::vector<std::string> statements;
  for (int i = 0; i < 400; ++i) {
    int pick = static_cast<int>(rng.NextBounded(100));
    std::string table = "RETAIL.T" + std::to_string(rng.NextBounded(30));
    if (pick < 35) {
      // Load DML with placeholders and a legacy date cast.
      statements.push_back("insert into " + table +
                           " values (trim(:ID), :NAME, cast(:D as DATE format 'YYYY-MM-DD'))");
    } else if (pick < 50) {
      // Atomic upsert.
      statements.push_back("update " + table +
                           " set QTY = QTY + :DELTA where SKU = :SKU "
                           "else insert values (:SKU, :DELTA)");
    } else if (pick < 60) {
      // Purge.
      statements.push_back("del from " + table + " where D < DATE '2015-01-01'");
    } else if (pick < 85) {
      // Report extract with legacy spellings.
      statements.push_back("sel TOP 100 REGION, ZEROIFNULL(SUM(AMT)) from " + table +
                           " where D >= DATE '2020-01-01' group by REGION order by 2 desc");
    } else if (pick < 97) {
      // DDL with legacy types.
      statements.push_back("create multiset table " + table +
                           "_NEW (ID BYTEINT, NOTE CHAR(400), NAME VARCHAR(20) CHARACTER SET "
                           "UNICODE) UNIQUE PRIMARY INDEX (ID)");
    } else if (pick < 99) {
      // Constructs outside the transpiler: flagged for manual rewrite.
      statements.push_back("sel HASHROW(ID) from " + table);
    } else {
      statements.push_back("LOCKING ROW FOR ACCESS SELECT * FROM " + table);
    }
  }
  return statements;
}

}  // namespace

int main() {
  qinsight::WorkloadAnalyzer analyzer;
  std::vector<qinsight::StatementReport> reports;
  for (const auto& sql : SynthesizeWorkload()) {
    reports.push_back(analyzer.AnalyzeStatement(sql));
  }
  auto workload = analyzer.Summarize(std::move(reports));

  std::printf("=== pre-replatforming workload analysis ===\n%s\n",
              workload.ToString().c_str());

  std::printf("statements flagged for manual rewrite:\n");
  for (const auto& report : workload.details) {
    if (!report.NeedsManualRewrite()) continue;
    std::string reason;
    for (const auto& f : report.findings) {
      if (f.disposition == qinsight::Disposition::kManualRewrite) {
        reason = std::string(qinsight::FeatureKindName(f.kind)) +
                 (f.detail.empty() ? "" : " (" + f.detail + ")");
        break;
      }
    }
    std::printf("  [%s] %.60s...\n", reason.c_str(), report.sql.c_str());
  }
  return 0;
}
