/// Reproduces the paper's worked error-handling example (Example 2.1 + 7.1,
/// Figures 5 and 6): a five-row data file with two malformed dates and one
/// duplicate key, loaded with adaptive error handling and max_errors = 2.
///
/// Expected outcome (Figure 6):
///   - rows 2 and 3 fail the DATE cast and are recorded individually
///     (code 3103, field JOIN_DATE);
///   - after max_errors is reached, the remaining failing range (rows 4-5)
///     is recorded as one range error (code 9057) and not split further;
///   - rows 1 and (depending on the range cut) later clean rows load.

#include <cstdio>
#include <filesystem>

#include "cdw/cdw_server.h"
#include "cloudstore/object_store.h"
#include "etlscript/etl_client.h"
#include "hyperq/server.h"

using namespace hyperq;

namespace {
// The data file of Figure 5(a).
const char* kDataFile =
    "123|Smith|2012-01-01\n"
    "456|Brown|xxxx\n"
    "789|Brown|yyyyy\n"
    "123|Jones|2012-12-01\n"
    "157|Jones|2012-12-01\n";

const char* kScript = R"script(
.logon hyperq/user,pass;
.set max_errors 2;

create table PROD.CUSTOMER (
  CUST_ID   varchar(5) not null,
  CUST_NAME varchar(50),
  JOIN_DATE date
) unique primary index (CUST_ID);

.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);

.begin import tables PROD.CUSTOMER
    errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;

.dml label InsApply;
insert into PROD.CUSTOMER values (
    trim(:CUST_ID), trim(:CUST_NAME),
    cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );

.import infile input.txt format vartext '|' layout CustLayout apply InsApply;
.end load;

select * from PROD.CUSTOMER_ET;
select * from PROD.CUSTOMER_UV;
select * from PROD.CUSTOMER;
.logoff;
)script";

void PrintResultSet(const char* title, const legacy::QueryResult& qr) {
  std::printf("%s\n", title);
  std::string header;
  for (const auto& f : qr.schema.fields()) header += f.name + " | ";
  std::printf("  %s\n", header.c_str());
  for (const auto& row : qr.rows) {
    std::string line;
    for (const auto& v : row) line += v.ToString() + " | ";
    std::printf("  %s\n", line.c_str());
  }
}
}  // namespace

int main() {
  std::string work_dir = "/tmp/hyperq_error_example";
  std::filesystem::create_directories(work_dir);
  {
    FILE* f = std::fopen((work_dir + "/input.txt").c_str(), "wb");
    std::fputs(kDataFile, f);
    std::fclose(f);
  }

  cloud::ObjectStore store;
  cdw::CdwServer cdw(&store);
  core::HyperQOptions options;
  options.local_staging_dir = work_dir + "/staging";
  core::HyperQServer node(&cdw, &store, options);
  node.Start();

  etlscript::EtlClientOptions client_options;
  client_options.working_dir = work_dir;
  client_options.connector = [&](const std::string&)
      -> common::Result<std::shared_ptr<net::Transport>> { return node.Connect(); };
  etlscript::EtlClient client(client_options);

  auto run = client.RunScript(kScript);
  if (!run.ok()) {
    std::fprintf(stderr, "job failed: %s\n", run.status().ToString().c_str());
    return 1;
  }

  const auto& import = run->imports.at(0);
  std::printf("job report: inserted=%llu et_errors=%llu uv_errors=%llu\n\n",
              (unsigned long long)import.report.rows_inserted,
              (unsigned long long)import.report.et_errors,
              (unsigned long long)import.report.uv_errors);

  PrintResultSet("PROD.CUSTOMER_ET (transformation errors, Figure 6 shape):",
                 run->queries.at(1).second);
  PrintResultSet("PROD.CUSTOMER_UV (uniqueness violations, Figure 5c shape):",
                 run->queries.at(2).second);
  PrintResultSet("PROD.CUSTOMER (successfully loaded tuples, Figure 5d):",
                 run->queries.at(3).second);

  node.Stop();
  return 0;
}
